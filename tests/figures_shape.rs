//! Shape tests for the figure harness: every figure function produces a
//! well-formed table at test scale, and the key rows carry the expected
//! qualitative content.

use std::sync::OnceLock;

use hdpat::experiments::SweepCtx;
use wsg_bench::figures;
use wsg_bench::report::Table;
use wsg_workloads::{BenchmarkId, Scale};

/// One process-wide sweep context: the test threads share its run cache, so
/// the Unit-scale baselines common to many figures simulate once per process
/// instead of once per test.
fn ctx() -> &'static SweepCtx {
    static CTX: OnceLock<SweepCtx> = OnceLock::new();
    CTX.get_or_init(SweepCtx::auto)
}

fn parse_ratio(cell: &str) -> f64 {
    cell.parse()
        .unwrap_or_else(|_| panic!("not a ratio: {cell}"))
}

fn gmean_row<'a>(t: &'a Table, label: &str) -> &'a Vec<String> {
    t.rows
        .iter()
        .find(|r| r[0] == label)
        .unwrap_or_else(|| panic!("no {label} row"))
}

#[test]
fn fig02_shows_headroom() {
    let t = figures::fig02_headroom(ctx(), Scale::Unit);
    assert_eq!(t.rows.len(), 15, "14 benchmarks + GMEAN");
    let gm = gmean_row(&t, "GMEAN");
    assert!(
        parse_ratio(&gm[1]) > 1.3,
        "ideal-latency headroom: {}",
        gm[1]
    );
    assert!(
        parse_ratio(&gm[2]) > 1.3,
        "ideal-parallelism headroom: {}",
        gm[2]
    );
}

#[test]
fn fig03_breakdown_sums_to_one() {
    let t = figures::fig03_latency_breakdown(ctx(), Scale::Unit);
    assert_eq!(t.rows.len(), 3);
    let total: f64 = t
        .rows
        .iter()
        .map(|r| r[2].trim_end_matches('%').parse::<f64>().unwrap())
        .sum();
    assert!((total - 100.0).abs() < 0.5, "shares total {total}");
    // The paper's observation: queueing (pre-queue) dominates the walk.
    let pre: f64 = t.rows[0][2].trim_end_matches('%').parse().unwrap();
    let walk: f64 = t.rows[2][2].trim_end_matches('%').parse().unwrap();
    assert!(
        pre > walk,
        "pre-queue ({pre}%) should dominate walk ({walk}%)"
    );
}

#[test]
fn fig04_wafer_pressure_exceeds_mcm() {
    let t = figures::fig04_buffer_pressure(ctx(), Scale::Unit);
    let mcm_peak: u64 = t
        .rows
        .iter()
        .map(|r| r[1].parse::<u64>().unwrap())
        .max()
        .unwrap();
    let wafer_peak: u64 = t
        .rows
        .iter()
        .map(|r| r[2].parse::<u64>().unwrap())
        .max()
        .unwrap();
    assert!(
        wafer_peak > 2 * mcm_peak.max(1),
        "48-GPM wafer backlog ({wafer_peak}) must dwarf 4-GPM MCM ({mcm_peak})"
    );
}

#[test]
fn fig05_has_one_row_per_ring() {
    let t = figures::fig05_position_imbalance(ctx(), Scale::Unit);
    assert_eq!(t.rows.len(), 3, "7x7 wafer has rings 1..3");
}

#[test]
fn fig06_separates_streaming_from_reuse_benchmarks() {
    let t = figures::fig06_translation_counts(ctx(), Scale::Unit);
    let many = |abbr: &str| -> f64 {
        let row = t.rows.iter().find(|r| r[0] == abbr).unwrap();
        row[4].trim_end_matches('%').parse().unwrap()
    };
    // Observation O3: streaming benchmarks rarely re-translate a page
    // (AES/RELU), while gather benchmarks re-translate constantly (PR/SPMV).
    for abbr in ["AES", "RELU"] {
        assert!(
            many(abbr) < 20.0,
            "{abbr} x5+ share too high: {}%",
            many(abbr)
        );
    }
    for abbr in ["PR", "SPMV"] {
        assert!(
            many(abbr) > 50.0,
            "{abbr} x5+ share too low: {}%",
            many(abbr)
        );
    }
}

#[test]
fn fig07_reports_repeats_for_reuse_benchmarks() {
    let t = figures::fig07_reuse_distance(ctx(), Scale::Unit);
    assert_eq!(t.rows.len(), 4);
    for row in &t.rows {
        let repeats: u64 = row[1].parse().unwrap();
        assert!(repeats > 0, "{} shows no repeated translations", row[0]);
    }
}

#[test]
fn fig08_locality_fractions_are_monotone() {
    let t = figures::fig08_spatial_locality(ctx(), Scale::Unit);
    for row in &t.rows {
        let f: Vec<f64> = (1..5)
            .map(|i| row[i].trim_end_matches('%').parse().unwrap())
            .collect();
        assert!(f[0] <= f[1] && f[1] <= f[2] && f[2] <= f[3], "{row:?}");
    }
}

#[test]
fn fig13_shapes_are_comparable() {
    let t = figures::fig13_size_invariance(ctx());
    assert_eq!(t.rows.len(), 10);
    // Both series are normalized to [0, 1].
    for row in &t.rows {
        for cell in &row[1..] {
            let v: f64 = cell.parse().unwrap();
            assert!(
                (0.0..=1.0).contains(&v),
                "normalized rate out of range: {v}"
            );
        }
    }
}

#[test]
fn fig14_hdpat_wins_overall() {
    let t = figures::fig14_overall(ctx(), Scale::Unit);
    let gm = gmean_row(&t, "GMEAN");
    let headers = &t.headers;
    let hdpat_idx = headers.iter().position(|h| h == "HDPAT").unwrap();
    let hdpat = parse_ratio(&gm[hdpat_idx]);
    for (i, h) in headers.iter().enumerate().skip(1) {
        if i != hdpat_idx {
            assert!(
                hdpat >= parse_ratio(&gm[i]),
                "HDPAT ({hdpat}) must beat {h} ({})",
                gm[i]
            );
        }
    }
    assert!(hdpat > 1.15, "HDPAT geomean: {hdpat}");
}

#[test]
fn fig15_full_hdpat_tops_the_ablation() {
    let t = figures::fig15_ablation(ctx(), Scale::Unit);
    let gm = gmean_row(&t, "GMEAN");
    let full = parse_ratio(gm.last().unwrap());
    let clust_idx = t.headers.iter().position(|h| h == "cluster+rot").unwrap();
    assert!(
        full >= parse_ratio(&gm[clust_idx]),
        "full HDPAT must beat peer caching alone"
    );
}

#[test]
fn fig16_offload_is_substantial() {
    let t = figures::fig16_breakdown(ctx(), Scale::Unit);
    let mean = t.rows.last().unwrap();
    let offload: f64 = mean[5].trim_end_matches('%').parse().unwrap();
    assert!(offload > 20.0, "mean offload {offload}% too low");
}

#[test]
fn fig17_rtt_improves() {
    let t = figures::fig17_response_time(ctx(), Scale::Unit);
    let mean = t.rows.last().unwrap();
    let norm = parse_ratio(&mean[1]);
    assert!(norm < 1.0, "HDPAT should reduce mean RTT: {norm}");
}

#[test]
fn fig18_prefetch_saturates() {
    let t = figures::fig18_prefetch_granularity(ctx(), Scale::Unit);
    let gm = gmean_row(&t, "GMEAN");
    let d1 = parse_ratio(&gm[1]);
    let d4 = parse_ratio(&gm[2]);
    let d8 = parse_ratio(&gm[3]);
    assert!(
        d4 >= d1 * 0.98,
        "4-PTE ({d4}) should not lose to 1-PTE ({d1})"
    );
    assert!(
        (d8 - d4).abs() < 0.35,
        "8-PTE ({d8}) saturates near 4-PTE ({d4})"
    );
}

#[test]
fn fig19_has_both_variants() {
    let t = figures::fig19_redir_vs_tlb(ctx(), Scale::Unit);
    let gm = gmean_row(&t, "GMEAN");
    let rt = parse_ratio(&gm[1]);
    let tlb = parse_ratio(&gm[2]);
    // Fig 19's claim: the redirection table outperforms the same-area TLB.
    assert!(rt > tlb, "redirection ({rt}) must beat the TLB ({tlb})");
    assert!(tlb > 0.05, "TLB variant must still run: {tlb}");
}

#[test]
fn fig20_larger_pages_help_baseline() {
    let t = figures::fig20_page_size(ctx(), Scale::Unit);
    assert!(t.rows.len() >= 3);
    let first = parse_ratio(&t.rows[0][1]);
    let last = parse_ratio(&t.rows.last().unwrap()[1]);
    assert!((first - 1.0).abs() < 1e-9, "4K baseline is the reference");
    assert!(last > first, "64K baseline should beat 4K: {last}");
}

#[test]
fn fig21_covers_all_presets() {
    let t = figures::fig21_gpu_presets(ctx(), Scale::Unit);
    assert_eq!(t.rows.len(), 5);
    for row in &t.rows {
        assert!(parse_ratio(&row[1]) > 0.9, "{} regressed", row[0]);
    }
}

#[test]
fn fig22_scales_to_7x12() {
    let t = figures::fig22_wafer_7x12(ctx(), Scale::Unit);
    let gm = gmean_row(&t, "GMEAN");
    assert!(parse_ratio(&gm[1]) > 1.05, "7x12 gmean: {}", gm[1]);
}

#[test]
fn tables_render() {
    let t1 = figures::tab1_config();
    assert!(t1.to_text().contains("Redirection Table"));
    let t2 = figures::tab2_workloads();
    assert_eq!(t2.rows.len(), BenchmarkId::all().len());
    let t3 = figures::tab3_area_power();
    assert!(t3.to_csv().contains("redirection-table-1024"));
}
