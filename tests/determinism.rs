//! Byte-for-byte determinism of the end-to-end pipeline: the same
//! `(benchmark, seed)` run twice must serialize to identical metrics, down to
//! the last byte. This is stronger than the spot checks in
//! `tests/invariants.rs` — it covers every metric field at once, including
//! the histogram and time-series internals.

use hdpat_wafer::prelude::*;

fn metrics_bytes(bench: BenchmarkId, policy: PolicyKind, seed: u64) -> String {
    run(&RunConfig::new(bench, Scale::Unit, policy).with_seed(seed)).to_deterministic_string()
}

#[test]
fn same_seed_serializes_byte_identical_metrics() {
    for policy in [PolicyKind::Naive, PolicyKind::hdpat()] {
        for bench in [BenchmarkId::Km, BenchmarkId::Spmv] {
            let first = metrics_bytes(bench, policy, 7);
            let second = metrics_bytes(bench, policy, 7);
            assert_eq!(
                first, second,
                "{bench} under {policy} is not byte-for-byte deterministic"
            );
        }
    }
}

#[test]
fn sharded_runs_are_byte_identical_across_repetitions() {
    // `--shards N` must be as repeatable as the serial path: the same
    // sharded point run twice serializes identically, and matches serial
    // (the full cross-product lives in `tests/equivalence.rs`).
    for shards in [2, 4] {
        let cfg = RunConfig::new(BenchmarkId::Spmv, Scale::Unit, PolicyKind::hdpat()).with_seed(7);
        let first = run_with_shards(&cfg, shards).to_deterministic_string();
        let second = run_with_shards(&cfg, shards).to_deterministic_string();
        assert_eq!(first, second, "shards={shards} is not repeatable");
        assert_eq!(
            first,
            metrics_bytes(BenchmarkId::Spmv, PolicyKind::hdpat(), 7),
            "shards={shards} diverged from serial"
        );
    }
}

#[test]
fn different_seeds_serialize_differently() {
    // Guards against the serializer degenerating into something constant.
    let a = metrics_bytes(BenchmarkId::Spmv, PolicyKind::Naive, 1);
    let b = metrics_bytes(BenchmarkId::Spmv, PolicyKind::Naive, 2);
    assert_ne!(a, b, "seed must reach the serialized metrics");
}

#[test]
fn serializer_covers_the_headline_fields() {
    let text = metrics_bytes(BenchmarkId::Km, PolicyKind::hdpat(), 7);
    for field in [
        "total_cycles:",
        "gpm_finish:",
        "resolution:",
        "iommu_reuse.counts:",
        "remote_rtt:",
        "noc_bytes:",
    ] {
        assert!(text.contains(field), "serialized metrics miss {field}");
    }
}
