//! The sharded-execution contract (DESIGN.md §15): `--shards N` is purely an
//! *execution* parameter. For every benchmark, policy, seed and shard count,
//! [`run_with_shards`] must produce metrics byte-identical to the serial
//! [`run`] — and with an observability sink attached, the sink's artifacts
//! must be byte-identical too. The property-based test sweeps random points;
//! the feature-gated tests pin each sink (the `audit` build exercises the
//! conservation auditor's invariants *during* the sharded drive simply by
//! being compiled in).

use hdpat_wafer::prelude::*;
use proptest::prelude::*;

const BENCHES: [BenchmarkId; 5] = [
    BenchmarkId::Spmv,
    BenchmarkId::Km,
    BenchmarkId::Relu,
    BenchmarkId::Aes,
    BenchmarkId::Pr,
];

fn policies() -> [PolicyKind; 4] {
    [
        PolicyKind::Naive,
        PolicyKind::Distributed,
        PolicyKind::RouteCache { caching_layers: 2 },
        PolicyKind::hdpat(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random `(benchmark, policy, seed, shards)` points: the sharded drive
    /// serializes byte-for-byte like the serial one.
    #[test]
    fn sharded_runs_match_serial_byte_for_byte(
        bench_sel in 0usize..BENCHES.len(),
        policy_sel in 0usize..4,
        seed in 0u64..1_000,
        shards_sel in 0usize..2,
    ) {
        let shards = [2, 4][shards_sel];
        let cfg = RunConfig::new(BENCHES[bench_sel], Scale::Unit, policies()[policy_sel])
            .with_seed(seed);
        let serial = run(&cfg).to_deterministic_string();
        let sharded = run_with_shards(&cfg, shards).to_deterministic_string();
        prop_assert_eq!(serial, sharded, "shards={} diverged from serial", shards);
    }
}

#[test]
fn shard_counts_beyond_the_tile_count_are_clamped_not_broken() {
    // 7×7 paper wafer = 49 tiles; 64 shards clamp to 49, and 1 is the
    // serial path by definition.
    let cfg = RunConfig::new(BenchmarkId::Km, Scale::Unit, PolicyKind::hdpat()).with_seed(7);
    let serial = run(&cfg).to_deterministic_string();
    for shards in [1, 49, 64, 1000] {
        assert_eq!(
            serial,
            run_with_shards(&cfg, shards).to_deterministic_string(),
            "shards={shards} diverged from serial"
        );
    }
}

/// Serial and sharded runs of one config, each with a trace sink attached.
#[cfg(feature = "trace")]
fn traced_pair(
    cfg: &RunConfig,
    shards: usize,
) -> [(Metrics, hdpat_wafer::sim::trace::TraceSink); 2] {
    [false, true].map(|sharded| {
        let mut sim = Simulation::new(
            cfg.system.clone(),
            cfg.policy,
            cfg.benchmark,
            cfg.scale,
            cfg.seed,
        );
        let sink = hdpat_wafer::sim::trace::TraceSink::shared();
        sim.set_tracer(&sink);
        let metrics = if sharded {
            sim.run_with_shards(shards)
        } else {
            sim.run()
        };
        let sink = std::rc::Rc::try_unwrap(sink)
            .map(|cell| cell.into_inner())
            .unwrap_or_else(|rc| rc.borrow().clone());
        (metrics, sink)
    })
}

#[cfg(feature = "trace")]
#[test]
fn sharded_traces_are_byte_identical_to_serial() {
    for shards in [2, 4] {
        let cfg = RunConfig::new(BenchmarkId::Spmv, Scale::Unit, PolicyKind::hdpat()).with_seed(11);
        let [(sm, ss), (pm, ps)] = traced_pair(&cfg, shards);
        assert!(!ss.is_empty(), "traced run recorded no events");
        assert_eq!(sm.to_deterministic_string(), pm.to_deterministic_string());
        assert_eq!(
            ss.to_chrome_json(),
            ps.to_chrome_json(),
            "shards={shards}: trace JSON diverged"
        );
        assert_eq!(ss.stage_csv(), ps.stage_csv());
    }
}

/// Serial and sharded runs of one config, each with telemetry attached.
#[cfg(feature = "telemetry")]
fn telemetry_pair(
    cfg: &RunConfig,
    shards: usize,
) -> [(Metrics, hdpat_wafer::sim::telemetry::TelemetrySink); 2] {
    [false, true].map(|sharded| {
        let mut sim = Simulation::new(
            cfg.system.clone(),
            cfg.policy,
            cfg.benchmark,
            cfg.scale,
            cfg.seed,
        );
        let sink = hdpat_wafer::sim::telemetry::TelemetrySink::shared(2_000);
        sim.set_telemetry(&sink);
        let metrics = if sharded {
            sim.run_with_shards(shards)
        } else {
            sim.run()
        };
        let sink = std::rc::Rc::try_unwrap(sink)
            .map(|cell| cell.into_inner())
            .unwrap_or_else(|rc| rc.borrow().clone());
        (metrics, sink)
    })
}

#[cfg(feature = "telemetry")]
#[test]
fn sharded_telemetry_artifacts_are_byte_identical_to_serial() {
    for shards in [2, 4] {
        let cfg = RunConfig::new(BenchmarkId::Km, Scale::Unit, PolicyKind::hdpat()).with_seed(7);
        let [(sm, ss), (pm, ps)] = telemetry_pair(&cfg, shards);
        assert!(!ss.is_empty(), "recorded run registered no counters");
        assert_eq!(sm.to_deterministic_string(), pm.to_deterministic_string());
        assert_eq!(
            ss.to_csv(),
            ps.to_csv(),
            "shards={shards}: timeline diverged"
        );
        assert_eq!(ss.to_json(), ps.to_json());
        assert_eq!(ss.to_perfetto_json(), ps.to_perfetto_json());
        match (ss.heatmap(), ps.heatmap()) {
            (Some(a), Some(b)) => assert_eq!(a.to_csv(), b.to_csv()),
            (a, b) => panic!(
                "heatmap presence diverged: serial={} sharded={}",
                a.is_some(),
                b.is_some()
            ),
        }
    }
}

/// With the `audit` feature on, the conservation auditor rides inside every
/// run; driving the sharded windows under it proves the outbox re-anchoring
/// never violates event-time monotonicity or queue conservation.
#[cfg(feature = "audit")]
#[test]
fn sharded_runs_satisfy_the_conservation_auditor() {
    for (bench, seed) in [(BenchmarkId::Spmv, 7), (BenchmarkId::Km, 42)] {
        let cfg = RunConfig::new(bench, Scale::Unit, PolicyKind::hdpat()).with_seed(seed);
        let serial = run(&cfg).to_deterministic_string();
        assert_eq!(serial, run_with_shards(&cfg, 4).to_deterministic_string());
    }
}
