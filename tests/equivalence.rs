//! The sharded-execution contract (DESIGN.md §15): `--shards N` is purely an
//! *execution* parameter. For every benchmark, policy, seed and shard count,
//! [`run_with_shards`] must produce metrics byte-identical to the serial
//! [`run`] — and with an observability sink attached, the sink's artifacts
//! must be byte-identical too. The property-based test sweeps random points;
//! the feature-gated tests pin each sink (the `audit` build exercises the
//! conservation auditor's invariants *during* the sharded drive simply by
//! being compiled in).

use hdpat_wafer::prelude::*;
use proptest::prelude::*;

const BENCHES: [BenchmarkId; 5] = [
    BenchmarkId::Spmv,
    BenchmarkId::Km,
    BenchmarkId::Relu,
    BenchmarkId::Aes,
    BenchmarkId::Pr,
];

fn policies() -> [PolicyKind; 4] {
    [
        PolicyKind::Naive,
        PolicyKind::Distributed,
        PolicyKind::RouteCache { caching_layers: 2 },
        PolicyKind::hdpat(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random `(benchmark, policy, seed, shards)` points: the sharded drive
    /// serializes byte-for-byte like the serial one.
    #[test]
    fn sharded_runs_match_serial_byte_for_byte(
        bench_sel in 0usize..BENCHES.len(),
        policy_sel in 0usize..4,
        seed in 0u64..1_000,
        shards_sel in 0usize..2,
    ) {
        let shards = [2, 4][shards_sel];
        let cfg = RunConfig::new(BENCHES[bench_sel], Scale::Unit, policies()[policy_sel])
            .with_seed(seed);
        let serial = run(&cfg).to_deterministic_string();
        let sharded = run_with_shards(&cfg, shards).to_deterministic_string();
        prop_assert_eq!(serial, sharded, "shards={} diverged from serial", shards);
    }
}

#[test]
fn shard_counts_beyond_the_tile_count_are_clamped_not_broken() {
    // 7×7 paper wafer = 49 tiles; 64 shards clamp to 49, and 1 is the
    // serial path by definition.
    let cfg = RunConfig::new(BenchmarkId::Km, Scale::Unit, PolicyKind::hdpat()).with_seed(7);
    let serial = run(&cfg).to_deterministic_string();
    for shards in [1, 49, 64, 1000] {
        assert_eq!(
            serial,
            run_with_shards(&cfg, shards).to_deterministic_string(),
            "shards={shards} diverged from serial"
        );
    }
}

/// Serial and sharded runs of one config, each with a trace sink attached.
#[cfg(feature = "trace")]
fn traced_pair(
    cfg: &RunConfig,
    shards: usize,
) -> [(Metrics, hdpat_wafer::sim::trace::TraceSink); 2] {
    [false, true].map(|sharded| {
        let mut sim = Simulation::new(
            cfg.system.clone(),
            cfg.policy,
            cfg.benchmark,
            cfg.scale,
            cfg.seed,
        );
        let sink = hdpat_wafer::sim::trace::TraceSink::shared();
        sim.set_tracer(&sink);
        let metrics = if sharded {
            sim.run_with_shards(shards)
        } else {
            sim.run()
        };
        let sink = std::rc::Rc::try_unwrap(sink)
            .map(|cell| cell.into_inner())
            .unwrap_or_else(|rc| rc.borrow().clone());
        (metrics, sink)
    })
}

#[cfg(feature = "trace")]
#[test]
fn sharded_traces_are_byte_identical_to_serial() {
    for shards in [2, 4] {
        let cfg = RunConfig::new(BenchmarkId::Spmv, Scale::Unit, PolicyKind::hdpat()).with_seed(11);
        let [(sm, ss), (pm, ps)] = traced_pair(&cfg, shards);
        assert!(!ss.is_empty(), "traced run recorded no events");
        assert_eq!(sm.to_deterministic_string(), pm.to_deterministic_string());
        assert_eq!(
            ss.to_chrome_json(),
            ps.to_chrome_json(),
            "shards={shards}: trace JSON diverged"
        );
        assert_eq!(ss.stage_csv(), ps.stage_csv());
    }
}

/// Serial and sharded runs of one config, each with telemetry attached.
#[cfg(feature = "telemetry")]
fn telemetry_pair(
    cfg: &RunConfig,
    shards: usize,
) -> [(Metrics, hdpat_wafer::sim::telemetry::TelemetrySink); 2] {
    [false, true].map(|sharded| {
        let mut sim = Simulation::new(
            cfg.system.clone(),
            cfg.policy,
            cfg.benchmark,
            cfg.scale,
            cfg.seed,
        );
        let sink = hdpat_wafer::sim::telemetry::TelemetrySink::shared(2_000);
        sim.set_telemetry(&sink);
        let metrics = if sharded {
            sim.run_with_shards(shards)
        } else {
            sim.run()
        };
        let sink = std::rc::Rc::try_unwrap(sink)
            .map(|cell| cell.into_inner())
            .unwrap_or_else(|rc| rc.borrow().clone());
        (metrics, sink)
    })
}

#[cfg(feature = "telemetry")]
#[test]
fn sharded_telemetry_artifacts_are_byte_identical_to_serial() {
    for shards in [2, 4] {
        let cfg = RunConfig::new(BenchmarkId::Km, Scale::Unit, PolicyKind::hdpat()).with_seed(7);
        let [(sm, ss), (pm, ps)] = telemetry_pair(&cfg, shards);
        assert!(!ss.is_empty(), "recorded run registered no counters");
        assert_eq!(sm.to_deterministic_string(), pm.to_deterministic_string());
        assert_eq!(
            ss.to_csv(),
            ps.to_csv(),
            "shards={shards}: timeline diverged"
        );
        assert_eq!(ss.to_json(), ps.to_json());
        assert_eq!(ss.to_perfetto_json(), ps.to_perfetto_json());
        match (ss.heatmap(), ps.heatmap()) {
            (Some(a), Some(b)) => assert_eq!(a.to_csv(), b.to_csv()),
            (a, b) => panic!(
                "heatmap presence diverged: serial={} sharded={}",
                a.is_some(),
                b.is_some()
            ),
        }
    }
}

/// With the `audit` feature on, the conservation auditor rides inside every
/// run; driving the sharded windows under it proves the outbox re-anchoring
/// never violates event-time monotonicity or queue conservation.
#[cfg(feature = "audit")]
#[test]
fn sharded_runs_satisfy_the_conservation_auditor() {
    for (bench, seed) in [(BenchmarkId::Spmv, 7), (BenchmarkId::Km, 42)] {
        let cfg = RunConfig::new(bench, Scale::Unit, PolicyKind::hdpat()).with_seed(seed);
        let serial = run(&cfg).to_deterministic_string();
        assert_eq!(serial, run_with_shards(&cfg, 4).to_deterministic_string());
    }
}

// ---------------------------------------------------------------------------
// SoA hot-state models (DESIGN.md §16). The PR-9 struct-of-arrays rework of
// the Tlb / Mshr / walker-pool hot paths must be *behaviorally invisible*:
// each proptest below drives the production structure and a deliberately
// naive array-of-structs model through the same random op sequence and
// demands identical observable results (return values, counters, occupancy)
// at every step. The models encode the documented contracts — way-order
// first-match scans, first-minimal LRU victims, speculative LRU-position
// stamps, FIFO PW-queues — not the SoA layout.
// ---------------------------------------------------------------------------

use hdpat_wafer::mem::{Mshr, MshrOutcome};
use hdpat_wafer::sim::{Cycle, EventQueue, ShardSet};
use hdpat_wafer::xlat::{Pfn, SubmitResult, Tlb, TlbConfig, Vpn, WalkerPool};

/// Array-of-structs reference TLB: one `Option<entry>` per way, semantics
/// copied from the documented contract of [`Tlb`].
struct AosTlb {
    sets: usize,
    ways: usize,
    entries: Vec<Option<(Vpn, Pfn, u64, bool)>>,
    tick: u64,
    hits: u64,
    misses: u64,
    prefetched_hits: u64,
}

impl AosTlb {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            sets,
            ways,
            entries: vec![None; sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
            prefetched_hits: 0,
        }
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        (vpn.0 as usize) & (self.sets - 1)
    }

    fn find_way(&self, set: usize, vpn: Vpn) -> Option<usize> {
        (0..self.ways)
            .find(|&w| matches!(self.entries[set * self.ways + w], Some((v, ..)) if v == vpn))
    }

    fn lookup_meta(&mut self, vpn: Vpn) -> Option<(Pfn, bool)> {
        self.tick += 1;
        let set = self.set_of(vpn);
        match self.find_way(set, vpn) {
            Some(way) => {
                let e = self.entries[set * self.ways + way].as_mut().expect("found");
                e.2 = self.tick;
                let was_pf = e.3;
                e.3 = false;
                self.hits += 1;
                if was_pf {
                    self.prefetched_hits += 1;
                }
                Some((e.1, was_pf))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn fill_at(&mut self, vpn: Vpn, pfn: Pfn, pf: bool, lru_insert: bool) -> Option<(Vpn, Pfn)> {
        self.tick += 1;
        let stamp = if lru_insert { 0 } else { self.tick };
        let set = self.set_of(vpn);
        if let Some(way) = self.find_way(set, vpn) {
            let e = self.entries[set * self.ways + way].as_mut().expect("found");
            e.1 = pfn;
            if !lru_insert {
                e.2 = stamp;
            }
            e.3 = pf;
            return None;
        }
        let base = set * self.ways;
        if let Some(way) = (0..self.ways).find(|&w| self.entries[base + w].is_none()) {
            self.entries[base + way] = Some((vpn, pfn, stamp, pf));
            return None;
        }
        let victim = (0..self.ways)
            .min_by_key(|&w| {
                self.entries[base + w]
                    .map(|(_, _, s, _)| s)
                    .expect("full set")
            })
            .expect("ways > 0");
        let (ev, ep, ..) = self.entries[base + victim].expect("full set");
        self.entries[base + victim] = Some((vpn, pfn, stamp, pf));
        Some((ev, ep))
    }

    fn invalidate(&mut self, vpn: Vpn) -> bool {
        let set = self.set_of(vpn);
        match self.find_way(set, vpn) {
            Some(way) => {
                self.entries[set * self.ways + way] = None;
                true
            }
            None => false,
        }
    }

    fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

/// One random TLB op: the discriminant picks the call, `vpn`/`pfn` its
/// arguments.
#[derive(Debug, Clone, Copy)]
struct TlbOp {
    kind: u8,
    vpn: u64,
    pfn: u64,
}

fn tlb_ops() -> impl Strategy<Value = Vec<TlbOp>> {
    proptest::collection::vec(
        (0u8..5, 0u64..48, 0u64..1_000).prop_map(|(kind, vpn, pfn)| TlbOp { kind, vpn, pfn }),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SoA [`Tlb`] and the AoS model agree on every lookup result,
    /// eviction, invalidation and counter under random op sequences.
    #[test]
    fn soa_tlb_matches_the_aos_model(
        sets_log2 in 0u32..3,
        ways in 1usize..5,
        ops in tlb_ops(),
    ) {
        let sets = 1usize << sets_log2;
        let mut soa = Tlb::new(TlbConfig { sets, ways, latency: 1, mshrs: 4 });
        let mut aos = AosTlb::new(sets, ways);
        for op in ops {
            let (vpn, pfn) = (Vpn(op.vpn), Pfn(op.pfn));
            match op.kind {
                0 => prop_assert_eq!(soa.lookup_meta(vpn), aos.lookup_meta(vpn)),
                1 => prop_assert_eq!(soa.fill(vpn, pfn, false), aos.fill_at(vpn, pfn, false, false)),
                2 => prop_assert_eq!(soa.fill(vpn, pfn, true), aos.fill_at(vpn, pfn, true, false)),
                3 => prop_assert_eq!(soa.fill_speculative(vpn, pfn), aos.fill_at(vpn, pfn, true, true)),
                _ => prop_assert_eq!(soa.invalidate(vpn), aos.invalidate(vpn)),
            }
            prop_assert_eq!(soa.occupancy(), aos.occupancy());
        }
        prop_assert_eq!(soa.hits(), aos.hits);
        prop_assert_eq!(soa.misses(), aos.misses);
        prop_assert_eq!(soa.prefetched_hits(), aos.prefetched_hits);
    }
}

/// Array-of-structs reference MSHR file: a plain list of
/// `(block, waiters)` entries. Slot placement is invisible to callers, so
/// the model only pins membership, waiter order and capacity behavior.
struct AosMshr {
    capacity: usize,
    targets_per_entry: usize,
    entries: Vec<(u64, Vec<u32>)>,
    stalls: u64,
    merges: u64,
}

impl AosMshr {
    fn register(&mut self, block: u64, waiter: u32) -> MshrOutcome {
        if let Some((_, ws)) = self.entries.iter_mut().find(|(b, _)| *b == block) {
            if ws.len() >= self.targets_per_entry {
                self.stalls += 1;
                return MshrOutcome::Full;
            }
            ws.push(waiter);
            self.merges += 1;
            return MshrOutcome::Secondary;
        }
        if self.entries.len() >= self.capacity {
            self.stalls += 1;
            return MshrOutcome::Full;
        }
        self.entries.push((block, vec![waiter]));
        MshrOutcome::Primary
    }

    fn complete(&mut self, block: u64) -> Vec<u32> {
        match self.entries.iter().position(|(b, _)| *b == block) {
            Some(i) => self.entries.remove(i).1,
            None => Vec::new(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SoA [`Mshr`] and the AoS model agree on registration outcomes,
    /// waiter wake order and counters under random register/complete mixes.
    #[test]
    fn soa_mshr_matches_the_aos_model(
        capacity in 1usize..6,
        targets in 1usize..4,
        ops in proptest::collection::vec((0u8..4, 0u64..8, 0u32..100), 1..200),
    ) {
        let mut soa: Mshr<u32> = Mshr::with_targets(capacity, targets);
        let mut aos = AosMshr {
            capacity,
            targets_per_entry: targets,
            entries: Vec::new(),
            stalls: 0,
            merges: 0,
        };
        for (kind, block, waiter) in ops {
            if kind == 0 {
                prop_assert_eq!(soa.complete(block), aos.complete(block));
            } else {
                prop_assert_eq!(soa.register(block, waiter), aos.register(block, waiter));
            }
            prop_assert_eq!(soa.contains(block), aos.entries.iter().any(|(b, _)| *b == block));
            prop_assert_eq!(soa.occupancy(), aos.entries.len());
        }
        prop_assert_eq!(soa.stalls(), aos.stalls);
        prop_assert_eq!(soa.merges(), aos.merges);
    }
}

/// FIFO reference model of the walker pool's PW-queue and walker slots.
struct AosPool {
    walkers: usize,
    capacity: usize,
    busy: usize,
    queue: Vec<u32>,
}

impl AosPool {
    fn submit(&mut self, token: u32) -> SubmitResult {
        if self.busy < self.walkers {
            self.busy += 1;
            SubmitResult::Started
        } else if self.queue.len() < self.capacity {
            self.queue.push(token);
            SubmitResult::Queued
        } else {
            SubmitResult::Rejected
        }
    }

    fn finish(&mut self) -> Option<u32> {
        if self.queue.is_empty() {
            self.busy -= 1;
            None
        } else {
            Some(self.queue.remove(0))
        }
    }

    fn drain_matching(&mut self, rem: u32) -> Vec<u32> {
        let (drained, kept) = self.queue.iter().partition(|&&t| t % 4 == rem);
        self.queue = kept;
        drained
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pre-sized [`WalkerPool`] (reusable `kept` scratch, batch drains)
    /// and the naive FIFO model agree on submit outcomes, promotion order
    /// and revisit drains under random op sequences.
    #[test]
    fn walker_pool_matches_the_fifo_model(
        walkers in 1usize..4,
        capacity in 1usize..8,
        ops in proptest::collection::vec((0u8..4, 0u32..64), 1..200),
    ) {
        let mut pool: WalkerPool<u32> = WalkerPool::new(walkers, capacity);
        let mut model = AosPool { walkers, capacity, busy: 0, queue: Vec::new() };
        let mut scratch = Vec::new();
        for (kind, arg) in ops {
            match kind {
                0 | 1 => prop_assert_eq!(pool.submit(arg), model.submit(arg)),
                2 => {
                    if model.busy > 0 {
                        prop_assert_eq!(pool.finish(), model.finish());
                    }
                }
                _ => {
                    let rem = arg % 4;
                    scratch.clear();
                    let n = pool.drain_matching_into(|&t| t % 4 == rem, &mut scratch);
                    let expect = model.drain_matching(rem);
                    prop_assert_eq!(n, expect.len());
                    prop_assert_eq!(&scratch, &expect);
                }
            }
            prop_assert_eq!(pool.busy(), model.busy);
            prop_assert_eq!(pool.queue_len(), model.queue.len());
        }
    }
}

// ---------------------------------------------------------------------------
// Batched delivery equivalence (DESIGN.md §16): a drain-based consumer of
// either queue must observe exactly the per-pop event stream, for arbitrary
// push/pop interleavings — the contract the batched engine dispatch loop
// rests on.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// [`EventQueue::drain_bucket`] delivers the same `(time, payload)`
    /// stream as repeated [`EventQueue::pop`], including pushes interleaved
    /// between batches (same-time re-pushes land in the *next* batch, where
    /// their sequence numbers place them).
    #[test]
    fn event_queue_batch_drain_matches_per_pop(
        ops in proptest::collection::vec((0u8..3, 0u64..6_000), 1..200),
    ) {
        let mut batched: EventQueue<u64> = EventQueue::new();
        let mut per_pop: EventQueue<u64> = EventQueue::new();
        let mut payload = 0u64;
        let mut bucket = Vec::new();
        for (kind, dt) in ops {
            if kind < 2 {
                // Push strictly in the future of the batched queue's clock;
                // both queues share it (asserted below), so the push is
                // legal on both sides.
                let t = batched.now() + dt;
                batched.push(t, payload);
                per_pop.push(t, payload);
                payload += 1;
            } else {
                bucket.clear();
                let n = batched.drain_bucket(&mut bucket);
                for expected in bucket.iter().take(n) {
                    let (t, got) = per_pop.pop().expect("pop stream ended early");
                    prop_assert_eq!(t, batched.now());
                    prop_assert_eq!(&got, expected);
                }
                prop_assert_eq!(per_pop.peek_time() != Some(batched.now()), true,
                    "drain_bucket left same-time events behind");
            }
            prop_assert_eq!(batched.now(), per_pop.now());
            prop_assert_eq!(batched.len(), per_pop.len());
        }
        // Drain the remainder: the tails agree too.
        loop {
            bucket.clear();
            let n = batched.drain_bucket(&mut bucket);
            if n == 0 {
                prop_assert_eq!(per_pop.pop(), None);
                break;
            }
            for expected in bucket.iter().take(n) {
                let (t, got) = per_pop.pop().expect("pop stream ended early");
                prop_assert_eq!(t, batched.now());
                prop_assert_eq!(&got, expected);
            }
        }
    }

    /// [`ShardSet::next_batch`] delivers the same `(time, shard, payload)`
    /// stream as repeated [`ShardSet::next_event`] under random seeds and
    /// random mid-delivery follow-up routing (both drives make identical,
    /// payload-keyed routing decisions).
    #[test]
    fn shard_set_batch_drain_matches_per_event(
        shards in 2usize..5,
        lookahead in 1u64..8,
        seeds in proptest::collection::vec((0usize..8, 0u64..64), 1..60),
    ) {
        let mut by_event: ShardSet<u64> = ShardSet::new_direct(shards, lookahead);
        let mut by_batch: ShardSet<u64> = ShardSet::new_direct(shards, lookahead);
        for (payload, &(dest, t)) in seeds.iter().enumerate() {
            by_event.route(dest % shards, t, payload as u64);
            by_batch.route(dest % shards, t, payload as u64);
        }
        // Deterministic, payload-keyed follow-up: both drives spawn the same
        // children from the same deliveries, capped so the run terminates.
        let spawn = |set: &mut ShardSet<u64>, shard: usize, t: Cycle, p: u64| {
            if p < 200 && p.is_multiple_of(3) {
                set.set_current(shard);
                set.route((p as usize) % shards, t + lookahead + (p % 5), 1_000 + p)
            }
        };
        let mut stream_a = Vec::new();
        while let Some((t, p, shard)) = by_event.next_event() {
            spawn(&mut by_event, shard, t, p);
            stream_a.push((t, shard, p));
        }
        let mut stream_b = Vec::new();
        let mut batch = Vec::new();
        while let Some(t) = by_batch.next_batch(&mut batch) {
            for (shard, p) in batch.drain(..) {
                spawn(&mut by_batch, shard as usize, t, p);
                stream_b.push((t, shard as usize, p));
            }
        }
        prop_assert_eq!(&stream_a, &stream_b);
        let (mut sa, sb) = (by_event.stats(), by_batch.stats());
        prop_assert!(sb.batches <= sb.delivered);
        sa.batches = sb.batches;
        prop_assert_eq!(sa, sb);
    }
}
