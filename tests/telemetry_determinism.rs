//! The telemetry contract (DESIGN.md §12): the flight recorder is purely
//! observational. Attaching one must not perturb a single metric, and every
//! export — timeline CSV, JSON, Perfetto counters, heatmap — must be as
//! deterministic as the run it observed: two recorded runs of the same
//! `(benchmark, seed)` serialize byte-identically.

#![cfg(feature = "telemetry")]

use hdpat_wafer::prelude::*;

/// Sampling interval for the unit-scale points below; small enough that
/// every benchmark spans several epochs.
const INTERVAL: u64 = 2_000;

fn point(bench: BenchmarkId, seed: u64) -> RunConfig {
    RunConfig::new(bench, Scale::Unit, PolicyKind::hdpat()).with_seed(seed)
}

#[test]
fn telemetry_does_not_change_metrics() {
    let cfg = point(BenchmarkId::Km, 7);
    let plain = run(&cfg).to_deterministic_string();
    let (recorded, sink) = run_telemetry(&cfg, INTERVAL);
    assert!(!sink.is_empty(), "recorded run registered no counters");
    assert_eq!(
        plain,
        recorded.to_deterministic_string(),
        "attaching a telemetry sink changed the deterministic metrics"
    );
}

#[test]
fn recorded_runs_export_byte_identical_artifacts() {
    let cfg = point(BenchmarkId::Spmv, 11);
    let (_, a) = run_telemetry(&cfg, INTERVAL);
    let (_, b) = run_telemetry(&cfg, INTERVAL);
    assert!(a.to_csv().lines().count() > 1, "timeline CSV is empty");
    assert_eq!(a.to_csv(), b.to_csv(), "same-seed timelines differ");
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_perfetto_json(), b.to_perfetto_json());
    let (ha, hb) = (a.heatmap(), b.heatmap());
    let ha = ha.expect("mesh registered no spatial grid");
    assert_eq!(ha.to_csv(), hb.expect("second run lost the grid").to_csv());
    assert!(ha.to_csv().lines().count() > 1, "heatmap CSV is empty");
}

#[test]
fn timelines_cover_each_benchmark_policy_pair() {
    // The acceptance matrix: several benchmarks × policies all produce
    // non-empty, self-consistent timeline and heatmap artifacts.
    for bench in [BenchmarkId::Spmv, BenchmarkId::Km, BenchmarkId::Relu] {
        for policy in [PolicyKind::Naive, PolicyKind::hdpat()] {
            let cfg = RunConfig::new(bench, Scale::Unit, policy).with_seed(42);
            let (m, sink) = run_telemetry(&cfg, INTERVAL);
            assert!(m.total_cycles > 0);
            let csv = sink.to_csv();
            assert!(
                csv.lines().count() > sink.len(),
                "{bench} under {policy}: timeline has fewer rows than counters"
            );
            // Counter activity must reconcile with the run: the engine's
            // completed-ops track sums to the metric itself.
            let ops: u64 = csv
                .lines()
                .filter(|l| l.starts_with("engine.ops_completed,"))
                .map(|l| l.rsplit(',').next().unwrap().parse::<u64>().unwrap())
                .sum();
            assert_eq!(
                ops, m.ops_completed,
                "{bench} under {policy}: timeline ops disagree with metrics"
            );
            let hm = sink.heatmap().expect("no spatial grid");
            assert!(hm.width > 0 && hm.height > 0);
        }
    }
}

#[test]
fn sample_interval_changes_resolution_not_totals() {
    let cfg = point(BenchmarkId::Km, 7);
    let (_, fine) = run_telemetry(&cfg, 500);
    let (_, coarse) = run_telemetry(&cfg, 50_000);
    // Same counters registered, same whole-run totals, different epochs.
    assert_eq!(fine.len(), coarse.len());
    let total = |s: &hdpat_wafer::sim::telemetry::TelemetrySink, name: &str| -> u64 {
        s.to_csv()
            .lines()
            .filter(|l| l.starts_with(name))
            .map(|l| l.rsplit(',').next().unwrap().parse::<u64>().unwrap())
            .sum()
    };
    for name in ["engine.ops_completed,", "hbm.accesses,", "mesh.link_bytes,"] {
        assert_eq!(total(&fine, name), total(&coarse, name), "{name} diverged");
    }
}

#[test]
fn sweep_results_unchanged_with_telemetry_compiled_in() {
    // The sweep runner never attaches a recorder; merely compiling the
    // feature in must not reach its fingerprints or results.
    let cfg = point(BenchmarkId::Km, 7);
    let swept = SweepCtx::serial().run(&cfg);
    assert_eq!(
        swept.to_deterministic_string(),
        run(&cfg).to_deterministic_string()
    );
}
