//! End-to-end integration tests spanning all crates: every policy completes
//! every benchmark, conservation laws hold, and the headline result shapes
//! of the paper are reproduced at test scale.

use hdpat_wafer::prelude::*;
use hdpat_wafer::sim::stats::geo_mean;

fn cfg(b: BenchmarkId, p: PolicyKind) -> RunConfig {
    RunConfig::new(b, Scale::Unit, p)
}

#[test]
fn every_policy_completes_spmv() {
    let policies = [
        PolicyKind::Naive,
        PolicyKind::RouteCache { caching_layers: 2 },
        PolicyKind::Concentric { caching_layers: 2 },
        PolicyKind::Distributed,
        PolicyKind::TransFw,
        PolicyKind::Valkyrie,
        PolicyKind::Barre,
        PolicyKind::hdpat(),
        PolicyKind::Hdpat(HdpatConfig::peer_caching_only()),
        PolicyKind::Hdpat(HdpatConfig::with_redirection_only()),
        PolicyKind::Hdpat(HdpatConfig::with_prefetch_only()),
        PolicyKind::Hdpat(HdpatConfig::with_iommu_tlb()),
    ];
    let mut ops = None;
    for p in policies {
        let m = run(&cfg(BenchmarkId::Spmv, p));
        assert!(m.total_cycles > 0, "{p} did not run");
        // Every policy executes the same workload: op counts must agree.
        match ops {
            None => ops = Some(m.ops_completed),
            Some(o) => assert_eq!(m.ops_completed, o, "{p} lost or duplicated ops"),
        }
    }
}

#[test]
fn every_benchmark_completes_under_hdpat() {
    for b in BenchmarkId::all() {
        let m = run(&cfg(b, PolicyKind::hdpat()));
        assert!(m.ops_completed > 0, "{b} executed no ops");
        assert!(m.total_cycles > 0);
    }
}

#[test]
fn hdpat_beats_baseline_on_geomean() {
    let mut speedups = Vec::new();
    for b in BenchmarkId::all() {
        let base = run(&cfg(b, PolicyKind::Naive));
        let hd = run(&cfg(b, PolicyKind::hdpat()));
        speedups.push(hd.speedup_vs(&base));
    }
    let gm = geo_mean(&speedups).unwrap();
    assert!(gm > 1.1, "HDPAT geomean speedup too small: {gm:.2}");
}

#[test]
fn hdpat_beats_sota_baselines_on_geomean() {
    let sota = [PolicyKind::TransFw, PolicyKind::Valkyrie, PolicyKind::Barre];
    let mut hd_speed = Vec::new();
    let mut sota_best: Vec<f64> = Vec::new();
    for b in BenchmarkId::all() {
        let base = run(&cfg(b, PolicyKind::Naive));
        hd_speed.push(run(&cfg(b, PolicyKind::hdpat())).speedup_vs(&base));
        for (i, p) in sota.iter().enumerate() {
            let s = run(&cfg(b, *p)).speedup_vs(&base);
            if sota_best.len() <= i {
                sota_best.push(0.0);
            }
            sota_best[i] += s.ln();
        }
    }
    let hd = geo_mean(&hd_speed).unwrap();
    for (i, p) in sota.iter().enumerate() {
        let gm = (sota_best[i] / BenchmarkId::all().len() as f64).exp();
        assert!(
            hd > gm,
            "HDPAT ({hd:.2}) must beat {p} ({gm:.2}) on geomean"
        );
    }
}

#[test]
fn ideal_iommu_headroom_exceeds_hdpat() {
    // Fig 2's framing: the idealized IOMMU bounds what any translation
    // optimization can achieve; HDPAT recovers part of it.
    use hdpat_wafer::gpu::IommuConfig;
    let b = BenchmarkId::Spmv;
    let base = run(&cfg(b, PolicyKind::Naive));
    let ideal_sys = SystemConfig {
        iommu: IommuConfig::ideal_latency(),
        ..SystemConfig::paper_baseline()
    };
    let ideal = run(&cfg(b, PolicyKind::Naive).with_system(ideal_sys)).speedup_vs(&base);
    let hd = run(&cfg(b, PolicyKind::hdpat())).speedup_vs(&base);
    assert!(ideal > hd, "ideal ({ideal:.2}) must bound HDPAT ({hd:.2})");
    assert!(ideal > 1.5, "IOMMU must be a real bottleneck: {ideal:.2}");
}

#[test]
fn hdpat_offloads_and_reduces_walks() {
    for b in [BenchmarkId::Spmv, BenchmarkId::Pr, BenchmarkId::Fws] {
        let base = run(&cfg(b, PolicyKind::Naive));
        let hd = run(&cfg(b, PolicyKind::hdpat()));
        assert!(
            hd.iommu_walks < base.iommu_walks,
            "{b}: walks {} !< {}",
            hd.iommu_walks,
            base.iommu_walks
        );
        assert!(
            hd.offload_fraction() > 0.1,
            "{b}: offload {:.2}",
            hd.offload_fraction()
        );
    }
}

#[test]
fn baseline_uses_only_the_iommu() {
    let m = run(&cfg(BenchmarkId::Pr, PolicyKind::Naive));
    assert_eq!(m.resolution.share("iommu"), 1.0);
    assert_eq!(m.ptes_pushed, 0);
    assert_eq!(m.prefetches_issued, 0);
}

#[test]
fn translation_conservation() {
    // Every remote primary resolves exactly once.
    for p in [PolicyKind::Naive, PolicyKind::hdpat(), PolicyKind::Barre] {
        let m = run(&cfg(BenchmarkId::Spmv, p));
        assert_eq!(
            m.resolution.total(),
            m.remote_requests,
            "{p}: resolutions != primaries"
        );
    }
}

#[test]
fn redirection_table_beats_equal_area_tlb() {
    // Fig 19's headline: the redirection table outperforms a same-area TLB.
    let mut rt = Vec::new();
    let mut tlb = Vec::new();
    for b in [
        BenchmarkId::Spmv,
        BenchmarkId::Pr,
        BenchmarkId::Mm,
        BenchmarkId::Fws,
    ] {
        let base = run(&cfg(b, PolicyKind::Naive));
        rt.push(run(&cfg(b, PolicyKind::hdpat())).speedup_vs(&base));
        tlb.push(run(&cfg(b, PolicyKind::Hdpat(HdpatConfig::with_iommu_tlb()))).speedup_vs(&base));
    }
    let (rt_gm, tlb_gm) = (geo_mean(&rt).unwrap(), geo_mean(&tlb).unwrap());
    assert!(
        rt_gm > tlb_gm,
        "redirection ({rt_gm:.2}) must beat the same-area TLB ({tlb_gm:.2})"
    );
}

#[test]
fn bigger_wafer_still_benefits() {
    // Fig 22: the 7x12 wafer keeps HDPAT's advantage.
    let sys = SystemConfig {
        layout: WaferLayout::paper_7x12(),
        ..SystemConfig::paper_baseline()
    };
    let b = BenchmarkId::Spmv;
    let base = run(&cfg(b, PolicyKind::Naive).with_system(sys.clone()));
    let hd = run(&cfg(b, PolicyKind::hdpat()).with_system(sys));
    assert!(
        hd.speedup_vs(&base) > 1.05,
        "7x12 speedup {:.2}",
        hd.speedup_vs(&base)
    );
}

#[test]
fn page_size_reduces_baseline_pressure() {
    // Fig 20's premise: larger pages mean fewer translations.
    let b = BenchmarkId::Relu;
    let small = run(&cfg(b, PolicyKind::Naive));
    let sys = SystemConfig {
        page_size: PageSize::Size64K,
        ..SystemConfig::paper_baseline()
    };
    let large = run(&cfg(b, PolicyKind::Naive).with_system(sys));
    assert!(
        large.iommu_walks < small.iommu_walks,
        "64K walks {} !< 4K walks {}",
        large.iommu_walks,
        small.iommu_walks
    );
}

#[test]
fn gpu_presets_all_run() {
    for preset in GpuPreset::all() {
        let sys = SystemConfig::with_preset(preset);
        let m = run(&cfg(BenchmarkId::Km, PolicyKind::hdpat()).with_system(sys));
        assert!(m.ops_completed > 0, "{} produced no ops", preset.name());
    }
}

#[test]
fn noc_traffic_overhead_is_modest() {
    // §V-D: HDPAT adds little NoC traffic (0.82% in the paper).
    let base = run(&cfg(BenchmarkId::Spmv, PolicyKind::Naive));
    let hd = run(&cfg(BenchmarkId::Spmv, PolicyKind::hdpat()));
    let extra = hd.noc_bytes as f64 / base.noc_bytes as f64 - 1.0;
    assert!(
        extra < 0.25,
        "extra traffic too high: {:.1}%",
        extra * 100.0
    );
}

#[test]
fn position_imbalance_exists_in_baseline() {
    // Observation O2: peripheral GPMs finish later than central ones.
    let layout = WaferLayout::paper_7x7();
    let m = run(&cfg(BenchmarkId::Spmv, PolicyKind::Naive));
    let mean_finish = |ring: u32| -> f64 {
        let ids = layout.ring_gpms(ring);
        ids.iter().map(|&id| m.gpm_finish[id as usize]).sum::<u64>() as f64 / ids.len() as f64
    };
    let inner = mean_finish(1);
    let outer = mean_finish(3);
    assert!(
        outer > inner * 0.95,
        "outer ring ({outer:.0}) should not finish much earlier than inner ({inner:.0})"
    );
}
