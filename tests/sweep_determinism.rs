//! Jobs-invariance of the sweep runner: the same figure regenerated with one
//! worker, four workers, and with the run cache disabled must be
//! byte-identical in every rendering, and the underlying metrics must agree
//! down to the last byte of their deterministic serialization. This is the
//! contract that makes `--jobs` a pure wall-clock knob (DESIGN.md §9).

use hdpat::experiments::{RunConfig, SweepCtx};
use hdpat::policy::PolicyKind;
use wsg_bench::figures;
use wsg_workloads::{BenchmarkId, Scale};

/// The three configurations that must be indistinguishable from the output:
/// today's serial behavior, a parallel cached sweep, and a parallel sweep
/// with deduplication disabled.
fn contexts() -> [(&'static str, SweepCtx); 3] {
    [
        ("jobs=1 cached", SweepCtx::serial()),
        ("jobs=4 cached", SweepCtx::new(4)),
        ("jobs=4 uncached", SweepCtx::without_cache(4)),
    ]
}

#[test]
fn fig14_is_byte_identical_across_jobs_and_caching() {
    let tables: Vec<(&str, _)> = contexts()
        .into_iter()
        .map(|(name, ctx)| (name, figures::fig14_overall(&ctx, Scale::Unit)))
        .collect();
    let (ref_name, ref_table) = &tables[0];
    for (name, table) in &tables[1..] {
        assert_eq!(
            ref_table.to_text(),
            table.to_text(),
            "fig14 text differs: {ref_name} vs {name}"
        );
        assert_eq!(
            ref_table.to_csv(),
            table.to_csv(),
            "fig14 CSV differs: {ref_name} vs {name}"
        );
        assert_eq!(
            ref_table.to_markdown(),
            table.to_markdown(),
            "fig14 Markdown differs: {ref_name} vs {name}"
        );
    }
}

#[test]
fn sweep_metrics_are_byte_identical_across_jobs_and_caching() {
    // Duplicates included on purpose: the cached contexts dedup them, the
    // uncached one re-simulates, and none of that may show in the results.
    let points: Vec<RunConfig> = [
        BenchmarkId::Spmv,
        BenchmarkId::Fir,
        BenchmarkId::Spmv,
        BenchmarkId::Km,
    ]
    .into_iter()
    .flat_map(|b| {
        [
            RunConfig::new(b, Scale::Unit, PolicyKind::Naive),
            RunConfig::new(b, Scale::Unit, PolicyKind::hdpat()),
        ]
    })
    .collect();

    let renderings: Vec<(&str, Vec<String>)> = contexts()
        .into_iter()
        .map(|(name, ctx)| {
            let bytes = ctx
                .sweep(&points)
                .iter()
                .map(|m| m.to_deterministic_string())
                .collect();
            (name, bytes)
        })
        .collect();
    let (ref_name, ref_bytes) = &renderings[0];
    for (name, bytes) in &renderings[1..] {
        assert_eq!(
            ref_bytes, bytes,
            "sweep metrics differ: {ref_name} vs {name}"
        );
    }
}
