//! The tracing contract (DESIGN.md §10): a trace sink is purely
//! observational. Attaching one must not perturb a single metric, and the
//! trace itself must be as deterministic as the run it observed — two traced
//! runs of the same `(benchmark, seed)` serialize to byte-identical JSON.

#![cfg(feature = "trace")]

use hdpat_wafer::prelude::*;

fn point(bench: BenchmarkId, seed: u64) -> RunConfig {
    RunConfig::new(bench, Scale::Unit, PolicyKind::hdpat()).with_seed(seed)
}

#[test]
fn tracing_does_not_change_metrics() {
    let cfg = point(BenchmarkId::Km, 7);
    let plain = run(&cfg).to_deterministic_string();
    let (traced, sink) = run_traced(&cfg);
    assert!(!sink.is_empty(), "traced run recorded no events");
    assert_eq!(
        plain,
        traced.to_deterministic_string(),
        "attaching a trace sink changed the deterministic metrics"
    );
}

#[test]
fn traced_runs_serialize_byte_identical_json() {
    let cfg = point(BenchmarkId::Spmv, 11);
    let (_, a) = run_traced(&cfg);
    let (_, b) = run_traced(&cfg);
    assert!(!a.is_empty());
    assert_eq!(
        a.to_chrome_json(),
        b.to_chrome_json(),
        "same-seed traces differ"
    );
    assert_eq!(a.stage_csv(), b.stage_csv());
}

#[test]
fn remote_spans_reconcile_with_remote_rtt() {
    let cfg = point(BenchmarkId::Km, 7);
    let (metrics, sink) = run_traced(&cfg);
    let summary = sink.stage_summary();
    let remote = summary.get("remote").expect("remote spans recorded");
    // One "remote" span per recorded round trip, covering the same interval.
    assert_eq!(remote.count, metrics.remote_rtt.count());
    assert_eq!(remote.sum as f64, metrics.remote_rtt.sum());
}

#[test]
fn sweep_results_unchanged_with_trace_compiled_in() {
    // The sweep runner never attaches a tracer; merely compiling the feature
    // in must not reach its fingerprints or results (extends the
    // tests/sweep_determinism.rs contract to the trace build).
    let cfg = point(BenchmarkId::Km, 7);
    let swept = SweepCtx::serial().run(&cfg);
    assert_eq!(
        swept.to_deterministic_string(),
        run(&cfg).to_deterministic_string()
    );
}

#[test]
fn stage_latency_is_folded_into_metrics() {
    let cfg = point(BenchmarkId::Km, 7);
    let (metrics, sink) = run_traced(&cfg);
    assert!(!metrics.stage_latency.is_empty());
    // The fold is exactly the sink's summary, in stage-name order.
    let from_sink: Vec<String> = sink.stage_summary().keys().map(|k| k.to_string()).collect();
    let folded: Vec<String> = metrics
        .stage_latency
        .iter()
        .map(|(stage, _)| stage.clone())
        .collect();
    assert_eq!(folded, from_sink);
    // Every delivered translation closes an "xlat" span; the rendering
    // covers it (instants like "issue" are counted in the sink only).
    assert!(metrics.stage_latency_string().contains("xlat: count="));
    // Untraced runs leave the field empty, and the deterministic string
    // never mentions it (the determinism contract surface is unchanged).
    let plain = run(&cfg);
    assert!(plain.stage_latency.is_empty());
    assert!(!plain.to_deterministic_string().contains("stage"));
}
