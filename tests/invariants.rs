//! Property-based tests on cross-crate invariants: wafer geometry,
//! clustering maps, address placement, and simulator determinism.

use hdpat_wafer::prelude::*;
use hdpat_wafer::{gpu, noc, xlat};
use proptest::prelude::*;

use gpu::AddressSpace;
use hdpat::layers::ConcentricMap;
use noc::{xy_route, Coord};
use xlat::Vpn;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// XY routes are minimal and stay inside the bounding box.
    #[test]
    fn xy_routes_are_minimal(ax in 0u16..12, ay in 0u16..12, bx in 0u16..12, by in 0u16..12) {
        let a = Coord::new(ax, ay);
        let b = Coord::new(bx, by);
        let route = xy_route(a, b);
        prop_assert_eq!(route.len() as u32, a.manhattan(b) + 1);
        for c in &route {
            prop_assert!(c.x >= ax.min(bx) && c.x <= ax.max(bx));
            prop_assert!(c.y >= ay.min(by) && c.y <= ay.max(by));
        }
    }

    /// Every wafer layout gives each GPM a unique dense id.
    #[test]
    fn wafer_ids_are_dense(w in 2u16..10, h in 2u16..10, cx in 0u16..10, cy in 0u16..10) {
        let cpu = Coord::new(cx.min(w - 1), cy.min(h - 1));
        let layout = WaferLayout::new(w, h, cpu);
        let mut seen = vec![false; layout.gpm_count()];
        for (id, coord) in layout.iter() {
            prop_assert_eq!(layout.id_of(coord), Some(id));
            prop_assert!(!seen[id as usize], "duplicate id");
            seen[id as usize] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// The concentric map assigns every VPN exactly one holder per layer,
    /// and that holder is in the right ring.
    #[test]
    fn concentric_map_is_consistent(vpn in 0u64..1_000_000, rotation: bool) {
        let layout = WaferLayout::paper_7x7();
        let map = ConcentricMap::new(&layout, 2, rotation);
        for layer in 1..=2 {
            let a = map.aux_gpm(Vpn(vpn), layer);
            let b = map.aux_gpm(Vpn(vpn), layer);
            prop_assert_eq!(a, b, "assignment must be deterministic");
            prop_assert_eq!(layout.layer_of(a), layer);
        }
    }

    /// Block placement sends every page of a buffer to a valid GPM and is
    /// monotone: later pages never map to earlier GPMs.
    #[test]
    fn placement_is_monotone(pages in 1u64..2_000, gpms in 1u32..64) {
        let mut space = AddressSpace::new(PageSize::Size4K, gpms);
        let buf = space.alloc("b", pages);
        let mut last = 0u32;
        for i in 0..pages {
            let home = space.home_gpm(Vpn(buf.base_vpn.0 + i)).unwrap();
            prop_assert!(home < gpms);
            prop_assert!(home >= last, "placement must be monotone");
            last = home;
        }
    }

    /// Workload generation is a pure function of (benchmark, scale, seed).
    #[test]
    fn workload_generation_is_pure(seed in 0u64..1_000) {
        let b = BenchmarkId::Spmv;
        let mut s1 = AddressSpace::new(PageSize::Size4K, 48);
        let mut s2 = AddressSpace::new(PageSize::Size4K, 48);
        let a = hdpat_wafer::workloads::generate(b, Scale::Unit, &mut s1, seed);
        let c = hdpat_wafer::workloads::generate(b, Scale::Unit, &mut s2, seed);
        prop_assert_eq!(a, c);
    }
}

#[test]
fn simulation_is_deterministic_across_policies() {
    for p in [
        PolicyKind::Naive,
        PolicyKind::hdpat(),
        PolicyKind::Distributed,
    ] {
        let cfg = RunConfig::new(BenchmarkId::Km, Scale::Unit, p);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.total_cycles, b.total_cycles, "{p} not deterministic");
        assert_eq!(a.noc_bytes, b.noc_bytes);
        assert_eq!(a.iommu_walks, b.iommu_walks);
        assert_eq!(a.gpm_finish, b.gpm_finish);
    }
}

#[test]
fn different_seeds_change_irregular_workload_timing() {
    let a = run(&RunConfig::new(BenchmarkId::Spmv, Scale::Unit, PolicyKind::Naive).with_seed(1));
    let b = run(&RunConfig::new(BenchmarkId::Spmv, Scale::Unit, PolicyKind::Naive).with_seed(2));
    assert_ne!(a.total_cycles, b.total_cycles);
}

#[test]
fn rotation_improves_worst_case_probe_distance() {
    // §IV-E's claim: with rotation, every requester has a nearby caching GPM.
    let layout = WaferLayout::paper_7x7();
    let with = ConcentricMap::new(&layout, 2, true);
    let without = ConcentricMap::new(&layout, 2, false);
    let worst = |map: &ConcentricMap| -> u32 {
        let mut worst = 0;
        for (_, coord) in layout.iter() {
            for vpn in 0..64u64 {
                let best = map
                    .aux_gpms(Vpn(vpn))
                    .into_iter()
                    .map(|g| coord.manhattan(layout.coord_of(g)))
                    .min()
                    .unwrap();
                worst = worst.max(best);
            }
        }
        worst
    };
    assert!(
        worst(&with) <= worst(&without),
        "rotation must not worsen the worst-case distance"
    );
}
