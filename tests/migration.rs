//! Integration tests for the page-migration extension.

use hdpat::experiments::{run, RunConfig};
use hdpat::{MigrationConfig, Simulation};
use hdpat_wafer::prelude::*;

fn sim(b: BenchmarkId, p: PolicyKind) -> Simulation {
    let cfg = RunConfig::new(b, Scale::Unit, p);
    Simulation::new(cfg.system.clone(), p, b, Scale::Unit, cfg.seed)
}

#[test]
fn migration_completes_all_work() {
    let plain = run(&RunConfig::new(
        BenchmarkId::Relu,
        Scale::Unit,
        PolicyKind::Naive,
    ));
    let migrated = sim(BenchmarkId::Relu, PolicyKind::Naive)
        .with_migration(MigrationConfig::default_streak())
        .run();
    assert_eq!(
        migrated.ops_completed, plain.ops_completed,
        "migration must not lose or duplicate ops"
    );
    assert!(migrated.total_cycles > 0);
}

#[test]
fn migration_actually_migrates_on_sole_consumer_workloads() {
    // RELU: each page has exactly one (remote) consumer after round-robin
    // dispatch — the ideal migration target.
    let m = sim(BenchmarkId::Relu, PolicyKind::Naive)
        .with_migration(MigrationConfig {
            streak_threshold: 4,
            install_latency: 100,
        })
        .run();
    assert!(m.pages_migrated > 0, "no pages migrated");
}

#[test]
fn migration_is_off_by_default() {
    let m = run(&RunConfig::new(
        BenchmarkId::Relu,
        Scale::Unit,
        PolicyKind::Naive,
    ));
    assert_eq!(m.pages_migrated, 0);
}

#[test]
fn migration_composes_with_hdpat() {
    let m = sim(BenchmarkId::Spmv, PolicyKind::hdpat())
        .with_migration(MigrationConfig::default_streak())
        .run();
    assert!(m.ops_completed > 0);
    // HDPAT mechanisms still operate alongside migration.
    assert!(m.resolution.total() > 0);
}

#[test]
fn migration_is_deterministic() {
    let a = sim(BenchmarkId::Km, PolicyKind::hdpat())
        .with_migration(MigrationConfig::default_streak())
        .run();
    let b = sim(BenchmarkId::Km, PolicyKind::hdpat())
        .with_migration(MigrationConfig::default_streak())
        .run();
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.pages_migrated, b.pages_migrated);
}

#[test]
fn hot_shared_pages_do_not_migrate() {
    // PR's rank pages are shared by every GPM: streaks keep resetting, so
    // few (if any) of them should migrate relative to the page population.
    let m = sim(BenchmarkId::Pr, PolicyKind::Naive)
        .with_migration(MigrationConfig::default_streak())
        .run();
    let relu = sim(BenchmarkId::Relu, PolicyKind::Naive)
        .with_migration(MigrationConfig::default_streak())
        .run();
    assert!(
        relu.pages_migrated >= m.pages_migrated,
        "sole-consumer RELU ({}) should migrate at least as much as shared PR ({})",
        relu.pages_migrated,
        m.pages_migrated
    );
}
