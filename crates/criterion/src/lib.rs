//! A minimal, std-only benchmarking shim with the subset of the `criterion`
//! API this workspace uses.
//!
//! The build environment has no reachable crates registry, so the workspace
//! vendors this stand-in: same macros and method names, but measurement is a
//! simple calibrated timing loop with a plain-text report (no statistics
//! engine, plots, or baselines). Good enough to rank the simulator's own hot
//! paths; not a substitute for real criterion when precision matters.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group; member benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the payload.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `iters` calls of `payload`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(payload());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    // Calibrate: grow the iteration count until the measured batch takes
    // at least ~20ms, then report the per-iteration time.
    let mut iters = 16u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        if b.elapsed_ns >= 20_000_000 || iters >= 1 << 24 {
            let per_iter = b.elapsed_ns / u128::from(iters.max(1));
            println!("bench {name:<40} {per_iter:>10} ns/iter ({iters} iters)");
            return;
        }
        iters = iters.saturating_mul(4);
    }
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_payload_iters_times() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 100,
            elapsed_ns: 0,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 100);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        // Keep payloads trivial but non-optimizable-away.
        let mut g = c.benchmark_group("shim");
        g.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        g.finish();
        c.bench_function("noop_top", |b| b.iter(|| black_box(2u64 * 2)));
    }
}
