//! `xtask analyze` — the shard-safety report.
//!
//! ROADMAP item 1 (intra-run parallel sharding with byte-identical output)
//! and item 3 (removing `Rc<RefCell>` from the dispatch path) both reduce to
//! one question: which engine state is tile-local, which is GPM-local, and
//! which is wafer-global? This pass answers it statically and keeps the
//! answer fresh in CI:
//!
//! * Every field of the four engine state structs in
//!   `crates/core/src/sim/mod.rs` (`CuSlot`, `GpmState`, `IommuState`,
//!   `Simulation`) is classified **tile-local** (one CU touches it),
//!   **GPM-local** (one GPM's handlers touch it), or **wafer-global**
//!   (any handler may touch it — the sharding worklist).
//! * `CuSlot` defaults to tile-local, `GpmState` to GPM-local, and
//!   `IommuState` to wafer-global (the IOMMU is a wafer-shared resource);
//!   `Simulation` fields must each carry an explicit annotation.
//! * A field overrides its default with `// shard: <class>` on its line or
//!   in the comment block directly above; `, frozen` marks state that is
//!   written only during construction and therefore safe to share read-only
//!   across shards.
//! * Any unsuppressed-or-not d7 (`shared-mut`) hit on a field forces it
//!   wafer-global: shared interior mutability is reachable from anywhere by
//!   construction. An annotation claiming otherwise is an error.
//!
//! The markdown rendering is spliced into DESIGN.md §13 between
//! `<!-- shard-safety:begin -->` / `<!-- shard-safety:end -->` markers;
//! `xtask analyze --check` (in ci.sh) fails when the committed report no
//! longer matches the source.

use std::fmt;
use std::path::Path;

use crate::scope::ItemKind;
use crate::{analyze_file, classify, json_string, FileAnalysis, Rule};

/// The file the engine state structs live in.
pub const ENGINE_FILE: &str = "crates/core/src/sim/mod.rs";

/// Region markers for the committed report in DESIGN.md.
pub const BEGIN_MARKER: &str = "<!-- shard-safety:begin -->";
pub const END_MARKER: &str = "<!-- shard-safety:end -->";

/// Concurrency reach of one piece of engine state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardClass {
    TileLocal,
    GpmLocal,
    WaferGlobal,
}

impl ShardClass {
    pub fn name(self) -> &'static str {
        match self {
            ShardClass::TileLocal => "tile-local",
            ShardClass::GpmLocal => "gpm-local",
            ShardClass::WaferGlobal => "wafer-global",
        }
    }

    fn parse(token: &str) -> Option<ShardClass> {
        match token {
            "tile-local" => Some(ShardClass::TileLocal),
            "gpm-local" => Some(ShardClass::GpmLocal),
            "wafer-global" => Some(ShardClass::WaferGlobal),
            _ => None,
        }
    }
}

impl fmt::Display for ShardClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One classified struct field.
#[derive(Clone, Debug)]
pub struct FieldInfo {
    pub name: String,
    /// 1-based line of the declaration.
    pub line: usize,
    pub class: ShardClass,
    /// Written only during construction; shareable read-only.
    pub frozen: bool,
    /// A d7 hit on the declaration forced wafer-global.
    pub forced_by_d7: bool,
}

/// One engine struct and its classified fields.
#[derive(Clone, Debug)]
pub struct StructReport {
    pub name: String,
    /// The class a field gets without an annotation; `None` means every
    /// field must be annotated explicitly.
    pub default: Option<ShardClass>,
    pub fields: Vec<FieldInfo>,
}

/// The whole shard-safety report.
#[derive(Clone, Debug, Default)]
pub struct ShardReport {
    pub structs: Vec<StructReport>,
}

/// The four engine structs and their default classes.
const TARGETS: [(&str, Option<ShardClass>); 4] = [
    ("CuSlot", Some(ShardClass::TileLocal)),
    ("GpmState", Some(ShardClass::GpmLocal)),
    ("IommuState", Some(ShardClass::WaferGlobal)),
    ("Simulation", None),
];

/// Parses a `// shard: <class>[, frozen]` pragma anywhere in `raw`.
fn parse_annotation(raw: &str) -> Option<Result<(ShardClass, bool), String>> {
    let at = raw.find("// shard:")?;
    let rest = raw[at + "// shard:".len()..].trim();
    let mut parts = rest.split(',').map(str::trim);
    let class_token = parts.next().unwrap_or_default();
    // The class token ends at the first whitespace so prose may follow.
    let class_token = class_token.split_whitespace().next().unwrap_or_default();
    let Some(class) = ShardClass::parse(class_token) else {
        return Some(Err(format!(
            "unknown shard class `{class_token}`; expected tile-local, gpm-local, \
             or wafer-global"
        )));
    };
    let frozen = parts.any(|p| p.split_whitespace().next() == Some("frozen"));
    Some(Ok((class, frozen)))
}

/// Classifies the engine file. Returns the report plus human-readable
/// classification errors (missing/invalid annotations, d7 conflicts).
pub fn analyze_source(path: &str, source: &str) -> (ShardReport, Vec<String>) {
    let rules = classify(Path::new(path));
    let file = analyze_file(path, source, rules);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut report = ShardReport::default();
    let mut errors = Vec::new();

    for (target, default) in TARGETS {
        let Some(span) = file
            .pre
            .items
            .iter()
            .find(|s| s.kind == ItemKind::Struct && s.path == target)
        else {
            errors.push(format!("{path}: struct `{target}` not found"));
            continue;
        };
        let mut fields = Vec::new();
        for idx in span.start_line..span.end_line.saturating_sub(1) {
            let line = &file.pre.lines[idx];
            if line.depth != span.body_depth || line.paren != 0 || line.test_code {
                continue;
            }
            let Some(name) = field_name(&line.code) else {
                continue;
            };
            let lineno = idx + 1;
            let forced_by_d7 = file
                .raw_diags
                .iter()
                .any(|d| d.rule == Rule::SharedMut && d.line == lineno);
            let mut bad_annotation = false;
            let (class, frozen) = match annotation_for(&file, &raw_lines, idx) {
                Some(Ok((class, frozen))) => (Some(class), frozen),
                Some(Err(e)) => {
                    errors.push(format!("{path}:{lineno}: field `{target}.{name}`: {e}"));
                    bad_annotation = true;
                    (None, false)
                }
                None => (default, false),
            };
            let Some(mut class) = class else {
                if !bad_annotation {
                    errors.push(format!(
                        "{path}:{lineno}: field `{target}.{name}` needs an explicit \
                         `// shard: <class>` annotation ({target} has no default class)"
                    ));
                }
                continue;
            };
            if forced_by_d7 && class != ShardClass::WaferGlobal {
                errors.push(format!(
                    "{path}:{lineno}: field `{target}.{name}` is annotated {class} but a \
                     shared-mut (d7) hit on its declaration forces wafer-global"
                ));
                class = ShardClass::WaferGlobal;
            }
            fields.push(FieldInfo {
                name,
                line: lineno,
                class,
                frozen,
                forced_by_d7,
            });
        }
        if fields.is_empty() {
            errors.push(format!("{path}: struct `{target}` has no parseable fields"));
        }
        report.structs.push(StructReport {
            name: target.to_string(),
            default,
            fields,
        });
    }
    (report, errors)
}

/// Runs the analysis against the workspace on disk.
pub fn analyze_workspace(root: &Path) -> (ShardReport, Vec<String>) {
    let path = root.join(ENGINE_FILE);
    match std::fs::read_to_string(&path) {
        Ok(source) => analyze_source(ENGINE_FILE, &source),
        Err(e) => (
            ShardReport::default(),
            vec![format!("{}: {e}", path.display())],
        ),
    }
}

/// Finds the `// shard:` annotation for the field on 0-based line `idx`:
/// same raw line, or the comment block (stripped-empty lines) directly above.
fn annotation_for(
    file: &FileAnalysis,
    raw_lines: &[&str],
    idx: usize,
) -> Option<Result<(ShardClass, bool), String>> {
    if let Some(a) = parse_annotation(raw_lines[idx]) {
        return Some(a);
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        // A preceding code line ends the comment block — a trailing annotation
        // there belongs to that line's field, not this one.
        if !file.pre.lines[j].code.trim().is_empty() {
            return None;
        }
        if let Some(a) = parse_annotation(raw_lines[j]) {
            return Some(a);
        }
    }
    None
}

/// Parses `pub(crate) name: Type,` into `name`; `None` for non-field lines
/// (attributes, braces, comments).
fn field_name(code: &str) -> Option<String> {
    let mut rest = code.trim_start();
    if rest.starts_with('#') {
        return None;
    }
    if let Some(after) = rest.strip_prefix("pub") {
        // `pub`, `pub(crate)`, `pub(super)`, ... — but only when `pub` is a
        // whole word.
        let after = after.trim_start();
        if let Some(body) = after.strip_prefix('(') {
            let close = body.find(')')?;
            rest = body[close + 1..].trim_start();
        } else if after.len() < rest.len() {
            rest = after;
        } else {
            return None; // `pub` glued to something else — not a field
        }
    }
    let bytes = rest.as_bytes();
    let mut end = 0;
    while end < bytes.len() && crate::scope::is_ident_byte(bytes[end]) {
        end += 1;
    }
    if end == 0 {
        return None;
    }
    let name = &rest[..end];
    let tail = rest[end..].trim_start();
    // A field is `name: Type` — reject paths (`::`) and non-colon lines.
    if tail.starts_with(':') && !tail.starts_with("::") {
        Some(name.to_string())
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

/// Markdown rendering — the text committed between the DESIGN.md markers.
pub fn markdown(report: &ShardReport) -> String {
    let mut out = String::new();
    out.push_str(
        "Generated by `cargo run -p xtask -- analyze --write`; checked by \
         `xtask analyze --check` in ci.sh.\n",
    );
    for s in &report.structs {
        out.push_str(&format!("\n**`{}`**", s.name));
        match s.default {
            Some(d) => out.push_str(&format!(" (default {d})")),
            None => out.push_str(" (explicit annotations required)"),
        }
        out.push_str(":\n\n| Field | Class | Notes |\n|---|---|---|\n");
        for f in &s.fields {
            let mut notes = Vec::new();
            if f.frozen {
                notes.push("frozen after construction");
            }
            if f.forced_by_d7 {
                notes.push("forced by d7 shared-mut hit");
            }
            out.push_str(&format!(
                "| `{}` | {} | {} |\n",
                f.name,
                f.class,
                notes.join("; ")
            ));
        }
    }
    let worklist: Vec<&FieldInfo> = report
        .structs
        .iter()
        .filter(|s| s.name == "Simulation")
        .flat_map(|s| s.fields.iter())
        .filter(|f| f.class == ShardClass::WaferGlobal && !f.frozen)
        .collect();
    out.push_str(
        "\n**Sharding worklist** — mutable wafer-global engine state; every entry \
         must become shard-owned, message-passed, or lock-protected before \
         ROADMAP item 1 lands:\n\n",
    );
    for f in &worklist {
        out.push_str(&format!("- `Simulation::{}`\n", f.name));
    }
    out
}

/// JSON rendering (`xtask analyze --json`).
pub fn to_json(report: &ShardReport, errors: &[String]) -> String {
    let mut out = String::from("{\n  \"structs\": [");
    for (i, s) in report.structs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": {}, \"default\": {}, \"fields\": [",
            json_string(&s.name),
            match s.default {
                Some(d) => json_string(d.name()),
                None => "null".to_string(),
            }
        ));
        for (j, f) in s.fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      {{\"name\": {}, \"line\": {}, \"class\": {}, \"frozen\": {}, \
                 \"forced_by_d7\": {}}}",
                json_string(&f.name),
                f.line,
                json_string(f.class.name()),
                f.frozen,
                f.forced_by_d7,
            ));
        }
        if !s.fields.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]}");
    }
    out.push_str("\n  ],\n  \"errors\": [");
    for (i, e) in errors.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(e));
    }
    out.push_str("]\n}\n");
    out
}

/// Splices the rendered report into `design` between the markers. Returns
/// `None` when the markers are missing.
pub fn splice(design: &str, rendered: &str) -> Option<String> {
    let begin = design.find(BEGIN_MARKER)?;
    let end = design.find(END_MARKER)?;
    if end < begin {
        return None;
    }
    let mut out = String::with_capacity(design.len() + rendered.len());
    out.push_str(&design[..begin + BEGIN_MARKER.len()]);
    out.push('\n');
    out.push_str(rendered);
    out.push_str(&design[end..]);
    Some(out)
}

/// The committed text between the markers, for `--check`.
pub fn committed_region(design: &str) -> Option<&str> {
    let begin = design.find(BEGIN_MARKER)? + BEGIN_MARKER.len();
    let end = design.find(END_MARKER)?;
    design.get(begin..end).map(|s| s.trim_start_matches('\n'))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENGINE: &str = "\
pub(crate) struct CuSlot {
    pub pipeline: CuPipeline,
    pub l1_tlb: Tlb,
}

pub(crate) struct GpmState {
    pub cus: Vec<CuSlot>,
    pub l2_tlb: Tlb,
    // shard: wafer-global
    pub remote_mshr: HashIndex<Vec<ReqId>>,
}

pub(crate) struct IommuState {
    pub walkers: WalkerPool<ReqId>,
}

pub struct Simulation {
    pub(crate) cfg: SystemConfig, // shard: wafer-global, frozen
    pub(crate) queue: EventQueue<Event>, // shard: wafer-global
    pub(crate) gpms: Vec<GpmState>, // shard: gpm-local
}
";

    #[test]
    fn defaults_annotations_and_worklist() {
        let (report, errors) = analyze_source(ENGINE_FILE, ENGINE);
        assert!(errors.is_empty(), "errors: {errors:#?}");
        let by_name = |s: &str| {
            report
                .structs
                .iter()
                .find(|r| r.name == s)
                .expect("struct present")
                .clone()
        };
        let cu = by_name("CuSlot");
        assert!(cu.fields.iter().all(|f| f.class == ShardClass::TileLocal));
        let gpm = by_name("GpmState");
        let mshr = gpm.fields.iter().find(|f| f.name == "remote_mshr").unwrap();
        assert_eq!(mshr.class, ShardClass::WaferGlobal);
        assert!(gpm
            .fields
            .iter()
            .filter(|f| f.name != "remote_mshr")
            .all(|f| f.class == ShardClass::GpmLocal));
        let sim = by_name("Simulation");
        let cfg = sim.fields.iter().find(|f| f.name == "cfg").unwrap();
        assert!(cfg.frozen && cfg.class == ShardClass::WaferGlobal);
        let md = markdown(&report);
        assert!(md.contains("- `Simulation::queue`"));
        assert!(
            !md.contains("- `Simulation::cfg`"),
            "frozen excluded:\n{md}"
        );
        assert!(!md.contains("- `Simulation::gpms`"));
    }

    #[test]
    fn missing_simulation_annotation_is_an_error() {
        let src = ENGINE.replace(" // shard: wafer-global\n", "\n");
        let (_, errors) = analyze_source(ENGINE_FILE, &src);
        assert!(
            errors.iter().any(|e| e.contains("Simulation.queue")),
            "errors: {errors:#?}"
        );
    }

    #[test]
    fn d7_hit_forces_wafer_global() {
        let src = ENGINE.replace(
            "pub(crate) queue: EventQueue<Event>, // shard: wafer-global",
            "pub(crate) auditor: std::rc::Rc<std::cell::RefCell<Auditor>>, // shard: gpm-local",
        );
        let (report, errors) = analyze_source(ENGINE_FILE, &src);
        assert!(
            errors.iter().any(|e| e.contains("forces wafer-global")),
            "errors: {errors:#?}"
        );
        let sim = report
            .structs
            .iter()
            .find(|s| s.name == "Simulation")
            .unwrap();
        let auditor = sim.fields.iter().find(|f| f.name == "auditor").unwrap();
        assert_eq!(auditor.class, ShardClass::WaferGlobal);
        assert!(auditor.forced_by_d7);
    }

    #[test]
    fn splice_and_check_round_trip() {
        let design =
            format!("# Doc\n\nbefore\n\n{BEGIN_MARKER}\nold text\n{END_MARKER}\n\nafter\n");
        let (report, _) = analyze_source(ENGINE_FILE, ENGINE);
        let rendered = markdown(&report);
        let spliced = splice(&design, &rendered).expect("markers present");
        assert!(spliced.contains(&rendered));
        assert!(spliced.contains("before") && spliced.contains("after"));
        assert_eq!(committed_region(&spliced), Some(rendered.as_str()));
        assert!(splice("no markers", &rendered).is_none());
    }

    #[test]
    fn json_is_emitted() {
        let (report, errors) = analyze_source(ENGINE_FILE, ENGINE);
        let json = to_json(&report, &errors);
        assert!(json.contains("\"name\": \"Simulation\""));
        assert!(json.contains("\"class\": \"wafer-global\""));
        assert!(json.contains("\"errors\": []"));
    }
}
