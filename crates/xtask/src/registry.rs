//! Rule d8 (`site-registry`): static model of the audit/trace/telemetry
//! site-id space.
//!
//! The engine assembly (`crates/core/src/sim/mod.rs`) registers every model
//! structure with each observability sink under a numeric site id, using one
//! shared numbering scheme (GPM-local structures at `gpm*8 + slot`, per-CU
//! L1 TLBs above `G*8` with a per-GPM stride, IOMMU structures at the top).
//! PR 4's fig21 bug was exactly a flaw in that arithmetic: a fixed stride of
//! 64 made neighbouring GPMs share L1-TLB site ids once a preset exceeded
//! 64 CUs per GPM, and the collision surfaced only as a runtime audit
//! divergence. This pass catches the whole class at lint time:
//!
//! 1. every `.set_auditor(..)` / `.set_tracer(..)` / `.set_telemetry(..)`
//!    call is collected from the stripped source (multi-line receivers and
//!    argument lists included),
//! 2. each site-id expression is evaluated symbolically over two wafer
//!    model configurations — a small one (4 GPMs × 4 CUs) and a wide one
//!    (4 GPMs × 76 CUs, the MI300-style preset that triggered fig21),
//! 3. the pass fails on: an unknown variable in a site expression, a
//!    **self-collision** (one registration mapping two different `(g, c)`
//!    instances to the same id), a **cross-registration collision** (two
//!    components sharing an id within the audit or trace sink), a
//!    **cross-sink mismatch** (one component registered under different id
//!    sets in different sinks), and a **coverage gap** (a component
//!    registered with one active sink but not the others — suppressible
//!    with a justified `lint:allow(site-registry)` for deliberate
//!    asymmetries like the telemetry pass skipping per-CU L1 TLBs).
//!
//! The expression language is the small arithmetic subset the engine
//! actually uses: integer literals, `+ - * /`, parentheses, `as <ty>` casts
//! (ignored), and the variables `g` (GPM index), `c` (CU index), `g_total`,
//! `cu_stride`, and `iommu_base`. Telemetry registrations are exempt from
//! the cross-registration collision check only: telemetry site ids double as
//! metadata tags (`t.register(..)` reuses them deliberately), but they still
//! participate in self-collision, mismatch, and coverage checks.

use std::collections::{BTreeMap, BTreeSet};

use crate::scope::is_ident_byte;
use crate::{Diagnostic, FileAnalysis, Rule};

/// The three observability sinks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Sink {
    Audit,
    Trace,
    Telemetry,
}

impl Sink {
    pub fn name(self) -> &'static str {
        match self {
            Sink::Audit => "audit",
            Sink::Trace => "trace",
            Sink::Telemetry => "telemetry",
        }
    }

    fn method(self) -> &'static str {
        match self {
            Sink::Audit => ".set_auditor",
            Sink::Trace => ".set_tracer",
            Sink::Telemetry => ".set_telemetry",
        }
    }
}

/// One collected registration call.
#[derive(Clone, Debug)]
pub struct Registration {
    pub path: String,
    /// 1-based line of the `.set_*` token.
    pub line: usize,
    /// Enclosing item path at that line.
    pub item: String,
    pub sink: Sink,
    /// Normalized receiver (`gpm.l2_tlb`, `iommu.walkers`, `queue`): the
    /// leading `self.` / `sim.` segment is dropped. Engine-level attaches
    /// (`sim.set_tracer(&sink)`, whose receiver normalizes to nothing) are
    /// not registrations and are skipped at collection time.
    pub component: String,
    /// Site-id expression text (second argument), absent for siteless
    /// engine/mesh/queue attaches.
    pub site: Option<String>,
}

// ---------------------------------------------------------------------------
// Collection.
// ---------------------------------------------------------------------------

/// Collects every registration in one analysed file. Test-code lines are
/// excluded (unit tests may wire sinks however they like).
pub fn collect(file: &FileAnalysis) -> Vec<Registration> {
    // Join the stripped lines, blanking test regions, so multi-line
    // receivers/argument lists parse naturally.
    let mut buf = String::new();
    let mut line_starts = Vec::with_capacity(file.pre.lines.len());
    for line in &file.pre.lines {
        line_starts.push(buf.len());
        if !line.test_code {
            buf.push_str(&line.code);
        }
        buf.push('\n');
    }
    let line_of = |pos: usize| match line_starts.binary_search(&pos) {
        Ok(i) => i + 1,
        Err(i) => i, // i is the insertion point; the line index is i-1 → 1-based i
    };

    let mut regs = Vec::new();
    for sink in [Sink::Audit, Sink::Trace, Sink::Telemetry] {
        let method = sink.method();
        let bytes = buf.as_bytes();
        let mut start = 0;
        while let Some(pos) = buf[start..].find(method) {
            let at = start + pos;
            start = at + method.len();
            // Must be a call: the name is followed (modulo whitespace) by `(`.
            let mut open = at + method.len();
            while open < bytes.len() && bytes[open].is_ascii_whitespace() {
                open += 1;
            }
            if open >= bytes.len() || bytes[open] != b'(' {
                continue;
            }
            let lineno = line_of(at);
            let component = match receiver_before(&buf, at) {
                Some(c) => c,
                None => continue, // engine-level attach or unparseable
            };
            let site = second_argument(&buf, open);
            let item = file.pre.item_at(lineno).to_string();
            regs.push(Registration {
                path: file.path.clone(),
                line: lineno,
                item,
                sink,
                component,
                site,
            });
        }
    }
    regs.sort_by_key(|a| (a.line, a.sink));
    regs
}

/// Walks the dotted receiver chain backwards from the `.` at `dot` and
/// normalizes it (drop a leading `self`/`sim`). Returns `None` when nothing
/// remains (engine-level attach) or no receiver parses.
fn receiver_before(buf: &str, dot: usize) -> Option<String> {
    let bytes = buf.as_bytes();
    let mut segments: Vec<String> = Vec::new();
    let mut i = dot;
    loop {
        while i > 0 && bytes[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        let end = i;
        while i > 0 && is_ident_byte(bytes[i - 1]) {
            i -= 1;
        }
        if i == end {
            break;
        }
        segments.push(buf[i..end].to_string());
        while i > 0 && bytes[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        if i > 0 && bytes[i - 1] == b'.' {
            i -= 1;
        } else {
            break;
        }
    }
    segments.reverse();
    if let Some(first) = segments.first() {
        if first == "self" || first == "sim" {
            segments.remove(0);
        }
    }
    if segments.is_empty() {
        None
    } else {
        Some(segments.join("."))
    }
}

/// Extracts the second top-level argument of the call whose `(` is at
/// `open`, as trimmed text; `None` for single-argument (siteless) calls.
fn second_argument(buf: &str, open: usize) -> Option<String> {
    let bytes = buf.as_bytes();
    let mut depth = 0i32;
    let mut args: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut i = open;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'(' | b'[' => {
                depth += 1;
                if depth > 1 {
                    cur.push(b as char);
                }
            }
            b')' | b']' => {
                depth -= 1;
                if depth == 0 {
                    args.push(cur);
                    break;
                }
                cur.push(b as char);
            }
            b',' if depth == 1 => {
                args.push(std::mem::take(&mut cur));
            }
            _ => {
                if depth >= 1 {
                    cur.push(b as char);
                }
            }
        }
        i += 1;
    }
    args.get(1)
        .map(|a| a.split_whitespace().collect::<Vec<_>>().join(" "))
}

// ---------------------------------------------------------------------------
// The site-expression evaluator.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Num(i128),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

fn tokenize(expr: &str) -> Result<Vec<Tok>, String> {
    let bytes = expr.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
        } else if b.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
            let text: String = expr[start..i].chars().filter(|&c| c != '_').collect();
            out.push(Tok::Num(text.parse().map_err(|_| {
                format!("unparseable integer `{}`", &expr[start..i])
            })?));
        } else if is_ident_byte(b) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            out.push(Tok::Ident(expr[start..i].to_string()));
        } else {
            out.push(match b {
                b'+' => Tok::Plus,
                b'-' => Tok::Minus,
                b'*' => Tok::Star,
                b'/' => Tok::Slash,
                b'(' => Tok::LParen,
                b')' => Tok::RParen,
                other => return Err(format!("unsupported token `{}`", other as char)),
            });
            i += 1;
        }
    }
    Ok(out)
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
    env: &'a BTreeMap<&'a str, i128>,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn expr(&mut self) -> Result<i128, String> {
        let mut v = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    v += self.term()?;
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    v -= self.term()?;
                }
                _ => return Ok(v),
            }
        }
    }

    fn term(&mut self) -> Result<i128, String> {
        let mut v = self.atom()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.pos += 1;
                    v *= self.atom()?;
                }
                Some(Tok::Slash) => {
                    self.pos += 1;
                    let d = self.atom()?;
                    if d == 0 {
                        return Err("division by zero".to_string());
                    }
                    v /= d;
                }
                _ => return Ok(v),
            }
        }
    }

    fn atom(&mut self) -> Result<i128, String> {
        let v = match self.peek().cloned() {
            Some(Tok::Num(n)) => {
                self.pos += 1;
                n
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                *self
                    .env
                    .get(name.as_str())
                    .ok_or_else(|| format!("unknown variable `{name}`"))?
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let v = self.expr()?;
                if self.peek() != Some(&Tok::RParen) {
                    return Err("unbalanced parentheses".to_string());
                }
                self.pos += 1;
                v
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                -self.atom()?
            }
            other => return Err(format!("unexpected token {other:?}")),
        };
        // Skip `as <ty>` casts: the numbering model is width-agnostic.
        while let Some(Tok::Ident(name)) = self.peek() {
            if name == "as" {
                self.pos += 1;
                if let Some(Tok::Ident(_)) = self.peek() {
                    self.pos += 1;
                } else {
                    return Err("dangling `as` cast".to_string());
                }
            } else {
                break;
            }
        }
        Ok(v)
    }
}

fn eval(toks: &[Tok], env: &BTreeMap<&str, i128>) -> Result<i128, String> {
    let mut p = Parser { toks, pos: 0, env };
    let v = p.expr()?;
    if p.pos != toks.len() {
        return Err("trailing tokens in site expression".to_string());
    }
    Ok(v)
}

fn expr_idents(toks: &[Tok]) -> BTreeSet<&str> {
    let mut out = BTreeSet::new();
    let mut skip_next = false; // the type ident after an `as` cast
    for t in toks {
        if let Tok::Ident(name) = t {
            if skip_next {
                skip_next = false;
            } else if name == "as" {
                skip_next = true;
            } else {
                out.insert(name.as_str());
            }
        } else {
            skip_next = false;
        }
    }
    out
}

/// One wafer model configuration the site space is checked under.
#[derive(Clone, Copy, Debug)]
pub struct ModelEnv {
    pub gpms: i128,
    pub cus: i128,
}

/// The two configurations: the default small wafer and the wide-CU preset
/// (more CUs per GPM than the historical 64-site stride) that exposed the
/// fig21 collision.
pub const MODEL_ENVS: [ModelEnv; 2] = [ModelEnv { gpms: 4, cus: 4 }, ModelEnv { gpms: 4, cus: 76 }];

impl ModelEnv {
    fn base_env(&self) -> BTreeMap<&'static str, i128> {
        let cu_stride = self.cus.max(64);
        let iommu_base = self.gpms * 8 + self.gpms * cu_stride;
        BTreeMap::from([
            ("g_total", self.gpms),
            ("cu_stride", cu_stride),
            ("iommu_base", iommu_base),
        ])
    }

    fn describe(&self) -> String {
        format!("{} GPMs x {} CUs", self.gpms, self.cus)
    }
}

// ---------------------------------------------------------------------------
// Checks.
// ---------------------------------------------------------------------------

fn d8(reg: &Registration, message: String) -> Diagnostic {
    Diagnostic {
        path: reg.path.clone(),
        line: reg.line,
        rule: Rule::SiteRegistry,
        message,
        item: reg.item.clone(),
    }
}

/// Runs every d8 check over a merged registration set.
pub fn check(regs: &[Registration]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if regs.is_empty() {
        return diags;
    }

    // Evaluate each sited registration under both model envs, recording the
    // id set and which (g, c) produced each id.
    struct Evaluated<'a> {
        reg: &'a Registration,
        /// Per-env: id -> first (g, c) that produced it.
        values: Vec<BTreeMap<i128, (i128, i128)>>,
        evaluable: bool,
    }
    let mut evaluated: Vec<Evaluated> = Vec::new();
    for reg in regs {
        let Some(site) = &reg.site else {
            evaluated.push(Evaluated {
                reg,
                values: vec![BTreeMap::new(); MODEL_ENVS.len()],
                evaluable: false,
            });
            continue;
        };
        let toks = match tokenize(site) {
            Ok(t) => t,
            Err(e) => {
                diags.push(d8(reg, format!("site expression `{site}`: {e}")));
                continue;
            }
        };
        let idents = expr_idents(&toks);
        let uses_g = idents.contains("g");
        let uses_c = idents.contains("c");
        let known: BTreeSet<&str> = ["g", "c", "g_total", "cu_stride", "iommu_base"]
            .into_iter()
            .collect();
        let unknown: Vec<&str> = idents.difference(&known).copied().collect();
        if !unknown.is_empty() {
            diags.push(d8(
                reg,
                format!(
                    "site expression `{site}` references unknown variable{} {}; the site-id \
                     model knows g, c, g_total, cu_stride, iommu_base",
                    if unknown.len() == 1 { "" } else { "s" },
                    unknown
                        .iter()
                        .map(|u| format!("`{u}`"))
                        .collect::<Vec<_>>()
                        .join(", "),
                ),
            ));
            continue;
        }
        let mut values = Vec::with_capacity(MODEL_ENVS.len());
        let mut self_collided = false;
        for model in MODEL_ENVS {
            let mut env = model.base_env();
            let mut ids: BTreeMap<i128, (i128, i128)> = BTreeMap::new();
            let g_range = if uses_g { model.gpms } else { 1 };
            let c_range = if uses_c { model.cus } else { 1 };
            'grid: for g in 0..g_range {
                for c in 0..c_range {
                    env.insert("g", g);
                    env.insert("c", c);
                    let v = match eval(&toks, &env) {
                        Ok(v) => v,
                        Err(e) => {
                            diags.push(d8(reg, format!("site expression `{site}`: {e}")));
                            break 'grid;
                        }
                    };
                    if let Some(&(pg, pc)) = ids.get(&v) {
                        if !self_collided {
                            self_collided = true;
                            diags.push(d8(
                                reg,
                                format!(
                                    "site-id collision within `{}` {}: `{site}` maps \
                                     (g={pg}, c={pc}) and (g={g}, c={c}) both to id {v} \
                                     under {} — the fig21 class; widen the stride",
                                    reg.component,
                                    reg.sink.name(),
                                    model.describe(),
                                ),
                            ));
                        }
                    } else {
                        ids.insert(v, (g, c));
                    }
                }
            }
            values.push(ids);
        }
        evaluated.push(Evaluated {
            reg,
            values,
            evaluable: true,
        });
    }

    // Cross-registration collisions within the audit and trace sinks (the
    // occupancy-mirror streams, where an id names exactly one structure).
    for sink in [Sink::Audit, Sink::Trace] {
        let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (ei, model) in MODEL_ENVS.iter().enumerate() {
            let mut owner: BTreeMap<i128, &Registration> = BTreeMap::new();
            for ev in evaluated.iter().filter(|e| e.reg.sink == sink) {
                for &id in ev.values[ei].keys() {
                    match owner.get(&id) {
                        Some(prev) if prev.component != ev.reg.component => {
                            if reported.insert((prev.line, ev.reg.line)) {
                                diags.push(d8(
                                    ev.reg,
                                    format!(
                                        "site-id collision in the {} sink: `{}` and `{}` \
                                         (line {}) both claim id {id} under {}",
                                        sink.name(),
                                        ev.reg.component,
                                        prev.component,
                                        prev.line,
                                        model.describe(),
                                    ),
                                ));
                            }
                        }
                        Some(_) => {}
                        None => {
                            owner.insert(id, ev.reg);
                        }
                    }
                }
            }
        }
    }

    // Cross-sink id-set consistency: one component, one numbering.
    let mut by_component: BTreeMap<&str, Vec<&Evaluated>> = BTreeMap::new();
    for ev in &evaluated {
        by_component
            .entry(ev.reg.component.as_str())
            .or_default()
            .push(ev);
    }
    for evs in by_component.values() {
        let sited: Vec<&&Evaluated> = evs
            .iter()
            .filter(|e| e.evaluable && e.reg.site.is_some())
            .collect();
        for pair in sited.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            for (ei, model) in MODEL_ENVS.iter().enumerate() {
                let ka: BTreeSet<&i128> = a.values[ei].keys().collect();
                let kb: BTreeSet<&i128> = b.values[ei].keys().collect();
                if ka != kb {
                    diags.push(d8(
                        b.reg,
                        format!(
                            "`{}` registers different site-id sets with {} (line {}) and \
                             {} (line {}) under {}; one component, one numbering",
                            b.reg.component,
                            a.reg.sink.name(),
                            a.reg.line,
                            b.reg.sink.name(),
                            b.reg.line,
                            model.describe(),
                        ),
                    ));
                    break; // one mismatch diagnostic per sink pair
                }
            }
        }
    }

    // Coverage parity: a component visible to one active sink should be
    // visible to all of them, unless explicitly allowed.
    let active: BTreeSet<Sink> = regs.iter().map(|r| r.sink).collect();
    if active.len() > 1 {
        for evs in by_component.values() {
            let present: BTreeSet<Sink> = evs.iter().map(|e| e.reg.sink).collect();
            let missing: Vec<&str> = active.difference(&present).map(|s| s.name()).collect();
            if missing.is_empty() {
                continue;
            }
            let first = evs
                .iter()
                .map(|e| e.reg)
                .min_by_key(|r| (r.path.as_str(), r.line))
                .expect("component has at least one registration");
            let has: Vec<&str> = present.iter().map(|s| s.name()).collect();
            diags.push(d8(
                first,
                format!(
                    "`{}` registers with {} but not {}; register the component with every \
                     active sink or annotate lint:allow(site-registry)",
                    first.component,
                    has.join("/"),
                    missing.join("/"),
                ),
            ));
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_file, RuleSet};

    fn regs_of(src: &str) -> Vec<Registration> {
        collect(&analyze_file("t.rs", src, RuleSet::all()))
    }

    #[test]
    fn collection_normalizes_receivers_and_args() {
        let src = "fn wire() {\n    sim.queue.set_auditor(h.clone());\n    gpm.l2_tlb.set_auditor(h.clone(), g * 8);\n    cu.l1_tlb\n        .set_auditor(h.clone(), g_total * 8 + g * cu_stride + c as u64);\n    self.iommu\n        .redirection\n        .set_tracer(h.clone(), iommu_base + 1);\n    sim.set_tracer(&sink);\n}\n";
        let regs = regs_of(src);
        let summary: Vec<(usize, &str, Sink, Option<&str>)> = regs
            .iter()
            .map(|r| (r.line, r.component.as_str(), r.sink, r.site.as_deref()))
            .collect();
        assert_eq!(
            summary,
            vec![
                (2, "queue", Sink::Audit, None),
                (3, "gpm.l2_tlb", Sink::Audit, Some("g * 8")),
                (
                    5,
                    "cu.l1_tlb",
                    Sink::Audit,
                    Some("g_total * 8 + g * cu_stride + c as u64")
                ),
                (8, "iommu.redirection", Sink::Trace, Some("iommu_base + 1")),
            ],
            "regs: {regs:#?}"
        );
    }

    #[test]
    fn method_definitions_and_test_code_are_not_registrations() {
        let src = "impl S {\n    pub fn set_auditor(&mut self, h: AuditHandle, site: u64) {\n        self.site = site;\n    }\n}\n#[cfg(test)]\nmod tests {\n    fn wire() {\n        q.set_auditor(h.clone(), 7);\n    }\n}\n";
        assert!(regs_of(src).is_empty());
    }

    #[test]
    fn evaluator_handles_the_engine_grammar() {
        let env = BTreeMap::from([("g", 3i128), ("c", 75), ("g_total", 4), ("cu_stride", 76)]);
        for (expr, want) in [
            ("g * 8", 24),
            ("g * 8 + 1", 25),
            ("g_total * 8 + g * cu_stride + c as u64", 32 + 3 * 76 + 75),
            ("(g + 1) * 2 - 4 / 2", 6),
            ("7", 7),
        ] {
            let toks = tokenize(expr).expect("tokenizes");
            assert_eq!(eval(&toks, &env), Ok(want), "expr: {expr}");
        }
        let toks = tokenize("nonsense + 1").expect("tokenizes");
        assert!(eval(&toks, &env).is_err());
    }

    #[test]
    fn fixed_stride_self_collision_is_the_fig21_class() {
        // The exact pre-PR4 arithmetic: a fixed 64 stride under the 76-CU
        // preset maps (g=1, c=0) and (g=0, c=64) to the same id.
        let src = "fn wire() {\n    cu.l1_tlb.set_auditor(h.clone(), g_total * 8 + g * 64 + c as u64);\n}\n";
        let diags = check(&regs_of(src));
        assert_eq!(diags.len(), 1, "diags: {diags:#?}");
        assert!(
            diags[0].message.contains("fig21"),
            "got: {}",
            diags[0].message
        );
        assert!(diags[0].message.contains("76 CUs"));
        // The widened stride is collision-free under both configurations.
        let fixed = src.replace("g * 64", "g * cu_stride");
        assert!(check(&regs_of(&fixed)).is_empty());
    }

    #[test]
    fn cross_registration_collisions_are_flagged_per_sink() {
        let src = "fn wire() {\n    gpm.l2_tlb.set_auditor(h.clone(), g * 8);\n    gpm.walkers.set_auditor(h.clone(), g * 8);\n}\n";
        let diags = check(&regs_of(src));
        assert_eq!(diags.len(), 1, "diags: {diags:#?}");
        assert!(diags[0].message.contains("collision in the audit sink"));
        // Distinct slots are fine.
        let ok = src.replace(
            "walkers.set_auditor(h.clone(), g * 8)",
            "walkers.set_auditor(h.clone(), g * 8 + 2)",
        );
        assert!(check(&regs_of(&ok)).is_empty());
    }

    #[test]
    fn cross_sink_mismatch_and_parity_are_flagged() {
        // l2_tlb numbers differently in trace than audit; cuckoo only traces.
        let src = "fn wire() {\n    gpm.l2_tlb.set_auditor(h.clone(), g * 8);\n    gpm.l2_tlb.set_tracer(h.clone(), g * 8 + 1);\n    gpm.cuckoo.set_tracer(h.clone(), g * 8 + 3);\n}\n";
        let diags = check(&regs_of(src));
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("different site-id sets")),
            "diags: {diags:#?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("registers with trace but not audit")
                    && d.message.contains("`gpm.cuckoo`")),
            "diags: {diags:#?}"
        );
    }
}
