//! Workspace task runner: `lint` (the determinism/shard-safety lint pass,
//! rules d1..d10) and `analyze` (the shard-safety classification report).
//! Both are documented in DESIGN.md §13 ("Static analysis & shard-safety").

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut path: Option<&str> = None;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other => path = Some(other),
        }
    }
    let report = match path {
        Some(path) => {
            let path = Path::new(path);
            if !path.exists() {
                eprintln!("xtask lint: no such file or directory: {}", path.display());
                return ExitCode::from(2);
            }
            xtask::lint_path(path)
        }
        None => xtask::lint_workspace(&workspace_root()),
    };
    if json {
        print!("{}", report.to_json());
    } else {
        for diag in &report.diagnostics {
            println!("{diag}");
        }
        if report.diagnostics.is_empty() {
            println!("lint clean: {} file(s) scanned", report.files_scanned);
        } else {
            println!(
                "lint: {} violation(s) in {} file(s) scanned",
                report.diagnostics.len(),
                report.files_scanned
            );
        }
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_analyze(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut check = false;
    let mut write = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--check" => check = true,
            "--write" => write = true,
            other => {
                eprintln!("xtask analyze: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = workspace_root();
    let (report, errors) = xtask::analyze::analyze_workspace(&root);
    if json {
        print!("{}", xtask::analyze::to_json(&report, &errors));
        return if errors.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    for e in &errors {
        eprintln!("analyze: {e}");
    }
    if !errors.is_empty() {
        eprintln!("analyze: {} classification error(s)", errors.len());
        return ExitCode::FAILURE;
    }
    let rendered = xtask::analyze::markdown(&report);
    let design_path = root.join("DESIGN.md");
    if check || write {
        let design = match std::fs::read_to_string(&design_path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("analyze: {}: {e}", design_path.display());
                return ExitCode::FAILURE;
            }
        };
        if check {
            match xtask::analyze::committed_region(&design) {
                Some(committed) if committed == rendered => {
                    println!("analyze: DESIGN.md shard-safety report is up to date");
                    ExitCode::SUCCESS
                }
                Some(_) => {
                    eprintln!(
                        "analyze: DESIGN.md shard-safety report is stale; \
                         run `cargo run -p xtask -- analyze --write`"
                    );
                    ExitCode::FAILURE
                }
                None => {
                    eprintln!(
                        "analyze: DESIGN.md is missing the {} / {} markers",
                        xtask::analyze::BEGIN_MARKER,
                        xtask::analyze::END_MARKER
                    );
                    ExitCode::FAILURE
                }
            }
        } else {
            match xtask::analyze::splice(&design, &rendered) {
                Some(updated) => {
                    if std::fs::write(&design_path, updated).is_err() {
                        eprintln!("analyze: cannot write {}", design_path.display());
                        return ExitCode::FAILURE;
                    }
                    println!("analyze: DESIGN.md shard-safety report updated");
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!(
                        "analyze: DESIGN.md is missing the {} / {} markers",
                        xtask::analyze::BEGIN_MARKER,
                        xtask::analyze::END_MARKER
                    );
                    ExitCode::FAILURE
                }
            }
        }
    } else {
        print!("{rendered}");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("analyze") => run_analyze(&args[1..]),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--json] [path]");
            eprintln!("       cargo run -p xtask -- analyze [--json | --check | --write]");
            eprintln!();
            eprintln!("lint     runs the determinism/shard-safety pass (rules d1..d10,");
            eprintln!("         see DESIGN.md section 13). With no path, lints the whole");
            eprintln!("         workspace with per-path rule scoping; with a file or");
            eprintln!("         directory, lints it with every rule enabled.");
            eprintln!("analyze  classifies engine state as tile-local / gpm-local /");
            eprintln!("         wafer-global and renders the shard-safety report;");
            eprintln!("         --check verifies the committed DESIGN.md copy, --write");
            eprintln!("         refreshes it, --json emits the machine-readable form.");
            ExitCode::from(2)
        }
    }
}
