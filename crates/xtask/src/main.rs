//! Workspace task runner. Currently one task: `lint`, the determinism lint
//! pass described in DESIGN.md ("Determinism & audit policy").

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let report = match args.get(1) {
                Some(path) => {
                    let path = Path::new(path);
                    if !path.exists() {
                        eprintln!("xtask lint: no such file or directory: {}", path.display());
                        return ExitCode::from(2);
                    }
                    xtask::lint_path(path)
                }
                None => xtask::lint_workspace(&workspace_root()),
            };
            for diag in &report.diagnostics {
                println!("{diag}");
            }
            if report.diagnostics.is_empty() {
                println!("lint clean: {} file(s) scanned", report.files_scanned);
                ExitCode::SUCCESS
            } else {
                println!(
                    "lint: {} violation(s) in {} file(s) scanned",
                    report.diagnostics.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [path]");
            eprintln!();
            eprintln!("Runs the determinism lint pass (rules d1..d4, see DESIGN.md).");
            eprintln!("With no path, lints the whole workspace with per-path rule scoping;");
            eprintln!("with a file or directory, lints it with every rule enabled.");
            ExitCode::from(2)
        }
    }
}
