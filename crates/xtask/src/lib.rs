//! Determinism and shard-safety lint pass for the HDPAT workspace
//! (`cargo run -p xtask -- lint`), plus the `xtask analyze` shard-safety
//! report (see [`analyze`]).
//!
//! Ten rules, documented in DESIGN.md §13 ("Static analysis &
//! shard-safety"):
//!
//! * `map-iter` (d1) — no iteration over `HashMap`/`HashSet` in library code.
//!   Hash iteration order depends on `RandomState`, so any model behaviour or
//!   output derived from it varies run to run.
//! * `wallclock` (d2) — no wall-clock reads, ambient entropy
//!   (`Instant::now`, `SystemTime`, `thread_rng`, `rand::random`,
//!   `from_entropy`), or ambient concurrency (`thread::spawn`,
//!   `thread::scope`, `available_parallelism`) in model code. The two
//!   sanctioned boundaries are `SimRng` (`crates/sim/src/rng.rs`) for
//!   randomness and the sweep worker pool (`crates/sim/src/pool.rs`) for
//!   threads; see DESIGN.md §9 for why the pool cannot leak scheduling
//!   order into results.
//! * `float-cycle` (d3) — no floating-point expression cast into `Cycle`.
//!   Float rounding makes cycle accounting platform- and optimisation-level
//!   sensitive; cycle math must stay in integers.
//! * `unwrap` (d4) — no `.unwrap()` / `.expect(...)` in non-test library code
//!   of the five model crates (sim, noc, xlat, mem, gpu). Panics there abort
//!   mid-simulation with no indication of which seed/config was running.
//! * `hook-pattern` (d5) — observability handles (`AuditHandle`,
//!   `TraceHandle`) must be held as `Option<...>` fields attached via a
//!   `set_*` method, never stored directly. A mandatory handle would make
//!   the audit/trace features load-bearing instead of purely observational
//!   (DESIGN.md §10). Function signatures are exempt — attach methods take
//!   the handle by value before storing it optionally.
//! * `default-hash` (d6) — no `std::collections::HashMap`/`HashSet` at all in
//!   simulator-crate library code. Even without iteration (which d1 catches),
//!   the default `RandomState` hasher seeds from process entropy, so capacity
//!   growth, probe order, and any future refactor that starts iterating are
//!   all nondeterminism hazards. The sanctioned replacement is the seeded
//!   `wsg_sim::HashIndex` (`crates/sim/src/index.rs`, the one exempt file) or
//!   a BTree collection; see DESIGN.md §11.
//! * `shared-mut` (d7) — no shared interior mutability (`Rc<RefCell<..>>`,
//!   `Cell<..>`, `static mut`, `thread_local!`) in simulator-crate library
//!   code. Every such site is state that two shards could reach at once —
//!   the exact worklist for ROADMAP items 1 (parallel sharding) and 3
//!   (removing `Rc<RefCell>` from dispatch). The sanctioned homes are the
//!   audit/trace/telemetry sinks in `crates/sim` (module-scoped allows) and
//!   the engine hook fields that hold them in `crates/core/src/sim/mod.rs`.
//! * `site-registry` (d8) — audit/trace/telemetry site-id registrations are
//!   statically collected and model-checked: site expressions are evaluated
//!   under small and large wafer configurations, and the pass fails on id
//!   collisions (the PR 4 fig21 L1-TLB class, previously only caught at
//!   runtime) or on a component registering with one observability sink but
//!   not the others. See [`registry`].
//! * `stale-allow` (d9) — every `lint:allow` must still suppress at least
//!   one hit of its rule and carry a `: justification` suffix; a stale or
//!   bare allow is itself an error, so the allowlist can never rot. d9
//!   diagnostics cannot themselves be allowed.
//! * `det-string` (d10) — code inside `Metrics::to_deterministic_string`
//!   must not read host-side fields (`host_wall_nanos`, `sim_events`, or
//!   anything wall/host-named): the deterministic contract string feeds
//!   run-parity gates, so a wall-clock value there would break byte-identical
//!   reruns by construction.
//!
//! Any site can opt out with `// lint:allow(<rule>): <justification>` on the
//! same line or in the comment block immediately above, or for a whole scope
//! with `// lint:allow-module(<rule>): <justification>` (covering to the end
//! of the enclosing braces; the whole file at top level). Rules are named by
//! slug (`map-iter`) or code (`d1`). The linter strips comments and string
//! literals, tracks brace/item scope (see [`scope`]), and skips
//! `#[cfg(test)]` regions, but it is a scanner, not a parser — it trades
//! completeness for having zero dependencies.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub mod analyze;
pub mod registry;
pub mod scope;

use scope::PreSource;

/// The ten determinism/shard-safety rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// d1: iteration over a hash-ordered collection.
    MapIter,
    /// d2: wall-clock or ambient-entropy source outside SimRng.
    Wallclock,
    /// d3: floating-point expression cast into `Cycle`.
    FloatCycle,
    /// d4: `.unwrap()` / `.expect(...)` in model-crate library code.
    Unwrap,
    /// d5: an observability handle stored directly instead of `Option<...>`.
    HookPattern,
    /// d6: an entropy-seeded `HashMap`/`HashSet` in simulator-crate code.
    DefaultHash,
    /// d7: shared interior mutability outside the sanctioned sinks.
    SharedMut,
    /// d8: an observability site-id collision or sink-coverage gap.
    SiteRegistry,
    /// d9: a `lint:allow` that no longer fires, or lacks a justification.
    StaleAllow,
    /// d10: a host-side field read inside `to_deterministic_string`.
    DetString,
}

impl Rule {
    /// Every rule, in code order.
    pub const ALL: [Rule; 10] = [
        Rule::MapIter,
        Rule::Wallclock,
        Rule::FloatCycle,
        Rule::Unwrap,
        Rule::HookPattern,
        Rule::DefaultHash,
        Rule::SharedMut,
        Rule::SiteRegistry,
        Rule::StaleAllow,
        Rule::DetString,
    ];

    /// Human-readable slug used in diagnostics and `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::MapIter => "map-iter",
            Rule::Wallclock => "wallclock",
            Rule::FloatCycle => "float-cycle",
            Rule::Unwrap => "unwrap",
            Rule::HookPattern => "hook-pattern",
            Rule::DefaultHash => "default-hash",
            Rule::SharedMut => "shared-mut",
            Rule::SiteRegistry => "site-registry",
            Rule::StaleAllow => "stale-allow",
            Rule::DetString => "det-string",
        }
    }

    /// Short code (d1..d10), also accepted inside `lint:allow(...)`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::MapIter => "d1",
            Rule::Wallclock => "d2",
            Rule::FloatCycle => "d3",
            Rule::Unwrap => "d4",
            Rule::HookPattern => "d5",
            Rule::DefaultHash => "d6",
            Rule::SharedMut => "d7",
            Rule::SiteRegistry => "d8",
            Rule::StaleAllow => "d9",
            Rule::DetString => "d10",
        }
    }

    /// Parses either the slug or the code; unknown tokens yield `None`.
    pub fn parse(token: &str) -> Option<Rule> {
        Rule::ALL
            .into_iter()
            .find(|r| r.name() == token || r.code() == token)
    }
}

/// One lint finding, formatted as `path:line: [rule] message (in item)`.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    pub path: String,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
    /// `::`-joined enclosing item path (`Simulation::set_tracer`), empty at
    /// top level or when unknown.
    pub item: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )?;
        if !self.item.is_empty() {
            write!(f, " (in {})", self.item)?;
        }
        Ok(())
    }
}

/// Which rules apply to a given file; decided by [`classify`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleSet {
    pub map_iter: bool,
    pub wallclock: bool,
    pub float_cycle: bool,
    pub unwrap: bool,
    pub hook_pattern: bool,
    pub default_hash: bool,
    pub shared_mut: bool,
    pub site_registry: bool,
    pub stale_allow: bool,
    pub det_string: bool,
}

impl RuleSet {
    pub fn all() -> Self {
        RuleSet {
            map_iter: true,
            wallclock: true,
            float_cycle: true,
            unwrap: true,
            hook_pattern: true,
            default_hash: true,
            shared_mut: true,
            site_registry: true,
            stale_allow: true,
            det_string: true,
        }
    }

    pub fn none() -> Self {
        RuleSet::default()
    }

    pub fn is_empty(&self) -> bool {
        *self == RuleSet::none()
    }

    pub fn contains(&self, rule: Rule) -> bool {
        match rule {
            Rule::MapIter => self.map_iter,
            Rule::Wallclock => self.wallclock,
            Rule::FloatCycle => self.float_cycle,
            Rule::Unwrap => self.unwrap,
            Rule::HookPattern => self.hook_pattern,
            Rule::DefaultHash => self.default_hash,
            Rule::SharedMut => self.shared_mut,
            Rule::SiteRegistry => self.site_registry,
            Rule::StaleAllow => self.stale_allow,
            Rule::DetString => self.det_string,
        }
    }
}

/// Result of linting a tree: how many files were actually scanned (after
/// classification) and every diagnostic found.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Machine-readable form consumed by ci.sh (`xtask lint --json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"violations\": {},\n", self.diagnostics.len()));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"code\": {}, \
                 \"item\": {}, \"message\": {}}}",
                json_string(&d.path),
                d.line,
                json_string(d.rule.name()),
                json_string(d.rule.code()),
                json_string(&d.item),
                json_string(&d.message),
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (the report contains no exotic text).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Rule checks.
// ---------------------------------------------------------------------------

use scope::{ident_ending_at, ident_occurrences, is_ident_byte};

/// Collects identifiers declared with a `HashMap`/`HashSet` type or
/// initialised from one (`x: HashMap<..>`, `let x = HashMap::new()`).
fn collect_map_idents(code: &str, idents: &mut BTreeSet<String>) {
    let bytes = code.as_bytes();
    for ty in ["HashMap", "HashSet"] {
        for occ in ident_occurrences(code, ty) {
            // Walk backwards over whitespace, `&`, and `mut` to the sigil
            // that binds the type to a name.
            let mut i = occ;
            loop {
                while i > 0 && bytes[i - 1].is_ascii_whitespace() {
                    i -= 1;
                }
                if i > 0 && bytes[i - 1] == b'&' {
                    i -= 1;
                    continue;
                }
                if i >= 3 && &code[i - 3..i] == "mut" && (i == 3 || !is_ident_byte(bytes[i - 4])) {
                    i -= 3;
                    continue;
                }
                break;
            }
            if i == 0 {
                continue;
            }
            let sigil = bytes[i - 1];
            if sigil == b':' {
                // `name: HashMap<..>` — reject the `::` path case.
                if i >= 2 && bytes[i - 2] == b':' {
                    continue;
                }
                let mut j = i - 1;
                while j > 0 && bytes[j - 1].is_ascii_whitespace() {
                    j -= 1;
                }
                if let Some(name) = ident_ending_at(code, j) {
                    idents.insert(name.to_string());
                }
            } else if sigil == b'=' {
                // `name = HashMap::new()` — reject `==`, `=>`, `+=` etc.
                if i >= 2
                    && matches!(
                        bytes[i - 2],
                        b'=' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'!' | b'&' | b'|' | b'^'
                    )
                {
                    continue;
                }
                let mut j = i - 1;
                while j > 0 && bytes[j - 1].is_ascii_whitespace() {
                    j -= 1;
                }
                if let Some(name) = ident_ending_at(code, j) {
                    if !matches!(name, "if" | "in" | "while" | "match" | "return" | "else") {
                        idents.insert(name.to_string());
                    }
                }
            }
        }
    }
}

const ITER_SUFFIXES: [&str; 10] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
    ".retain(",
];

fn check_map_iter(
    path: &str,
    lineno: usize,
    code: &str,
    idents: &BTreeSet<String>,
    diags: &mut Vec<Diagnostic>,
) {
    let bytes = code.as_bytes();
    for ident in idents {
        for occ in ident_occurrences(code, ident) {
            let after = &code[occ + ident.len()..];
            let flagged_suffix = ITER_SUFFIXES.iter().find(|s| after.starts_with(*s));
            let mut flagged = flagged_suffix.is_some();
            if !flagged {
                // `for x in ident` / `in &ident` / `in &mut ident`.
                let mut i = occ;
                loop {
                    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
                        i -= 1;
                    }
                    if i > 0 && bytes[i - 1] == b'&' {
                        i -= 1;
                        continue;
                    }
                    if i >= 3
                        && &code[i - 3..i] == "mut"
                        && (i == 3 || !is_ident_byte(bytes[i - 4]))
                    {
                        i -= 3;
                        continue;
                    }
                    break;
                }
                if i >= 2 && &code[i - 2..i] == "in" && (i == 2 || !is_ident_byte(bytes[i - 3])) {
                    // Only treat it as a loop when nothing chains a
                    // deterministic accessor after the ident.
                    flagged = after.is_empty() || after.starts_with(' ') || after.starts_with('{');
                }
            }
            if flagged {
                diags.push(diag(
                    path,
                    lineno,
                    Rule::MapIter,
                    format!(
                        "iteration over hash-ordered collection `{ident}`; use BTreeMap/BTreeSet, \
                         sort the keys first, or annotate lint:allow(map-iter)"
                    ),
                ));
                break;
            }
        }
    }
}

const WALLCLOCK_PATTERNS: [(&str, &str); 8] = [
    ("Instant::now", "wall-clock read"),
    ("SystemTime", "wall-clock read"),
    ("thread_rng", "ambient entropy"),
    ("rand::random", "ambient entropy"),
    ("from_entropy", "ambient entropy"),
    ("thread::spawn", "ambient concurrency"),
    ("thread::scope", "ambient concurrency"),
    ("available_parallelism", "ambient concurrency"),
];

fn check_wallclock(path: &str, lineno: usize, code: &str, diags: &mut Vec<Diagnostic>) {
    for (pat, what) in WALLCLOCK_PATTERNS {
        if code.contains(pat) {
            diags.push(diag(
                path,
                lineno,
                Rule::Wallclock,
                format!(
                    "{what} `{pat}` in model code; route randomness through the seeded \
                     SimRng, threads through wsg_sim::pool, or annotate \
                     lint:allow(wallclock)"
                ),
            ));
        }
    }
}

fn has_float_literal(code: &str) -> bool {
    let bytes = code.as_bytes();
    for i in 1..bytes.len().saturating_sub(1) {
        if bytes[i] == b'.' && bytes[i - 1].is_ascii_digit() && bytes[i + 1].is_ascii_digit() {
            return true;
        }
    }
    false
}

fn check_float_cycle(path: &str, lineno: usize, code: &str, diags: &mut Vec<Diagnostic>) {
    if ident_occurrences(code, "Cycle")
        .iter()
        .any(|&occ| occ >= 3 && code[..occ].trim_end().ends_with("as"))
    {
        let floaty = code.contains("f64")
            || code.contains("f32")
            || code.contains(".ceil()")
            || code.contains(".floor()")
            || code.contains(".round()")
            || code.contains(".powf(")
            || has_float_literal(code);
        if floaty {
            diags.push(diag(
                path,
                lineno,
                Rule::FloatCycle,
                "floating-point expression cast into Cycle; keep cycle math in \
                 integers (div_ceil etc.) or annotate lint:allow(float-cycle)"
                    .to_string(),
            ));
        }
    }
}

fn check_unwrap(path: &str, lineno: usize, code: &str, diags: &mut Vec<Diagnostic>) {
    for pat in [".unwrap()", ".expect("] {
        if code.contains(pat) {
            diags.push(diag(
                path,
                lineno,
                Rule::Unwrap,
                format!(
                    "`{pat}..` in model-crate library code; return an error, handle the None \
                     case, or annotate lint:allow(unwrap)"
                ),
            ));
        }
    }
}

/// The optional-handle hooks that d5 guards. All follow the same pattern:
/// a structure stores `Option<Handle>` and gains the hook via `set_*`.
const HOOK_HANDLES: [&str; 3] = ["AuditHandle", "TraceHandle", "TelemetryHandle"];

fn check_hook_pattern(path: &str, lineno: usize, code: &str, diags: &mut Vec<Diagnostic>) {
    // Whole-line exemption for signatures: attach methods legitimately take
    // the handle by value (`fn set_tracer(&mut self, tracer: TraceHandle)`).
    if !ident_occurrences(code, "fn").is_empty() {
        return;
    }
    let bytes = code.as_bytes();
    for needle in HOOK_HANDLES {
        for occ in ident_occurrences(code, needle) {
            let after = &code[occ + needle.len()..];
            if after.starts_with("::") {
                continue; // path expression (`TraceHandle::of`), not a type
            }
            // Walk back over qualifying path segments (`wsg_sim::trace::`)
            // to where the full type path begins.
            let mut i = occ;
            while i >= 2 && bytes[i - 2] == b':' && bytes[i - 1] == b':' {
                i -= 2;
                while i > 0 && is_ident_byte(bytes[i - 1]) {
                    i -= 1;
                }
            }
            // Only type-ascription position is suspect: a single `:` binding
            // the bare handle type to a field or binding. `Option<Handle>`
            // fails this test naturally (the path is preceded by `<`).
            let mut j = i;
            while j > 0 && bytes[j - 1].is_ascii_whitespace() {
                j -= 1;
            }
            if j == 0 || bytes[j - 1] != b':' || (j >= 2 && bytes[j - 2] == b':') {
                continue;
            }
            diags.push(diag(
                path,
                lineno,
                Rule::HookPattern,
                format!(
                    "`{needle}` stored directly; observability hooks must stay optional \
                     (`Option<{needle}>` plus a set_* attach method, like the audit \
                     pattern) or annotate lint:allow(hook-pattern)"
                ),
            ));
            break;
        }
    }
}

/// The entropy-seeded std hash collections that d6 bans from simulator code.
const DEFAULT_HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

fn check_default_hash(path: &str, lineno: usize, code: &str, diags: &mut Vec<Diagnostic>) {
    for ty in DEFAULT_HASH_TYPES {
        if !ident_occurrences(code, ty).is_empty() {
            diags.push(diag(
                path,
                lineno,
                Rule::DefaultHash,
                format!(
                    "`{ty}` seeds its hasher from process entropy (RandomState); use the \
                     deterministic wsg_sim::HashIndex or a BTree collection, or annotate \
                     lint:allow(default-hash)"
                ),
            ));
        }
    }
}

/// d7: shared interior mutability that a future shard boundary cannot cross.
fn check_shared_mut(path: &str, lineno: usize, code: &str, diags: &mut Vec<Diagnostic>) {
    let refcell = !ident_occurrences(code, "RefCell").is_empty();
    let rc = !ident_occurrences(code, "Rc").is_empty();
    if refcell {
        let what = if rc { "Rc<RefCell<..>>" } else { "RefCell" };
        diags.push(diag(
            path,
            lineno,
            Rule::SharedMut,
            format!(
                "`{what}` shared interior mutability in simulator code; a shard boundary \
                 cannot cross it (ROADMAP items 1/3) — use plain indices or owned state, \
                 or annotate lint:allow(shared-mut)"
            ),
        ));
    } else if rc {
        diags.push(diag(
            path,
            lineno,
            Rule::SharedMut,
            "`Rc` shared ownership in simulator code; shared state is a shard hazard \
             (ROADMAP items 1/3) — use plain indices or owned state, or annotate \
             lint:allow(shared-mut)"
                .to_string(),
        ));
    }
    // `Cell<..>` (but not RefCell/UnsafeCell/OnceCell, matched as whole
    // idents above or ignored here).
    if !ident_occurrences(code, "Cell").is_empty() {
        diags.push(diag(
            path,
            lineno,
            Rule::SharedMut,
            "`Cell` interior mutability in simulator code; a shard boundary cannot \
             cross it — use owned state, or annotate lint:allow(shared-mut)"
                .to_string(),
        ));
    }
    if code.contains("static mut") {
        diags.push(diag(
            path,
            lineno,
            Rule::SharedMut,
            "`static mut` global state in simulator code; globals break sharding and \
             determinism — thread state through the engine, or annotate \
             lint:allow(shared-mut)"
                .to_string(),
        ));
    }
    if !ident_occurrences(code, "thread_local").is_empty() {
        diags.push(diag(
            path,
            lineno,
            Rule::SharedMut,
            "`thread_local!` state in simulator code; per-thread state makes results \
             depend on the thread a shard runs on — thread state through the engine, \
             or annotate lint:allow(shared-mut)"
                .to_string(),
        ));
    }
}

/// Field names banned from the deterministic contract string (d10): anything
/// host-side or wall-clock derived. Besides the engine's own host-side
/// fields, this covers the `hdpat::ops` serving-observability vocabulary —
/// request-lifecycle latencies (`*_us`), self-profiler phase buckets
/// (`*_nanos`, `selfprof*`), queue-wait accumulators, and traced stage
/// latencies — none of which may ever leak into the deterministic
/// serialization. Deliberately *not* banned: substrings like `latency` or an
/// `ops_` prefix, which legitimate simulated-time fields (`iommu_latency`,
/// `ops_completed`) already use.
fn det_string_banned(field: &str) -> bool {
    field == "sim_events"
        || field.starts_with("host_")
        || field.contains("wall")
        || field.ends_with("_nanos")
        || field.ends_with("_us")
        || field == "stage_latency"
        || field.contains("queue_wait")
        || field.contains("selfprof")
}

/// d10: inside `to_deterministic_string`, no `self.<host-side field>` reads.
fn check_det_string(
    path: &str,
    lineno: usize,
    code: &str,
    item: &str,
    diags: &mut Vec<Diagnostic>,
) {
    if !(item == "to_deterministic_string" || item.ends_with("::to_deterministic_string")) {
        return;
    }
    let mut start = 0;
    while let Some(pos) = code[start..].find("self.") {
        let at = start + pos + "self.".len();
        let bytes = code.as_bytes();
        let mut end = at;
        while end < bytes.len() && is_ident_byte(bytes[end]) {
            end += 1;
        }
        let field = &code[at..end];
        if det_string_banned(field) {
            diags.push(diag(
                path,
                lineno,
                Rule::DetString,
                format!(
                    "`self.{field}` read inside to_deterministic_string; host-side and \
                     wall-clock fields stay outside the deterministic contract \
                     (run-parity gates compare this string byte-for-byte)"
                ),
            ));
        }
        start = end.max(at);
    }
}

fn diag(path: &str, line: usize, rule: Rule, message: String) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line,
        rule,
        message,
        item: String::new(),
    }
}

// ---------------------------------------------------------------------------
// Per-file analysis and cross-file finalization.
// ---------------------------------------------------------------------------

/// One analysed file: preprocessed source, raw (pre-suppression) hits, and
/// per-allow usage tracking. Produced by [`analyze_file`], consumed by
/// [`finalize`].
pub struct FileAnalysis {
    pub path: String,
    pub pre: PreSource,
    pub rules: RuleSet,
    /// Rule hits before allow suppression.
    pub raw_diags: Vec<Diagnostic>,
}

/// Runs every per-line check on one source text. d8 (cross-line, possibly
/// cross-file) and d9 (needs suppression results) run later in [`finalize`].
pub fn analyze_file(path: &str, source: &str, rules: RuleSet) -> FileAnalysis {
    let pre = scope::preprocess(source);
    let mut map_idents = BTreeSet::new();
    if rules.map_iter {
        for line in &pre.lines {
            if !line.test_code {
                collect_map_idents(&line.code, &mut map_idents);
            }
        }
    }
    let mut raw = Vec::new();
    for (idx, line) in pre.lines.iter().enumerate() {
        if line.test_code || line.code.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let before = raw.len();
        if rules.map_iter {
            check_map_iter(path, lineno, &line.code, &map_idents, &mut raw);
        }
        if rules.wallclock {
            check_wallclock(path, lineno, &line.code, &mut raw);
        }
        if rules.float_cycle {
            check_float_cycle(path, lineno, &line.code, &mut raw);
        }
        if rules.unwrap {
            check_unwrap(path, lineno, &line.code, &mut raw);
        }
        if rules.hook_pattern {
            check_hook_pattern(path, lineno, &line.code, &mut raw);
        }
        if rules.default_hash {
            check_default_hash(path, lineno, &line.code, &mut raw);
        }
        if rules.shared_mut {
            check_shared_mut(path, lineno, &line.code, &mut raw);
        }
        if rules.det_string {
            check_det_string(path, lineno, &line.code, pre.item_at(lineno), &mut raw);
        }
        let item = pre.item_at(lineno);
        if !item.is_empty() {
            let item = item.to_string();
            for d in &mut raw[before..] {
                d.item = item.clone();
            }
        }
    }
    FileAnalysis {
        path: path.to_string(),
        pre,
        rules,
        raw_diags: raw,
    }
}

impl FileAnalysis {
    /// Index of the allow covering `(rule, line)`, if any: same line, the
    /// comment block immediately above, or an enclosing module-scoped allow.
    fn covering_allow(&self, rule: Rule, line: usize) -> Option<usize> {
        let idx = line - 1;
        let lines = &self.pre.lines;
        // Same line.
        for &ai in &lines[idx].allow_ids {
            if self.pre.allows[ai].rule == rule && !self.pre.allows[ai].module_scoped {
                return Some(ai);
            }
        }
        // Comment block (code-empty lines) directly above.
        let mut j = idx;
        while j > 0 {
            j -= 1;
            for &ai in &lines[j].allow_ids {
                if self.pre.allows[ai].rule == rule && !self.pre.allows[ai].module_scoped {
                    return Some(ai);
                }
            }
            if !lines[j].code.trim().is_empty() {
                break;
            }
        }
        // Module-scoped allows covering this line.
        self.pre
            .allows
            .iter()
            .position(|a| a.module_scoped && a.rule == rule && a.line <= line && line <= a.end_line)
    }
}

/// Applies allow suppression and the d9 stale-allow audit across a set of
/// analysed files, plus any cross-file diagnostics (d8) routed to the file
/// that owns their line. Returns the surviving diagnostics sorted by
/// (path, line, rule).
pub fn finalize(files: Vec<FileAnalysis>, cross: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        let mut used = vec![false; file.pre.allows.len()];
        let mut diags: Vec<Diagnostic> = file.raw_diags.clone();
        diags.extend(cross.iter().filter(|d| d.path == file.path).cloned());
        diags.retain(|d| match file.covering_allow(d.rule, d.line) {
            Some(ai) => {
                used[ai] = true;
                false
            }
            None => true,
        });
        if file.rules.stale_allow {
            for (ai, allow) in file.pre.allows.iter().enumerate() {
                let scope_word = if allow.module_scoped {
                    "lint:allow-module"
                } else {
                    "lint:allow"
                };
                let item = file.pre.item_at(allow.line).to_string();
                if !file.rules.contains(allow.rule) {
                    diags.push(Diagnostic {
                        path: file.path.clone(),
                        line: allow.line,
                        rule: Rule::StaleAllow,
                        message: format!(
                            "stale {scope_word}({}): rule {} is not active for this file; \
                             remove the allow",
                            allow.rule.name(),
                            allow.rule.code(),
                        ),
                        item,
                    });
                } else if !used[ai] {
                    diags.push(Diagnostic {
                        path: file.path.clone(),
                        line: allow.line,
                        rule: Rule::StaleAllow,
                        message: format!(
                            "stale {scope_word}({}): the rule no longer fires on the lines \
                             it covers; remove the allow",
                            allow.rule.name(),
                        ),
                        item,
                    });
                } else if !allow.justified {
                    diags.push(Diagnostic {
                        path: file.path.clone(),
                        line: allow.line,
                        rule: Rule::StaleAllow,
                        message: format!(
                            "{scope_word}({}) without a justification; append \
                             `: <why this site is sound>`",
                            allow.rule.name(),
                        ),
                        item,
                    });
                }
            }
        }
        out.extend(diags);
    }
    // Cross diagnostics pointing at files that were not analysed (should not
    // happen, but never drop a finding silently).
    // (Files were consumed above; `cross` entries matching no file path were
    // cloned into none of them.)
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    out
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Lints one source text under the given rule set. `path` is used verbatim in
/// diagnostics. d8 runs against this file's registrations alone.
pub fn lint_source(path: &str, source: &str, rules: RuleSet) -> Vec<Diagnostic> {
    let file = analyze_file(path, source, rules);
    let cross = if rules.site_registry {
        registry::check(&registry::collect(&file))
    } else {
        Vec::new()
    };
    finalize(vec![file], cross)
}

/// Decides which rules apply to a workspace-relative path.
///
/// * Library code (`src/`) of every crate: `map-iter`, `wallclock`,
///   `float-cycle`; plus `unwrap` for the five model crates
///   (sim, noc, xlat, mem, gpu), and `default-hash`, `shared-mut`,
///   `site-registry`, and `det-string` for the simulator crates (the five
///   model crates, `core`, `workloads`, and the facade) — the `bench`
///   CLI/report code runs host-side and may hash/share freely.
/// * `crates/sim/src/rng.rs` (the sanctioned entropy boundary) and
///   `crates/sim/src/pool.rs` (the sanctioned thread-spawning site for
///   deterministic sweeps) are exempt from `wallclock`;
///   `crates/sim/src/index.rs` (the seeded deterministic hash index that
///   replaces the std types) is exempt from `default-hash`.
/// * Examples: `wallclock` + `float-cycle` (they drive the model but may
///   legitimately format host output).
/// * `stale-allow` is active wherever any other rule is.
/// * Tests and benches: no rules — assertions may iterate maps freely.
/// * Vendored tooling (`crates/xtask`, `crates/proptest`, `crates/criterion`)
///   is not model code and is skipped entirely.
pub fn classify(rel: &Path) -> RuleSet {
    let comps: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    match comps.as_slice() {
        ["crates", krate, section, rest @ ..] => {
            if matches!(*krate, "xtask" | "proptest" | "criterion") {
                return RuleSet::none();
            }
            match *section {
                "src" => {
                    let simulator = matches!(
                        *krate,
                        "sim" | "noc" | "xlat" | "mem" | "gpu" | "core" | "workloads"
                    );
                    let mut rules = RuleSet {
                        map_iter: true,
                        wallclock: true,
                        float_cycle: true,
                        unwrap: matches!(*krate, "sim" | "noc" | "xlat" | "mem" | "gpu"),
                        hook_pattern: true,
                        default_hash: simulator,
                        shared_mut: simulator,
                        site_registry: simulator,
                        stale_allow: true,
                        det_string: simulator,
                    };
                    if *krate == "sim" && (rest == ["rng.rs"] || rest == ["pool.rs"]) {
                        rules.wallclock = false;
                    }
                    if *krate == "sim" && rest == ["index.rs"] {
                        // The seeded replacement itself: its docs discuss the
                        // std types, and it is the one sanctioned home for
                        // open-addressing hash code.
                        rules.default_hash = false;
                    }
                    rules
                }
                "examples" => RuleSet {
                    wallclock: true,
                    float_cycle: true,
                    stale_allow: true,
                    ..RuleSet::none()
                },
                _ => RuleSet::none(),
            }
        }
        ["src", ..] => RuleSet {
            map_iter: true,
            wallclock: true,
            float_cycle: true,
            hook_pattern: true,
            default_hash: true,
            shared_mut: true,
            site_registry: true,
            stale_allow: true,
            det_string: true,
            ..RuleSet::none()
        },
        ["examples", ..] => RuleSet {
            wallclock: true,
            float_cycle: true,
            stale_allow: true,
            ..RuleSet::none()
        },
        _ => RuleSet::none(),
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .and_then(|s| s.to_str())
                .unwrap_or_default();
            if matches!(name, "target" | ".git") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().and_then(|s| s.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Lints the whole workspace rooted at `root`, classifying each file by its
/// relative path. Site-id registrations (d8) are merged across files before
/// checking. File order (and thus diagnostic order) is deterministic.
pub fn lint_workspace(root: &Path) -> Report {
    let mut paths = Vec::new();
    collect_rs_files(root, &mut paths);
    let mut files = Vec::new();
    let mut report = Report::default();
    for file in paths {
        let rel = file.strip_prefix(root).unwrap_or(&file);
        let rules = classify(rel);
        if rules.is_empty() {
            continue;
        }
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        report.files_scanned += 1;
        files.push(analyze_file(&rel.display().to_string(), &source, rules));
    }
    let mut regs = Vec::new();
    for file in &files {
        if file.rules.site_registry {
            regs.extend(registry::collect(file));
        }
    }
    report.diagnostics = finalize(files, registry::check(&regs));
    report
}

/// Lints an explicit file or directory with every rule enabled — used for
/// fixtures and ad-hoc checks (`cargo run -p xtask -- lint path/to/file.rs`).
pub fn lint_path(path: &Path) -> Report {
    let mut paths = Vec::new();
    if path.is_dir() {
        collect_rs_files(path, &mut paths);
    } else {
        paths.push(path.to_path_buf());
    }
    let mut report = Report::default();
    let mut files = Vec::new();
    for file in paths {
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        report.files_scanned += 1;
        files.push(analyze_file(
            &file.display().to_string(),
            &source,
            RuleSet::all(),
        ));
    }
    let mut regs = Vec::new();
    for file in &files {
        regs.extend(registry::collect(file));
    }
    report.diagnostics = finalize(files, registry::check(&regs));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_region_is_skipped() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\npub fn h() { y.unwrap(); }\n";
        let diags = lint_source("t.rs", src, RuleSet::all());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 6);
        assert_eq!(diags[0].rule, Rule::Unwrap);
        assert_eq!(diags[0].item, "h");
    }

    #[test]
    fn map_idents_are_collected() {
        let mut set = BTreeSet::new();
        collect_map_idents("pub links: HashMap<(Coord, Coord), LinkState>,", &mut set);
        collect_map_idents("let mut seen = HashSet::new();", &mut set);
        collect_map_idents("fn f(m: &HashMap<u32, u32>) {}", &mut set);
        collect_map_idents("use std::collections::HashMap;", &mut set);
        let names: Vec<&str> = set.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["links", "m", "seen"]);
    }

    #[test]
    fn map_iteration_is_flagged() {
        let src = "struct S { links: HashMap<u32, u32> }\nfn f(s: &S) { for (k, v) in s.links.iter() {} }\nfn g(s: &S) -> Option<&u32> { s.links.get(&1) }\n";
        let diags = lint_source("t.rs", src, RuleSet::all());
        let map_iter: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == Rule::MapIter).collect();
        assert_eq!(map_iter.len(), 1);
        assert_eq!(map_iter[0].line, 2);
        assert_eq!(map_iter[0].item, "f");
        // The declaration line itself is a d6 hit, not a d1 hit.
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::DefaultHash && d.line == 1));
    }

    #[test]
    fn for_loop_over_map_is_flagged() {
        let src =
            "fn f() { let mut m = HashMap::new(); m.insert(1, 2); for x in &m { let _ = x; } }\n";
        let diags = lint_source("t.rs", src, RuleSet::all());
        assert!(diags.iter().any(|d| d.rule == Rule::MapIter));
    }

    #[test]
    fn allow_on_same_or_previous_line() {
        let src = "fn f() { t.unwrap() } // lint:allow(unwrap): fixture.\n// lint:allow(d4): fixture.\nfn g() { t.unwrap() }\nfn h() { t.unwrap() }\n";
        let diags = lint_source("t.rs", src, RuleSet::all());
        assert_eq!(diags.len(), 1, "diags: {diags:#?}");
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn allow_carries_across_a_comment_block() {
        let src = "// lint:allow(d4): justified at length,\n// over several comment lines.\nfn g() { t.unwrap() }\nfn h() { t.unwrap() }\n";
        let diags = lint_source("t.rs", src, RuleSet::all());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn module_allow_covers_whole_scope() {
        let src = "mod hot {\n    // lint:allow-module(unwrap): audited panic-free inputs.\n    fn f() { t.unwrap() }\n    fn g() { t.unwrap() }\n}\nfn h() { t.unwrap() }\n";
        let diags = lint_source("t.rs", src, RuleSet::all());
        assert_eq!(diags.len(), 1, "diags: {diags:#?}");
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn stale_allow_is_flagged() {
        let src = "// lint:allow(unwrap): nothing below unwraps anymore.\nfn f() -> u32 { 1 }\n";
        let diags = lint_source("t.rs", src, RuleSet::all());
        assert_eq!(diags.len(), 1, "diags: {diags:#?}");
        assert_eq!(diags[0].rule, Rule::StaleAllow);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn unjustified_allow_is_flagged() {
        let src = "fn f() { t.unwrap() } // lint:allow(unwrap)\n";
        let diags = lint_source("t.rs", src, RuleSet::all());
        assert_eq!(diags.len(), 1, "diags: {diags:#?}");
        assert_eq!(diags[0].rule, Rule::StaleAllow);
        assert!(diags[0].message.contains("justification"));
    }

    #[test]
    fn stale_allow_cannot_be_allowed() {
        // An allow for d9 itself never suppresses a d9 diagnostic (and is
        // reported stale in turn).
        let src = "// lint:allow(stale-allow): try to silence the auditor.\n// lint:allow(unwrap): stale.\nfn f() -> u32 { 1 }\n";
        let diags = lint_source("t.rs", src, RuleSet::all());
        assert!(
            diags.iter().all(|d| d.rule == Rule::StaleAllow),
            "diags: {diags:#?}"
        );
        assert_eq!(diags.len(), 2, "diags: {diags:#?}");
    }

    #[test]
    fn float_cycle_flagged_only_in_float_context() {
        let all = RuleSet::all();
        let bad = lint_source("t.rs", "let c = (b as f64 / r).ceil() as Cycle;\n", all);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, Rule::FloatCycle);
        let ok = lint_source("t.rs", "let c = (b / r) as Cycle;\n", all);
        assert!(ok.is_empty());
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let diags = lint_source(
            "t.rs",
            "let x = m.get(&1).copied().unwrap_or(0);\n",
            RuleSet::all(),
        );
        assert!(diags.is_empty());
    }

    #[test]
    fn hook_pattern_requires_optional_handles() {
        let all = RuleSet::all();
        let bad = lint_source("t.rs", "pub struct S { tracer: TraceHandle }\n", all);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, Rule::HookPattern);
        let qualified = lint_source("t.rs", "    auditor: wsg_sim::audit::AuditHandle,\n", all);
        assert_eq!(qualified.len(), 1);
        for ok in [
            "    tracer: Option<TraceHandle>,\n",
            "    auditor: Option<wsg_sim::audit::AuditHandle>,\n",
            "    pub fn set_tracer(&mut self, tracer: TraceHandle) {\n",
            "        let h = TraceHandle::of(sink);\n",
            "use wsg_sim::trace::TraceHandle;\n",
            // The sink's own storage line is fine for d5 (it IS the shared
            // handle) — d7 flags it instead.
            "pub struct TraceHandle(Rc<RefCell<TraceSink>>);\n",
        ] {
            assert!(
                lint_source("t.rs", ok, all)
                    .iter()
                    .all(|d| d.rule != Rule::HookPattern),
                "flagged: {ok}"
            );
        }
    }

    #[test]
    fn shared_mut_flags_each_pattern() {
        let all = RuleSet::all();
        for (src, frag) in [
            (
                "pub struct H(std::rc::Rc<std::cell::RefCell<Sink>>);\n",
                "Rc<RefCell<..>>",
            ),
            ("    inner: RefCell<State>,\n", "RefCell"),
            ("    count: Cell<u64>,\n", "Cell"),
            ("static mut COUNTER: u64 = 0;\n", "static mut"),
            ("thread_local! { static TLS: u32 = 0; }\n", "thread_local"),
        ] {
            let diags = lint_source("t.rs", src, all);
            assert!(
                diags
                    .iter()
                    .any(|d| d.rule == Rule::SharedMut && d.message.contains(frag)),
                "missing {frag} hit in: {diags:#?}"
            );
        }
        for ok in [
            "    slot: OnceCell<u32>,\n",
            "let rc = compute_rc(x);\n",
            "// Rc<RefCell<..>> discussed in a comment\n",
            "    arc: Arc<u64>,\n",
        ] {
            assert!(
                lint_source("t.rs", ok, all)
                    .iter()
                    .all(|d| d.rule != Rule::SharedMut),
                "flagged: {ok}"
            );
        }
    }

    #[test]
    fn det_string_flags_host_fields_only_inside_the_contract_fn() {
        let all = RuleSet::all();
        let bad = "impl Metrics {\n    pub fn to_deterministic_string(&self) -> String {\n        format!(\"{} {}\", self.total_cycles, self.host_wall_nanos)\n    }\n}\n";
        let diags = lint_source("t.rs", bad, all);
        assert_eq!(diags.len(), 1, "diags: {diags:#?}");
        assert_eq!(diags[0].rule, Rule::DetString);
        assert_eq!(diags[0].line, 3);
        assert_eq!(diags[0].item, "Metrics::to_deterministic_string");
        let sim_events = bad.replace("host_wall_nanos", "sim_events");
        assert_eq!(lint_source("t.rs", &sim_events, all).len(), 1);
        // The same read outside the contract fn is fine.
        let ok = "impl Metrics {\n    pub fn host_summary(&self) -> u64 {\n        self.host_wall_nanos\n    }\n}\n";
        assert!(lint_source("t.rs", ok, all).is_empty());
    }

    #[test]
    fn det_string_bans_the_ops_observability_vocabulary() {
        let all = RuleSet::all();
        // Every member of the `hdpat::ops` wall-clock vocabulary is caught
        // inside the contract fn...
        for field in [
            "queue_wait_us",
            "service_us",
            "total_us",
            "dispatch_nanos",
            "merge_nanos",
            "selfprof",
            "stage_latency",
        ] {
            let src = format!(
                "impl Metrics {{\n    pub fn to_deterministic_string(&self) -> String {{\n        format!(\"{{}}\", self.{field})\n    }}\n}}\n"
            );
            let diags = lint_source("t.rs", &src, all);
            assert_eq!(diags.len(), 1, "field {field} not flagged: {diags:#?}");
            assert_eq!(diags[0].rule, Rule::DetString);
        }
        // ...while legitimate simulated-time fields that merely *sound*
        // latency-ish stay usable.
        for field in ["iommu_latency", "ops_completed", "total_cycles"] {
            let src = format!(
                "impl Metrics {{\n    pub fn to_deterministic_string(&self) -> String {{\n        format!(\"{{}}\", self.{field})\n    }}\n}}\n"
            );
            assert!(
                lint_source("t.rs", &src, all).is_empty(),
                "false positive on {field}"
            );
        }
    }

    #[test]
    fn classify_scopes_rules_by_path() {
        let lib = classify(Path::new("crates/sim/src/event.rs"));
        assert!(lib.map_iter && lib.wallclock && lib.float_cycle && lib.unwrap);
        assert!(lib.default_hash && lib.shared_mut && lib.site_registry && lib.det_string);
        assert!(lib.stale_allow);
        let rng = classify(Path::new("crates/sim/src/rng.rs"));
        assert!(!rng.wallclock && rng.map_iter && rng.shared_mut);
        let pool = classify(Path::new("crates/sim/src/pool.rs"));
        assert!(!pool.wallclock && pool.map_iter && pool.unwrap);
        let core = classify(Path::new("crates/core/src/sim/mod.rs"));
        assert!(core.map_iter && !core.unwrap && core.default_hash && core.shared_mut);
        assert!(classify(Path::new("crates/xtask/src/lib.rs")).is_empty());
        assert!(classify(Path::new("crates/sim/tests/t.rs")).is_empty());
        assert!(classify(Path::new("tests/invariants.rs")).is_empty());
        let ex = classify(Path::new("examples/ablation_sweep.rs"));
        assert!(ex.wallclock && !ex.unwrap && ex.stale_allow && !ex.shared_mut);
        let facade = classify(Path::new("src/lib.rs"));
        assert!(facade.map_iter && !facade.unwrap && facade.default_hash && facade.shared_mut);
    }

    #[test]
    fn default_hash_scope_and_exemption() {
        // The seeded index is the one sanctioned hash file.
        let index = classify(Path::new("crates/sim/src/index.rs"));
        assert!(!index.default_hash && index.map_iter && index.unwrap);
        // Host-side bench/report code may hash and share freely.
        let bench = classify(Path::new("crates/bench/src/bin/hdpat-sim.rs"));
        assert!(!bench.default_hash && bench.map_iter && !bench.shared_mut);
        // The telemetry flight recorder earns no exemption in classify: its
        // shared-handle internals carry an explicit module-scoped allow in
        // the source instead.
        let telemetry = classify(Path::new("crates/sim/src/telemetry.rs"));
        assert!(telemetry.default_hash && telemetry.unwrap && telemetry.hook_pattern);
        assert_eq!(telemetry, RuleSet::all());
    }

    #[test]
    fn default_hash_flags_types_without_iteration() {
        let all = RuleSet::all();
        let bad = lint_source("t.rs", "use std::collections::HashMap;\n", all);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, Rule::DefaultHash);
        let set = lint_source("t.rs", "let s = std::collections::HashSet::new();\n", all);
        assert!(set.iter().any(|d| d.rule == Rule::DefaultHash));
        for ok in [
            "let m = BTreeMap::new();\n",
            "let ix = wsg_sim::HashIndex::new();\n",
            "// HashMap discussed in a comment only\n",
            "let s = \"HashMap\";\n",
            "let x = my_hash_map();\n",
            "let m = std::collections::HashMap::new(); // lint:allow(d6): fixture.\n",
        ] {
            assert!(
                lint_source("t.rs", ok, all)
                    .iter()
                    .all(|d| d.rule != Rule::DefaultHash),
                "flagged: {ok}"
            );
        }
    }

    #[test]
    fn rule_parse_round_trips() {
        for rule in Rule::ALL {
            assert_eq!(Rule::parse(rule.name()), Some(rule));
            assert_eq!(Rule::parse(rule.code()), Some(rule));
        }
        assert_eq!(Rule::parse("d11"), None);
    }

    #[test]
    fn diagnostic_display_format() {
        let d = Diagnostic {
            path: "crates/sim/src/event.rs".into(),
            line: 42,
            rule: Rule::MapIter,
            message: "msg".into(),
            item: String::new(),
        };
        assert_eq!(d.to_string(), "crates/sim/src/event.rs:42: [map-iter] msg");
        let with_item = Diagnostic {
            item: "EventQueue::push".into(),
            ..d
        };
        assert_eq!(
            with_item.to_string(),
            "crates/sim/src/event.rs:42: [map-iter] msg (in EventQueue::push)"
        );
    }

    #[test]
    fn report_json_is_well_formed() {
        let report = Report {
            files_scanned: 2,
            diagnostics: vec![Diagnostic {
                path: "a.rs".into(),
                line: 7,
                rule: Rule::SharedMut,
                message: "a \"quoted\" message".into(),
                item: "S::f".into(),
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"rule\": \"shared-mut\""));
        assert!(json.contains("\"code\": \"d7\""));
        assert!(json.contains("\\\"quoted\\\""));
        let empty = Report::default().to_json();
        assert!(empty.contains("\"diagnostics\": []"));
    }
}
