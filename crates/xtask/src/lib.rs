//! Determinism lint pass for the HDPAT workspace (`cargo run -p xtask -- lint`).
//!
//! Six rules, documented in DESIGN.md under "Determinism & audit policy":
//!
//! * `map-iter` (d1) — no iteration over `HashMap`/`HashSet` in library code.
//!   Hash iteration order depends on `RandomState`, so any model behaviour or
//!   output derived from it varies run to run.
//! * `wallclock` (d2) — no wall-clock reads, ambient entropy
//!   (`Instant::now`, `SystemTime`, `thread_rng`, `rand::random`,
//!   `from_entropy`), or ambient concurrency (`thread::spawn`,
//!   `thread::scope`, `available_parallelism`) in model code. The two
//!   sanctioned boundaries are `SimRng` (`crates/sim/src/rng.rs`) for
//!   randomness and the sweep worker pool (`crates/sim/src/pool.rs`) for
//!   threads; see DESIGN.md §9 for why the pool cannot leak scheduling
//!   order into results.
//! * `float-cycle` (d3) — no floating-point expression cast into `Cycle`.
//!   Float rounding makes cycle accounting platform- and optimisation-level
//!   sensitive; cycle math must stay in integers.
//! * `unwrap` (d4) — no `.unwrap()` / `.expect(...)` in non-test library code
//!   of the five model crates (sim, noc, xlat, mem, gpu). Panics there abort
//!   mid-simulation with no indication of which seed/config was running.
//! * `hook-pattern` (d5) — observability handles (`AuditHandle`,
//!   `TraceHandle`) must be held as `Option<...>` fields attached via a
//!   `set_*` method, never stored directly. A mandatory handle would make
//!   the audit/trace features load-bearing instead of purely observational
//!   (DESIGN.md §10). Function signatures are exempt — attach methods take
//!   the handle by value before storing it optionally.
//! * `default-hash` (d6) — no `std::collections::HashMap`/`HashSet` at all in
//!   simulator-crate library code. Even without iteration (which d1 catches),
//!   the default `RandomState` hasher seeds from process entropy, so capacity
//!   growth, probe order, and any future refactor that starts iterating are
//!   all nondeterminism hazards. The sanctioned replacement is the seeded
//!   `wsg_sim::HashIndex` (`crates/sim/src/index.rs`, the one exempt file) or
//!   a BTree collection; see DESIGN.md §11.
//!
//! Any site can opt out with `// lint:allow(<rule>)` on the same line or in
//! the comment block immediately above; rules are named by slug (`map-iter`)
//! or code (`d1`). The linter strips comments and string literals and skips
//! `#[cfg(test)]` regions, but it is a line scanner, not a parser — it trades
//! completeness for having zero dependencies.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// The six determinism rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// d1: iteration over a hash-ordered collection.
    MapIter,
    /// d2: wall-clock or ambient-entropy source outside SimRng.
    Wallclock,
    /// d3: floating-point expression cast into `Cycle`.
    FloatCycle,
    /// d4: `.unwrap()` / `.expect(...)` in model-crate library code.
    Unwrap,
    /// d5: an observability handle stored directly instead of `Option<...>`.
    HookPattern,
    /// d6: an entropy-seeded `HashMap`/`HashSet` in simulator-crate code.
    DefaultHash,
}

impl Rule {
    /// Human-readable slug used in diagnostics and `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::MapIter => "map-iter",
            Rule::Wallclock => "wallclock",
            Rule::FloatCycle => "float-cycle",
            Rule::Unwrap => "unwrap",
            Rule::HookPattern => "hook-pattern",
            Rule::DefaultHash => "default-hash",
        }
    }

    /// Short code (d1..d6), also accepted inside `lint:allow(...)`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::MapIter => "d1",
            Rule::Wallclock => "d2",
            Rule::FloatCycle => "d3",
            Rule::Unwrap => "d4",
            Rule::HookPattern => "d5",
            Rule::DefaultHash => "d6",
        }
    }

    /// Parses either the slug or the code; unknown tokens yield `None`.
    pub fn parse(token: &str) -> Option<Rule> {
        match token {
            "map-iter" | "d1" => Some(Rule::MapIter),
            "wallclock" | "d2" => Some(Rule::Wallclock),
            "float-cycle" | "d3" => Some(Rule::FloatCycle),
            "unwrap" | "d4" => Some(Rule::Unwrap),
            "hook-pattern" | "d5" => Some(Rule::HookPattern),
            "default-hash" | "d6" => Some(Rule::DefaultHash),
            _ => None,
        }
    }
}

/// One lint finding, formatted as `path:line: [rule] message`.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    pub path: String,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Which rules apply to a given file; decided by [`classify`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleSet {
    pub map_iter: bool,
    pub wallclock: bool,
    pub float_cycle: bool,
    pub unwrap: bool,
    pub hook_pattern: bool,
    pub default_hash: bool,
}

impl RuleSet {
    pub fn all() -> Self {
        RuleSet {
            map_iter: true,
            wallclock: true,
            float_cycle: true,
            unwrap: true,
            hook_pattern: true,
            default_hash: true,
        }
    }

    pub fn none() -> Self {
        RuleSet::default()
    }

    pub fn is_empty(&self) -> bool {
        *self == RuleSet::none()
    }
}

/// Result of linting a tree: how many files were actually scanned (after
/// classification) and every diagnostic found.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
}

// ---------------------------------------------------------------------------
// Source preprocessing: comment/string stripping, cfg(test) regions, allows.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct PreLine {
    /// Line content with comments removed and string/char literal contents
    /// blanked out (each skipped byte becomes a space, so token boundaries
    /// survive but no literal text can trigger a rule).
    code: String,
    /// Rules named by `lint:allow(...)` anywhere on the raw line.
    allows: Vec<Rule>,
    /// True inside a `#[cfg(test)]` item: no rules apply.
    test_code: bool,
}

#[derive(Clone, Copy)]
enum ScanState {
    Normal,
    /// Nested block comment depth.
    Block(u32),
    Str,
    /// Raw string, closing delimiter is `"` followed by this many `#`.
    RawStr(u8),
}

fn parse_allows(raw: &str) -> Vec<Rule> {
    let mut out = Vec::new();
    let mut rest = raw;
    while let Some(i) = rest.find("lint:allow(") {
        rest = &rest[i + "lint:allow(".len()..];
        let Some(end) = rest.find(')') else { break };
        for token in rest[..end].split(',') {
            if let Some(rule) = Rule::parse(token.trim()) {
                out.push(rule);
            }
        }
        rest = &rest[end..];
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Strips one line according to the carried scanner state, returning the
/// blanked code text and the state at end of line.
fn strip_line(raw: &str, mut state: ScanState) -> (String, ScanState) {
    let bytes = raw.as_bytes();
    let len = bytes.len();
    let mut code = Vec::with_capacity(len);
    let mut i = 0;
    while i < len {
        match state {
            ScanState::Block(depth) => {
                if bytes[i] == b'/' && i + 1 < len && bytes[i + 1] == b'*' {
                    state = ScanState::Block(depth + 1);
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < len && bytes[i + 1] == b'/' {
                    state = if depth == 1 {
                        ScanState::Normal
                    } else {
                        ScanState::Block(depth - 1)
                    };
                    i += 2;
                } else {
                    i += 1;
                }
                code.push(b' ');
            }
            ScanState::Str => {
                if bytes[i] == b'\\' {
                    i += 2;
                    code.push(b' ');
                } else if bytes[i] == b'"' {
                    state = ScanState::Normal;
                    i += 1;
                    code.push(b' ');
                } else {
                    i += 1;
                    code.push(b' ');
                }
            }
            ScanState::RawStr(hashes) => {
                if bytes[i] == b'"' {
                    let h = hashes as usize;
                    if i + h < len
                        && bytes[i + 1..].len() >= h
                        && bytes[i + 1..i + 1 + h].iter().all(|&b| b == b'#')
                    {
                        state = ScanState::Normal;
                        i += 1 + h;
                        code.push(b' ');
                        continue;
                    }
                }
                i += 1;
                code.push(b' ');
            }
            ScanState::Normal => {
                let b = bytes[i];
                let prev_is_ident = i > 0 && is_ident_byte(bytes[i - 1]);
                if b == b'/' && i + 1 < len && bytes[i + 1] == b'/' {
                    // Line comment: rest of the line is gone.
                    break;
                } else if b == b'/' && i + 1 < len && bytes[i + 1] == b'*' {
                    state = ScanState::Block(1);
                    i += 2;
                    code.push(b' ');
                } else if b == b'"' {
                    state = ScanState::Str;
                    i += 1;
                    code.push(b' ');
                } else if (b == b'r' || b == b'b') && !prev_is_ident {
                    // Possible raw/byte string prefix: r", r#", br", br#".
                    let mut j = i + 1;
                    if b == b'b' && j < len && bytes[j] == b'r' {
                        j += 1;
                    } else if b == b'b' {
                        // b"..." or b'.' fall through to plain handling below.
                        j = i + 1;
                        if j < len && bytes[j] == b'"' {
                            state = ScanState::Str;
                            i = j + 1;
                            code.push(b' ');
                            code.push(b' ');
                            continue;
                        }
                        code.push(b);
                        i += 1;
                        continue;
                    }
                    let mut hashes = 0u8;
                    while j < len && bytes[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if b == b'r' && hashes == 0 && j == i + 1 && (j >= len || bytes[j] != b'"') {
                        // Just the identifier letter `r`.
                        code.push(b);
                        i += 1;
                        continue;
                    }
                    if j < len && bytes[j] == b'"' {
                        state = ScanState::RawStr(hashes);
                        code.extend(std::iter::repeat_n(b' ', j - i + 1));
                        i = j + 1;
                    } else {
                        code.push(b);
                        i += 1;
                    }
                } else if b == b'\'' {
                    // Char literal vs lifetime.
                    if i + 1 < len && bytes[i + 1] == b'\\' {
                        let mut j = i + 3; // skip the escaped byte
                        while j < len && bytes[j] != b'\'' {
                            j += 1;
                        }
                        code.extend(std::iter::repeat_n(b' ', j.min(len - 1) - i + 1));
                        i = j + 1;
                    } else if i + 2 < len && bytes[i + 2] == b'\'' && bytes[i + 1] != b'\'' {
                        code.push(b' ');
                        code.push(b' ');
                        code.push(b' ');
                        i += 3;
                    } else {
                        // Lifetime tick: drop the tick, keep the name.
                        code.push(b' ');
                        i += 1;
                    }
                } else {
                    code.push(b);
                    i += 1;
                }
            }
        }
    }
    (String::from_utf8_lossy(&code).into_owned(), state)
}

fn preprocess(source: &str) -> Vec<PreLine> {
    let mut out = Vec::new();
    let mut state = ScanState::Normal;
    for raw in source.lines() {
        let allows = parse_allows(raw);
        let (code, next) = strip_line(raw, state);
        state = next;
        out.push(PreLine {
            code,
            allows,
            test_code: false,
        });
    }
    mark_test_regions(&mut out);
    out
}

/// Marks every line belonging to a `#[cfg(test)]` item (attribute line
/// through the matching close brace) as test code.
fn mark_test_regions(lines: &mut [PreLine]) {
    let mut pending_attr = false;
    let mut depth: i64 = 0;
    let mut in_region = false;
    for line in lines.iter_mut() {
        if in_region {
            line.test_code = true;
            depth += brace_delta(&line.code);
            if depth <= 0 {
                in_region = false;
            }
            continue;
        }
        if line.code.contains("#[cfg(test)]") || line.code.contains("#[cfg(all(test") {
            pending_attr = true;
            line.test_code = true;
            continue;
        }
        if pending_attr {
            line.test_code = true;
            if line.code.contains('{') {
                pending_attr = false;
                depth = brace_delta(&line.code);
                in_region = depth > 0;
            }
        }
    }
}

fn brace_delta(code: &str) -> i64 {
    let mut d = 0i64;
    for b in code.bytes() {
        match b {
            b'{' => d += 1,
            b'}' => d -= 1,
            _ => {}
        }
    }
    d
}

// ---------------------------------------------------------------------------
// Rule checks.
// ---------------------------------------------------------------------------

/// Every occurrence of `needle` in `hay` that stands alone as an identifier.
fn ident_occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let i = start + pos;
        let before_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
        let end = i + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(i);
        }
        start = i + needle.len();
    }
    out
}

/// Reads the identifier that ends at byte `end` (exclusive), if any.
fn ident_ending_at(code: &str, end: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    if start == end {
        None
    } else {
        Some(&code[start..end])
    }
}

/// Collects identifiers declared with a `HashMap`/`HashSet` type or
/// initialised from one (`x: HashMap<..>`, `let x = HashMap::new()`).
fn collect_map_idents(code: &str, idents: &mut BTreeSet<String>) {
    let bytes = code.as_bytes();
    for ty in ["HashMap", "HashSet"] {
        for occ in ident_occurrences(code, ty) {
            // Walk backwards over whitespace, `&`, and `mut` to the sigil
            // that binds the type to a name.
            let mut i = occ;
            loop {
                while i > 0 && bytes[i - 1].is_ascii_whitespace() {
                    i -= 1;
                }
                if i > 0 && bytes[i - 1] == b'&' {
                    i -= 1;
                    continue;
                }
                if i >= 3 && &code[i - 3..i] == "mut" && (i == 3 || !is_ident_byte(bytes[i - 4])) {
                    i -= 3;
                    continue;
                }
                break;
            }
            if i == 0 {
                continue;
            }
            let sigil = bytes[i - 1];
            if sigil == b':' {
                // `name: HashMap<..>` — reject the `::` path case.
                if i >= 2 && bytes[i - 2] == b':' {
                    continue;
                }
                let mut j = i - 1;
                while j > 0 && bytes[j - 1].is_ascii_whitespace() {
                    j -= 1;
                }
                if let Some(name) = ident_ending_at(code, j) {
                    idents.insert(name.to_string());
                }
            } else if sigil == b'=' {
                // `name = HashMap::new()` — reject `==`, `=>`, `+=` etc.
                if i >= 2
                    && matches!(
                        bytes[i - 2],
                        b'=' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'!' | b'&' | b'|' | b'^'
                    )
                {
                    continue;
                }
                let mut j = i - 1;
                while j > 0 && bytes[j - 1].is_ascii_whitespace() {
                    j -= 1;
                }
                if let Some(name) = ident_ending_at(code, j) {
                    if !matches!(name, "if" | "in" | "while" | "match" | "return" | "else") {
                        idents.insert(name.to_string());
                    }
                }
            }
        }
    }
}

const ITER_SUFFIXES: [&str; 10] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
    ".retain(",
];

fn check_map_iter(
    path: &str,
    lineno: usize,
    code: &str,
    idents: &BTreeSet<String>,
    diags: &mut Vec<Diagnostic>,
) {
    let bytes = code.as_bytes();
    for ident in idents {
        for occ in ident_occurrences(code, ident) {
            let after = &code[occ + ident.len()..];
            let flagged_suffix = ITER_SUFFIXES.iter().find(|s| after.starts_with(*s));
            let mut flagged = flagged_suffix.is_some();
            if !flagged {
                // `for x in ident` / `in &ident` / `in &mut ident`.
                let mut i = occ;
                loop {
                    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
                        i -= 1;
                    }
                    if i > 0 && bytes[i - 1] == b'&' {
                        i -= 1;
                        continue;
                    }
                    if i >= 3
                        && &code[i - 3..i] == "mut"
                        && (i == 3 || !is_ident_byte(bytes[i - 4]))
                    {
                        i -= 3;
                        continue;
                    }
                    break;
                }
                if i >= 2 && &code[i - 2..i] == "in" && (i == 2 || !is_ident_byte(bytes[i - 3])) {
                    // Only treat it as a loop when nothing chains a
                    // deterministic accessor after the ident.
                    flagged = after.is_empty() || after.starts_with(' ') || after.starts_with('{');
                }
            }
            if flagged {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: lineno,
                    rule: Rule::MapIter,
                    message: format!(
                        "iteration over hash-ordered collection `{ident}`; use BTreeMap/BTreeSet, \
                         sort the keys first, or annotate lint:allow(map-iter)"
                    ),
                });
                break;
            }
        }
    }
}

const WALLCLOCK_PATTERNS: [(&str, &str); 8] = [
    ("Instant::now", "wall-clock read"),
    ("SystemTime", "wall-clock read"),
    ("thread_rng", "ambient entropy"),
    ("rand::random", "ambient entropy"),
    ("from_entropy", "ambient entropy"),
    ("thread::spawn", "ambient concurrency"),
    ("thread::scope", "ambient concurrency"),
    ("available_parallelism", "ambient concurrency"),
];

fn check_wallclock(path: &str, lineno: usize, code: &str, diags: &mut Vec<Diagnostic>) {
    for (pat, what) in WALLCLOCK_PATTERNS {
        if code.contains(pat) {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: lineno,
                rule: Rule::Wallclock,
                message: format!(
                    "{what} `{pat}` in model code; route randomness through the seeded \
                     SimRng, threads through wsg_sim::pool, or annotate \
                     lint:allow(wallclock)"
                ),
            });
        }
    }
}

fn has_float_literal(code: &str) -> bool {
    let bytes = code.as_bytes();
    for i in 1..bytes.len().saturating_sub(1) {
        if bytes[i] == b'.' && bytes[i - 1].is_ascii_digit() && bytes[i + 1].is_ascii_digit() {
            return true;
        }
    }
    false
}

fn check_float_cycle(path: &str, lineno: usize, code: &str, diags: &mut Vec<Diagnostic>) {
    if ident_occurrences(code, "Cycle")
        .iter()
        .any(|&occ| occ >= 3 && code[..occ].trim_end().ends_with("as"))
    {
        let floaty = code.contains("f64")
            || code.contains("f32")
            || code.contains(".ceil()")
            || code.contains(".floor()")
            || code.contains(".round()")
            || code.contains(".powf(")
            || has_float_literal(code);
        if floaty {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: lineno,
                rule: Rule::FloatCycle,
                message: "floating-point expression cast into Cycle; keep cycle math in \
                          integers (div_ceil etc.) or annotate lint:allow(float-cycle)"
                    .to_string(),
            });
        }
    }
}

fn check_unwrap(path: &str, lineno: usize, code: &str, diags: &mut Vec<Diagnostic>) {
    for pat in [".unwrap()", ".expect("] {
        if code.contains(pat) {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: lineno,
                rule: Rule::Unwrap,
                message: format!(
                    "`{pat}..` in model-crate library code; return an error, handle the None \
                     case, or annotate lint:allow(unwrap)"
                ),
            });
        }
    }
}

/// The optional-handle hooks that d5 guards. All follow the same pattern:
/// a structure stores `Option<Handle>` and gains the hook via `set_*`.
const HOOK_HANDLES: [&str; 3] = ["AuditHandle", "TraceHandle", "TelemetryHandle"];

fn check_hook_pattern(path: &str, lineno: usize, code: &str, diags: &mut Vec<Diagnostic>) {
    // Whole-line exemption for signatures: attach methods legitimately take
    // the handle by value (`fn set_tracer(&mut self, tracer: TraceHandle)`).
    if !ident_occurrences(code, "fn").is_empty() {
        return;
    }
    let bytes = code.as_bytes();
    for needle in HOOK_HANDLES {
        for occ in ident_occurrences(code, needle) {
            let after = &code[occ + needle.len()..];
            if after.starts_with("::") {
                continue; // path expression (`TraceHandle::of`), not a type
            }
            // Walk back over qualifying path segments (`wsg_sim::trace::`)
            // to where the full type path begins.
            let mut i = occ;
            while i >= 2 && bytes[i - 2] == b':' && bytes[i - 1] == b':' {
                i -= 2;
                while i > 0 && is_ident_byte(bytes[i - 1]) {
                    i -= 1;
                }
            }
            // Only type-ascription position is suspect: a single `:` binding
            // the bare handle type to a field or binding. `Option<Handle>`
            // fails this test naturally (the path is preceded by `<`).
            let mut j = i;
            while j > 0 && bytes[j - 1].is_ascii_whitespace() {
                j -= 1;
            }
            if j == 0 || bytes[j - 1] != b':' || (j >= 2 && bytes[j - 2] == b':') {
                continue;
            }
            diags.push(Diagnostic {
                path: path.to_string(),
                line: lineno,
                rule: Rule::HookPattern,
                message: format!(
                    "`{needle}` stored directly; observability hooks must stay optional \
                     (`Option<{needle}>` plus a set_* attach method, like the audit \
                     pattern) or annotate lint:allow(hook-pattern)"
                ),
            });
            break;
        }
    }
}

/// The entropy-seeded std hash collections that d6 bans from simulator code.
const DEFAULT_HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

fn check_default_hash(path: &str, lineno: usize, code: &str, diags: &mut Vec<Diagnostic>) {
    for ty in DEFAULT_HASH_TYPES {
        if !ident_occurrences(code, ty).is_empty() {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: lineno,
                rule: Rule::DefaultHash,
                message: format!(
                    "`{ty}` seeds its hasher from process entropy (RandomState); use the \
                     deterministic wsg_sim::HashIndex or a BTree collection, or annotate \
                     lint:allow(default-hash)"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Lints one source text under the given rule set. `path` is used verbatim in
/// diagnostics.
pub fn lint_source(path: &str, source: &str, rules: RuleSet) -> Vec<Diagnostic> {
    let lines = preprocess(source);
    let mut map_idents = BTreeSet::new();
    if rules.map_iter {
        for line in &lines {
            if !line.test_code {
                collect_map_idents(&line.code, &mut map_idents);
            }
        }
    }
    let mut diags = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.test_code || line.code.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let allowed = |rule: Rule| {
            if line.allows.contains(&rule) {
                return true;
            }
            // Walk up through the comment block (code-empty lines) directly
            // above this line; an allow anywhere in it applies here.
            let mut j = idx;
            while j > 0 {
                j -= 1;
                if lines[j].allows.contains(&rule) {
                    return true;
                }
                if !lines[j].code.trim().is_empty() {
                    break;
                }
            }
            false
        };
        if rules.map_iter && !allowed(Rule::MapIter) {
            check_map_iter(path, lineno, &line.code, &map_idents, &mut diags);
        }
        if rules.wallclock && !allowed(Rule::Wallclock) {
            check_wallclock(path, lineno, &line.code, &mut diags);
        }
        if rules.float_cycle && !allowed(Rule::FloatCycle) {
            check_float_cycle(path, lineno, &line.code, &mut diags);
        }
        if rules.unwrap && !allowed(Rule::Unwrap) {
            check_unwrap(path, lineno, &line.code, &mut diags);
        }
        if rules.hook_pattern && !allowed(Rule::HookPattern) {
            check_hook_pattern(path, lineno, &line.code, &mut diags);
        }
        if rules.default_hash && !allowed(Rule::DefaultHash) {
            check_default_hash(path, lineno, &line.code, &mut diags);
        }
    }
    diags
}

/// Decides which rules apply to a workspace-relative path.
///
/// * Library code (`src/`) of every crate: `map-iter`, `wallclock`,
///   `float-cycle`; plus `unwrap` for the five model crates
///   (sim, noc, xlat, mem, gpu), and `default-hash` for the simulator crates
///   (the five model crates, `core`, `workloads`, and the facade) — the
///   `bench` CLI/report code runs host-side and may hash freely.
/// * `crates/sim/src/rng.rs` (the sanctioned entropy boundary) and
///   `crates/sim/src/pool.rs` (the sanctioned thread-spawning site for
///   deterministic sweeps) are exempt from `wallclock`;
///   `crates/sim/src/index.rs` (the seeded deterministic hash index that
///   replaces the std types) is exempt from `default-hash`.
/// * Examples: `wallclock` + `float-cycle` (they drive the model but may
///   legitimately format host output).
/// * Tests and benches: no rules — assertions may iterate maps freely.
/// * Vendored tooling (`crates/xtask`, `crates/proptest`, `crates/criterion`)
///   is not model code and is skipped entirely.
pub fn classify(rel: &Path) -> RuleSet {
    let comps: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    match comps.as_slice() {
        ["crates", krate, section, rest @ ..] => {
            if matches!(*krate, "xtask" | "proptest" | "criterion") {
                return RuleSet::none();
            }
            match *section {
                "src" => {
                    let mut rules = RuleSet {
                        map_iter: true,
                        wallclock: true,
                        float_cycle: true,
                        unwrap: matches!(*krate, "sim" | "noc" | "xlat" | "mem" | "gpu"),
                        hook_pattern: true,
                        default_hash: matches!(
                            *krate,
                            "sim" | "noc" | "xlat" | "mem" | "gpu" | "core" | "workloads"
                        ),
                    };
                    if *krate == "sim" && (rest == ["rng.rs"] || rest == ["pool.rs"]) {
                        rules.wallclock = false;
                    }
                    if *krate == "sim" && rest == ["index.rs"] {
                        // The seeded replacement itself: its docs discuss the
                        // std types, and it is the one sanctioned home for
                        // open-addressing hash code.
                        rules.default_hash = false;
                    }
                    rules
                }
                "examples" => RuleSet {
                    wallclock: true,
                    float_cycle: true,
                    ..RuleSet::none()
                },
                _ => RuleSet::none(),
            }
        }
        ["src", ..] => RuleSet {
            map_iter: true,
            wallclock: true,
            float_cycle: true,
            hook_pattern: true,
            default_hash: true,
            ..RuleSet::none()
        },
        ["examples", ..] => RuleSet {
            wallclock: true,
            float_cycle: true,
            ..RuleSet::none()
        },
        _ => RuleSet::none(),
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .and_then(|s| s.to_str())
                .unwrap_or_default();
            if matches!(name, "target" | ".git") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().and_then(|s| s.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Lints the whole workspace rooted at `root`, classifying each file by its
/// relative path. File order (and thus diagnostic order) is deterministic.
pub fn lint_workspace(root: &Path) -> Report {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    let mut report = Report::default();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file);
        let rules = classify(rel);
        if rules.is_empty() {
            continue;
        }
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        report.files_scanned += 1;
        report
            .diagnostics
            .extend(lint_source(&rel.display().to_string(), &source, rules));
    }
    report
}

/// Lints an explicit file or directory with every rule enabled — used for
/// fixtures and ad-hoc checks (`cargo run -p xtask -- lint path/to/file.rs`).
pub fn lint_path(path: &Path) -> Report {
    let mut files = Vec::new();
    if path.is_dir() {
        collect_rs_files(path, &mut files);
    } else {
        files.push(path.to_path_buf());
    }
    let mut report = Report::default();
    for file in files {
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        report.files_scanned += 1;
        report.diagnostics.extend(lint_source(
            &file.display().to_string(),
            &source,
            RuleSet::all(),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let lines = preprocess(
            "let x = \"Instant::now\"; // Instant::now in comment\nlet y = 1; /* thread_rng */ let z = 2;\n",
        );
        assert!(!lines[0].code.contains("Instant"));
        assert!(!lines[1].code.contains("thread_rng"));
        assert!(lines[1].code.contains("let z"));
    }

    #[test]
    fn block_comments_span_lines() {
        let lines = preprocess("a/*\nthread_rng\n*/b\n");
        assert!(lines[0].code.contains('a'));
        assert!(!lines[1].code.contains("thread_rng"));
        assert!(lines[2].code.contains('b'));
    }

    #[test]
    fn raw_strings_are_stripped() {
        let lines = preprocess("let x = r#\"rand::random\"#; let ok = 1;\n");
        assert!(!lines[0].code.contains("rand::random"));
        assert!(lines[0].code.contains("let ok"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = preprocess("fn f<'a>(c: char) -> bool { c == '\"' }\n");
        // The double-quote char literal must not open a string.
        assert!(lines[0].code.contains("bool"));
    }

    #[test]
    fn allows_are_parsed() {
        assert_eq!(
            parse_allows("// lint:allow(map-iter, d4)"),
            vec![Rule::MapIter, Rule::Unwrap]
        );
        assert_eq!(parse_allows("no allow here"), vec![]);
    }

    #[test]
    fn cfg_test_region_is_skipped() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\npub fn h() { y.unwrap(); }\n";
        let diags = lint_source("t.rs", src, RuleSet::all());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 6);
        assert_eq!(diags[0].rule, Rule::Unwrap);
    }

    #[test]
    fn map_idents_are_collected() {
        let mut set = BTreeSet::new();
        collect_map_idents("pub links: HashMap<(Coord, Coord), LinkState>,", &mut set);
        collect_map_idents("let mut seen = HashSet::new();", &mut set);
        collect_map_idents("fn f(m: &HashMap<u32, u32>) {}", &mut set);
        collect_map_idents("use std::collections::HashMap;", &mut set);
        let names: Vec<&str> = set.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["links", "m", "seen"]);
    }

    #[test]
    fn map_iteration_is_flagged() {
        let src = "struct S { links: HashMap<u32, u32> }\nfn f(s: &S) { for (k, v) in s.links.iter() {} }\nfn g(s: &S) -> Option<&u32> { s.links.get(&1) }\n";
        let diags = lint_source("t.rs", src, RuleSet::all());
        let map_iter: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == Rule::MapIter).collect();
        assert_eq!(map_iter.len(), 1);
        assert_eq!(map_iter[0].line, 2);
        // The declaration line itself is a d6 hit, not a d1 hit.
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::DefaultHash && d.line == 1));
    }

    #[test]
    fn for_loop_over_map_is_flagged() {
        let src =
            "fn f() { let mut m = HashMap::new(); m.insert(1, 2); for x in &m { let _ = x; } }\n";
        let diags = lint_source("t.rs", src, RuleSet::all());
        assert!(diags.iter().any(|d| d.rule == Rule::MapIter));
    }

    #[test]
    fn allow_on_same_or_previous_line() {
        let src = "fn f() { t.unwrap() } // lint:allow(unwrap)\n// lint:allow(d4)\nfn g() { t.unwrap() }\nfn h() { t.unwrap() }\n";
        let diags = lint_source("t.rs", src, RuleSet::all());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn allow_carries_across_a_comment_block() {
        let src = "// lint:allow(d4): justified at length,\n// over several comment lines.\nfn g() { t.unwrap() }\nfn h() { t.unwrap() }\n";
        let diags = lint_source("t.rs", src, RuleSet::all());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn float_cycle_flagged_only_in_float_context() {
        let all = RuleSet::all();
        let bad = lint_source("t.rs", "let c = (b as f64 / r).ceil() as Cycle;\n", all);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, Rule::FloatCycle);
        let ok = lint_source("t.rs", "let c = (b / r) as Cycle;\n", all);
        assert!(ok.is_empty());
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let diags = lint_source(
            "t.rs",
            "let x = m.get(&1).copied().unwrap_or(0);\n",
            RuleSet::all(),
        );
        assert!(diags.is_empty());
    }

    #[test]
    fn hook_pattern_requires_optional_handles() {
        let all = RuleSet::all();
        let bad = lint_source("t.rs", "pub struct S { tracer: TraceHandle }\n", all);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, Rule::HookPattern);
        let qualified = lint_source("t.rs", "    auditor: wsg_sim::audit::AuditHandle,\n", all);
        assert_eq!(qualified.len(), 1);
        for ok in [
            "    tracer: Option<TraceHandle>,\n",
            "    auditor: Option<wsg_sim::audit::AuditHandle>,\n",
            "    pub fn set_tracer(&mut self, tracer: TraceHandle) {\n",
            "        let h = TraceHandle::of(sink);\n",
            "use wsg_sim::trace::TraceHandle;\n",
            "pub struct TraceHandle(Rc<RefCell<TraceSink>>);\n",
        ] {
            assert!(lint_source("t.rs", ok, all).is_empty(), "flagged: {ok}");
        }
    }

    #[test]
    fn classify_scopes_rules_by_path() {
        let lib = classify(Path::new("crates/sim/src/event.rs"));
        assert!(lib.map_iter && lib.wallclock && lib.float_cycle && lib.unwrap);
        assert!(lib.default_hash);
        let rng = classify(Path::new("crates/sim/src/rng.rs"));
        assert!(!rng.wallclock && rng.map_iter);
        let pool = classify(Path::new("crates/sim/src/pool.rs"));
        assert!(!pool.wallclock && pool.map_iter && pool.unwrap);
        let core = classify(Path::new("crates/core/src/sim/mod.rs"));
        assert!(core.map_iter && !core.unwrap && core.default_hash);
        assert!(classify(Path::new("crates/xtask/src/lib.rs")).is_empty());
        assert!(classify(Path::new("crates/sim/tests/t.rs")).is_empty());
        assert!(classify(Path::new("tests/invariants.rs")).is_empty());
        let ex = classify(Path::new("examples/ablation_sweep.rs"));
        assert!(ex.wallclock && !ex.unwrap);
        let facade = classify(Path::new("src/lib.rs"));
        assert!(facade.map_iter && !facade.unwrap && facade.default_hash);
    }

    #[test]
    fn default_hash_scope_and_exemption() {
        // The seeded index is the one sanctioned hash file.
        let index = classify(Path::new("crates/sim/src/index.rs"));
        assert!(!index.default_hash && index.map_iter && index.unwrap);
        // Host-side bench/report code may hash freely.
        let bench = classify(Path::new("crates/bench/src/bin/hdpat-sim.rs"));
        assert!(!bench.default_hash && bench.map_iter);
        // The telemetry flight recorder earns no exemption: its registry and
        // series live in plain Vecs, so the default-hash ban (and the full
        // model-crate rule set) stays in force there.
        let telemetry = classify(Path::new("crates/sim/src/telemetry.rs"));
        assert!(telemetry.default_hash && telemetry.unwrap && telemetry.hook_pattern);
        assert_eq!(telemetry, RuleSet::all());
    }

    #[test]
    fn default_hash_flags_types_without_iteration() {
        let all = RuleSet::all();
        let bad = lint_source("t.rs", "use std::collections::HashMap;\n", all);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, Rule::DefaultHash);
        let set = lint_source("t.rs", "let s = std::collections::HashSet::new();\n", all);
        assert!(set.iter().any(|d| d.rule == Rule::DefaultHash));
        for ok in [
            "let m = BTreeMap::new();\n",
            "let ix = wsg_sim::HashIndex::new();\n",
            "// HashMap discussed in a comment only\n",
            "let s = \"HashMap\";\n",
            "let x = my_hash_map();\n",
            "let m = std::collections::HashMap::new(); // lint:allow(d6)\n",
        ] {
            assert!(
                lint_source("t.rs", ok, all)
                    .iter()
                    .all(|d| d.rule != Rule::DefaultHash),
                "flagged: {ok}"
            );
        }
    }

    #[test]
    fn diagnostic_display_format() {
        let d = Diagnostic {
            path: "crates/sim/src/event.rs".into(),
            line: 42,
            rule: Rule::MapIter,
            message: "msg".into(),
        };
        assert_eq!(d.to_string(), "crates/sim/src/event.rs:42: [map-iter] msg");
    }
}
