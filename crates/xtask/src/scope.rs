//! Source preprocessing and the scope tracker.
//!
//! The lint pass works on *stripped* source: comments and string/char
//! literal contents are blanked (each skipped byte becomes a space, so token
//! boundaries and byte offsets survive but no literal text can trip a rule).
//! On top of the stripped text this module tracks, per line:
//!
//! * **brace depth** and **paren/bracket depth** at the start of the line,
//! * the **item path** (`mod`/`impl`/`fn`/`struct`/... nesting, rendered as
//!   `Simulation::set_tracer`), so diagnostics can name the enclosing item
//!   and rules can be sanctioned per scope instead of per line,
//! * whether the line belongs to a `#[cfg(test)]` region (no rules apply).
//!
//! It also parses the two allow pragmas:
//!
//! * `// lint:allow(<rule>[, <rule>...]): <justification>` — covers the same
//!   line, or (from a comment block) the next code line below it.
//! * `// lint:allow-module(<rule>): <justification>` — covers every line
//!   from the pragma to the end of the enclosing brace scope (the whole
//!   file when written at the top level). This is how the sanctioned
//!   shared-mutability sinks (`crates/sim/src/{audit,trace,telemetry}.rs`)
//!   opt out of rule d7 wholesale.
//!
//! Rule d9 (`stale-allow`) audits both forms: an allow that never
//! suppresses a hit, or that lacks the `:` justification suffix, is itself
//! a violation — so the allowlist can never rot.
//!
//! The tracker is still a scanner, not a parser: it trades completeness for
//! zero dependencies. Its brace accounting is pinned against a brute-force
//! model on generated token soup in `tests/scope_proptest.rs`.

use crate::Rule;

// ---------------------------------------------------------------------------
// Byte-level helpers shared with the rule checks.
// ---------------------------------------------------------------------------

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Every occurrence of `needle` in `hay` that stands alone as an identifier.
pub(crate) fn ident_occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let i = start + pos;
        let before_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
        let end = i + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(i);
        }
        start = i + needle.len();
    }
    out
}

/// Reads the identifier that ends at byte `end` (exclusive), if any.
pub(crate) fn ident_ending_at(code: &str, end: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    if start == end {
        None
    } else {
        Some(&code[start..end])
    }
}

// ---------------------------------------------------------------------------
// Literal/comment stripping.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum ScanState {
    Normal,
    /// Nested block comment depth.
    Block(u32),
    Str,
    /// Raw string, closing delimiter is `"` followed by this many `#`.
    RawStr(u8),
}

/// Strips one line according to the carried scanner state, returning the
/// blanked code text and the state at end of line.
fn strip_line(raw: &str, mut state: ScanState) -> (String, ScanState) {
    let bytes = raw.as_bytes();
    let len = bytes.len();
    let mut code = Vec::with_capacity(len);
    let mut i = 0;
    while i < len {
        match state {
            ScanState::Block(depth) => {
                if bytes[i] == b'/' && i + 1 < len && bytes[i + 1] == b'*' {
                    state = ScanState::Block(depth + 1);
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < len && bytes[i + 1] == b'/' {
                    state = if depth == 1 {
                        ScanState::Normal
                    } else {
                        ScanState::Block(depth - 1)
                    };
                    i += 2;
                } else {
                    i += 1;
                }
                code.push(b' ');
            }
            ScanState::Str => {
                if bytes[i] == b'\\' {
                    i += 2;
                    code.push(b' ');
                } else if bytes[i] == b'"' {
                    state = ScanState::Normal;
                    i += 1;
                    code.push(b' ');
                } else {
                    i += 1;
                    code.push(b' ');
                }
            }
            ScanState::RawStr(hashes) => {
                if bytes[i] == b'"' {
                    let h = hashes as usize;
                    if i + h < len
                        && bytes[i + 1..].len() >= h
                        && bytes[i + 1..i + 1 + h].iter().all(|&b| b == b'#')
                    {
                        state = ScanState::Normal;
                        i += 1 + h;
                        code.push(b' ');
                        continue;
                    }
                }
                i += 1;
                code.push(b' ');
            }
            ScanState::Normal => {
                let b = bytes[i];
                let prev_is_ident = i > 0 && is_ident_byte(bytes[i - 1]);
                if b == b'/' && i + 1 < len && bytes[i + 1] == b'/' {
                    // Line comment: rest of the line is gone.
                    break;
                } else if b == b'/' && i + 1 < len && bytes[i + 1] == b'*' {
                    state = ScanState::Block(1);
                    i += 2;
                    code.push(b' ');
                } else if b == b'"' {
                    state = ScanState::Str;
                    i += 1;
                    code.push(b' ');
                } else if (b == b'r' || b == b'b') && !prev_is_ident {
                    // Possible raw/byte string prefix: r", r#", br", br#".
                    let mut j = i + 1;
                    if b == b'b' && j < len && bytes[j] == b'r' {
                        j += 1;
                    } else if b == b'b' {
                        // b"..." or b'.' fall through to plain handling below.
                        j = i + 1;
                        if j < len && bytes[j] == b'"' {
                            state = ScanState::Str;
                            i = j + 1;
                            code.push(b' ');
                            code.push(b' ');
                            continue;
                        }
                        code.push(b);
                        i += 1;
                        continue;
                    }
                    let mut hashes = 0u8;
                    while j < len && bytes[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if b == b'r' && hashes == 0 && j == i + 1 && (j >= len || bytes[j] != b'"') {
                        // Just the identifier letter `r`.
                        code.push(b);
                        i += 1;
                        continue;
                    }
                    if j < len && bytes[j] == b'"' {
                        state = ScanState::RawStr(hashes);
                        code.extend(std::iter::repeat_n(b' ', j - i + 1));
                        i = j + 1;
                    } else {
                        code.push(b);
                        i += 1;
                    }
                } else if b == b'\'' {
                    // Char literal vs lifetime.
                    if i + 1 < len && bytes[i + 1] == b'\\' {
                        let mut j = i + 3; // skip the escaped byte
                        while j < len && bytes[j] != b'\'' {
                            j += 1;
                        }
                        code.extend(std::iter::repeat_n(b' ', j.min(len - 1) - i + 1));
                        i = j + 1;
                    } else if i + 2 < len && bytes[i + 2] == b'\'' && bytes[i + 1] != b'\'' {
                        code.push(b' ');
                        code.push(b' ');
                        code.push(b' ');
                        i += 3;
                    } else {
                        // Lifetime tick: drop the tick, keep the name.
                        code.push(b' ');
                        i += 1;
                    }
                } else {
                    code.push(b);
                    i += 1;
                }
            }
        }
    }
    (String::from_utf8_lossy(&code).into_owned(), state)
}

// ---------------------------------------------------------------------------
// Allow pragmas.
// ---------------------------------------------------------------------------

/// One parsed `lint:allow(...)` / `lint:allow-module(...)` pragma.
#[derive(Clone, Debug)]
pub struct Allow {
    pub rule: Rule,
    /// 1-based line the pragma appears on.
    pub line: usize,
    /// `lint:allow-module`: covers to the end of the enclosing brace scope.
    pub module_scoped: bool,
    /// The pragma carries a `: <justification>` suffix (d9 requires one).
    pub justified: bool,
    /// Last covered line (1-based, inclusive) for module-scoped allows;
    /// equal to `line` for line-scoped allows (which additionally cover the
    /// next code line below a comment block — resolved at lookup time).
    pub end_line: usize,
}

/// Parses every allow pragma on one raw line. `module` pragmas are tagged;
/// their `end_line` is fixed up once depths are known.
fn parse_allows(raw: &str, lineno: usize) -> Vec<Allow> {
    let mut out = Vec::new();
    let mut cursor = 0usize;
    while let Some(i) = raw[cursor..].find("lint:allow") {
        let at = cursor + i + "lint:allow".len();
        let after = &raw[at..];
        let (module_scoped, body_start) = if after.starts_with('(') {
            (false, at + 1)
        } else if after.starts_with("-module(") {
            (true, at + "-module(".len())
        } else {
            cursor = at;
            continue;
        };
        let Some(end) = raw[body_start..].find(')') else {
            break;
        };
        let justified = raw[body_start + end + 1..].trim_start().starts_with(':');
        for token in raw[body_start..body_start + end].split(',') {
            if let Some(rule) = Rule::parse(token.trim()) {
                out.push(Allow {
                    rule,
                    line: lineno,
                    module_scoped,
                    justified,
                    end_line: lineno,
                });
            }
        }
        cursor = body_start + end + 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Scope tracking.
// ---------------------------------------------------------------------------

/// The kinds of named scopes the tracker distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    Mod,
    Fn,
    Struct,
    Enum,
    Union,
    Trait,
    Impl,
}

/// One named item and the line span of its body (braces inclusive).
#[derive(Clone, Debug)]
pub struct ItemSpan {
    pub kind: ItemKind,
    /// Full `::`-joined path (`Simulation::set_tracer`).
    pub path: String,
    /// 1-based line of the opening `{`.
    pub start_line: usize,
    /// 1-based line of the matching `}` (or EOF for unbalanced input).
    pub end_line: usize,
    /// Brace depth *inside* the item body.
    pub body_depth: i64,
}

/// One preprocessed line.
#[derive(Debug)]
pub struct PreLine {
    /// Stripped code text (see module docs).
    pub code: String,
    /// True inside a `#[cfg(test)]` item: no rules apply.
    pub test_code: bool,
    /// Brace depth at the start of the line.
    pub depth: i64,
    /// Paren + bracket depth at the start of the line (used to tell struct
    /// fields from multi-line fn-signature parameters).
    pub paren: i64,
    /// Item path at the start of the line (`""` at top level).
    pub item: String,
    /// Indices into [`PreSource::allows`] of pragmas written on this line.
    pub allow_ids: Vec<usize>,
}

/// A whole preprocessed source file.
#[derive(Debug, Default)]
pub struct PreSource {
    pub lines: Vec<PreLine>,
    pub allows: Vec<Allow>,
    pub items: Vec<ItemSpan>,
}

impl PreSource {
    /// Path of the innermost named item whose span contains 1-based `line`
    /// (`""` at top level). Unlike [`PreLine::item`] — the path at the
    /// *start* of the line — this also covers items opened and closed on
    /// the line itself (`fn h() { .. }`).
    pub fn item_at(&self, line: usize) -> &str {
        self.items
            .iter()
            .filter(|s| s.start_line <= line && line <= s.end_line)
            .max_by_key(|s| (s.body_depth, s.start_line))
            .map(|s| s.path.as_str())
            .unwrap_or("")
    }
}

#[derive(Debug)]
struct Frame {
    name: Option<String>,
    /// Index into `items` when this frame is a named item.
    item_idx: Option<usize>,
}

/// Derives the impl'd type name from the accumulated `impl ...` header text:
/// the last path segment of the type after `for` (trait impls) or after
/// `impl` itself, with generics stripped.
fn impl_target_name(header: &str) -> Option<String> {
    // Drop the leading generics of `impl<T, U>`.
    let mut rest = header.trim_start();
    if let Some(stripped) = rest.strip_prefix('<') {
        let mut depth = 1i32;
        let mut idx = 0;
        for (i, b) in stripped.bytes().enumerate() {
            match b {
                b'<' => depth += 1,
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        idx = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &stripped[idx.min(stripped.len())..];
    }
    // Trait impls: keep the type after the last standalone `for`.
    let target = match ident_occurrences(rest, "for").last() {
        Some(&pos) => &rest[pos + 3..],
        None => rest,
    };
    // Last ident before generics/where/EOL.
    let mut last = None;
    let bytes = target.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident_byte(bytes[i]) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            let word = &target[start..i];
            if word != "where" && word != "dyn" && word != "mut" {
                last = Some(word.to_string());
            } else if word == "where" {
                break;
            }
        } else if bytes[i] == b'<' {
            break;
        } else {
            i += 1;
        }
    }
    last
}

/// Marks every line belonging to a `#[cfg(test)]` item (attribute line
/// through the matching close brace) as test code.
fn mark_test_regions(lines: &mut [PreLine]) {
    let mut pending_attr = false;
    let mut depth: i64 = 0;
    let mut in_region = false;
    for line in lines.iter_mut() {
        if in_region {
            line.test_code = true;
            depth += brace_delta(&line.code);
            if depth <= 0 {
                in_region = false;
            }
            continue;
        }
        if line.code.contains("#[cfg(test)]") || line.code.contains("#[cfg(all(test") {
            pending_attr = true;
            line.test_code = true;
            continue;
        }
        if pending_attr {
            line.test_code = true;
            if line.code.contains('{') {
                pending_attr = false;
                depth = brace_delta(&line.code);
                in_region = depth > 0;
            }
        }
    }
}

pub(crate) fn brace_delta(code: &str) -> i64 {
    let mut d = 0i64;
    for b in code.bytes() {
        match b {
            b'{' => d += 1,
            b'}' => d -= 1,
            _ => {}
        }
    }
    d
}

const ITEM_KEYWORDS: [(&str, ItemKind); 6] = [
    ("mod", ItemKind::Mod),
    ("fn", ItemKind::Fn),
    ("struct", ItemKind::Struct),
    ("enum", ItemKind::Enum),
    ("union", ItemKind::Union),
    ("trait", ItemKind::Trait),
];

/// Preprocesses a whole source file: stripping, scope tracking, allows and
/// `#[cfg(test)]` regions.
pub fn preprocess(source: &str) -> PreSource {
    // Pass 1: strip literals/comments line by line.
    let mut lines: Vec<PreLine> = Vec::new();
    let mut raw_lines: Vec<&str> = Vec::new();
    let mut state = ScanState::Normal;
    for raw in source.lines() {
        let (code, next) = strip_line(raw, state);
        state = next;
        raw_lines.push(raw);
        lines.push(PreLine {
            code,
            test_code: false,
            depth: 0,
            paren: 0,
            item: String::new(),
            allow_ids: Vec::new(),
        });
    }
    mark_test_regions(&mut lines);

    // Pass 2: scope tracking over the stripped text.
    let mut items: Vec<ItemSpan> = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();
    let mut depth: i64 = 0;
    let mut paren: i64 = 0;
    // A named item waiting for its opening brace.
    let mut pending: Option<(ItemKind, String)> = None;
    // Set after an item keyword; the next ident names the item.
    let mut pending_kw: Option<ItemKind> = None;
    // Accumulated `impl ...` header text, while between `impl` and `{`/`;`.
    let mut impl_header: Option<String> = None;

    for (idx, line) in lines.iter_mut().enumerate() {
        line.depth = depth;
        line.paren = paren;
        line.item = {
            let parts: Vec<&str> = stack.iter().filter_map(|f| f.name.as_deref()).collect();
            parts.join("::")
        };

        let code = line.code.clone();
        let bytes = code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if is_ident_byte(b) {
                let start = i;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                let word = &code[start..i];
                if let Some(h) = impl_header.as_mut() {
                    h.push(' ');
                    h.push_str(word);
                    continue;
                }
                if word == "impl" {
                    impl_header = Some(String::new());
                    pending_kw = None;
                    continue;
                }
                if let Some(kind) = pending_kw.take() {
                    if word.bytes().next().is_some_and(|c| !c.is_ascii_digit()) {
                        pending = Some((kind, word.to_string()));
                    }
                    continue;
                }
                if let Some(&(_, kind)) = ITEM_KEYWORDS.iter().find(|(kw, _)| *kw == word) {
                    pending_kw = Some(kind);
                }
                continue;
            }
            match b {
                b'{' => {
                    depth += 1;
                    let named = pending.take().or_else(|| {
                        impl_header
                            .take()
                            .and_then(|h| impl_target_name(&h).map(|n| (ItemKind::Impl, n)))
                    });
                    let item_idx = named.as_ref().map(|(kind, name)| {
                        let mut path: Vec<&str> =
                            stack.iter().filter_map(|f| f.name.as_deref()).collect();
                        path.push(name);
                        items.push(ItemSpan {
                            kind: *kind,
                            path: path.join("::"),
                            start_line: idx + 1,
                            end_line: usize::MAX,
                            body_depth: depth,
                        });
                        items.len() - 1
                    });
                    stack.push(Frame {
                        name: named.map(|(_, n)| n),
                        item_idx,
                    });
                    pending_kw = None;
                }
                b'}' => {
                    depth -= 1;
                    if let Some(frame) = stack.pop() {
                        if let Some(ii) = frame.item_idx {
                            items[ii].end_line = idx + 1;
                        }
                    }
                }
                b'(' | b'[' => {
                    paren += 1;
                    if let Some(h) = impl_header.as_mut() {
                        h.push(code.as_bytes()[i] as char);
                    }
                    // A keyword not followed by a name (`fn(u32)` type) is
                    // not an item declaration.
                    pending_kw = None;
                }
                b')' | b']' => {
                    paren -= 1;
                    if let Some(h) = impl_header.as_mut() {
                        h.push(b as char);
                    }
                }
                b';' => {
                    // `mod x;`, `struct X(..);`, trait fn declarations.
                    pending = None;
                    pending_kw = None;
                    impl_header = None;
                }
                b'=' => {
                    // `let f = ...` etc. never declares an item body.
                    pending_kw = None;
                }
                _ => {
                    if let Some(h) = impl_header.as_mut() {
                        if !b.is_ascii_whitespace() {
                            h.push(b as char);
                        } else if !h.ends_with(' ') {
                            h.push(' ');
                        }
                    }
                }
            }
            i += 1;
        }
    }
    for item in &mut items {
        if item.end_line == usize::MAX {
            item.end_line = lines.len();
        }
    }

    // Pass 3: allows (skipped inside test regions so unreachable pragmas
    // cannot trigger stale-allow noise — rules never fire there anyway).
    let mut allows: Vec<Allow> = Vec::new();
    for (idx, raw) in raw_lines.iter().enumerate() {
        if lines[idx].test_code {
            continue;
        }
        for mut allow in parse_allows(raw, idx + 1) {
            if allow.module_scoped {
                // Covers from the pragma to the end of the enclosing scope:
                // the last following line whose start depth stays >= the
                // pragma line's start depth.
                let base = lines[idx].depth;
                let mut end = idx;
                while end + 1 < lines.len() && lines[end + 1].depth >= base {
                    end += 1;
                }
                allow.end_line = end + 1;
            }
            lines[idx].allow_ids.push(allows.len());
            allows.push(allow);
        }
    }

    PreSource {
        lines,
        allows,
        items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let pre = preprocess(
            "let x = \"Instant::now\"; // Instant::now in comment\nlet y = 1; /* thread_rng */ let z = 2;\n",
        );
        assert!(!pre.lines[0].code.contains("Instant"));
        assert!(!pre.lines[1].code.contains("thread_rng"));
        assert!(pre.lines[1].code.contains("let z"));
    }

    #[test]
    fn block_comments_span_lines() {
        let pre = preprocess("a/*\nthread_rng\n*/b\n");
        assert!(pre.lines[0].code.contains('a'));
        assert!(!pre.lines[1].code.contains("thread_rng"));
        assert!(pre.lines[2].code.contains('b'));
    }

    #[test]
    fn raw_strings_are_stripped() {
        let pre = preprocess("let x = r#\"rand::random\"#; let ok = 1;\n");
        assert!(!pre.lines[0].code.contains("rand::random"));
        assert!(pre.lines[0].code.contains("let ok"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let pre = preprocess("fn f<'a>(c: char) -> bool { c == '\"' }\n");
        // The double-quote char literal must not open a string.
        assert!(pre.lines[0].code.contains("bool"));
    }

    #[test]
    fn allows_are_parsed_with_justification() {
        let pre = preprocess("fn f() {} // lint:allow(map-iter, d4): reason\n");
        let rules: Vec<Rule> = pre.allows.iter().map(|a| a.rule).collect();
        assert_eq!(rules, vec![Rule::MapIter, Rule::Unwrap]);
        assert!(pre.allows.iter().all(|a| a.justified && !a.module_scoped));
        let bare = preprocess("fn f() {} // lint:allow(d4)\n");
        assert!(!bare.allows[0].justified);
        assert!(preprocess("no allow here\n").allows.is_empty());
    }

    #[test]
    fn module_allow_covers_enclosing_scope() {
        let src = "mod a {\n    // lint:allow-module(d4): scoped.\n    fn f() {}\n}\nfn g() {}\n";
        let pre = preprocess(src);
        let a = &pre.allows[0];
        assert!(a.module_scoped && a.justified);
        assert_eq!(a.line, 2);
        // Covers through the closing brace of `mod a` but not `fn g`.
        assert_eq!(a.end_line, 4);
        // A top-level pragma covers the whole file.
        let top = preprocess("// lint:allow-module(d2): whole file.\nfn f() {}\nfn g() {}\n");
        assert_eq!(top.allows[0].end_line, 3);
    }

    #[test]
    fn depth_and_paren_are_tracked() {
        let src = "fn f(\n    a: u32,\n) {\n    let x = [1, 2];\n}\n";
        let pre = preprocess(src);
        let depths: Vec<i64> = pre.lines.iter().map(|l| l.depth).collect();
        assert_eq!(depths, vec![0, 0, 0, 1, 1]);
        let parens: Vec<i64> = pre.lines.iter().map(|l| l.paren).collect();
        assert_eq!(parens, vec![0, 1, 1, 0, 0]);
    }

    #[test]
    fn item_paths_nest() {
        let src = "mod outer {\n    pub struct S {\n        field: u32,\n    }\n    impl S {\n        pub fn get(&self) -> u32 {\n            self.field\n        }\n    }\n}\n";
        let pre = preprocess(src);
        assert_eq!(pre.lines[2].item, "outer::S");
        assert_eq!(pre.lines[6].item, "outer::S::get");
        let spans: Vec<(&str, usize, usize)> = pre
            .items
            .iter()
            .map(|s| (s.path.as_str(), s.start_line, s.end_line))
            .collect();
        assert!(spans.contains(&("outer", 1, 10)));
        assert!(spans.contains(&("outer::S", 2, 4)));
        assert!(spans.contains(&("outer::S::get", 6, 8)));
        let s = pre.items.iter().find(|s| s.path == "outer::S").unwrap();
        assert_eq!(s.kind, ItemKind::Struct);
        assert_eq!(s.body_depth, 2);
    }

    #[test]
    fn trait_impls_use_the_target_type() {
        let src = "impl<T: Clone> fmt::Display for Wrapper<T> {\n    fn fmt(&self) {}\n}\n";
        let pre = preprocess(src);
        assert_eq!(pre.lines[1].item, "Wrapper");
        let multi = preprocess("impl Foo\n    for Bar\n{\n    fn f() { let x = 1; }\n}\n");
        assert_eq!(multi.lines[3].item, "Bar");
    }

    #[test]
    fn struct_literals_do_not_pollute_paths() {
        let src = "fn build() -> S {\n    S {\n        field: 1,\n    }\n}\n";
        let pre = preprocess(src);
        assert_eq!(pre.lines[2].item, "build");
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() {}\n}\npub fn h() {}\n";
        let pre = preprocess(src);
        let flags: Vec<bool> = pre.lines.iter().map(|l| l.test_code).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }
}
