//! Negative-path tests for the determinism lint: each seeded fixture must
//! produce its violation with the right rule and line, the clean fixture must
//! pass, and the CLI must exit nonzero/zero accordingly.

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::{lint_source, Rule, RuleSet};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn fixture(name: &str) -> String {
    std::fs::read_to_string(fixture_path(name)).expect("fixture readable")
}

/// 1-based line number of the first line containing `needle`.
fn line_of(source: &str, needle: &str) -> usize {
    source
        .lines()
        .position(|l| l.contains(needle))
        .map(|i| i + 1)
        .unwrap_or_else(|| panic!("fixture should contain {needle:?}"))
}

#[test]
fn d1_fixture_reports_each_seeded_violation() {
    let src = fixture("d1_map_iter.rs");
    let diags = lint_source("d1_map_iter.rs", &src, RuleSet::all());
    let map_iter: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == Rule::MapIter)
        .map(|d| d.line)
        .collect();
    assert_eq!(
        map_iter,
        vec![
            line_of(&src, "state.inflight.iter()"),
            line_of(&src, "seen.drain()"),
        ],
        "diagnostics: {diags:#?}"
    );
    // The remaining diagnostics are d6 hits on the same declarations — d1
    // itself must not fire anywhere else.
    assert!(diags
        .iter()
        .all(|d| matches!(d.rule, Rule::MapIter | Rule::DefaultHash)));
}

#[test]
fn d2_fixture_reports_each_seeded_violation() {
    let src = fixture("d2_wallclock.rs");
    let diags = lint_source("d2_wallclock.rs", &src, RuleSet::all());
    let wallclock: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == Rule::Wallclock)
        .map(|d| d.line)
        .collect();
    assert_eq!(
        wallclock,
        vec![
            line_of(&src, "Instant::now()"),
            line_of(&src, "rand::random::<u64>()"),
            line_of(&src, "std::thread::spawn"),
        ],
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn d3_fixture_reports_the_seeded_violation() {
    let src = fixture("d3_float_cycle.rs");
    let diags = lint_source("d3_float_cycle.rs", &src, RuleSet::all());
    let float_cycle: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == Rule::FloatCycle)
        .map(|d| d.line)
        .collect();
    assert_eq!(
        float_cycle,
        vec![line_of(&src, ".ceil() as Cycle")],
        "diagnostics: {diags:#?}"
    );
    // The integer-math variant must not be flagged.
    assert_eq!(diags.len(), float_cycle.len());
}

#[test]
fn d4_fixture_reports_each_seeded_violation() {
    let src = fixture("d4_unwrap.rs");
    let diags = lint_source("d4_unwrap.rs", &src, RuleSet::all());
    let unwrap: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == Rule::Unwrap)
        .map(|d| d.line)
        .collect();
    assert_eq!(
        unwrap,
        vec![
            line_of(&src, ".unwrap()"),
            line_of(&src, ".expect(\"capacity must parse\")"),
        ],
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn d5_fixture_reports_each_seeded_violation() {
    let src = fixture("d5_hook_pattern.rs");
    let diags = lint_source("d5_hook_pattern.rs", &src, RuleSet::all());
    let hook: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == Rule::HookPattern)
        .map(|d| d.line)
        .collect();
    assert_eq!(
        hook,
        vec![
            line_of(&src, "tracer: TraceHandle,"),
            line_of(&src, "auditor: wsg_sim::audit::AuditHandle,"),
            line_of(&src, "telemetry: wsg_sim::telemetry::TelemetryHandle,"),
        ],
        "diagnostics: {diags:#?}"
    );
    // The Option-wrapped fields, the signature, and the path expression must
    // all pass.
    assert_eq!(diags.len(), hook.len());
}

#[test]
fn d6_fixture_reports_each_seeded_violation() {
    let src = fixture("d6_default_hash.rs");
    let diags = lint_source("d6_default_hash.rs", &src, RuleSet::all());
    let default_hash: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == Rule::DefaultHash)
        .map(|d| d.line)
        .collect();
    assert_eq!(
        default_hash,
        vec![
            line_of(&src, "use std::collections::HashMap;"),
            line_of(&src, "pub waiters: HashMap<u64, Vec<u32>>,"),
            line_of(&src, "let mut seen = std::collections::HashSet::new();"),
        ],
        "diagnostics: {diags:#?}"
    );
    // d1 must not double-fire on the same declarations, and the comment,
    // string, allow, and test-module mentions must all pass.
    assert_eq!(diags.len(), default_hash.len(), "diagnostics: {diags:#?}");
}

#[test]
fn clean_fixture_is_clean() {
    let src = fixture("clean.rs");
    let diags = lint_source("clean.rs", &src, RuleSet::all());
    assert!(diags.is_empty(), "clean fixture flagged: {diags:#?}");
}

#[test]
fn cli_exits_nonzero_with_file_line_diagnostics_on_seeded_fixtures() {
    for name in [
        "d1_map_iter.rs",
        "d2_wallclock.rs",
        "d3_float_cycle.rs",
        "d4_unwrap.rs",
        "d5_hook_pattern.rs",
        "d6_default_hash.rs",
    ] {
        let path = fixture_path(name);
        let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
            .args(["lint", path.to_str().expect("utf-8 path")])
            .output()
            .expect("xtask binary runs");
        assert!(
            !out.status.success(),
            "{name}: expected nonzero exit, stdout: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("{name}:")),
            "{name}: diagnostics should carry file:line, got: {stdout}"
        );
    }
}

#[test]
fn cli_exits_zero_on_clean_fixture() {
    let path = fixture_path("clean.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", path.to_str().expect("utf-8 path")])
        .output()
        .expect("xtask binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "expected clean exit, got: {stdout}");
    assert!(stdout.contains("lint clean"), "got: {stdout}");
}

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let report = xtask::lint_workspace(root);
    assert!(
        report.diagnostics.is_empty(),
        "workspace lint violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 20, "walker found too few files");
}
