//! Negative-path tests for the determinism lint: each seeded fixture must
//! produce its violation with the right rule and line, the clean fixture must
//! pass, and the CLI must exit nonzero/zero accordingly.

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::{lint_source, Rule, RuleSet};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn fixture(name: &str) -> String {
    std::fs::read_to_string(fixture_path(name)).expect("fixture readable")
}

/// 1-based line number of the first line containing `needle`.
fn line_of(source: &str, needle: &str) -> usize {
    source
        .lines()
        .position(|l| l.contains(needle))
        .map(|i| i + 1)
        .unwrap_or_else(|| panic!("fixture should contain {needle:?}"))
}

#[test]
fn d1_fixture_reports_each_seeded_violation() {
    let src = fixture("d1_map_iter.rs");
    let diags = lint_source("d1_map_iter.rs", &src, RuleSet::all());
    let map_iter: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == Rule::MapIter)
        .map(|d| d.line)
        .collect();
    assert_eq!(
        map_iter,
        vec![
            line_of(&src, "state.inflight.iter()"),
            line_of(&src, "seen.drain()"),
        ],
        "diagnostics: {diags:#?}"
    );
    // The remaining diagnostics are d6 hits on the same declarations — d1
    // itself must not fire anywhere else.
    assert!(diags
        .iter()
        .all(|d| matches!(d.rule, Rule::MapIter | Rule::DefaultHash)));
}

#[test]
fn d2_fixture_reports_each_seeded_violation() {
    let src = fixture("d2_wallclock.rs");
    let diags = lint_source("d2_wallclock.rs", &src, RuleSet::all());
    let wallclock: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == Rule::Wallclock)
        .map(|d| d.line)
        .collect();
    assert_eq!(
        wallclock,
        vec![
            line_of(&src, "Instant::now()"),
            line_of(&src, "rand::random::<u64>()"),
            line_of(&src, "std::thread::spawn"),
        ],
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn d3_fixture_reports_the_seeded_violation() {
    let src = fixture("d3_float_cycle.rs");
    let diags = lint_source("d3_float_cycle.rs", &src, RuleSet::all());
    let float_cycle: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == Rule::FloatCycle)
        .map(|d| d.line)
        .collect();
    assert_eq!(
        float_cycle,
        vec![line_of(&src, ".ceil() as Cycle")],
        "diagnostics: {diags:#?}"
    );
    // The integer-math variant must not be flagged.
    assert_eq!(diags.len(), float_cycle.len());
}

#[test]
fn d4_fixture_reports_each_seeded_violation() {
    let src = fixture("d4_unwrap.rs");
    let diags = lint_source("d4_unwrap.rs", &src, RuleSet::all());
    let unwrap: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == Rule::Unwrap)
        .map(|d| d.line)
        .collect();
    assert_eq!(
        unwrap,
        vec![
            line_of(&src, ".unwrap()"),
            line_of(&src, ".expect(\"capacity must parse\")"),
        ],
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn d5_fixture_reports_each_seeded_violation() {
    let src = fixture("d5_hook_pattern.rs");
    let diags = lint_source("d5_hook_pattern.rs", &src, RuleSet::all());
    let hook: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == Rule::HookPattern)
        .map(|d| d.line)
        .collect();
    assert_eq!(
        hook,
        vec![
            line_of(&src, "tracer: TraceHandle,"),
            line_of(&src, "auditor: wsg_sim::audit::AuditHandle,"),
            line_of(&src, "telemetry: wsg_sim::telemetry::TelemetryHandle,"),
        ],
        "diagnostics: {diags:#?}"
    );
    // The Option-wrapped fields, the signature, and the path expression must
    // all pass.
    assert_eq!(diags.len(), hook.len());
}

#[test]
fn d6_fixture_reports_each_seeded_violation() {
    let src = fixture("d6_default_hash.rs");
    let diags = lint_source("d6_default_hash.rs", &src, RuleSet::all());
    let default_hash: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == Rule::DefaultHash)
        .map(|d| d.line)
        .collect();
    assert_eq!(
        default_hash,
        vec![
            line_of(&src, "use std::collections::HashMap;"),
            line_of(&src, "pub waiters: HashMap<u64, Vec<u32>>,"),
            line_of(&src, "let mut seen = std::collections::HashSet::new();"),
        ],
        "diagnostics: {diags:#?}"
    );
    // d1 must not double-fire on the same declarations, and the comment,
    // string, allow, and test-module mentions must all pass.
    assert_eq!(diags.len(), default_hash.len(), "diagnostics: {diags:#?}");
}

#[test]
fn d7_fixture_reports_each_seeded_violation() {
    let src = fixture("d7_shared_mut.rs");
    let diags = lint_source("d7_shared_mut.rs", &src, RuleSet::all());
    let shared: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == Rule::SharedMut)
        .map(|d| d.line)
        .collect();
    assert_eq!(
        shared,
        vec![
            line_of(&src, "pub slots:"),
            line_of(&src, "pub fn pin"),
            line_of(&src, "pub available:"),
            line_of(&src, "pub comps: Vec<std::rc::Rc"),
            line_of(&src, "pub static mut GLOBAL_EPOCH"),
            line_of(&src, "thread_local! {"),
        ],
        "diagnostics: {diags:#?}"
    );
    // Prose/string mentions, the allow-annotated handle, and the test
    // module must contribute nothing else.
    assert_eq!(diags.len(), shared.len(), "diagnostics: {diags:#?}");
}

#[test]
fn d8_fixture_reports_each_seeded_conflict() {
    let src = fixture("d8_site_registry.rs");
    let diags = lint_source("d8_site_registry.rs", &src, RuleSet::all());
    let registry: Vec<&xtask::Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == Rule::SiteRegistry)
        .collect();
    assert_eq!(diags.len(), registry.len(), "diagnostics: {diags:#?}");

    let at = |needle: &str| line_of(&src, needle);
    let expect = |line: usize, fragment: &str| {
        assert!(
            registry
                .iter()
                .any(|d| d.line == line && d.message.contains(fragment)),
            "expected a d8 diagnostic at line {line} mentioning {fragment:?}, \
             got: {registry:#?}"
        );
    };
    // Cross-registration collision (walkers reuses gmmu_cache's id), once
    // per occupancy-mirror sink.
    expect(at("gpm.walkers.set_auditor"), "both claim id");
    expect(at("gpm.walkers.set_tracer"), "both claim id");
    // The fig21 fixed-stride self-collision, once per sink.
    expect(at("cu.l1_tlb.set_auditor"), "fig21");
    expect(at("cu.l1_tlb.set_tracer"), "fig21");
    // Unknown model variable, once per sink.
    expect(at("gpm.hbm.set_auditor"), "unknown variable");
    expect(at("gpm.hbm.set_tracer"), "unknown variable");
    // Coverage parity: cuckoo traces but never audits.
    expect(at("gpm.cuckoo.set_tracer"), "but not audit");
    assert_eq!(registry.len(), 7, "diagnostics: {registry:#?}");
}

#[test]
fn d9_fixture_reports_each_seeded_violation() {
    let src = fixture("d9_stale_allow.rs");
    let diags = lint_source("d9_stale_allow.rs", &src, RuleSet::all());
    let stale: Vec<&xtask::Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == Rule::StaleAllow)
        .collect();
    // The suppressed Instant::now calls must not leak through as d2.
    assert_eq!(diags.len(), stale.len(), "diagnostics: {diags:#?}");
    let lines: Vec<usize> = stale.iter().map(|d| d.line).collect();
    assert_eq!(
        lines,
        vec![
            line_of(&src, "lint:allow-module(float-cycle)"),
            line_of(&src, "leftover from a removed"),
            line_of(&src, "std::time::Instant::now() // lint:allow(wallclock)"),
        ],
        "diagnostics: {stale:#?}"
    );
    assert!(stale[0].message.contains("no longer fires"));
    assert!(stale[1].message.contains("no longer fires"));
    assert!(stale[2].message.contains("without a justification"));
}

#[test]
fn d10_fixture_reports_each_seeded_violation() {
    let src = fixture("d10_det_string.rs");
    let diags = lint_source("d10_det_string.rs", &src, RuleSet::all());
    let det: Vec<usize> = diags
        .iter()
        .filter(|d| d.rule == Rule::DetString)
        .map(|d| d.line)
        .collect();
    assert_eq!(
        det,
        vec![line_of(&src, "events={}"), line_of(&src, "wall_ns={}"),],
        "diagnostics: {diags:#?}"
    );
    assert_eq!(diags.len(), det.len(), "diagnostics: {diags:#?}");
}

/// The PR 4 regression class, caught at lint time: reverting the widened
/// L1-TLB site stride back to the fixed 64 must trip d8's self-collision
/// check under the 76-CU model environment, while the committed engine
/// source stays clean.
#[test]
fn d8_would_have_caught_the_fig21_fixed_stride_collision() {
    let engine_rel = "crates/core/src/sim/mod.rs";
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let source = std::fs::read_to_string(root.join(engine_rel)).expect("engine source readable");
    assert!(
        source.contains("g * cu_stride + c as u64"),
        "engine no longer computes L1 sites as g * cu_stride + c; update this regression test"
    );

    let clean = lint_source(engine_rel, &source, xtask::classify(Path::new(engine_rel)));
    assert!(
        !clean.iter().any(|d| d.rule == Rule::SiteRegistry),
        "committed engine source has site-registry diagnostics: {clean:#?}"
    );

    // The historical bug: a fixed 64 stride, so neighbouring GPMs share L1
    // site ids on presets with more than 64 CUs per GPM.
    let reverted = source.replace("g * cu_stride + c as u64", "g * 64 + c as u64");
    let diags = lint_source(
        engine_rel,
        &reverted,
        xtask::classify(Path::new(engine_rel)),
    );
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::SiteRegistry && d.message.contains("fig21")),
        "expected a fig21 self-collision diagnostic, got: {diags:#?}"
    );
}

#[test]
fn clean_fixture_is_clean() {
    let src = fixture("clean.rs");
    let diags = lint_source("clean.rs", &src, RuleSet::all());
    assert!(diags.is_empty(), "clean fixture flagged: {diags:#?}");
}

#[test]
fn cli_exits_nonzero_with_file_line_diagnostics_on_seeded_fixtures() {
    for name in [
        "d1_map_iter.rs",
        "d2_wallclock.rs",
        "d3_float_cycle.rs",
        "d4_unwrap.rs",
        "d5_hook_pattern.rs",
        "d6_default_hash.rs",
        "d7_shared_mut.rs",
        "d8_site_registry.rs",
        "d9_stale_allow.rs",
        "d10_det_string.rs",
    ] {
        let path = fixture_path(name);
        let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
            .args(["lint", path.to_str().expect("utf-8 path")])
            .output()
            .expect("xtask binary runs");
        assert!(
            !out.status.success(),
            "{name}: expected nonzero exit, stdout: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("{name}:")),
            "{name}: diagnostics should carry file:line, got: {stdout}"
        );
    }
}

#[test]
fn cli_exits_zero_on_clean_fixture() {
    let path = fixture_path("clean.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", path.to_str().expect("utf-8 path")])
        .output()
        .expect("xtask binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "expected clean exit, got: {stdout}");
    assert!(stdout.contains("lint clean"), "got: {stdout}");
}

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let report = xtask::lint_workspace(root);
    assert!(
        report.diagnostics.is_empty(),
        "workspace lint violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 20, "walker found too few files");
}
