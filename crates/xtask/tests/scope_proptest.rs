//! Property test pinning the scope tracker against a brute-force model.
//!
//! Token soup is assembled from atomic fragments whose effect on brace and
//! paren depth is known by construction: code brackets count, brackets
//! hidden inside string/char literals and comments do not, and newlines —
//! bare, inside a line comment, or inside a multi-line block comment —
//! start a new line at the current depth. The tracker's per-line
//! start-of-line state must match the model exactly.

use proptest::prelude::*;
use xtask::scope::preprocess;

/// (text, counts): fragments whose brackets are code (`counts`) vs hidden
/// inside literals or comments. Line comments carry their own newline.
const TOKENS: &[(&str, bool)] = &[
    ("{", true),
    ("}", true),
    ("(", true),
    (")", true),
    ("[", true),
    ("]", true),
    ("x", true),
    ("fn f", true),
    ("mod m", true),
    ("struct S", true),
    ("impl T for S", true),
    ("'a", true),
    ("\n", true),
    ("\"{]) // }\"", false),
    ("r#\"} not code { \"#", false),
    ("'{'", false),
    ("')'", false),
    ("/* {{ )) \" */", false),
    ("/* [[\n{{ */", false),
    ("// {(\" soup\n", false),
];

/// Renders the soup and the expected (brace, paren+bracket) state at the
/// start of every line.
fn materialize(choices: &[usize]) -> (String, Vec<(i64, i64)>) {
    let mut src = String::new();
    let mut starts = vec![(0i64, 0i64)];
    let (mut brace, mut paren) = (0i64, 0i64);
    for &c in choices {
        let (text, counts) = TOKENS[c % TOKENS.len()];
        for ch in text.chars() {
            if ch == '\n' {
                starts.push((brace, paren));
            } else if counts {
                match ch {
                    '{' => brace += 1,
                    '}' => brace -= 1,
                    '(' | '[' => paren += 1,
                    ')' | ']' => paren -= 1,
                    _ => {}
                }
            }
        }
        src.push_str(text);
        src.push(' ');
    }
    (src, starts)
}

proptest! {
    /// Start-of-line brace and paren depth match the brute-force counter on
    /// arbitrary token soup.
    #[test]
    fn scope_tracker_matches_brute_force_depths(
        choices in proptest::collection::vec(0usize..TOKENS.len(), 0..400)
    ) {
        let (src, starts) = materialize(&choices);
        let pre = preprocess(&src);
        prop_assert!(pre.lines.len() <= starts.len(), "line count drifted");
        for (i, line) in pre.lines.iter().enumerate() {
            let (brace, paren) = starts[i];
            prop_assert_eq!(
                (line.depth, line.paren),
                (brace, paren),
                "line {} of soup:\n{}",
                i + 1,
                src
            );
        }
        // Structural invariants of the item spans on any input.
        // Unbalanced closers may drive depth negative before an item opens,
        // so body_depth carries no lower bound here.
        for span in &pre.items {
            prop_assert!(span.start_line >= 1);
            prop_assert!(
                span.end_line == 0 || span.end_line >= span.start_line,
                "span {:?} closed before it opened",
                span
            );
        }
    }
}
