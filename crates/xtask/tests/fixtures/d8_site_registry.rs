//! Lint fixture: rule d8 — audit/trace/telemetry site-id registry conflicts.
//! Seeded hazards, each of which must fire once per sink it afflicts:
//!
//! * `gpm.walkers` reuses `gpm.gmmu_cache`'s id expression (`g * 8 + 1`) —
//!   a cross-registration collision in both the audit and trace streams.
//! * `cu.l1_tlb` uses the fixed 64 stride (`g_total * 8 + g * 64 + c`) that
//!   self-collides at 76 CUs per GPM — the fig21 regression class.
//! * `gpm.hbm`'s expression references `hbm_base`, which the site-id model
//!   does not know.
//! * `gpm.cuckoo` registers with trace but never with audit — a coverage
//!   parity gap.
//!
//! `queue` (siteless, both sinks) and `gpm.l2_tlb` (same id both sinks)
//! must pass.

pub fn attach_auditor(sim: &mut Engine, audit: AuditHandle) {
    let g_total = sim.gpms.len() as u64;
    sim.queue.set_auditor(audit.clone());
    for (g, gpm) in sim.gpms.iter_mut().enumerate() {
        let g = g as u64;
        gpm.l2_tlb.set_auditor(audit.clone(), g * 8);
        gpm.gmmu_cache.set_auditor(audit.clone(), g * 8 + 1);
        gpm.walkers.set_auditor(audit.clone(), g * 8 + 1);
        gpm.hbm.set_auditor(audit.clone(), hbm_base + g);
        for (c, cu) in gpm.cus.iter_mut().enumerate() {
            cu.l1_tlb.set_auditor(audit.clone(), g_total * 8 + g * 64 + c as u64);
        }
    }
}

pub fn attach_tracer(sim: &mut Engine, trace: TraceHandle) {
    let g_total = sim.gpms.len() as u64;
    sim.queue.set_tracer(trace.clone());
    for (g, gpm) in sim.gpms.iter_mut().enumerate() {
        let g = g as u64;
        gpm.l2_tlb.set_tracer(trace.clone(), g * 8);
        gpm.gmmu_cache.set_tracer(trace.clone(), g * 8 + 1);
        gpm.walkers.set_tracer(trace.clone(), g * 8 + 1);
        gpm.hbm.set_tracer(trace.clone(), hbm_base + g);
        gpm.cuckoo.set_tracer(trace.clone(), g * 8 + 3);
        for (c, cu) in gpm.cus.iter_mut().enumerate() {
            cu.l1_tlb.set_tracer(trace.clone(), g_total * 8 + g * 64 + c as u64);
        }
    }
}
