// Fixture: seeded d4 (unwrap) violations.

pub fn head(values: &[u64]) -> u64 {
    *values.first().unwrap() // VIOLATION: unwrap
}

pub fn capacity(raw: &str) -> usize {
    raw.parse().expect("capacity must parse") // VIOLATION: unwrap
}

pub fn head_or_zero(values: &[u64]) -> u64 {
    values.first().copied().unwrap_or(0) // fine: total
}
