// Fixture: seeded d2 (wallclock) violations.

use std::time::Instant;

pub fn stamp() -> u128 {
    let t0 = Instant::now(); // VIOLATION: wallclock
    t0.elapsed().as_nanos()
}

pub fn roll() -> u64 {
    rand::random::<u64>() // VIOLATION: wallclock (ambient entropy)
}

pub fn fan_out() {
    std::thread::spawn(|| {}).join().ok(); // VIOLATION: wallclock (ambient concurrency)
}

pub fn deterministic(seed: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) // fine
}
