// Fixture: seeded d3 (float-cycle) violation.

pub type Cycle = u64;

pub fn serialization(bytes: u64, bytes_per_cycle: f64) -> Cycle {
    (bytes as f64 / bytes_per_cycle).ceil() as Cycle // VIOLATION: float-cycle
}

pub fn integer_cycles(bytes: u64, bytes_per_cycle: u64) -> Cycle {
    bytes.div_ceil(bytes_per_cycle) as Cycle // fine: integer math
}
