//! Lint fixture: rule d9 — allow-pragma hygiene. A stale line allow, a
//! stale module allow, and a used-but-unjustified allow must each fire;
//! the used-and-justified allow must pass silently.

// lint:allow-module(float-cycle): nothing in this module touches floats.
pub struct Sampler {
    pub period: u64,
}

impl Sampler {
    /// The allow below covers a line the rule no longer fires on.
    pub fn stale_site(&self) -> u64 {
        // lint:allow(wallclock): leftover from a removed Instant::now call.
        self.period * 2
    }

    /// Suppression works, but the pragma carries no `: <why>` suffix.
    pub fn unjustified_site(&self) -> std::time::Instant {
        std::time::Instant::now() // lint:allow(wallclock)
    }

    /// The well-formed case: used and justified.
    pub fn sanctioned_site(&self) -> std::time::Instant {
        // lint:allow(wallclock): fixture exercise of the justified form.
        std::time::Instant::now()
    }
}
