//! Lint fixture: rule d10 — the deterministic contract string must not read
//! host-side fields. `self.sim_events` and `self.host_wall_nanos` inside
//! `to_deterministic_string` must fire; the same reads outside the contract
//! function, reads of simulated fields inside it, and the allow-annotated
//! read must all pass.

pub struct Metrics {
    pub sim_cycles: u64,
    pub sim_events: u64,
    pub host_wall_nanos: u64,
    pub l1_hits: u64,
}

impl Metrics {
    pub fn to_deterministic_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("cycles={}\n", self.sim_cycles));
        out.push_str(&format!("l1_hits={}\n", self.l1_hits));
        out.push_str(&format!("events={}\n", self.sim_events));
        out.push_str(&format!("wall_ns={}\n", self.host_wall_nanos));
        // lint:allow(det-string): fixture exercise of the escape hatch.
        out.push_str(&format!("events_again={}\n", self.sim_events));
        out
    }

    /// Host-side reads outside the contract function are fine.
    pub fn host_summary(&self) -> String {
        format!("{} events in {} ns", self.sim_events, self.host_wall_nanos)
    }
}
