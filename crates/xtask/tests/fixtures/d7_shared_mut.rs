//! Lint fixture: rule d7 — shared interior mutability in simulator code.
//! Every seeded pattern must fire: `Rc<RefCell<..>>` (bare and inside a
//! handle slab), a bare `Rc`, a bare `Cell`, `static mut`, and
//! `thread_local!`. Prose mentions, string literals, allow-annotated
//! sites, index-based slabs, and test code must all pass.

/// The canonical hazard: one heap cell mutable from every holder.
pub struct SharedScoreboard {
    pub slots: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
}

/// Shared ownership alone is already a shard hazard.
pub fn pin(board: &std::rc::Rc<Vec<u64>>) -> usize {
    board.len()
}

/// Interior mutability without the Rc is still cross-shard poison.
pub struct Credits {
    pub available: std::cell::Cell<u32>,
}

/// Handle-based component dispatch — the layout the PR-9 rework removed
/// from the engine's hot path — is a d7 hit even when dressed as a slab.
pub struct HandleSlab {
    pub comps: Vec<std::rc::Rc<std::cell::RefCell<u64>>>,
}

/// The index-based replacement must pass with no allow: a plain pre-sized
/// slab addressed by `usize`, mutation through ordinary borrows.
pub struct IndexSlab {
    pub comps: Vec<u64>,
}

pub fn bump(slab: &mut IndexSlab, idx: usize) -> u64 {
    slab.comps[idx] += 1;
    slab.comps[idx]
}

pub static mut GLOBAL_EPOCH: u64 = 0;

thread_local! {
    static SCRATCH: Vec<u8> = Vec::new();
}

/// Prose mentions of "RefCell" here in the comment, or "Rc<RefCell<..>>"
/// inside a string literal, must not fire.
pub fn doc_only() -> &'static str {
    "replace Rc<RefCell<..>> with owned state"
}

/// A justified allow suppresses the hit.
pub struct Sanctioned {
    // lint:allow(shared-mut): fixture exercise of the sanctioned-sink shape.
    pub handle: std::rc::Rc<std::cell::RefCell<u64>>,
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_share_freely() {
        let cell = std::rc::Rc::new(std::cell::RefCell::new(0u64));
        *cell.borrow_mut() += 1;
        assert_eq!(*cell.borrow(), 1);
    }
}
