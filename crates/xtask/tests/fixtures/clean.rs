//! Fixture: must pass every rule. Exercises the corners the linter has to
//! get right — literals, doc comments, cfg(test) regions, and the
//! `lint:allow` escape hatch. Doc example (ignored): `values.first().unwrap()`.

use std::collections::BTreeMap;

pub type Cycle = u64;

pub struct Table {
    entries: BTreeMap<u64, u64>,
}

pub fn sum(table: &Table) -> u64 {
    table.entries.values().sum() // BTreeMap: deterministic order
}

pub fn not_entropy() -> &'static str {
    "Instant::now and thread_rng live only inside this string literal"
}

pub fn scaled(bytes: u64) -> Cycle {
    // lint:allow(float-cycle): fixed-point conversion audited by hand.
    (bytes as f64 * 0.5) as Cycle
}

pub fn head(values: &[u64]) -> Option<u64> {
    values.first().copied()
}

/// Struct-of-arrays hot state (DESIGN.md §16): parallel planes plus a
/// per-set bitmask, probed by trailing-zeros scan — every rule must pass
/// without a single allow.
pub struct SoaPlanes {
    pub tags: Vec<u64>,
    pub stamps: Vec<Cycle>,
    pub valid: u64,
}

pub fn probe(planes: &SoaPlanes, tag: u64) -> Option<usize> {
    let mut mask = planes.valid;
    while mask != 0 {
        let way = mask.trailing_zeros() as usize;
        if planes.tags[way] == tag {
            return Some(way);
        }
        mask &= mask - 1;
    }
    None
}

/// Batch drain into a caller-owned buffer — the allocation-free delivery
/// shape of the batched dispatch loop.
pub fn drain_due(planes: &mut SoaPlanes, now: Cycle, out: &mut Vec<u64>) -> usize {
    let start = out.len();
    let mut mask = planes.valid;
    while mask != 0 {
        let way = mask.trailing_zeros() as usize;
        if planes.stamps[way] <= now {
            planes.valid &= !(1 << way);
            out.push(planes.tags[way]);
        }
        mask &= mask - 1;
    }
    out.len() - start
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let values = [1u64];
        assert_eq!(*values.first().unwrap(), 1);
    }
}
