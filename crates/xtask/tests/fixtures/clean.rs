//! Fixture: must pass every rule. Exercises the corners the linter has to
//! get right — literals, doc comments, cfg(test) regions, and the
//! `lint:allow` escape hatch. Doc example (ignored): `values.first().unwrap()`.

use std::collections::BTreeMap;

pub type Cycle = u64;

pub struct Table {
    entries: BTreeMap<u64, u64>,
}

pub fn sum(table: &Table) -> u64 {
    table.entries.values().sum() // BTreeMap: deterministic order
}

pub fn not_entropy() -> &'static str {
    "Instant::now and thread_rng live only inside this string literal"
}

pub fn scaled(bytes: u64) -> Cycle {
    // lint:allow(float-cycle): fixed-point conversion audited by hand.
    (bytes as f64 * 0.5) as Cycle
}

pub fn head(values: &[u64]) -> Option<u64> {
    values.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let values = [1u64];
        assert_eq!(*values.first().unwrap(), 1);
    }
}
