// Fixture: seeded d1 (map-iter) violations. Never compiled; scanned by the
// lint integration tests and by `cargo run -p xtask -- lint <this file>`.

use std::collections::{HashMap, HashSet};

pub struct RouterState {
    pub inflight: HashMap<u64, u32>,
}

pub fn total_inflight(state: &RouterState) -> u32 {
    let mut sum = 0;
    for (_id, count) in state.inflight.iter() { // VIOLATION: map-iter
        sum += count;
    }
    sum
}

pub fn lookup(state: &RouterState, id: u64) -> Option<u32> {
    state.inflight.get(&id).copied() // keyed access: fine
}

pub fn drain_all(seen: &mut HashSet<u64>) -> Vec<u64> {
    seen.drain().collect() // VIOLATION: map-iter
}
