//! Lint fixture: rule d6 — entropy-seeded std hash collections in simulator
//! code. Every `HashMap`/`HashSet` mention in code position must be flagged,
//! even without iteration (which is d1's job); comments, strings, test code,
//! and allow-annotated sites must pass.

use std::collections::HashMap;

/// Remote-miss tracking keyed by VPN — the type alone is the hazard: its
/// capacity growth and probe order depend on the process-entropy seed.
pub struct MissFile {
    pub waiters: HashMap<u64, Vec<u32>>,
}

pub fn distinct(keys: &[u64]) -> usize {
    let mut seen = std::collections::HashSet::new();
    for &k in keys {
        seen.insert(k);
    }
    seen.len()
}

/// A deterministic look-alike must not be flagged: `HashIndex` is seeded.
pub fn sanctioned_index_mention() -> &'static str {
    "route hot-path state through wsg_sim::HashIndex instead"
}

/// The struct-of-arrays replacement shape (DESIGN.md §16) must pass with no
/// allow at all: parallel planes over plain vectors, membership by linear
/// tag scan — slot order is allocation order, fully deterministic.
pub struct SoaMissFile {
    pub tags: Vec<u64>,
    pub live: Vec<bool>,
    pub waiters: Vec<Vec<u32>>,
}

pub fn soa_find(file: &SoaMissFile, block: u64) -> Option<usize> {
    (0..file.tags.len()).find(|&i| file.live[i] && file.tags[i] == block)
}

pub fn escape_hatch() -> usize {
    let m: std::collections::HashMap<u64, u64> = Default::default(); // lint:allow(default-hash): escape-hatch exercise for this fixture.
    m.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_hash_freely() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m.len(), 1);
    }
}
