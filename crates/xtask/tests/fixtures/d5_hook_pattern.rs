// Fixture: seeded d5 (hook-pattern) violations. Observability handles must
// be held as `Option<...>` and attached through a `set_*` method so the
// audit/trace features stay purely observational.

pub struct Probe {
    tracer: TraceHandle,                  // VIOLATION: hook-pattern
    auditor: wsg_sim::audit::AuditHandle, // VIOLATION: hook-pattern
    telemetry: wsg_sim::telemetry::TelemetryHandle, // VIOLATION: hook-pattern
    ok_tracer: Option<TraceHandle>,       // fine: optional handle
    ok_auditor: Option<wsg_sim::audit::AuditHandle>, // fine: optional handle
    ok_telemetry: Option<TelemetryHandle>, // fine: optional handle
}

impl Probe {
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        // fine above: a signature takes the handle by value to store it.
        self.ok_tracer = Some(tracer);
    }

    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        // fine above: attach signatures may take the handle by value.
        self.ok_telemetry = Some(telemetry);
    }

    pub fn attach(&mut self, sink: &Sink) {
        self.ok_tracer = Some(TraceHandle::of(sink)); // fine: path expression
        self.ok_telemetry = Some(TelemetryHandle::of(sink)); // fine: path expression
    }
}
