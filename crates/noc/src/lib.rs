#![warn(missing_docs)]

//! 2-D mesh network-on-chip model for the wafer-scale GPU.
//!
//! The paper's wafer (Fig 1a) connects GPM tiles with a mesh whose links
//! provide 768 GB/s of bandwidth and 32 cycles of traversal latency each
//! (Table I). Requests travel multiple hops via dimension-ordered (XY)
//! routing, so latency is *geometry-dependent* — the property that drives
//! observations O1/O2 and the entire HDPAT design.
//!
//! The model reserves serialization time on every directional link of a
//! packet's route (a "link ledger": each link remembers when it next becomes
//! free), which captures bandwidth contention and queueing without per-hop
//! events. All bytes are accounted so the NoC-traffic-overhead statistic of
//! §V-D can be reproduced.
//!
//! # Example
//!
//! ```
//! use wsg_noc::{Coord, LinkParams, Mesh};
//!
//! let mut mesh = Mesh::new(7, 7, LinkParams::paper_baseline());
//! let a = Coord::new(0, 0);
//! let b = Coord::new(3, 3);
//! let out = mesh.send(a, b, 64, 0);
//! assert_eq!(out.hops, 6);
//! assert_eq!(out.arrival, 6 * 32 + 6); // per hop: 32 cycles latency + 1 cycle serialization
//! ```

pub mod geometry;
pub mod mesh;
pub mod routing;

pub use geometry::Coord;
pub use mesh::{LinkParams, Mesh, SendOutcome};
pub use routing::xy_route;
