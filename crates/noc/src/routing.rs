//! Dimension-ordered (XY) routing.

use crate::geometry::Coord;

/// Computes the XY route from `from` to `to`: first along the X dimension,
/// then along Y. Returns the full sequence of tiles including both
/// endpoints; a route from a tile to itself is the single tile.
///
/// XY routing is deadlock-free on a mesh and is what MGPUSim's mesh and the
/// paper's latency analysis assume (latency grows with Manhattan distance,
/// §III O1).
///
/// # Example
///
/// ```
/// use wsg_noc::{xy_route, Coord};
/// let route = xy_route(Coord::new(0, 0), Coord::new(2, 1));
/// let expect: Vec<Coord> = [(0, 0), (1, 0), (2, 0), (2, 1)]
///     .into_iter().map(Coord::from).collect();
/// assert_eq!(route, expect);
/// ```
pub fn xy_route(from: Coord, to: Coord) -> Vec<Coord> {
    let mut route = Vec::with_capacity(from.manhattan(to) as usize + 1);
    let mut cur = from;
    route.push(cur);
    while cur.x != to.x {
        cur.x = if to.x > cur.x { cur.x + 1 } else { cur.x - 1 };
        route.push(cur);
    }
    while cur.y != to.y {
        cur.y = if to.y > cur.y { cur.y + 1 } else { cur.y - 1 };
        route.push(cur);
    }
    route
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_route_is_single_tile() {
        let c = Coord::new(3, 3);
        assert_eq!(xy_route(c, c), vec![c]);
    }

    #[test]
    fn route_length_is_manhattan_plus_one() {
        let a = Coord::new(1, 5);
        let b = Coord::new(6, 0);
        assert_eq!(xy_route(a, b).len() as u32, a.manhattan(b) + 1);
    }

    #[test]
    fn x_dimension_first() {
        let route = xy_route(Coord::new(0, 0), Coord::new(2, 2));
        assert_eq!(route[1], Coord::new(1, 0));
        assert_eq!(route[2], Coord::new(2, 0));
        assert_eq!(route[3], Coord::new(2, 1));
    }

    #[test]
    fn handles_negative_directions() {
        let route = xy_route(Coord::new(4, 4), Coord::new(2, 6));
        assert_eq!(
            route,
            vec![
                Coord::new(4, 4),
                Coord::new(3, 4),
                Coord::new(2, 4),
                Coord::new(2, 5),
                Coord::new(2, 6),
            ]
        );
    }

    #[test]
    fn consecutive_tiles_are_adjacent() {
        let route = xy_route(Coord::new(0, 6), Coord::new(6, 0));
        for pair in route.windows(2) {
            assert_eq!(pair[0].manhattan(pair[1]), 1);
        }
    }

    #[test]
    fn forward_and_reverse_routes_have_same_length() {
        let a = Coord::new(1, 2);
        let b = Coord::new(5, 6);
        assert_eq!(xy_route(a, b).len(), xy_route(b, a).len());
    }
}
