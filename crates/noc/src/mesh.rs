//! The mesh interconnect with bandwidth-reserving links.

use wsg_sim::time::serialization_cycles;
use wsg_sim::Cycle;

use crate::geometry::Coord;

/// Physical parameters of one mesh link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Traversal latency per link, in cycles.
    pub latency: Cycle,
    /// Link bandwidth in bytes per cycle.
    pub bytes_per_cycle: f64,
}

impl LinkParams {
    /// Table I values: 768 GB/s per link at the 1 GHz system clock
    /// (768 bytes/cycle) and 32 cycles of latency per link.
    pub fn paper_baseline() -> Self {
        Self {
            latency: 32,
            bytes_per_cycle: 768.0,
        }
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

/// The result of injecting a packet into the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendOutcome {
    /// Cycle at which the packet is fully delivered at the destination.
    pub arrival: Cycle,
    /// Number of links traversed (the Manhattan distance).
    pub hops: u32,
    /// Cycles the packet spent waiting for busy links (contention).
    pub queueing: Cycle,
}

#[derive(Debug, Clone, Copy, Default)]
struct LinkState {
    next_free: Cycle,
    bytes: u64,
    packets: u64,
    busy_cycles: u64,
}

/// A `width × height` mesh of tiles with directional, bandwidth-reserving
/// links and XY routing.
///
/// Sending a packet walks its route; on each directional link the packet
/// waits until the link is free, occupies it for the serialization time of
/// its payload, then takes the link latency to traverse. The reservation is
/// recorded so later packets on the same link queue behind it. A packet sent
/// from a tile to itself is delivered instantly (intra-GPM traffic does not
/// use the mesh).
///
/// # Example
///
/// ```
/// use wsg_noc::{Coord, LinkParams, Mesh};
/// let mut mesh = Mesh::new(3, 3, LinkParams { latency: 10, bytes_per_cycle: 8.0 });
/// // 16 bytes over one hop: 2 cycles serialization + 10 cycles latency.
/// let out = mesh.send(Coord::new(0, 0), Coord::new(1, 0), 16, 0);
/// assert_eq!(out.arrival, 12);
/// ```
#[derive(Debug, Clone)]
pub struct Mesh {
    width: u16,
    height: u16,
    params: LinkParams,
    // Flat per-tile × per-direction array (see `link_index`): O(1) access on
    // the per-hop hot path, and any iteration walks it in index order, which
    // is a fixed function of the topology (lint rule D1).
    links: Vec<LinkState>,
    total_bytes: u64,
    total_packets: u64,
    total_hop_bytes: u64,
    #[cfg(feature = "audit")]
    auditor: Option<wsg_sim::audit::AuditHandle>,
    #[cfg(feature = "trace")]
    tracer: Option<wsg_sim::trace::TraceHandle>,
    #[cfg(feature = "telemetry")]
    telemetry: Option<wsg_sim::telemetry::TelemetryHandle>,
    #[cfg(feature = "telemetry")]
    telemetry_base: usize,
}

/// Encodes a directional link's endpoints into one trace site id (same
/// packing as the audit link site).
#[cfg(feature = "trace")]
fn trace_link_site(from: Coord, to: Coord) -> u64 {
    ((from.x as u64) << 48) | ((from.y as u64) << 32) | ((to.x as u64) << 16) | to.y as u64
}

/// Encodes a directional link's endpoints into one audit site id.
#[cfg(feature = "audit")]
fn link_site(from: Coord, to: Coord) -> wsg_sim::audit::Site {
    let id =
        ((from.x as u64) << 48) | ((from.y as u64) << 32) | ((to.x as u64) << 16) | to.y as u64;
    wsg_sim::audit::Site::new(wsg_sim::audit::SiteKind::Link, id)
}

impl Mesh {
    /// Creates a mesh of `width × height` tiles.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the bandwidth is not positive.
    pub fn new(width: u16, height: u16, params: LinkParams) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        assert!(
            params.bytes_per_cycle > 0.0,
            "link bandwidth must be positive"
        );
        Self {
            width,
            height,
            params,
            links: vec![LinkState::default(); width as usize * height as usize * 4],
            total_bytes: 0,
            total_packets: 0,
            total_hop_bytes: 0,
            #[cfg(feature = "audit")]
            auditor: None,
            #[cfg(feature = "trace")]
            tracer: None,
            #[cfg(feature = "telemetry")]
            telemetry: None,
            #[cfg(feature = "telemetry")]
            telemetry_base: 0,
        }
    }

    /// Attaches an auditor observing every link injection and delivery.
    #[cfg(feature = "audit")]
    pub fn set_auditor(&mut self, auditor: wsg_sim::audit::AuditHandle) {
        self.auditor = Some(auditor);
    }

    /// Attaches a tracer recording a span per packet and per link hop.
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: wsg_sim::trace::TraceHandle) {
        self.tracer = Some(tracer);
    }

    /// Attaches the telemetry flight recorder, announcing the mesh grid
    /// and registering two tile-tagged counters per tile — bytes injected
    /// on and busy cycles of the tile's outgoing links — so link
    /// utilization can be rendered both as a timeline and as a wafer
    /// heatmap.
    #[cfg(feature = "telemetry")]
    pub fn set_telemetry(&mut self, telemetry: &wsg_sim::telemetry::TelemetryHandle) {
        use wsg_sim::telemetry::CounterKind::Counter;
        self.telemetry_base = telemetry.with(|t| {
            t.set_grid(self.width, self.height);
            let mut base = 0;
            for y in 0..self.height {
                for x in 0..self.width {
                    let tile = y as u64 * self.width as u64 + x as u64;
                    let id = t.register("mesh.link_bytes", tile, Some((x, y)), Counter);
                    t.register("mesh.link_busy", tile, Some((x, y)), Counter);
                    if tile == 0 {
                        base = id;
                    }
                }
            }
            base
        });
        self.telemetry = Some(telemetry.clone());
    }

    /// Publishes per-tile cumulative link traffic into the attached
    /// recorder (a no-op without one). The engine calls this at each epoch
    /// boundary.
    #[cfg(feature = "telemetry")]
    pub fn publish_telemetry(&self) {
        if let Some(tel) = &self.telemetry {
            let base = self.telemetry_base;
            tel.with(|t| {
                for tile in 0..self.width as usize * self.height as usize {
                    let out = &self.links[tile * 4..tile * 4 + 4];
                    let bytes: u64 = out.iter().map(|l| l.bytes).sum();
                    let busy: u64 = out.iter().map(|l| l.busy_cycles).sum();
                    t.set(base + tile * 2, bytes);
                    t.set(base + tile * 2 + 1, busy);
                }
            });
        }
    }

    /// Mesh width in tiles.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height in tiles.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Link parameters.
    pub fn params(&self) -> LinkParams {
        self.params
    }

    /// The minimum number of cycles any event-carrying message needs to
    /// cross a tile boundary: one link traversal plus the serialization
    /// floor (every non-empty packet serializes for at least one cycle —
    /// see [`serialization_cycles`]).
    ///
    /// This is the conservative-lookahead bound of the sharded drive
    /// (DESIGN.md §15): when the simulation is partitioned into tile-group
    /// shards, no message sent while executing inside a lookahead window of
    /// this length can be *due* before the window ends, so shards only need
    /// to exchange boundary messages at window barriers.
    pub fn min_transit_cycles(&self) -> Cycle {
        self.params.latency.saturating_add(1)
    }

    /// Whether `c` is a valid tile of this mesh.
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// Slot of the directional link `from → to` in the flat link array:
    /// four outgoing directions (+x, −x, +y, −y) per source tile.
    fn link_index(&self, from: Coord, to: Coord) -> usize {
        let dir = if to.x > from.x {
            0
        } else if to.x < from.x {
            1
        } else if to.y > from.y {
            2
        } else {
            3
        };
        (from.y as usize * self.width as usize + from.x as usize) * 4 + dir
    }

    /// Inverse of [`Mesh::link_index`]: the `(from, to)` endpoints of slot
    /// `idx`. Slots on the mesh boundary point off-grid and are never
    /// reserved; callers iterate only over slots with traffic.
    fn link_endpoints(&self, idx: usize) -> (Coord, Coord) {
        let tile = idx / 4;
        let from = Coord::new(
            (tile % self.width as usize) as u16,
            (tile / self.width as usize) as u16,
        );
        let to = match idx % 4 {
            0 => Coord::new(from.x + 1, from.y),
            1 => Coord::new(from.x.wrapping_sub(1), from.y),
            2 => Coord::new(from.x, from.y + 1),
            _ => Coord::new(from.x, from.y.wrapping_sub(1)),
        };
        (from, to)
    }

    /// Injects a packet of `bytes` payload from `from` to `to` at cycle
    /// `depart` and returns its delivery outcome. Reserves bandwidth on
    /// every link of the XY route.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the mesh.
    pub fn send(&mut self, from: Coord, to: Coord, bytes: u64, depart: Cycle) -> SendOutcome {
        assert!(self.contains(from), "source {from} outside mesh");
        assert!(self.contains(to), "destination {to} outside mesh");
        if from == to {
            // Intra-GPM traffic does not use the mesh, so it must not show
            // up in the injected-traffic totals either.
            return SendOutcome {
                arrival: depart,
                hops: 0,
                queueing: 0,
            };
        }
        self.total_packets += 1;
        self.total_bytes += bytes;
        let ser = serialization_cycles(bytes, self.params.bytes_per_cycle);
        let mut t = depart;
        let mut queueing: Cycle = 0;
        let mut hops: u32 = 0;
        // Walk the XY route (X first, then Y — see `xy_route`) without
        // materializing it: one directional hop per iteration.
        let mut cur = from;
        while cur != to {
            let next = if cur.x != to.x {
                Coord::new(if to.x > cur.x { cur.x + 1 } else { cur.x - 1 }, cur.y)
            } else {
                Coord::new(cur.x, if to.y > cur.y { cur.y + 1 } else { cur.y - 1 })
            };
            let key = (cur, next);
            #[cfg(feature = "audit")]
            if let Some(a) = &self.auditor {
                a.with(|au| au.on_inject(link_site(key.0, key.1), bytes));
            }
            let idx = self.link_index(key.0, key.1);
            let link = &mut self.links[idx];
            let start = t.max(link.next_free);
            queueing += start - t;
            link.next_free = start + ser;
            link.bytes += bytes;
            link.packets += 1;
            link.busy_cycles += ser;
            self.total_hop_bytes += bytes;
            let hop_depart = t;
            t = start + ser + self.params.latency;
            #[cfg(feature = "audit")]
            if let Some(a) = &self.auditor {
                a.with(|au| au.on_deliver(link_site(key.0, key.1), bytes));
            }
            #[cfg(feature = "trace")]
            if let Some(tr) = &self.tracer {
                // Per-hop span: waiting for the link plus serialization plus
                // traversal, on the link's own site.
                tr.with(|s| {
                    s.complete(
                        "noc.hop",
                        hop_depart,
                        t - hop_depart,
                        trace_link_site(key.0, key.1),
                        bytes,
                    )
                });
            }
            #[cfg(not(feature = "trace"))]
            let _ = hop_depart;
            cur = next;
            hops += 1;
        }
        let out = SendOutcome {
            arrival: t,
            hops,
            queueing,
        };
        #[cfg(feature = "trace")]
        if let Some(tr) = &self.tracer {
            // Packet-level span on the source→destination pair, carrying the
            // hop count so stage summaries can distinguish path lengths.
            tr.with(|s| {
                s.complete(
                    "noc.send",
                    depart,
                    out.arrival - depart,
                    trace_link_site(from, to),
                    ((out.hops as u64) << 32) | bytes.min(u32::MAX as u64),
                )
            });
        }
        out
    }

    /// The zero-load latency of a `bytes`-sized packet between two tiles
    /// (no contention), useful for analytic comparisons.
    pub fn zero_load_latency(&self, from: Coord, to: Coord, bytes: u64) -> Cycle {
        let hops = from.manhattan(to) as Cycle;
        if hops == 0 {
            return 0;
        }
        let ser = serialization_cycles(bytes, self.params.bytes_per_cycle);
        hops * (ser + self.params.latency)
    }

    /// Total payload bytes injected (each packet counted once, regardless of
    /// distance). This is the figure used for the paper's "0.82 % additional
    /// traffic" comparison.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total bytes×hops moved (link-level traffic volume).
    pub fn total_hop_bytes(&self) -> u64 {
        self.total_hop_bytes
    }

    /// Total number of packets injected.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// The most-utilized link's busy fraction over `[0, end]`, or 0 for an
    /// idle mesh.
    ///
    /// Clamped to `[0, 1]`: bandwidth reservations can extend past the
    /// caller's horizon (a packet injected near `end` stays "busy" beyond
    /// it), and a fraction above 1 is meaningless as a utilization.
    pub fn peak_link_utilization(&self, end: Cycle) -> f64 {
        if end == 0 {
            return 0.0;
        }
        self.links
            .iter()
            .map(|l| (l.busy_cycles as f64 / end as f64).min(1.0))
            .fold(0.0, f64::max)
    }

    /// The `n` busiest links by packet count: `(from, to, packets, busy_cycles, queue_horizon)`.
    pub fn top_links(&self, n: usize) -> Vec<(Coord, Coord, u64, u64, Cycle)> {
        let mut v: Vec<_> = self
            .links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.packets > 0)
            .map(|(idx, l)| {
                let (a, b) = self.link_endpoints(idx);
                (a, b, l.packets, l.busy_cycles, l.next_free)
            })
            .collect();
        v.sort_by_key(|x| std::cmp::Reverse(x.2));
        v.truncate(n);
        v
    }

    /// Resets traffic accounting and link reservations (topology retained).
    pub fn reset(&mut self) {
        self.links.fill(LinkState::default());
        self.total_bytes = 0;
        self.total_packets = 0;
        self.total_hop_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Mesh {
        Mesh::new(
            4,
            4,
            LinkParams {
                latency: 10,
                bytes_per_cycle: 8.0,
            },
        )
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        Mesh::new(0, 3, LinkParams::default());
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn out_of_bounds_send_rejected() {
        let mut m = small();
        m.send(Coord::new(0, 0), Coord::new(9, 9), 1, 0);
    }

    #[test]
    fn local_delivery_is_instant() {
        let mut m = small();
        let out = m.send(Coord::new(1, 1), Coord::new(1, 1), 64, 42);
        assert_eq!(out.arrival, 42);
        assert_eq!(out.hops, 0);
    }

    #[test]
    fn min_transit_bounds_every_cross_tile_delivery() {
        // The sharded drive's lookahead contract: even the smallest packet
        // over the shortest (one-hop) route arrives no sooner than
        // min_transit_cycles after departure, contended or not.
        let mut m = small();
        assert_eq!(m.min_transit_cycles(), 11); // 10 latency + 1 ser floor
        let a = Coord::new(2, 2);
        let b = Coord::new(3, 2);
        assert!(m.zero_load_latency(a, b, 1) >= m.min_transit_cycles());
        let out = m.send(a, b, 1, 100);
        assert!(out.arrival >= 100 + m.min_transit_cycles());
        // A back-to-back send on the now-reserved link is strictly later.
        let out2 = m.send(a, b, 1, 100);
        assert!(out2.arrival > out.arrival);
    }

    #[test]
    fn uncontended_latency_matches_zero_load() {
        let mut m = small();
        let a = Coord::new(0, 0);
        let b = Coord::new(3, 2);
        let out = m.send(a, b, 16, 100);
        assert_eq!(out.arrival - 100, m.zero_load_latency(a, b, 16));
        assert_eq!(out.queueing, 0);
        assert_eq!(out.hops, 5);
    }

    #[test]
    fn contention_queues_second_packet() {
        let mut m = small();
        let a = Coord::new(0, 0);
        let b = Coord::new(1, 0);
        // 80 bytes at 8 B/cyc = 10 cycles of serialization.
        let first = m.send(a, b, 80, 0);
        let second = m.send(a, b, 80, 0);
        assert_eq!(first.arrival, 20);
        assert_eq!(second.queueing, 10);
        assert_eq!(second.arrival, 30);
    }

    #[test]
    fn reverse_links_are_independent() {
        let mut m = small();
        let a = Coord::new(0, 0);
        let b = Coord::new(1, 0);
        m.send(a, b, 800, 0);
        let back = m.send(b, a, 8, 0);
        assert_eq!(back.queueing, 0, "opposite direction must not contend");
    }

    #[test]
    fn traffic_accounting() {
        let mut m = small();
        m.send(Coord::new(0, 0), Coord::new(2, 0), 64, 0); // 2 hops
        m.send(Coord::new(0, 0), Coord::new(0, 0), 64, 0); // local
        assert_eq!(m.total_packets(), 1);
        assert_eq!(m.total_bytes(), 64);
        assert_eq!(m.total_hop_bytes(), 128); // 64 B over 2 links
    }

    #[test]
    fn self_addressed_packets_do_not_inflate_traffic() {
        // Intra-GPM deliveries never touch the mesh, so they must not count
        // toward the "additional traffic" denominator either.
        let mut m = small();
        for t in 0..10 {
            m.send(Coord::new(2, 2), Coord::new(2, 2), 64, t);
        }
        assert_eq!(m.total_packets(), 0);
        assert_eq!(m.total_bytes(), 0);
        assert_eq!(m.total_hop_bytes(), 0);
    }

    #[test]
    fn peak_utilization_and_reset() {
        let mut m = small();
        m.send(Coord::new(0, 0), Coord::new(1, 0), 80, 0);
        assert!(m.peak_link_utilization(100) > 0.0);
        m.reset();
        assert_eq!(m.total_bytes(), 0);
        assert_eq!(m.peak_link_utilization(100), 0.0);
    }

    #[test]
    fn peak_utilization_is_clamped_to_one() {
        let mut m = small();
        // 800 bytes at 8 B/cyc = 100 busy cycles on the (0,0)→(1,0) link;
        // a 10-cycle horizon would read as 10× utilization unclamped.
        m.send(Coord::new(0, 0), Coord::new(1, 0), 800, 0);
        let peak = m.peak_link_utilization(10);
        assert_eq!(peak, 1.0);
    }

    #[test]
    fn paper_baseline_params() {
        let p = LinkParams::paper_baseline();
        assert_eq!(p.latency, 32);
        assert_eq!(p.bytes_per_cycle, 768.0);
    }

    #[test]
    fn far_tiles_cost_more_than_near_tiles() {
        // The geometric-latency property behind observation O2.
        let m = Mesh::new(7, 7, LinkParams::paper_baseline());
        let cpu = Coord::new(3, 3);
        let near = m.zero_load_latency(Coord::new(3, 2), cpu, 32);
        let far = m.zero_load_latency(Coord::new(0, 0), cpu, 32);
        assert!(far >= 6 * near / 2);
        assert!(far > near);
    }
}
