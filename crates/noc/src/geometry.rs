//! Tile coordinates and wafer geometry.

use std::fmt;

/// The position of a tile (GPM or CPU) on the wafer mesh.
///
/// Coordinates are zero-based with `x` growing rightward and `y` growing
/// downward; the CPU tile of the paper's 7×7 wafer sits at `(3, 3)`.
///
/// # Example
///
/// ```
/// use wsg_noc::Coord;
/// let cpu = Coord::new(3, 3);
/// let corner = Coord::new(0, 0);
/// assert_eq!(cpu.manhattan(corner), 6);
/// assert_eq!(cpu.chebyshev(corner), 3); // corner is on ring 3
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Column index.
    pub x: u16,
    /// Row index.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }

    /// Manhattan (L1) distance — the hop count of an XY route.
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }

    /// Chebyshev (L∞) distance — the concentric-ring index relative to
    /// `other` used by HDPAT's layer assignment (§IV-C).
    pub fn chebyshev(self, other: Coord) -> u32 {
        (self.x.abs_diff(other.x) as u32).max(self.y.abs_diff(other.y) as u32)
    }

    /// The quadrant of `self` relative to `center`, numbered 0..4
    /// counter-clockwise starting from the upper-right (x >= cx, y < cy).
    /// Tiles exactly on an axis are assigned to the adjacent quadrant in a
    /// fixed, deterministic way (upper-right gets the `y == cy` row to its
    /// right, etc.), so every non-center tile has exactly one quadrant.
    pub fn quadrant(self, center: Coord) -> u8 {
        let right = self.x >= center.x;
        let above = self.y < center.y;
        match (right, above) {
            (true, true) => 0,
            (false, true) => 1,
            (false, false) => 2,
            (true, false) => 3,
        }
    }

    /// Clockwise angular order key around `center`, used to enumerate the
    /// GPMs of a ring in a stable rotational order for HDPAT's cluster
    /// indexing and rotation (§IV-D/E).
    ///
    /// Returns a value that increases monotonically as one walks the ring
    /// clockwise starting from the tile directly above the center.
    pub fn ring_position(self, center: Coord) -> u32 {
        let dx = self.x as i32 - center.x as i32;
        let dy = self.y as i32 - center.y as i32;
        let r = dx.unsigned_abs().max(dy.unsigned_abs());
        if r == 0 {
            return 0;
        }
        let r = r as i32;
        // Walk the ring of radius r clockwise from (0, -r) (top).
        // Segment 0: top edge, left-to-right from (0,-r) to (r,-r)
        // Segment 1: right edge, top-to-bottom from (r,-r) to (r,r)
        // Segment 2: bottom edge, right-to-left from (r,r) to (-r,r)
        // Segment 3: left edge, bottom-to-top from (-r,r) to (-r,-r)
        // Segment 4: top edge, left-to-right from (-r,-r) to (0,-r)
        if dy == -r && dx >= 0 {
            dx as u32
        } else if dx == r {
            (r + (dy + r)) as u32
        } else if dy == r {
            (3 * r + (r - dx)) as u32
        } else if dx == -r {
            (5 * r + (r - dy)) as u32
        } else {
            // dy == -r && dx < 0
            (7 * r + (r + dx)) as u32
        }
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(u16, u16)> for Coord {
    fn from((x, y): (u16, u16)) -> Self {
        Coord::new(x, y)
    }
}

/// Enumerates all tiles of ring `r` around `center` that fall within a
/// `width × height` wafer, in clockwise [`Coord::ring_position`] order.
///
/// # Example
///
/// ```
/// use wsg_noc::geometry::{ring_tiles, Coord};
/// let ring1 = ring_tiles(Coord::new(3, 3), 1, 7, 7);
/// assert_eq!(ring1.len(), 8);
/// assert!(ring1.iter().all(|c| c.chebyshev(Coord::new(3, 3)) == 1));
/// ```
pub fn ring_tiles(center: Coord, r: u32, width: u16, height: u16) -> Vec<Coord> {
    let mut tiles = Vec::new();
    if r == 0 {
        return vec![center];
    }
    for y in 0..height {
        for x in 0..width {
            let c = Coord::new(x, y);
            if c.chebyshev(center) == r {
                tiles.push(c);
            }
        }
    }
    tiles.sort_by_key(|c| c.ring_position(center));
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_and_chebyshev() {
        let a = Coord::new(1, 2);
        let b = Coord::new(4, 0);
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(b.manhattan(a), 5);
        assert_eq!(a.chebyshev(b), 3);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn quadrants_partition_the_plane() {
        let c = Coord::new(3, 3);
        assert_eq!(Coord::new(5, 1).quadrant(c), 0);
        assert_eq!(Coord::new(1, 1).quadrant(c), 1);
        assert_eq!(Coord::new(1, 5).quadrant(c), 2);
        assert_eq!(Coord::new(5, 5).quadrant(c), 3);
        // Axis tiles get a deterministic quadrant.
        assert_eq!(Coord::new(3, 0).quadrant(c), 0);
        assert_eq!(Coord::new(0, 3).quadrant(c), 2);
    }

    #[test]
    fn ring_positions_are_distinct_per_ring() {
        let c = Coord::new(3, 3);
        for r in 1..=3u32 {
            let tiles = ring_tiles(c, r, 7, 7);
            assert_eq!(tiles.len(), (8 * r) as usize, "full ring on a 7x7");
            let mut keys: Vec<u32> = tiles.iter().map(|t| t.ring_position(c)).collect();
            let len_before = keys.len();
            keys.dedup();
            assert_eq!(keys.len(), len_before, "ring positions must be unique");
        }
    }

    #[test]
    fn ring_position_starts_at_top_and_is_clockwise() {
        let c = Coord::new(3, 3);
        let top = Coord::new(3, 2);
        let right = Coord::new(4, 3);
        let bottom = Coord::new(3, 4);
        let left = Coord::new(2, 3);
        let pos = |t: Coord| t.ring_position(c);
        assert_eq!(pos(top), 0);
        assert!(pos(top) < pos(right));
        assert!(pos(right) < pos(bottom));
        assert!(pos(bottom) < pos(left));
    }

    #[test]
    fn ring_zero_is_center() {
        let c = Coord::new(2, 2);
        assert_eq!(ring_tiles(c, 0, 5, 5), vec![c]);
    }

    #[test]
    fn rings_clip_to_wafer_bounds() {
        // Center near a corner: parts of the ring fall off the wafer.
        let c = Coord::new(0, 0);
        let tiles = ring_tiles(c, 1, 7, 7);
        assert_eq!(tiles.len(), 3); // (1,0), (0,1), (1,1)
        assert!(tiles.contains(&Coord::new(1, 0)));
        assert!(tiles.contains(&Coord::new(0, 1)));
        assert!(tiles.contains(&Coord::new(1, 1)));
    }

    #[test]
    fn display_and_from_tuple() {
        let c: Coord = (4, 5).into();
        assert_eq!(format!("{c}"), "(4, 5)");
    }

    #[test]
    fn rectangular_wafer_rings() {
        // 7x12 wafer of Fig 22, CPU near center.
        let c = Coord::new(3, 5);
        let all: usize = (1..=8).map(|r| ring_tiles(c, r, 7, 12).len()).sum();
        assert_eq!(all, 7 * 12 - 1, "rings partition all non-center tiles");
    }
}
