//! Property-based tests for the mesh NoC model.

use proptest::prelude::*;
use wsg_noc::geometry::ring_tiles;
use wsg_noc::{xy_route, Coord, LinkParams, Mesh};

fn coord(w: u16, h: u16) -> impl Strategy<Value = Coord> {
    (0..w, 0..h).prop_map(|(x, y)| Coord::new(x, y))
}

proptest! {
    /// Arrival time is never before the zero-load bound and queueing is
    /// exactly the excess over it.
    #[test]
    fn arrival_respects_zero_load_bound(
        sends in proptest::collection::vec((0u16..7, 0u16..7, 0u16..7, 0u16..7, 1u64..512, 0u64..10_000), 1..100)
    ) {
        let mut sorted = sends.clone();
        sorted.sort_by_key(|s| s.5);
        let mut mesh = Mesh::new(7, 7, LinkParams::paper_baseline());
        for (ax, ay, bx, by, bytes, depart) in sorted {
            let a = Coord::new(ax, ay);
            let b = Coord::new(bx, by);
            let out = mesh.send(a, b, bytes, depart);
            let floor = mesh.zero_load_latency(a, b, bytes);
            prop_assert!(out.arrival >= depart + floor);
            prop_assert_eq!(out.arrival, depart + floor + out.queueing);
            prop_assert_eq!(out.hops, a.manhattan(b));
        }
    }

    /// Total payload bytes equal the sum of injected non-local packet
    /// sizes, and hop-bytes equal payload × hops.
    #[test]
    fn traffic_accounting_is_exact(
        sends in proptest::collection::vec((0u16..5, 0u16..5, 0u16..5, 0u16..5, 1u64..256), 1..50)
    ) {
        let mut mesh = Mesh::new(5, 5, LinkParams::default());
        let mut bytes = 0u64;
        let mut hop_bytes = 0u64;
        let mut packets = 0u64;
        for &(ax, ay, bx, by, sz) in &sends {
            let a = Coord::new(ax, ay);
            let b = Coord::new(bx, by);
            mesh.send(a, b, sz, 0);
            // Self-addressed deliveries never touch the mesh and are
            // excluded from traffic accounting.
            if a != b {
                bytes += sz;
                hop_bytes += sz * a.manhattan(b) as u64;
                packets += 1;
            }
        }
        prop_assert_eq!(mesh.total_bytes(), bytes);
        prop_assert_eq!(mesh.total_hop_bytes(), hop_bytes);
        prop_assert_eq!(mesh.total_packets(), packets);
    }

    /// Manhattan distance is a metric (triangle inequality, symmetry).
    #[test]
    fn manhattan_is_a_metric(a in coord(16, 16), b in coord(16, 16), c in coord(16, 16)) {
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
        prop_assert_eq!(a.manhattan(a), 0);
    }

    /// Chebyshev rings partition every wafer: each non-center tile appears
    /// in exactly one ring.
    #[test]
    fn rings_partition_the_wafer(w in 1u16..10, h in 1u16..10, cx in 0u16..10, cy in 0u16..10) {
        let center = Coord::new(cx.min(w - 1), cy.min(h - 1));
        let mut seen = std::collections::HashSet::new();
        let max_r = (w.max(h)) as u32;
        for r in 1..=max_r {
            for tile in ring_tiles(center, r, w, h) {
                prop_assert_eq!(tile.chebyshev(center), r);
                prop_assert!(seen.insert(tile), "tile in two rings");
            }
        }
        prop_assert_eq!(seen.len() as u32, w as u32 * h as u32 - 1);
    }

    /// Routes are reversible in length and consist of unit steps.
    #[test]
    fn routes_are_unit_step_paths(a in coord(9, 9), b in coord(9, 9)) {
        let route = xy_route(a, b);
        prop_assert_eq!(*route.first().unwrap(), a);
        prop_assert_eq!(*route.last().unwrap(), b);
        for w in route.windows(2) {
            prop_assert_eq!(w[0].manhattan(w[1]), 1);
        }
    }

    /// Ring positions order each ring without collisions.
    #[test]
    fn ring_positions_are_injective(r in 1u32..5) {
        let center = Coord::new(8, 8);
        let tiles = ring_tiles(center, r, 17, 17);
        let mut keys: Vec<u32> = tiles.iter().map(|t| t.ring_position(center)).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), n);
    }
}

#[test]
fn contention_is_fifo_per_link() {
    // Same link, same departure: later sends queue strictly behind earlier.
    let mut mesh = Mesh::new(
        3,
        1,
        LinkParams {
            latency: 5,
            bytes_per_cycle: 1.0,
        },
    );
    let a = Coord::new(0, 0);
    let b = Coord::new(1, 0);
    let mut last_arrival = 0;
    for i in 0..10 {
        let out = mesh.send(a, b, 10, 0);
        assert!(out.arrival > last_arrival, "send {i} did not queue");
        last_arrival = out.arrival;
    }
}
