//! A minimal, std-only property-testing shim with the subset of the
//! `proptest` API this workspace uses.
//!
//! The build environment has no reachable crates registry, so the workspace
//! vendors this small stand-in instead of depending on the real crate. It
//! keeps the same surface (`proptest!`, strategies, `prop_assert*`) so tests
//! read identically, with two deliberate simplifications:
//!
//! * **Deterministic sampling** — every test case is generated from a seed
//!   derived from the test name and case index, so failures reproduce
//!   without a persistence file.
//! * **No shrinking** — a failing case reports its inputs via the panic
//!   message (the values are in scope), but is not minimized.

pub mod test_runner {
    /// Runner configuration: number of sampled cases per property.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` samples per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic per-case random source (SplitMix64 over a seed hashed
    /// from the property name and case index).
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        /// Builds the runner for one `(property, case)` pair.
        pub fn deterministic(name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit sample (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform sample in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRunner;
    use std::ops::Range;

    /// A source of sampled values. Unlike real proptest there is no value
    /// tree: `sample` draws directly.
    pub trait Strategy {
        type Value;
        fn sample(&self, runner: &mut TestRunner) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.sample(runner))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(runner.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + runner.below(span) as i128) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, runner: &mut TestRunner) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + runner.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.sample(runner),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    );

    /// Strategy for a type's whole value space (see [`crate::arbitrary`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    /// `any::<T>()` — a strategy over all of `T`'s values.
    pub fn any<T: crate::arbitrary::Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod arbitrary {
    use crate::test_runner::TestRunner;

    /// Types that can be sampled without an explicit strategy.
    pub trait Arbitrary {
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> $t {
                    runner.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + runner.below(span) as usize;
            (0..n).map(|_| self.element.sample(runner)).collect()
        }
    }

    /// Strategy for `HashSet`s with target sizes drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::hash_set(element, len_range)`.
    pub fn hash_set<S>(element: S, len: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        assert!(len.start < len.end, "empty length range");
        HashSetStrategy { element, len }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, runner: &mut TestRunner) -> HashSet<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + runner.below(span) as usize;
            let mut out = HashSet::with_capacity(n);
            // Bounded attempts: a narrow element domain may not hold `n`
            // distinct values.
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 32 + 64 {
                out.insert(self.element.sample(runner));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Supports an optional
/// `#![proptest_config(...)]` header, `name in strategy` and `name: Type`
/// parameters, and plain `#[test]`-attributed functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!({$cfg} $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            {<$crate::test_runner::Config as ::std::default::Default>::default()}
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ({$cfg:expr}) => {};
    ({$cfg:expr}
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            for __case in 0..__config.cases {
                let mut __runner =
                    $crate::test_runner::TestRunner::deterministic(stringify!($name), __case);
                $crate::__proptest_bind!(__runner $($params)*);
                $body
            }
        }
        $crate::__proptest_items!({$cfg} $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($runner:ident) => {};
    ($runner:ident $var:ident in $strat:expr, $($rest:tt)*) => {
        let $var = $crate::strategy::Strategy::sample(&($strat), &mut $runner);
        $crate::__proptest_bind!($runner $($rest)*);
    };
    ($runner:ident $var:ident in $strat:expr) => {
        let $var = $crate::strategy::Strategy::sample(&($strat), &mut $runner);
    };
    ($runner:ident $var:ident : $ty:ty, $($rest:tt)*) => {
        let $var = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $runner);
        $crate::__proptest_bind!($runner $($rest)*);
    };
    ($runner:ident $var:ident : $ty:ty) => {
        let $var = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $runner);
    };
}

/// Asserts a condition inside a property (panics with the inputs in scope).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRunner;

    #[test]
    fn runner_is_deterministic() {
        let mut a = TestRunner::deterministic("x", 3);
        let mut b = TestRunner::deterministic("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRunner::deterministic("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut r = TestRunner::deterministic("bounds", 0);
        for _ in 0..200 {
            let v = (5u64..17).sample(&mut r);
            assert!((5..17).contains(&v));
            let f = (-2.0f64..3.0).sample(&mut r);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_hash_set_respect_lengths() {
        let mut r = TestRunner::deterministic("lens", 0);
        for _ in 0..50 {
            let v = crate::collection::vec(0u64..10, 2..6).sample(&mut r);
            assert!((2..6).contains(&v.len()));
            let s = crate::collection::hash_set(0u64..1000, 1..9).sample(&mut r);
            assert!(s.len() < 9 && !s.is_empty());
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut r = TestRunner::deterministic("map", 0);
        let s = (0u16..4, 0u16..4).prop_map(|(x, y)| (x + 1, y + 1));
        let (x, y) = s.sample(&mut r);
        assert!((1..=4).contains(&x) && (1..=4).contains(&y));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: mixed `in`/typed params and doc comments.
        #[test]
        fn macro_binds_parameters(a in 0u64..100, flip: bool, pair in (0u8..4, 1u8..5)) {
            prop_assert!(a < 100);
            // `flip` is a plain bool either way; exercise the typed-param arm.
            let doubled = if flip { a * 2 } else { a };
            prop_assert!(doubled <= 198);
            prop_assert!(pair.0 < 4 && pair.1 >= 1);
            prop_assert_ne!(pair.1, 0);
        }
    }
}
