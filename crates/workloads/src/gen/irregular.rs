//! Irregular-family generators: KM, PR, SPMV.

use wsg_gpu::{AddressSpace, MemoryOp, WorkgroupTrace};
use wsg_sim::SimRng;

use crate::catalog::WorkloadConfig;

use super::{alloc_bytes, at, wg_block, LINE};

/// KM (KMeans): every workgroup streams its own points and re-reads the
/// small centroid table on each step, across several iterations. The hot
/// centroid pages plus the small-stride iterative sweep give KM its strong
/// prefetching gain (Fig 18 discussion).
pub fn km(
    cfg: &WorkloadConfig,
    space: &mut AddressSpace,
    _rng: &mut SimRng,
) -> Vec<WorkgroupTrace> {
    let centroid_bytes = 64 * 1024;
    let points = alloc_bytes(
        space,
        "km_points",
        cfg.footprint_bytes
            .saturating_sub(2 * centroid_bytes)
            .max(centroid_bytes),
    );
    let centroids = alloc_bytes(space, "km_centroids", centroid_bytes);
    let assign = alloc_bytes(space, "km_assign", cfg.footprint_bytes / 16);
    let per_iter = (cfg.ops_per_wg as u64 / (3 * cfg.iterations.max(1) as u64)).max(1);
    (0..cfg.workgroups)
        .map(|wg| {
            let (start, _) = wg_block(space, &points, wg, cfg.workgroups);
            let (assign_start, _) = wg_block(space, &assign, wg, cfg.workgroups);
            let mut ops = Vec::with_capacity(cfg.ops_per_wg);
            for it in 0..cfg.iterations as u64 {
                for i in 0..per_iter {
                    ops.push(MemoryOp::read(at(space, &points, start + i * LINE), 20));
                    // Cycle through the centroid lines: all WGs share them.
                    ops.push(MemoryOp::read(
                        at(space, &centroids, ((it * per_iter + i) % 16) * LINE),
                        20,
                    ));
                    if i % 4 == 3 {
                        ops.push(MemoryOp::write(at(space, &assign, assign_start), 10));
                    }
                }
            }
            WorkgroupTrace::new(ops)
        })
        .collect()
}

/// PR (PageRank): streams the edge list while gathering ranks of destination
/// nodes drawn from a power-law (Zipf) distribution — a few rank pages are
/// requested constantly by every GPM. This is the benchmark where peer
/// caching contributes most (65 % of translations, Fig 16) and where HDPAT's
/// speedup peaks (up to 5× in Fig 18).
pub fn pr(cfg: &WorkloadConfig, space: &mut AddressSpace, rng: &mut SimRng) -> Vec<WorkgroupTrace> {
    let ranks = alloc_bytes(space, "pr_ranks", cfg.footprint_bytes / 4);
    let edges = alloc_bytes(space, "pr_edges", cfg.footprint_bytes * 3 / 4);
    let ps = space.page_size();
    let rank_lines = ranks.len_bytes(ps) / LINE;
    let per_iter = (cfg.ops_per_wg as u64 / (2 * cfg.iterations.max(1) as u64)).max(1);
    (0..cfg.workgroups)
        .map(|wg| {
            let (start, _) = wg_block(space, &edges, wg, cfg.workgroups);
            let mut wg_rng = rng.derive(wg);
            let mut ops = Vec::with_capacity(cfg.ops_per_wg);
            for it in 0..cfg.iterations as u64 {
                for i in 0..per_iter {
                    // Stream the edge list (own, mostly local partition).
                    ops.push(MemoryOp::read(
                        at(space, &edges, start + (it * per_iter + i) * LINE),
                        10,
                    ));
                    // Gather the destination rank: Zipf over rank lines.
                    let hot = wg_rng.zipf(rank_lines.max(1), 0.9);
                    ops.push(MemoryOp::read(at(space, &ranks, hot * LINE), 15));
                }
                // Write back own rank once per iteration.
                ops.push(MemoryOp::write(
                    at(space, &ranks, (wg * LINE) % ranks.len_bytes(ps)),
                    10,
                ));
            }
            WorkgroupTrace::new(ops)
        })
        .collect()
}

/// SPMV: streams matrix values and column indices while gathering the dense
/// x-vector at irregular positions. The massive, hard-to-filter remote
/// gather traffic is what makes SPMV the paper's IOMMU-stress showcase
/// (Figs 3, 4).
pub fn spmv(
    cfg: &WorkloadConfig,
    space: &mut AddressSpace,
    rng: &mut SimRng,
) -> Vec<WorkgroupTrace> {
    let vals = alloc_bytes(space, "spmv_vals", cfg.footprint_bytes / 2);
    let colidx = alloc_bytes(space, "spmv_colidx", cfg.footprint_bytes / 4);
    let x = alloc_bytes(space, "spmv_x", cfg.footprint_bytes / 8);
    let y = alloc_bytes(space, "spmv_y", cfg.footprint_bytes / 8);
    let ps = space.page_size();
    let x_lines = x.len_bytes(ps) / LINE;
    let rows = (cfg.ops_per_wg as u64 / 4).max(1);
    (0..cfg.workgroups)
        .map(|wg| {
            let (vstart, _) = wg_block(space, &vals, wg, cfg.workgroups);
            let (cstart, _) = wg_block(space, &colidx, wg, cfg.workgroups);
            let (ystart, _) = wg_block(space, &y, wg, cfg.workgroups);
            let mut wg_rng = rng.derive(wg);
            let mut ops = Vec::with_capacity(cfg.ops_per_wg);
            for r in 0..rows {
                ops.push(MemoryOp::read(at(space, &vals, vstart + r * LINE), 10));
                ops.push(MemoryOp::read(at(space, &colidx, cstart + r * LINE), 10));
                // Irregular gather: uniform over the whole x vector.
                let gather = wg_rng.gen_range(0..x_lines.max(1));
                ops.push(MemoryOp::read(at(space, &x, gather * LINE), 10));
                if r % 4 == 3 {
                    ops.push(MemoryOp::write(at(space, &y, ystart + (r / 4) * LINE), 10));
                }
            }
            WorkgroupTrace::new(ops)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{BenchmarkId, Scale};
    use std::collections::HashMap;
    use wsg_xlat::PageSize;

    fn setup(id: BenchmarkId) -> (WorkloadConfig, AddressSpace, SimRng) {
        (
            id.config(Scale::Unit),
            AddressSpace::new(PageSize::Size4K, 48),
            SimRng::seeded(1),
        )
    }

    #[test]
    fn km_centroid_pages_are_hot() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Km);
        let wgs = km(&cfg, &mut space, &mut rng);
        let cent = space.buffers().find(|b| b.name == "km_centroids").unwrap();
        let ps = space.page_size();
        let cent_reads: usize = wgs
            .iter()
            .flat_map(|w| &w.ops)
            .filter(|o| cent.contains(ps.vpn_of(o.vaddr)))
            .count();
        assert!(cent_reads as u64 >= cfg.workgroups * 2);
    }

    #[test]
    fn pr_gathers_concentrate_on_hot_pages() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Pr);
        let wgs = pr(&cfg, &mut space, &mut rng);
        let ranks = space.buffers().find(|b| b.name == "pr_ranks").unwrap();
        let ps = space.page_size();
        let mut page_counts: HashMap<u64, u64> = HashMap::new();
        for op in wgs.iter().flat_map(|w| &w.ops) {
            let vpn = ps.vpn_of(op.vaddr);
            if op.is_read && ranks.contains(vpn) {
                *page_counts.entry(vpn.0).or_insert(0) += 1;
            }
        }
        let total: u64 = page_counts.values().sum();
        let max = *page_counts.values().max().unwrap();
        // Zipf concentration: the hottest page gets far more than its
        // uniform share.
        let uniform_share = total / page_counts.len().max(1) as u64;
        assert!(
            max > 3 * uniform_share.max(1),
            "hot page {max} vs uniform {uniform_share}"
        );
    }

    #[test]
    fn spmv_gathers_spread_over_x() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Spmv);
        let wgs = spmv(&cfg, &mut space, &mut rng);
        let x = space.buffers().find(|b| b.name == "spmv_x").unwrap();
        let ps = space.page_size();
        let pages: std::collections::HashSet<u64> = wgs
            .iter()
            .flat_map(|w| &w.ops)
            .filter(|o| x.contains(ps.vpn_of(o.vaddr)))
            .map(|o| ps.vpn_of(o.vaddr).0)
            .collect();
        assert!(
            pages.len() as u64 >= x.pages / 2,
            "gathers cover most of x ({} of {})",
            pages.len(),
            x.pages
        );
    }

    #[test]
    fn spmv_streams_values_sequentially() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Spmv);
        let wgs = spmv(&cfg, &mut space, &mut rng);
        let vals = space.buffers().find(|b| b.name == "spmv_vals").unwrap();
        let ps = space.page_size();
        let reads: Vec<u64> = wgs[0]
            .ops
            .iter()
            .filter(|o| vals.contains(ps.vpn_of(o.vaddr)))
            .map(|o| o.vaddr)
            .collect();
        assert!(reads.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn per_wg_rngs_differ() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Spmv);
        let wgs = spmv(&cfg, &mut space, &mut rng);
        assert_ne!(wgs[0], wgs[1], "different WGs gather differently");
    }
}
