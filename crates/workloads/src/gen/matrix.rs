//! Matrix-family generators: MM, MT, FWS.

use wsg_gpu::{AddressSpace, MemoryOp, WorkgroupTrace};
use wsg_sim::SimRng;

use crate::catalog::WorkloadConfig;

use super::{alloc_bytes, at, wg_block, LINE};

/// MM (matrix multiplication): workgroup `(r, c)` of a square grid reads row
/// block `r` of A (shared with every workgroup in row `r`), gathers column
/// `c` of B with a row-pitch stride (touching many pages), and writes its C
/// tile. Row/column sharing produces the strided reuse the paper attributes
/// to MM (observation O4, Fig 18 gains).
pub fn mm(
    cfg: &WorkloadConfig,
    space: &mut AddressSpace,
    _rng: &mut SimRng,
) -> Vec<WorkgroupTrace> {
    let third = cfg.footprint_bytes * 3 / 8;
    let a = alloc_bytes(space, "mm_a", third);
    let b = alloc_bytes(space, "mm_b", third);
    let c = alloc_bytes(space, "mm_c", cfg.footprint_bytes / 4);
    let grid = (cfg.workgroups as f64).sqrt().ceil() as u64;
    let ps = space.page_size();
    let row_pitch = (a.len_bytes(ps) / grid.max(1)).max(LINE) & !(LINE - 1);
    let k_steps = (cfg.ops_per_wg as u64 / 3).max(1);
    (0..cfg.workgroups)
        .map(|wg| {
            let (r, col) = (wg / grid, wg % grid);
            let mut ops = Vec::with_capacity(cfg.ops_per_wg);
            for k in 0..k_steps {
                // A row r, element k: sequential within the shared row.
                ops.push(MemoryOp::read(at(space, &a, r * row_pitch + k * LINE), 20));
                // B column c, element k: stride = row pitch (page-crossing).
                ops.push(MemoryOp::read(
                    at(space, &b, k * row_pitch + col * LINE),
                    20,
                ));
                if k % 4 == 3 {
                    ops.push(MemoryOp::write(
                        at(space, &c, r * row_pitch / 2 + col * LINE),
                        10,
                    ));
                }
            }
            WorkgroupTrace::new(ops)
        })
        .collect()
}

/// MT (matrix transpose): reads its rows sequentially, writes the transpose
/// with a full-row pitch between consecutive elements. Consecutive writes
/// land on different far-apart pages and each output page is revisited only
/// after a whole row sweep — the long-reuse-distance behaviour that defeats
/// caching (the paper's explanation for MT's limited gain).
pub fn mt(
    cfg: &WorkloadConfig,
    space: &mut AddressSpace,
    _rng: &mut SimRng,
) -> Vec<WorkgroupTrace> {
    let half = cfg.footprint_bytes / 2;
    let input = alloc_bytes(space, "mt_in", half);
    let output = alloc_bytes(space, "mt_out", half);
    let ps = space.page_size();
    // Output pitch of one matrix row: many pages, so consecutive transposed
    // writes are page-distant.
    let pitch = (output.len_bytes(ps) / 64).max(ps.bytes()) & !(LINE - 1);
    (0..cfg.workgroups)
        .map(|wg| {
            let (start, _) = wg_block(space, &input, wg, cfg.workgroups);
            let mut ops = Vec::with_capacity(cfg.ops_per_wg);
            for i in 0..cfg.ops_per_wg as u64 / 2 {
                ops.push(MemoryOp::read(at(space, &input, start + i * LINE), 15));
                // Transposed write: column-major target.
                ops.push(MemoryOp::write(
                    at(space, &output, i * pitch + start / 64),
                    15,
                ));
            }
            WorkgroupTrace::new(ops)
        })
        .collect()
}

/// FWS (Floyd-Warshall): each outer iteration `k` makes every workgroup read
/// the shared pivot row `k` before updating its own row block. The pivot
/// pages are simultaneously hot on all GPMs — the strongest cross-GPM
/// temporal sharing in the suite, which is what concentric caching and the
/// redirection table exploit.
pub fn fws(
    cfg: &WorkloadConfig,
    space: &mut AddressSpace,
    _rng: &mut SimRng,
) -> Vec<WorkgroupTrace> {
    let dist = alloc_bytes(space, "fws_dist", cfg.footprint_bytes);
    let ps = space.page_size();
    let n_rows = 64u64;
    let row_pitch = (dist.len_bytes(ps) / n_rows).max(LINE) & !(LINE - 1);
    let per_iter = (cfg.ops_per_wg as u64 / (3 * cfg.iterations.max(1) as u64)).max(1);
    (0..cfg.workgroups)
        .map(|wg| {
            let (own_start, _) = wg_block(space, &dist, wg, cfg.workgroups);
            let mut ops = Vec::with_capacity(cfg.ops_per_wg);
            for k in 0..cfg.iterations as u64 {
                let pivot_row = (k * 17) % n_rows; // deterministic pivot schedule
                for i in 0..per_iter {
                    // Shared pivot row element (hot page for every WG).
                    ops.push(MemoryOp::read(
                        at(space, &dist, pivot_row * row_pitch + i * LINE),
                        20,
                    ));
                    // Own row element.
                    ops.push(MemoryOp::read(at(space, &dist, own_start + i * LINE), 10));
                    ops.push(MemoryOp::write(at(space, &dist, own_start + i * LINE), 10));
                }
            }
            WorkgroupTrace::new(ops)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{BenchmarkId, Scale};
    use wsg_xlat::PageSize;

    fn setup(id: BenchmarkId) -> (WorkloadConfig, AddressSpace, SimRng) {
        (
            id.config(Scale::Unit),
            AddressSpace::new(PageSize::Size4K, 48),
            SimRng::seeded(1),
        )
    }

    #[test]
    fn mm_shares_a_rows_within_grid_row() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Mm);
        let wgs = mm(&cfg, &mut space, &mut rng);
        let a = space.buffers().find(|b| b.name == "mm_a").unwrap();
        let ps = space.page_size();
        let a_reads = |wg: &WorkgroupTrace| -> Vec<u64> {
            wg.ops
                .iter()
                .filter(|o| a.contains(ps.vpn_of(o.vaddr)))
                .map(|o| o.vaddr)
                .collect()
        };
        // Workgroups 0 and 1 are in the same grid row: identical A reads.
        assert_eq!(a_reads(&wgs[0]), a_reads(&wgs[1]));
    }

    #[test]
    fn mt_writes_are_page_distant() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Mt);
        let wgs = mt(&cfg, &mut space, &mut rng);
        let ps = space.page_size();
        let writes: Vec<u64> = wgs[0]
            .ops
            .iter()
            .filter(|o| !o.is_read)
            .map(|o| ps.vpn_of(o.vaddr).0)
            .collect();
        let distant = writes
            .windows(2)
            .filter(|w| w[0].abs_diff(w[1]) >= 1)
            .count();
        assert!(
            distant * 2 >= writes.len(),
            "transposed writes mostly change pages"
        );
    }

    #[test]
    fn mt_reads_are_sequential() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Mt);
        let wgs = mt(&cfg, &mut space, &mut rng);
        let reads: Vec<u64> = wgs[0]
            .ops
            .iter()
            .filter(|o| o.is_read)
            .map(|o| o.vaddr)
            .collect();
        assert!(reads.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn fws_pivot_pages_shared_by_all_workgroups() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Fws);
        let wgs = fws(&cfg, &mut space, &mut rng);
        let ps = space.page_size();
        // The first op of every workgroup in iteration 0 hits the same pivot page.
        let first_vpns: Vec<u64> = wgs.iter().map(|w| ps.vpn_of(w.ops[0].vaddr).0).collect();
        let all_same = first_vpns.iter().all(|&v| v == first_vpns[0]);
        assert!(all_same, "pivot row is globally shared");
    }

    #[test]
    fn fws_iterates_over_multiple_pivots() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Fws);
        assert!(cfg.iterations >= 2);
        let wgs = fws(&cfg, &mut space, &mut rng);
        let ps = space.page_size();
        let pivot_vpns: std::collections::HashSet<u64> = wgs[0]
            .ops
            .iter()
            .step_by(3) // pivot reads are every third op
            .map(|o| ps.vpn_of(o.vaddr).0)
            .collect();
        assert!(
            pivot_vpns.len() >= 2,
            "different iterations, different pivots"
        );
    }
}
