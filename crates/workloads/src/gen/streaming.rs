//! Streaming-family generators: AES, RELU, FIR, SC, I2C.

use wsg_gpu::{AddressSpace, MemoryOp, WorkgroupTrace};
use wsg_sim::SimRng;

use crate::catalog::WorkloadConfig;

use super::{alloc_bytes, at, ops_per_iter, wg_block, LINE};

/// AES: each workgroup encrypts its own contiguous block, re-reading the
/// expanded-key page constantly. Compute-bound (long gaps, §V-A calls it
/// "highly iterative … steady memory request issuing rate"); every data page
/// is touched once, so TLBs filter almost all repeats (observation O3's
/// single-translation class).
pub fn aes(
    cfg: &WorkloadConfig,
    space: &mut AddressSpace,
    _rng: &mut SimRng,
) -> Vec<WorkgroupTrace> {
    let half = cfg.footprint_bytes / 2;
    let input = alloc_bytes(space, "aes_input", half);
    let output = alloc_bytes(space, "aes_output", half);
    let key = alloc_bytes(space, "aes_key", 4096);
    let per_iter = ops_per_iter(cfg);
    (0..cfg.workgroups)
        .map(|wg| {
            let (start, chunk) = wg_block(space, &input, wg, cfg.workgroups);
            let mut ops = Vec::with_capacity(cfg.ops_per_wg);
            for it in 0..cfg.iterations as u64 {
                for i in 0..per_iter as u64 {
                    let off = start + (it * per_iter as u64 + i) * LINE % chunk.max(LINE);
                    // Long gaps: AES rounds between memory touches.
                    ops.push(MemoryOp::read(at(space, &input, off), 24));
                    if i % 4 == 0 {
                        ops.push(MemoryOp::read(at(space, &key, (i / 4) * LINE), 4));
                    }
                    if i % 2 == 1 {
                        ops.push(MemoryOp::write(at(space, &output, off), 4));
                    }
                }
            }
            WorkgroupTrace::new(ops)
        })
        .collect()
}

/// RELU: pure single-pass streaming over a huge footprint — read an
/// activation line, write it back clamped. Each page is translated exactly
/// once (the other single-translation benchmark of Fig 6).
pub fn relu(
    cfg: &WorkloadConfig,
    space: &mut AddressSpace,
    _rng: &mut SimRng,
) -> Vec<WorkgroupTrace> {
    let half = cfg.footprint_bytes / 2;
    let input = alloc_bytes(space, "relu_input", half);
    let output = alloc_bytes(space, "relu_output", half);
    (0..cfg.workgroups)
        .map(|wg| {
            let (start, chunk) = wg_block(space, &input, wg, cfg.workgroups);
            let mut ops = Vec::with_capacity(cfg.ops_per_wg);
            for i in 0..cfg.ops_per_wg as u64 / 2 {
                let off = start + (i * LINE) % chunk.max(LINE);
                ops.push(MemoryOp::read(at(space, &input, off), 10));
                ops.push(MemoryOp::write(at(space, &output, off), 10));
            }
            WorkgroupTrace::new(ops)
        })
        .collect()
}

/// FIR: sliding-window filter — each workgroup reads its signal block plus a
/// small overlap into the next block (the filter taps), iterating with a
/// small stride shift. The strongly sequential, small-stride pattern is why
/// FIR benefits most from proactive delivery (Fig 18 discussion).
pub fn fir(
    cfg: &WorkloadConfig,
    space: &mut AddressSpace,
    _rng: &mut SimRng,
) -> Vec<WorkgroupTrace> {
    let half = cfg.footprint_bytes / 2;
    let input = alloc_bytes(space, "fir_signal", half);
    let output = alloc_bytes(space, "fir_output", half);
    let coeff = alloc_bytes(space, "fir_coeff", 4096);
    let per_iter = ops_per_iter(cfg);
    (0..cfg.workgroups)
        .map(|wg| {
            let (start, chunk) = wg_block(space, &input, wg, cfg.workgroups);
            let mut ops = Vec::with_capacity(cfg.ops_per_wg);
            for it in 0..cfg.iterations as u64 {
                // Each iteration shifts the window start by one line.
                let base = start + it * LINE;
                for i in 0..per_iter as u64 {
                    // Sequential march over the block, wrapping one line past
                    // its end (tap overlap with the neighbour's pages).
                    let off = base + (i * LINE) % (chunk + LINE);
                    ops.push(MemoryOp::read(at(space, &input, off), 30));
                    if i % 8 == 0 {
                        ops.push(MemoryOp::read(at(space, &coeff, 0), 10));
                    }
                    if i % 2 == 0 {
                        ops.push(MemoryOp::write(
                            at(space, &output, base + (i / 2) * LINE),
                            10,
                        ));
                    }
                }
            }
            WorkgroupTrace::new(ops)
        })
        .collect()
}

/// SC (simple convolution): 2-D sliding window over an image with a hot
/// filter page; adjacent workgroups overlap on the image rows they read.
pub fn sc(
    cfg: &WorkloadConfig,
    space: &mut AddressSpace,
    _rng: &mut SimRng,
) -> Vec<WorkgroupTrace> {
    let image_bytes = cfg.footprint_bytes * 3 / 4;
    let image = alloc_bytes(space, "sc_image", image_bytes);
    let output = alloc_bytes(space, "sc_output", cfg.footprint_bytes / 4);
    let filter = alloc_bytes(space, "sc_filter", 4096);
    // Model the image as rows of 64 lines.
    let row_bytes = 64 * LINE;
    (0..cfg.workgroups)
        .map(|wg| {
            let (start, _) = wg_block(space, &image, wg, cfg.workgroups);
            let mut ops = Vec::with_capacity(cfg.ops_per_wg);
            for i in 0..cfg.ops_per_wg as u64 * 2 / 3 {
                // Read a 3-row window column by column: same x, rows r-1..r+1.
                let col = (i % 8) * LINE;
                let row = (i / 8) % 4;
                ops.push(MemoryOp::read(
                    at(space, &image, start + row * row_bytes + col),
                    20,
                ));
                ops.push(MemoryOp::read(
                    at(space, &image, start + (row + 1) * row_bytes + col),
                    10,
                ));
                if i % 4 == 0 {
                    ops.push(MemoryOp::read(at(space, &filter, 0), 10));
                }
                if i % 8 == 7 {
                    ops.push(MemoryOp::write(
                        at(space, &output, start / 3 + row * LINE),
                        10,
                    ));
                }
            }
            WorkgroupTrace::new(ops)
        })
        .collect()
}

/// I2C (im2col): gathers overlapping convolution windows from the input
/// tensor and writes them out as sequential columns — overlapping reads,
/// streaming writes, strong spatial locality (one of the high bars of
/// Fig 8).
pub fn i2c(
    cfg: &WorkloadConfig,
    space: &mut AddressSpace,
    _rng: &mut SimRng,
) -> Vec<WorkgroupTrace> {
    let input = alloc_bytes(space, "i2c_input", cfg.footprint_bytes / 3);
    let output = alloc_bytes(space, "i2c_output", cfg.footprint_bytes * 2 / 3);
    (0..cfg.workgroups)
        .map(|wg| {
            let (in_start, _) = wg_block(space, &input, wg, cfg.workgroups);
            let (out_start, _) = wg_block(space, &output, wg, cfg.workgroups);
            let mut ops = Vec::with_capacity(cfg.ops_per_wg);
            let (_, in_chunk) = wg_block(space, &input, wg, cfg.workgroups);
            for i in 0..cfg.ops_per_wg as u64 / 3 {
                // Window advances half a window per step: each line is read
                // by two consecutive window positions (overlap), wrapping
                // within the workgroup's chunk.
                let off = in_start + (i * LINE / 2) % (in_chunk + LINE);
                ops.push(MemoryOp::read(at(space, &input, off), 15));
                ops.push(MemoryOp::read(at(space, &input, off + LINE), 15));
                ops.push(MemoryOp::write(
                    at(space, &output, out_start + i * LINE),
                    10,
                ));
            }
            WorkgroupTrace::new(ops)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{BenchmarkId, Scale};
    use wsg_xlat::PageSize;

    fn setup(id: BenchmarkId) -> (WorkloadConfig, AddressSpace, SimRng) {
        (
            id.config(Scale::Unit),
            AddressSpace::new(PageSize::Size4K, 48),
            SimRng::seeded(1),
        )
    }

    #[test]
    fn aes_rereads_key_page() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Aes);
        let wgs = aes(&cfg, &mut space, &mut rng);
        let key_buf = space.buffers().find(|b| b.name == "aes_key").unwrap();
        let ps = space.page_size();
        let key_reads: usize = wgs
            .iter()
            .flat_map(|w| &w.ops)
            .filter(|op| key_buf.contains(ps.vpn_of(op.vaddr)))
            .count();
        assert!(key_reads as u64 >= cfg.workgroups, "key page is hot");
    }

    #[test]
    fn aes_has_long_gaps() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Aes);
        let wgs = aes(&cfg, &mut space, &mut rng);
        let max_gap = wgs
            .iter()
            .flat_map(|w| &w.ops)
            .map(|o| o.gap)
            .max()
            .unwrap();
        assert!(max_gap >= 20, "AES is compute-bound");
    }

    #[test]
    fn relu_touches_each_line_once() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Relu);
        let wgs = relu(&cfg, &mut space, &mut rng);
        // Within one workgroup, no address repeats (pure streaming).
        let wg = &wgs[0];
        let mut addrs: Vec<u64> = wg.ops.iter().map(|o| o.vaddr).collect();
        let before = addrs.len();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), before, "RELU never revisits a line");
    }

    #[test]
    fn fir_is_sequential_within_iteration() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Fir);
        let wgs = fir(&cfg, &mut space, &mut rng);
        let sig = space.buffers().find(|b| b.name == "fir_signal").unwrap();
        let ps = space.page_size();
        let reads: Vec<u64> = wgs[0]
            .ops
            .iter()
            .filter(|o| o.is_read && sig.contains(ps.vpn_of(o.vaddr)))
            .map(|o| o.vaddr)
            .collect();
        let increasing = reads.windows(2).filter(|w| w[1] > w[0]).count();
        assert!(
            increasing * 10 >= reads.len() * 8,
            "FIR reads mostly ascend: {increasing}/{}",
            reads.len()
        );
    }

    #[test]
    fn sc_reads_filter_repeatedly() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Sc);
        let wgs = sc(&cfg, &mut space, &mut rng);
        let filter = space.buffers().find(|b| b.name == "sc_filter").unwrap();
        let ps = space.page_size();
        let filter_reads: usize = wgs
            .iter()
            .flat_map(|w| &w.ops)
            .filter(|o| filter.contains(ps.vpn_of(o.vaddr)))
            .count();
        assert!(filter_reads > wgs.len(), "filter page reused");
    }

    #[test]
    fn i2c_reads_overlap() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::I2c);
        let wgs = i2c(&cfg, &mut space, &mut rng);
        let input = space.buffers().find(|b| b.name == "i2c_input").unwrap();
        let ps = space.page_size();
        let reads: Vec<u64> = wgs[0]
            .ops
            .iter()
            .filter(|o| o.is_read && input.contains(ps.vpn_of(o.vaddr)))
            .map(|o| o.vaddr)
            .collect();
        let mut sorted = reads.clone();
        sorted.sort();
        sorted.dedup();
        assert!(
            sorted.len() < reads.len(),
            "overlapping windows re-read lines"
        );
    }
}
