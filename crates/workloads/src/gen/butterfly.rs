//! Butterfly-family generators: BT, FWT, FFT.
//!
//! All three kernels sweep one buffer in multiple passes; in pass `p` each
//! element exchanges with a partner `2^p` elements away. Early passes are
//! page-local; later passes reach across the wafer, and every pass touches
//! the same pages again — producing the repeated translations with widely
//! varying reuse distances the paper reports for BT and FWT (Fig 6/7).

use wsg_gpu::{AddressSpace, Buffer, MemoryOp, WorkgroupTrace};
use wsg_sim::SimRng;

use crate::catalog::WorkloadConfig;

use super::{alloc_bytes, at, wg_block, LINE};

/// Emits `passes` butterfly passes over `data` for workgroup `wg`. Each
/// pass: read own line, read the XOR-partner line, write own line.
fn butterfly_passes(
    space: &AddressSpace,
    data: &Buffer,
    wg: u64,
    wg_count: u64,
    passes: u32,
    ops_per_pass: usize,
    gap: u64,
) -> WorkgroupTrace {
    let (start, chunk) = wg_block(space, data, wg, wg_count);
    let len = data.len_bytes(space.page_size()).next_power_of_two() / 2;
    let mut ops = Vec::new();
    for p in 0..passes {
        let stride = LINE << (p * 2); // strides: 64 B, 256 B, 1 KB, 4 KB, 16 KB, ...
        for i in 0..ops_per_pass as u64 {
            let own = start + (i * LINE) % chunk.max(LINE);
            // XOR partner within the power-of-two span; wraps via `at`.
            let partner = (own ^ stride) % len.max(LINE);
            ops.push(MemoryOp::read(at(space, data, own), gap));
            ops.push(MemoryOp::read(at(space, data, partner), gap));
            ops.push(MemoryOp::write(at(space, data, own), 10));
        }
    }
    WorkgroupTrace::new(ops)
}

/// BT (bitonic sort): compare-exchange passes with growing power-of-two
/// strides. Its strong intra-GPM spatial locality lets the local GMMU absorb
/// most translations — the paper's explanation for BT's minimal HDPAT gain.
pub fn bt(
    cfg: &WorkloadConfig,
    space: &mut AddressSpace,
    _rng: &mut SimRng,
) -> Vec<WorkgroupTrace> {
    let data = alloc_bytes(space, "bt_data", cfg.footprint_bytes);
    let passes = 4;
    let per_pass = (cfg.ops_per_wg / (3 * passes as usize)).max(1);
    (0..cfg.workgroups)
        .map(|wg| butterfly_passes(space, &data, wg, cfg.workgroups, passes, per_pass, 20))
        .collect()
}

/// FWT (fast Walsh transform): butterfly passes over a larger buffer with
/// more passes, so partners reach further and pages are revisited more often
/// (FWT shows clear repeat translations in Fig 6).
pub fn fwt(
    cfg: &WorkloadConfig,
    space: &mut AddressSpace,
    _rng: &mut SimRng,
) -> Vec<WorkgroupTrace> {
    let data = alloc_bytes(space, "fwt_data", cfg.footprint_bytes);
    let passes = 6;
    let per_pass = (cfg.ops_per_wg / (3 * passes as usize)).max(1);
    (0..cfg.workgroups)
        .map(|wg| butterfly_passes(space, &data, wg, cfg.workgroups, passes, per_pass, 20))
        .collect()
}

/// FFT: butterfly passes plus a shared twiddle-factor table that every
/// workgroup re-reads — structured but dynamic, giving FFT its balanced
/// resolution breakdown in Fig 16.
pub fn fft(
    cfg: &WorkloadConfig,
    space: &mut AddressSpace,
    _rng: &mut SimRng,
) -> Vec<WorkgroupTrace> {
    let data = alloc_bytes(space, "fft_data", cfg.footprint_bytes * 7 / 8);
    let twiddle = alloc_bytes(space, "fft_twiddle", cfg.footprint_bytes / 8);
    let passes = 5;
    let per_pass = (cfg.ops_per_wg / (4 * passes as usize)).max(1);
    (0..cfg.workgroups)
        .map(|wg| {
            let mut trace =
                butterfly_passes(space, &data, wg, cfg.workgroups, passes, per_pass, 30);
            // Interleave twiddle reads: pass p reads twiddle block p.
            let mut with_twiddle = Vec::with_capacity(trace.ops.len() * 4 / 3);
            for (i, op) in trace.ops.drain(..).enumerate() {
                with_twiddle.push(op);
                if i % 3 == 1 {
                    let t = (i as u64 / 3) * LINE;
                    with_twiddle.push(MemoryOp::read(at(space, &twiddle, t), 10));
                }
            }
            WorkgroupTrace::new(with_twiddle)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{BenchmarkId, Scale};
    use wsg_xlat::PageSize;

    fn setup(id: BenchmarkId) -> (WorkloadConfig, AddressSpace, SimRng) {
        (
            id.config(Scale::Unit),
            AddressSpace::new(PageSize::Size4K, 48),
            SimRng::seeded(1),
        )
    }

    #[test]
    fn bt_revisits_pages_across_passes() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Bt);
        let wgs = bt(&cfg, &mut space, &mut rng);
        let ps = space.page_size();
        // Some VPN within one workgroup must appear in more than one op.
        let wg = &wgs[0];
        let mut vpns: Vec<u64> = wg.ops.iter().map(|o| ps.vpn_of(o.vaddr).0).collect();
        let before = vpns.len();
        vpns.sort();
        vpns.dedup();
        assert!(vpns.len() < before, "butterfly passes revisit pages");
    }

    #[test]
    fn fwt_has_growing_strides() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Fwt);
        let wgs = fwt(&cfg, &mut space, &mut rng);
        let wg = &wgs[0];
        // Distance between own-line read and partner read grows over the trace.
        let reads: Vec<u64> = wg
            .ops
            .iter()
            .filter(|o| o.is_read)
            .map(|o| o.vaddr)
            .collect();
        let early = reads[0].abs_diff(reads[1]);
        let late_pair = &reads[reads.len() - 2..];
        let late = late_pair[0].abs_diff(late_pair[1]);
        assert!(
            late > early,
            "late-pass partners are further: {early} vs {late}"
        );
    }

    #[test]
    fn fft_rereads_twiddle_table() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Fft);
        let wgs = fft(&cfg, &mut space, &mut rng);
        let tw = space.buffers().find(|b| b.name == "fft_twiddle").unwrap();
        let ps = space.page_size();
        let twiddle_reads: usize = wgs
            .iter()
            .flat_map(|w| &w.ops)
            .filter(|o| tw.contains(ps.vpn_of(o.vaddr)))
            .count();
        assert!(
            twiddle_reads >= wgs.len(),
            "twiddle pages shared by all WGs"
        );
    }

    #[test]
    fn butterfly_traces_alternate_read_read_write() {
        let (cfg, mut space, mut rng) = setup(BenchmarkId::Bt);
        let wgs = bt(&cfg, &mut space, &mut rng);
        let ops = &wgs[0].ops;
        assert!(ops[0].is_read);
        assert!(ops[1].is_read);
        assert!(!ops[2].is_read);
    }
}
