//! The 14 access-pattern generators, grouped by pattern family.
//!
//! * [`streaming`] — AES, RELU, FIR, SC, I2C: (mostly) sequential streams
//!   over block-partitioned buffers, with varying compute intensity and
//!   window overlap.
//! * [`butterfly`] — BT, FWT, FFT: multi-pass power-of-two strided partner
//!   exchanges.
//! * [`matrix`] — MM, MT, FWS: dense-matrix kernels with row reuse, pivot
//!   sharing, and long-range transposed writes.
//! * [`irregular`] — KM, PR, SPMV: gather-dominated kernels with hot shared
//!   pages or random-access vectors.

pub mod butterfly;
pub mod irregular;
pub mod matrix;
pub mod streaming;

use wsg_gpu::{AddressSpace, Buffer, WorkgroupTrace};
use wsg_sim::SimRng;

use crate::catalog::{BenchmarkId, WorkloadConfig};

/// Cacheline granularity of generated memory operations.
pub const LINE: u64 = 64;

/// Dispatches to the generator for `id`.
pub fn generate_with_config(
    id: BenchmarkId,
    cfg: &WorkloadConfig,
    space: &mut AddressSpace,
    seed: u64,
) -> Vec<WorkgroupTrace> {
    let mut rng = SimRng::seeded(seed ^ (id as u64).wrapping_mul(0xA076_1D64_78BD_642F));
    match id {
        BenchmarkId::Aes => streaming::aes(cfg, space, &mut rng),
        BenchmarkId::Relu => streaming::relu(cfg, space, &mut rng),
        BenchmarkId::Fir => streaming::fir(cfg, space, &mut rng),
        BenchmarkId::Sc => streaming::sc(cfg, space, &mut rng),
        BenchmarkId::I2c => streaming::i2c(cfg, space, &mut rng),
        BenchmarkId::Bt => butterfly::bt(cfg, space, &mut rng),
        BenchmarkId::Fwt => butterfly::fwt(cfg, space, &mut rng),
        BenchmarkId::Fft => butterfly::fft(cfg, space, &mut rng),
        BenchmarkId::Mm => matrix::mm(cfg, space, &mut rng),
        BenchmarkId::Mt => matrix::mt(cfg, space, &mut rng),
        BenchmarkId::Fws => matrix::fws(cfg, space, &mut rng),
        BenchmarkId::Km => irregular::km(cfg, space, &mut rng),
        BenchmarkId::Pr => irregular::pr(cfg, space, &mut rng),
        BenchmarkId::Spmv => irregular::spmv(cfg, space, &mut rng),
    }
}

/// Allocates a buffer of at least one page covering `bytes`.
pub(crate) fn alloc_bytes(space: &mut AddressSpace, name: &str, bytes: u64) -> Buffer {
    let ps = space.page_size();
    space.alloc(name, bytes.div_ceil(ps.bytes()).max(1))
}

/// A line-aligned byte address `off` bytes into `buf`, wrapping at the
/// buffer end so generated offsets always stay in bounds.
pub(crate) fn at(space: &AddressSpace, buf: &Buffer, off: u64) -> u64 {
    let ps = space.page_size();
    let len = buf.len_bytes(ps);
    (buf.base_addr(ps) + off % len) & !(LINE - 1)
}

/// Splits the per-workgroup op budget across kernel iterations, guaranteeing
/// at least two ops per iteration.
pub(crate) fn ops_per_iter(cfg: &WorkloadConfig) -> usize {
    (cfg.ops_per_wg / cfg.iterations.max(1) as usize).max(2)
}

/// The contiguous byte region of `buf` owned by workgroup `wg` when the
/// buffer is block-partitioned across all workgroups: `(start_offset,
/// region_len)`. The region is line-aligned and non-empty.
pub(crate) fn wg_block(space: &AddressSpace, buf: &Buffer, wg: u64, wg_count: u64) -> (u64, u64) {
    let len = buf.len_bytes(space.page_size());
    let chunk = (len / wg_count.max(1)).max(LINE) & !(LINE - 1);
    let start = ((wg * chunk) % len) & !(LINE - 1);
    (start, chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_xlat::PageSize;

    #[test]
    fn alloc_bytes_rounds_up_to_pages() {
        let mut s = AddressSpace::new(PageSize::Size4K, 4);
        let b = alloc_bytes(&mut s, "x", 1);
        assert_eq!(b.pages, 1);
        let b2 = alloc_bytes(&mut s, "y", 4097);
        assert_eq!(b2.pages, 2);
    }

    #[test]
    fn at_is_line_aligned_and_in_bounds() {
        let mut s = AddressSpace::new(PageSize::Size4K, 4);
        let b = alloc_bytes(&mut s, "x", 8192);
        for off in [0u64, 63, 64, 8191, 8192, 1_000_000] {
            let a = at(&s, &b, off);
            assert_eq!(a % LINE, 0);
            let vpn = s.page_size().vpn_of(a);
            assert!(b.contains(vpn), "offset {off} escaped the buffer");
        }
    }

    #[test]
    fn wg_blocks_tile_the_buffer() {
        let mut s = AddressSpace::new(PageSize::Size4K, 4);
        let b = alloc_bytes(&mut s, "x", 64 * 4096);
        let n = 64;
        let (s0, chunk) = wg_block(&s, &b, 0, n);
        let (s1, _) = wg_block(&s, &b, 1, n);
        assert_eq!(s0, 0);
        assert_eq!(s1, chunk);
        assert_eq!(chunk, 64 * 4096 / 64);
    }

    #[test]
    fn ops_per_iter_never_zero() {
        let cfg = WorkloadConfig {
            workgroups: 1,
            footprint_bytes: 1,
            ops_per_wg: 1,
            iterations: 10,
        };
        assert!(ops_per_iter(&cfg) >= 2);
    }
}
