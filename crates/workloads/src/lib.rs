#![warn(missing_docs)]

//! Synthetic access-pattern generators for the 14 benchmarks of the HDPAT
//! evaluation (Table II).
//!
//! The paper runs real GPU kernels from Hetero-Mark, AMDAPPSDK, SHOC and
//! DNNMark under MGPUSim. What drives every HDPAT result, however, is the
//! *memory-access pattern* those kernels present to the translation
//! hierarchy: stride, sharing, reuse distance, phase structure and
//! footprint. This crate reproduces each benchmark as a deterministic
//! generator of per-workgroup memory-operation traces exhibiting the same
//! pattern class the paper reports for it (random / partitioned / adjacent /
//! scatter-gather, §V-A), at a configurable scale.
//!
//! The scale-reduction is justified by the paper's own size-invariance
//! argument (Fig 13, reproduced by `fig13_size_invariance`): IOMMU pressure
//! is steady regardless of footprint, so a smaller configuration is a valid
//! proxy for a large one.
//!
//! # Example
//!
//! ```
//! use wsg_gpu::AddressSpace;
//! use wsg_workloads::{BenchmarkId, Scale};
//! use wsg_xlat::PageSize;
//!
//! let mut space = AddressSpace::new(PageSize::Size4K, 48);
//! let wgs = wsg_workloads::generate(BenchmarkId::Spmv, Scale::Unit, &mut space, 42);
//! assert!(!wgs.is_empty());
//! assert!(wgs.iter().all(|wg| !wg.is_empty()));
//! ```

pub mod catalog;
pub mod gen;

pub use catalog::{BenchmarkId, BenchmarkInfo, Scale, WorkloadConfig};

use wsg_gpu::{AddressSpace, WorkgroupTrace};

/// Generates the per-workgroup traces of `id` at `scale`, allocating its
/// buffers in `space`. Deterministic for a given `(id, scale, seed,
/// page size, GPM count)`.
pub fn generate(
    id: BenchmarkId,
    scale: Scale,
    space: &mut AddressSpace,
    seed: u64,
) -> Vec<WorkgroupTrace> {
    let cfg = id.config(scale);
    gen::generate_with_config(id, &cfg, space, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_xlat::PageSize;

    #[test]
    fn every_benchmark_generates_nonempty_traces() {
        for id in BenchmarkId::all() {
            let mut space = AddressSpace::new(PageSize::Size4K, 48);
            let wgs = generate(id, Scale::Unit, &mut space, 1);
            assert!(!wgs.is_empty(), "{id:?} generated no workgroups");
            let total_ops: usize = wgs.iter().map(|w| w.len()).sum();
            assert!(total_ops > 0, "{id:?} generated no ops");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for id in [BenchmarkId::Spmv, BenchmarkId::Pr, BenchmarkId::Aes] {
            let mut s1 = AddressSpace::new(PageSize::Size4K, 48);
            let mut s2 = AddressSpace::new(PageSize::Size4K, 48);
            let a = generate(id, Scale::Unit, &mut s1, 7);
            let b = generate(id, Scale::Unit, &mut s2, 7);
            assert_eq!(a, b, "{id:?} not deterministic");
        }
    }

    #[test]
    fn different_seeds_differ_for_irregular_benchmarks() {
        let mut s1 = AddressSpace::new(PageSize::Size4K, 48);
        let mut s2 = AddressSpace::new(PageSize::Size4K, 48);
        let a = generate(BenchmarkId::Spmv, Scale::Unit, &mut s1, 1);
        let b = generate(BenchmarkId::Spmv, Scale::Unit, &mut s2, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn all_addresses_fall_in_allocated_buffers() {
        for id in BenchmarkId::all() {
            let mut space = AddressSpace::new(PageSize::Size4K, 48);
            let wgs = generate(id, Scale::Unit, &mut space, 3);
            let ps = space.page_size();
            for wg in &wgs {
                for op in &wg.ops {
                    let vpn = ps.vpn_of(op.vaddr);
                    assert!(
                        space.buffer_of(vpn).is_some(),
                        "{id:?}: address {:#x} outside all buffers",
                        op.vaddr
                    );
                }
            }
        }
    }
}
