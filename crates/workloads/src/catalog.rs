//! The benchmark catalog (Table II) and scale profiles.

use std::fmt;

/// The 14 benchmarks of the HDPAT evaluation (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BenchmarkId {
    /// Advanced Encryption Standard (Hetero-Mark).
    Aes,
    /// Bitonic Sort (AMDAPPSDK).
    Bt,
    /// Fast Walsh Transform (AMDAPPSDK).
    Fwt,
    /// Fast Fourier Transform (SHOC).
    Fft,
    /// Finite Impulse Response filter (Hetero-Mark).
    Fir,
    /// Floyd-Warshall shortest paths (AMDAPPSDK).
    Fws,
    /// Image-to-column conversion (DNNMark).
    I2c,
    /// KMeans clustering (Hetero-Mark).
    Km,
    /// Matrix multiplication (AMDAPPSDK).
    Mm,
    /// Matrix transpose (AMDAPPSDK).
    Mt,
    /// PageRank (Hetero-Mark).
    Pr,
    /// Rectified linear unit (DNNMark).
    Relu,
    /// Simple convolution (AMDAPPSDK).
    Sc,
    /// Sparse matrix-vector multiplication (SHOC).
    Spmv,
}

/// Static Table II metadata for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkInfo {
    /// Paper abbreviation ("AES", "SPMV", …).
    pub abbr: &'static str,
    /// Full benchmark name.
    pub name: &'static str,
    /// Source suite.
    pub suite: &'static str,
    /// Workgroup count in the paper's configuration.
    pub paper_workgroups: u64,
    /// Memory footprint in MB in the paper's configuration.
    pub paper_footprint_mb: u64,
    /// Dominant access-pattern class (§V-A's taxonomy).
    pub pattern: &'static str,
}

/// Simulation scale: how far the paper's configuration is reduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny configuration for unit/integration tests (sub-second sims).
    Unit,
    /// The default experiment scale used by the figure benches: preserves
    /// the paper's relative workgroup/footprint ratios at ~1/64 size.
    Bench,
    /// The paper's full Table II configuration (slow; hours of simulation).
    Full,
}

/// The concrete generator configuration for one `(benchmark, scale)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of workgroups to generate.
    pub workgroups: u64,
    /// Total buffer footprint in bytes.
    pub footprint_bytes: u64,
    /// Approximate memory operations per workgroup.
    pub ops_per_wg: usize,
    /// Kernel iterations (outer phases touching the data again).
    pub iterations: u32,
}

impl BenchmarkId {
    /// All benchmarks in Table II order.
    pub fn all() -> [BenchmarkId; 14] {
        [
            BenchmarkId::Aes,
            BenchmarkId::Bt,
            BenchmarkId::Fwt,
            BenchmarkId::Fft,
            BenchmarkId::Fir,
            BenchmarkId::Fws,
            BenchmarkId::I2c,
            BenchmarkId::Km,
            BenchmarkId::Mm,
            BenchmarkId::Mt,
            BenchmarkId::Pr,
            BenchmarkId::Relu,
            BenchmarkId::Sc,
            BenchmarkId::Spmv,
        ]
    }

    /// Table II metadata.
    pub fn info(self) -> BenchmarkInfo {
        match self {
            BenchmarkId::Aes => BenchmarkInfo {
                abbr: "AES",
                name: "Advanced Encryption Standard",
                suite: "Hetero-Mark",
                paper_workgroups: 4_096,
                paper_footprint_mb: 8,
                pattern: "partitioned streaming, iterative compute",
            },
            BenchmarkId::Bt => BenchmarkInfo {
                abbr: "BT",
                name: "Bitonic Sort",
                suite: "AMDAPPSDK",
                paper_workgroups: 16_384,
                paper_footprint_mb: 16,
                pattern: "power-of-two strided passes",
            },
            BenchmarkId::Fwt => BenchmarkInfo {
                abbr: "FWT",
                name: "Fast Walsh Transform",
                suite: "AMDAPPSDK",
                paper_workgroups: 16_384,
                paper_footprint_mb: 64,
                pattern: "butterfly passes over one buffer",
            },
            BenchmarkId::Fft => BenchmarkInfo {
                abbr: "FFT",
                name: "Fast Fourier Transform",
                suite: "SHOC",
                paper_workgroups: 32_768,
                paper_footprint_mb: 256,
                pattern: "butterfly with twiddle reuse",
            },
            BenchmarkId::Fir => BenchmarkInfo {
                abbr: "FIR",
                name: "Finite Impulse Response Filter",
                suite: "Hetero-Mark",
                paper_workgroups: 65_536,
                paper_footprint_mb: 256,
                pattern: "sliding window, small stride, iterative",
            },
            BenchmarkId::Fws => BenchmarkInfo {
                abbr: "FWS",
                name: "Floyd-Warshall Shortest Paths",
                suite: "AMDAPPSDK",
                paper_workgroups: 65_536,
                paper_footprint_mb: 72,
                pattern: "pivot row/column shared by all workgroups",
            },
            BenchmarkId::I2c => BenchmarkInfo {
                abbr: "I2C",
                name: "Image to Column Conversion",
                suite: "DNNMark",
                paper_workgroups: 16_384,
                paper_footprint_mb: 32,
                pattern: "overlapping window gather, sequential write",
            },
            BenchmarkId::Km => BenchmarkInfo {
                abbr: "KM",
                name: "KMeans",
                suite: "Hetero-Mark",
                paper_workgroups: 32_768,
                paper_footprint_mb: 40,
                pattern: "streamed points, hot centroid pages, iterative",
            },
            BenchmarkId::Mm => BenchmarkInfo {
                abbr: "MM",
                name: "Matrix Multiplication",
                suite: "AMDAPPSDK",
                paper_workgroups: 16_384,
                paper_footprint_mb: 256,
                pattern: "tiled, row reuse + strided column gather",
            },
            BenchmarkId::Mt => BenchmarkInfo {
                abbr: "MT",
                name: "Matrix Transpose",
                suite: "AMDAPPSDK",
                paper_workgroups: 524_288,
                paper_footprint_mb: 2_048,
                pattern: "row read, long-range scattered write",
            },
            BenchmarkId::Pr => BenchmarkInfo {
                abbr: "PR",
                name: "PageRank",
                suite: "Hetero-Mark",
                paper_workgroups: 524_288,
                paper_footprint_mb: 14,
                pattern: "edge stream + power-law rank gather",
            },
            BenchmarkId::Relu => BenchmarkInfo {
                abbr: "RELU",
                name: "Rectified Linear Unit",
                suite: "DNNMark",
                paper_workgroups: 1_310_720,
                paper_footprint_mb: 1_280,
                pattern: "pure single-pass streaming",
            },
            BenchmarkId::Sc => BenchmarkInfo {
                abbr: "SC",
                name: "Simple Convolution",
                suite: "AMDAPPSDK",
                paper_workgroups: 262_465,
                paper_footprint_mb: 256,
                pattern: "sliding window with filter reuse",
            },
            BenchmarkId::Spmv => BenchmarkInfo {
                abbr: "SPMV",
                name: "Sparse Matrix-Vector Multiplication",
                suite: "SHOC",
                paper_workgroups: 81_920,
                paper_footprint_mb: 120,
                pattern: "streamed matrix + irregular x-vector gather",
            },
        }
    }

    /// The generator configuration at `scale`.
    ///
    /// `Bench` keeps the paper's relative proportions at roughly 1/16 of
    /// the workgroups and 1/64 of the footprint (clamped so every benchmark
    /// saturates the 48-GPM wafer at least briefly); `Unit` shrinks to
    /// sub-second sims for tests.
    pub fn config(self, scale: Scale) -> WorkloadConfig {
        let info = self.info();
        let (workgroups, footprint_bytes) = match scale {
            Scale::Full => (info.paper_workgroups, info.paper_footprint_mb << 20),
            Scale::Bench => (
                (info.paper_workgroups / 16).clamp(256, 4_096),
                ((info.paper_footprint_mb << 20) / 64).clamp(1 << 20, 48 << 20),
            ),
            Scale::Unit => (
                (info.paper_workgroups / 256).clamp(96, 256),
                ((info.paper_footprint_mb << 20) / 512).clamp(256 << 10, 4 << 20),
            ),
        };
        let iterations = match self {
            // Iterative kernels relaunch over the same data.
            BenchmarkId::Aes | BenchmarkId::Fir | BenchmarkId::Km => 3,
            BenchmarkId::Fws | BenchmarkId::Pr => 4,
            BenchmarkId::Bt | BenchmarkId::Fwt | BenchmarkId::Fft => 1, // passes modelled in-trace
            _ => 1,
        };
        WorkloadConfig {
            workgroups,
            footprint_bytes,
            ops_per_wg: match self {
                BenchmarkId::Aes => 48, // compute-bound: more ops, bigger gaps
                BenchmarkId::Relu => 64,
                _ => 96,
            },
            iterations,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.info().abbr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_benchmarks() {
        assert_eq!(BenchmarkId::all().len(), 14);
    }

    #[test]
    fn table2_values_match_paper() {
        let spmv = BenchmarkId::Spmv.info();
        assert_eq!(spmv.paper_workgroups, 81_920);
        assert_eq!(spmv.paper_footprint_mb, 120);
        let mt = BenchmarkId::Mt.info();
        assert_eq!(mt.paper_workgroups, 524_288);
        assert_eq!(mt.paper_footprint_mb, 2_048);
        let aes = BenchmarkId::Aes.info();
        assert_eq!(aes.paper_workgroups, 4_096);
        assert_eq!(aes.paper_footprint_mb, 8);
    }

    #[test]
    fn abbreviations_are_unique() {
        let mut abbrs: Vec<_> = BenchmarkId::all().iter().map(|b| b.info().abbr).collect();
        abbrs.sort();
        let before = abbrs.len();
        abbrs.dedup();
        assert_eq!(abbrs.len(), before);
    }

    #[test]
    fn full_scale_matches_table2() {
        for id in BenchmarkId::all() {
            let cfg = id.config(Scale::Full);
            let info = id.info();
            assert_eq!(cfg.workgroups, info.paper_workgroups);
            assert_eq!(cfg.footprint_bytes, info.paper_footprint_mb << 20);
        }
    }

    #[test]
    fn scales_are_ordered() {
        for id in BenchmarkId::all() {
            let unit = id.config(Scale::Unit);
            let bench = id.config(Scale::Bench);
            let full = id.config(Scale::Full);
            assert!(unit.workgroups <= bench.workgroups);
            assert!(bench.workgroups <= full.workgroups);
            assert!(unit.footprint_bytes <= bench.footprint_bytes);
            assert!(bench.footprint_bytes <= full.footprint_bytes);
        }
    }

    #[test]
    fn bench_scale_preserves_relative_footprints() {
        let mt = BenchmarkId::Mt.config(Scale::Bench).footprint_bytes;
        let pr = BenchmarkId::Pr.config(Scale::Bench).footprint_bytes;
        assert!(mt > 4 * pr, "MT must stay much larger than PR");
    }

    #[test]
    fn display_uses_abbreviation() {
        assert_eq!(format!("{}", BenchmarkId::Spmv), "SPMV");
        assert_eq!(format!("{}", BenchmarkId::Relu), "RELU");
    }
}
