//! Cross-cutting checks that each benchmark generator reproduces the
//! pattern class Table II / §V-A assigns to it. These are the properties
//! the simulator results depend on, tested directly on the traces.

use std::collections::{HashMap, HashSet};
use wsg_gpu::AddressSpace;
use wsg_workloads::{generate, BenchmarkId, Scale};
use wsg_xlat::PageSize;

struct TraceStats {
    ops: u64,
    distinct_pages: usize,
    /// Fraction of ops whose page differs from the previous op's page.
    page_switch_rate: f64,
    /// Max times any single page is touched across the whole trace.
    hottest_page_touches: u64,
    /// Fraction of ops touching pages outside the workgroup's own
    /// block-partition chunk (remote under aligned dispatch).
    cross_chunk: f64,
}

fn stats(id: BenchmarkId) -> TraceStats {
    let gpms = 48u32;
    let mut space = AddressSpace::new(PageSize::Size4K, gpms);
    let wgs = generate(id, Scale::Unit, &mut space, 42);
    let ps = space.page_size();
    let mut ops = 0u64;
    let mut switches = 0u64;
    let mut pages: HashMap<u64, u64> = HashMap::new();
    let mut cross = 0u64;
    let n = wgs.len() as u64;
    for (i, wg) in wgs.iter().enumerate() {
        let mut last: Option<u64> = None;
        for op in &wg.ops {
            ops += 1;
            let vpn = ps.vpn_of(op.vaddr);
            *pages.entry(vpn.0).or_insert(0) += 1;
            if last.is_some_and(|l| l != vpn.0) {
                switches += 1;
            }
            last = Some(vpn.0);
            // "Own" region: does the page belong to a buffer chunk this
            // workgroup's index maps to (wg i of n ↔ fraction i/n of the
            // buffer)?
            if let Some(buf) = space.buffer_of(vpn) {
                let offset = vpn.0 - buf.base_vpn.0;
                let own_lo = (i as u64) * buf.pages / n;
                let own_hi = ((i as u64 + 1) * buf.pages / n).max(own_lo + 1) + 1;
                if offset < own_lo.saturating_sub(1) || offset > own_hi {
                    cross += 1;
                }
            }
        }
    }
    TraceStats {
        ops,
        distinct_pages: pages.len(),
        page_switch_rate: switches as f64 / ops.max(1) as f64,
        hottest_page_touches: pages.values().copied().max().unwrap_or(0),
        cross_chunk: cross as f64 / ops.max(1) as f64,
    }
}

#[test]
fn gathers_cross_chunks_more_than_streams() {
    // PR/SPMV/FWS gather from shared structures; AES/RELU stream their own
    // partition. Every gather benchmark must reach across chunks more than
    // every streaming benchmark does.
    let gather_min = [BenchmarkId::Pr, BenchmarkId::Spmv, BenchmarkId::Fws]
        .into_iter()
        .map(|id| stats(id).cross_chunk)
        .fold(f64::MAX, f64::min);
    let stream_max = [BenchmarkId::Aes, BenchmarkId::Relu]
        .into_iter()
        .map(|id| stats(id).cross_chunk)
        .fold(0.0, f64::max);
    assert!(
        gather_min > stream_max,
        "gather min {gather_min:.2} must exceed streaming max {stream_max:.2}"
    );
    assert!(
        gather_min > 0.10,
        "gathers must leave their chunk: {gather_min:.2}"
    );
}

#[test]
fn hot_structures_concentrate_touches() {
    // The hot shared pages (keys, centroids, pivot rows, ranks) must attract
    // orders of magnitude more touches than a streaming page.
    for (id, floor) in [
        (BenchmarkId::Aes, 200),
        (BenchmarkId::Km, 200),
        (BenchmarkId::Fws, 200),
        (BenchmarkId::Pr, 200),
    ] {
        let s = stats(id);
        assert!(
            s.hottest_page_touches > floor,
            "{id}: hottest page only {} touches",
            s.hottest_page_touches
        );
    }
}

#[test]
fn streaming_benchmarks_have_no_hot_data_page() {
    // RELU's hottest page is bounded: pure streaming never concentrates.
    let s = stats(BenchmarkId::Relu);
    let mean = s.ops as f64 / s.distinct_pages.max(1) as f64;
    assert!(
        (s.hottest_page_touches as f64) < 8.0 * mean,
        "RELU hottest {} vs mean {:.0}",
        s.hottest_page_touches,
        mean
    );
}

#[test]
fn butterfly_benchmarks_switch_pages_constantly() {
    // Partner exchanges alternate between distant lines.
    for id in [BenchmarkId::Bt, BenchmarkId::Fwt, BenchmarkId::Fft] {
        let s = stats(id);
        assert!(
            s.page_switch_rate > 0.2,
            "{id}: switch rate {:.2}",
            s.page_switch_rate
        );
    }
}

#[test]
fn footprints_scale_with_config() {
    // Bench-scale traces must touch more distinct pages than Unit-scale.
    for id in [BenchmarkId::Mt, BenchmarkId::Relu, BenchmarkId::Spmv] {
        let mut su = AddressSpace::new(PageSize::Size4K, 48);
        let mut sb = AddressSpace::new(PageSize::Size4K, 48);
        let unit: HashSet<u64> = generate(id, Scale::Unit, &mut su, 1)
            .iter()
            .flat_map(|w| w.ops.iter())
            .map(|o| PageSize::Size4K.vpn_of(o.vaddr).0)
            .collect();
        let bench: HashSet<u64> = generate(id, Scale::Bench, &mut sb, 1)
            .iter()
            .flat_map(|w| w.ops.iter())
            .map(|o| PageSize::Size4K.vpn_of(o.vaddr).0)
            .collect();
        assert!(
            bench.len() > 2 * unit.len(),
            "{id}: bench pages {} vs unit pages {}",
            bench.len(),
            unit.len()
        );
    }
}

#[test]
fn page_size_changes_vpns_not_bytes() {
    // The same benchmark under 64K pages touches ~16x fewer distinct pages.
    let mut s4 = AddressSpace::new(PageSize::Size4K, 48);
    let mut s64 = AddressSpace::new(PageSize::Size64K, 48);
    let t4 = generate(BenchmarkId::Relu, Scale::Unit, &mut s4, 1);
    let t64 = generate(BenchmarkId::Relu, Scale::Unit, &mut s64, 1);
    let pages = |t: &[wsg_gpu::WorkgroupTrace], ps: PageSize| -> usize {
        t.iter()
            .flat_map(|w| w.ops.iter())
            .map(|o| ps.vpn_of(o.vaddr).0)
            .collect::<HashSet<_>>()
            .len()
    };
    let p4 = pages(&t4, PageSize::Size4K);
    let p64 = pages(&t64, PageSize::Size64K);
    assert!(p64 * 4 < p4, "4K pages {p4} vs 64K pages {p64}");
}
