//! Virtual and physical page numbers.

use std::fmt;

/// A virtual page number.
///
/// The newtype prevents mixing virtual and physical page numbers, and keeps
/// HDPAT's clustering arithmetic (`VPN mod N_c`, Eq 1–2) explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Vpn(pub u64);

/// A physical page (frame) number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Pfn(pub u64);

impl Vpn {
    /// The `n`-th next page, saturating — used by proactive delivery, which
    /// fetches VPN N .. N+3 (§IV-G).
    pub fn offset(self, n: u64) -> Vpn {
        Vpn(self.0.saturating_add(n))
    }

    /// Absolute page-distance to another VPN (observation O4's metric).
    pub fn distance(self, other: Vpn) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:#x}", self.0)
    }
}

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{:#x}", self.0)
    }
}

/// System page size (Fig 20 sweeps this; 4 KB is the baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum PageSize {
    /// 4 KB pages (baseline).
    #[default]
    Size4K,
    /// 16 KB pages.
    Size16K,
    /// 64 KB pages.
    Size64K,
    /// 2 MB pages.
    Size2M,
}

impl PageSize {
    /// Page size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::Size4K => 4 << 10,
            PageSize::Size16K => 16 << 10,
            PageSize::Size64K => 64 << 10,
            PageSize::Size2M => 2 << 20,
        }
    }

    /// log2 of the page size.
    pub fn shift(self) -> u32 {
        self.bytes().trailing_zeros()
    }

    /// The VPN containing a virtual byte address.
    pub fn vpn_of(self, vaddr: u64) -> Vpn {
        Vpn(vaddr >> self.shift())
    }

    /// The first byte address of a page.
    pub fn base_of(self, vpn: Vpn) -> u64 {
        vpn.0 << self.shift()
    }

    /// All page sizes, in ascending order (for the Fig 20 sweep).
    pub fn all() -> [PageSize; 4] {
        [
            PageSize::Size4K,
            PageSize::Size16K,
            PageSize::Size64K,
            PageSize::Size2M,
        ]
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4KB"),
            PageSize::Size16K => write!(f, "16KB"),
            PageSize::Size64K => write!(f, "64KB"),
            PageSize::Size2M => write!(f, "2MB"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_arithmetic() {
        let v = Vpn(10);
        assert_eq!(v.offset(3), Vpn(13));
        assert_eq!(Vpn(u64::MAX).offset(1), Vpn(u64::MAX));
        assert_eq!(Vpn(5).distance(Vpn(9)), 4);
        assert_eq!(Vpn(9).distance(Vpn(5)), 4);
    }

    #[test]
    fn page_size_bytes() {
        assert_eq!(PageSize::Size4K.bytes(), 4096);
        assert_eq!(PageSize::Size16K.bytes(), 16384);
        assert_eq!(PageSize::Size64K.bytes(), 65536);
        assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn vpn_of_and_base_roundtrip() {
        let ps = PageSize::Size4K;
        assert_eq!(ps.vpn_of(0), Vpn(0));
        assert_eq!(ps.vpn_of(4095), Vpn(0));
        assert_eq!(ps.vpn_of(4096), Vpn(1));
        assert_eq!(ps.base_of(Vpn(3)), 3 * 4096);
        let addr = 123_456_789;
        let vpn = ps.vpn_of(addr);
        assert!(ps.base_of(vpn) <= addr && addr < ps.base_of(vpn.offset(1)));
    }

    #[test]
    fn bigger_pages_fewer_vpns() {
        let addr = 10 << 20; // 10 MB
        assert!(PageSize::Size2M.vpn_of(addr).0 < PageSize::Size4K.vpn_of(addr).0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Vpn(16)), "v0x10");
        assert_eq!(format!("{}", Pfn(16)), "p0x10");
        assert_eq!(format!("{}", PageSize::Size4K), "4KB");
    }

    #[test]
    fn all_page_sizes_ascending() {
        let all = PageSize::all();
        for pair in all.windows(2) {
            assert!(pair[0].bytes() < pair[1].bytes());
        }
    }
}
