//! Page-table walker pools with an explicit PW-queue.

use std::collections::VecDeque;

/// The outcome of submitting a request to a [`WalkerPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitResult {
    /// A walker was free; the walk starts immediately. The caller should
    /// schedule its completion after the walk latency.
    Started,
    /// All walkers are busy; the request was placed in the PW-queue and will
    /// be returned by a later [`WalkerPool::finish`].
    Queued,
    /// The PW-queue is full; the request was rejected and must wait in an
    /// upstream buffer (the IOMMU "pre-queue" of Fig 3).
    Rejected,
}

/// A pool of page-table walkers fed by a bounded FIFO PW-queue.
///
/// Models both the GMMU (8 walkers) and the IOMMU (16 walkers) of Table I.
/// Unlike the analytic [`wsg_sim::ServerPool`], the queue is a real data
/// structure, so the simulator can:
///
/// * sample its occupancy over time (Fig 4's buffer pressure),
/// * coalesce identical pending requests when a walk finishes — the
///   *PW-queue revisit* of §IV-F and the core of the Barre baseline,
/// * bound it and exert back-pressure (the pre-queue component of Fig 3).
///
/// `T` is the caller's request token.
///
/// # Example
///
/// ```
/// use wsg_xlat::{SubmitResult, WalkerPool};
///
/// let mut pool: WalkerPool<u32> = WalkerPool::new(1, 8);
/// assert_eq!(pool.submit(100), SubmitResult::Started);
/// assert_eq!(pool.submit(200), SubmitResult::Queued);
/// // First walk finishes; the queued request starts next.
/// assert_eq!(pool.finish(), Some(200));
/// assert_eq!(pool.finish(), None); // nothing left waiting
/// ```
#[derive(Debug, Clone)]
pub struct WalkerPool<T> {
    walkers: usize,
    busy: usize,
    queue: VecDeque<T>,
    queue_capacity: usize,
    /// Reused survivor buffer for [`WalkerPool::drain_matching_into`] —
    /// pre-sized with the queue so the PW-queue revisit never allocates.
    kept: VecDeque<T>,
    started: u64,
    queued: u64,
    rejected: u64,
    coalesced: u64,
    #[cfg(feature = "audit")]
    auditor: Option<wsg_sim::audit::AuditHandle>,
    #[cfg(feature = "audit")]
    audit_site: u64,
    #[cfg(feature = "trace")]
    tracer: Option<wsg_sim::trace::TraceHandle>,
    #[cfg(feature = "trace")]
    trace_site: u64,
    #[cfg(feature = "telemetry")]
    telemetry: Option<wsg_sim::telemetry::TelemetryHandle>,
    #[cfg(feature = "telemetry")]
    telemetry_base: usize,
}

impl<T> WalkerPool<T> {
    /// Creates a pool with `walkers` walkers and a PW-queue of
    /// `queue_capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `walkers` is zero.
    pub fn new(walkers: usize, queue_capacity: usize) -> Self {
        assert!(walkers > 0, "need at least one walker");
        // Pre-size both ring buffers from the config (clamped in case a
        // sweep passes an effectively-unbounded capacity) so the steady
        // state never reallocates.
        let presize = queue_capacity.min(1 << 16);
        Self {
            walkers,
            busy: 0,
            queue: VecDeque::with_capacity(presize),
            queue_capacity,
            kept: VecDeque::with_capacity(presize),
            started: 0,
            queued: 0,
            rejected: 0,
            coalesced: 0,
            #[cfg(feature = "audit")]
            auditor: None,
            #[cfg(feature = "audit")]
            audit_site: 0,
            #[cfg(feature = "trace")]
            tracer: None,
            #[cfg(feature = "trace")]
            trace_site: 0,
            #[cfg(feature = "telemetry")]
            telemetry: None,
            #[cfg(feature = "telemetry")]
            telemetry_base: 0,
        }
    }

    /// Attaches an auditor observing PW-queue occupancy under instance id
    /// `site`.
    #[cfg(feature = "audit")]
    pub fn set_auditor(&mut self, auditor: wsg_sim::audit::AuditHandle, site: u64) {
        self.auditor = Some(auditor);
        self.audit_site = site;
    }

    /// Attaches a tracer recording submit outcomes and queue promotions
    /// under instance id `site`.
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: wsg_sim::trace::TraceHandle, site: u64) {
        self.tracer = Some(tracer);
        self.trace_site = site;
    }

    /// Attaches the telemetry flight recorder, registering this pool's
    /// load and throughput metrics under instance id `site` (optionally
    /// tagged with a wafer tile for heatmap exports).
    #[cfg(feature = "telemetry")]
    pub fn set_telemetry(
        &mut self,
        telemetry: &wsg_sim::telemetry::TelemetryHandle,
        site: u64,
        tile: Option<(u16, u16)>,
    ) {
        use wsg_sim::telemetry::CounterKind::{Counter, Gauge};
        self.telemetry_base = telemetry.with(|t| {
            let base = t.register("walkers.busy", site, tile, Gauge);
            t.register("walkers.queue", site, tile, Gauge);
            t.register("walkers.started", site, tile, Counter);
            t.register("walkers.coalesced", site, tile, Counter);
            t.register("walkers.rejected", site, tile, Counter);
            base
        });
        self.telemetry = Some(telemetry.clone());
    }

    /// Publishes current load and cumulative counters into the attached
    /// recorder (a no-op without one). The engine calls this at each epoch
    /// boundary.
    #[cfg(feature = "telemetry")]
    pub fn publish_telemetry(&self) {
        if let Some(tel) = &self.telemetry {
            let base = self.telemetry_base;
            tel.with(|t| {
                t.set(base, self.busy as u64);
                t.set(base + 1, self.queue.len() as u64);
                t.set(base + 2, self.started);
                t.set(base + 3, self.coalesced);
                t.set(base + 4, self.rejected);
            });
        }
    }

    #[cfg(feature = "trace")]
    fn trace_event(&self, stage: &'static str, arg: u64) {
        if let Some(tr) = &self.tracer {
            tr.with(|s| s.instant(stage, self.trace_site, arg));
        }
    }

    #[cfg(feature = "audit")]
    fn audit_queue_fill(&self) {
        if let Some(a) = &self.auditor {
            let site = wsg_sim::audit::Site::new(wsg_sim::audit::SiteKind::Walker, self.audit_site);
            a.with(|au| au.on_fill(site, self.queue.len(), self.queue_capacity));
        }
    }

    #[cfg(feature = "audit")]
    fn audit_queue_evict(&self, occupancy: usize) {
        if let Some(a) = &self.auditor {
            let site = wsg_sim::audit::Site::new(wsg_sim::audit::SiteKind::Walker, self.audit_site);
            a.with(|au| au.on_evict(site, occupancy));
        }
    }

    /// Submits a request. See [`SubmitResult`] for the possible outcomes;
    /// on `Rejected` the request is handed back via the return value.
    pub fn submit(&mut self, token: T) -> SubmitResult
    where
        T: Clone,
    {
        if self.busy < self.walkers {
            self.busy += 1;
            self.started += 1;
            #[cfg(feature = "trace")]
            self.trace_event("walk.start", self.busy as u64);
            SubmitResult::Started
        } else if self.queue.len() < self.queue_capacity {
            self.queue.push_back(token);
            self.queued += 1;
            #[cfg(feature = "audit")]
            self.audit_queue_fill();
            #[cfg(feature = "trace")]
            self.trace_event("walk.queue", self.queue.len() as u64);
            SubmitResult::Queued
        } else {
            self.rejected += 1;
            #[cfg(feature = "trace")]
            self.trace_event("walk.reject", self.queue.len() as u64);
            SubmitResult::Rejected
        }
    }

    /// Marks one walk as finished, freeing its walker. If the PW-queue is
    /// non-empty, the head request is dequeued, its walk starts immediately,
    /// and it is returned so the caller can schedule its completion.
    ///
    /// # Panics
    ///
    /// Panics if no walk is in flight.
    pub fn finish(&mut self) -> Option<T> {
        assert!(self.busy > 0, "finish() without a walk in flight");
        match self.queue.pop_front() {
            Some(next) => {
                // The freed walker immediately picks up the next request;
                // `busy` stays unchanged.
                self.started += 1;
                #[cfg(feature = "audit")]
                self.audit_queue_evict(self.queue.len());
                #[cfg(feature = "trace")]
                self.trace_event("walk.promote", self.queue.len() as u64);
                Some(next)
            }
            None => {
                self.busy -= 1;
                None
            }
        }
    }

    /// Removes every queued request matching `pred` — the PW-queue revisit:
    /// when a walker resolves VPN N it also completes all identical pending
    /// requests without extra walks. Returns the removed requests in FIFO
    /// order.
    pub fn drain_matching(&mut self, pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut drained = Vec::new();
        self.drain_matching_into(pred, &mut drained);
        drained
    }

    /// [`WalkerPool::drain_matching`] into a caller-owned buffer: appends
    /// the removed requests to `out` in FIFO order and returns the count.
    /// Survivors shuffle through the pool's pre-sized `kept` ring, so the
    /// revisit allocates nothing once `out` has warmed up.
    pub fn drain_matching_into(
        &mut self,
        mut pred: impl FnMut(&T) -> bool,
        out: &mut Vec<T>,
    ) -> usize {
        let start = out.len();
        while let Some(item) = self.queue.pop_front() {
            if pred(&item) {
                out.push(item);
            } else {
                self.kept.push_back(item);
            }
        }
        std::mem::swap(&mut self.queue, &mut self.kept);
        let n = out.len() - start;
        self.coalesced += n as u64;
        #[cfg(feature = "audit")]
        for i in 0..n {
            // One evict per drained request, with the intermediate occupancy
            // each removal would have left.
            self.audit_queue_evict(self.queue.len() + n - 1 - i);
        }
        n
    }

    /// Number of walks currently in flight.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Number of requests waiting in the PW-queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether a new submission would be rejected.
    pub fn is_saturated(&self) -> bool {
        self.busy >= self.walkers && self.queue.len() >= self.queue_capacity
    }

    /// Number of walkers.
    pub fn walkers(&self) -> usize {
        self.walkers
    }

    /// PW-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Lifetime count of walks started.
    pub fn started(&self) -> u64 {
        self.started
    }

    /// Lifetime count of requests that had to queue.
    pub fn queued(&self) -> u64 {
        self.queued
    }

    /// Lifetime count of rejected submissions.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Lifetime count of requests completed by queue revisit.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one walker")]
    fn zero_walkers_rejected() {
        WalkerPool::<u32>::new(0, 4);
    }

    #[test]
    fn starts_until_walkers_exhausted() {
        let mut p: WalkerPool<u32> = WalkerPool::new(2, 4);
        assert_eq!(p.submit(1), SubmitResult::Started);
        assert_eq!(p.submit(2), SubmitResult::Started);
        assert_eq!(p.submit(3), SubmitResult::Queued);
        assert_eq!(p.busy(), 2);
        assert_eq!(p.queue_len(), 1);
    }

    #[test]
    fn rejects_when_queue_full() {
        let mut p: WalkerPool<u32> = WalkerPool::new(1, 1);
        p.submit(1);
        p.submit(2);
        assert_eq!(p.submit(3), SubmitResult::Rejected);
        assert!(p.is_saturated());
        assert_eq!(p.rejected(), 1);
    }

    #[test]
    fn finish_promotes_queue_head_fifo() {
        let mut p: WalkerPool<u32> = WalkerPool::new(1, 4);
        p.submit(1);
        p.submit(2);
        p.submit(3);
        assert_eq!(p.finish(), Some(2));
        assert_eq!(p.finish(), Some(3));
        assert_eq!(p.finish(), None);
        assert_eq!(p.busy(), 0);
    }

    #[test]
    #[should_panic(expected = "without a walk in flight")]
    fn finish_without_walk_panics() {
        let mut p: WalkerPool<u32> = WalkerPool::new(1, 1);
        p.finish();
    }

    #[test]
    fn drain_matching_coalesces() {
        let mut p: WalkerPool<(u32, u64)> = WalkerPool::new(1, 10);
        p.submit((0, 100)); // starts
        for i in 1..=5 {
            p.submit((i, if i % 2 == 0 { 100 } else { 200 }));
        }
        let same = p.drain_matching(|&(_, vpn)| vpn == 100);
        assert_eq!(same.len(), 2);
        assert_eq!(p.queue_len(), 3);
        assert_eq!(p.coalesced(), 2);
        // FIFO order preserved for survivors.
        assert_eq!(p.finish(), Some((1, 200)));
    }

    #[test]
    fn busy_count_stable_when_promoting() {
        let mut p: WalkerPool<u32> = WalkerPool::new(2, 4);
        p.submit(1);
        p.submit(2);
        p.submit(3);
        assert_eq!(p.busy(), 2);
        p.finish(); // promotes 3; both walkers still busy
        assert_eq!(p.busy(), 2);
        p.finish();
        assert_eq!(p.busy(), 1);
    }

    #[test]
    fn statistics_accumulate() {
        let mut p: WalkerPool<u32> = WalkerPool::new(1, 1);
        p.submit(1);
        p.submit(2);
        p.submit(3); // rejected
        p.finish(); // promotes 2
        assert_eq!(p.started(), 2);
        assert_eq!(p.queued(), 1);
        assert_eq!(p.rejected(), 1);
    }
}
