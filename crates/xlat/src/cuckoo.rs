//! Cuckoo filter (Fan, Andersen, Kaminsky, Mitzenmacher, CoNEXT 2014).
//!
//! A cuckoo filter stores short fingerprints of keys in a 4-way bucketed
//! table. Each key has two candidate buckets — the second derived from the
//! first by XOR with the hash of the fingerprint — so membership tests are
//! two bucket probes, and deletions are supported (unlike Bloom filters).
//!
//! In the paper (§II-B), a cuckoo filter sits between the L2 TLB and the
//! last-level TLB of every GPM and answers "might this VPN be in the local
//! page table?". A negative answer is exact and lets the request bypass the
//! local walk entirely; a false positive costs a wasted local walk before
//! the request is forwarded to the IOMMU.

/// Fingerprint width: 16 bits keeps the false-positive rate around
/// `2·4/2^16 ≈ 0.012 %` at high load, matching the "low false-positive
/// rates even at high capacity" the paper relies on.
type Fingerprint = u16;

const BUCKET_SIZE: usize = 4;
const MAX_KICKS: usize = 500;

fn hash64(mut x: u64) -> u64 {
    // splitmix64 finalizer: deterministic, high-quality mixing.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A cuckoo filter over `u64` keys.
///
/// # Example
///
/// ```
/// let mut f = wsg_xlat::CuckooFilter::with_capacity(1024);
/// assert!(f.insert(42));
/// assert!(f.contains(42));
/// assert!(f.remove(42));
/// assert!(!f.contains(42));
/// ```
#[derive(Debug, Clone)]
pub struct CuckooFilter {
    buckets: Vec<[Fingerprint; BUCKET_SIZE]>,
    bucket_mask: u64,
    len: usize,
    kicks: u64,
    #[cfg(feature = "trace")]
    tracer: Option<wsg_sim::trace::TraceHandle>,
    #[cfg(feature = "trace")]
    trace_site: u64,
    #[cfg(feature = "telemetry")]
    telemetry: Option<wsg_sim::telemetry::TelemetryHandle>,
    #[cfg(feature = "telemetry")]
    telemetry_base: usize,
}

impl CuckooFilter {
    /// Creates a filter able to hold at least `capacity` keys (at ~95 %
    /// bucket load).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let buckets_needed = capacity.div_ceil(BUCKET_SIZE);
        let num_buckets = buckets_needed.next_power_of_two().max(2);
        Self {
            buckets: vec![[0; BUCKET_SIZE]; num_buckets],
            bucket_mask: num_buckets as u64 - 1,
            len: 0,
            kicks: 0,
            #[cfg(feature = "trace")]
            tracer: None,
            #[cfg(feature = "trace")]
            trace_site: 0,
            #[cfg(feature = "telemetry")]
            telemetry: None,
            #[cfg(feature = "telemetry")]
            telemetry_base: 0,
        }
    }

    /// Attaches a tracer recording membership-test outcomes under instance
    /// id `site`.
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: wsg_sim::trace::TraceHandle, site: u64) {
        self.tracer = Some(tracer);
        self.trace_site = site;
    }

    /// Attaches the telemetry flight recorder, registering this filter's
    /// occupancy and relocation metrics under instance id `site`
    /// (optionally tagged with a wafer tile for heatmap exports).
    #[cfg(feature = "telemetry")]
    pub fn set_telemetry(
        &mut self,
        telemetry: &wsg_sim::telemetry::TelemetryHandle,
        site: u64,
        tile: Option<(u16, u16)>,
    ) {
        use wsg_sim::telemetry::CounterKind::{Counter, Gauge};
        self.telemetry_base = telemetry.with(|t| {
            let base = t.register("cuckoo.occupancy", site, tile, Gauge);
            t.register("cuckoo.kicks", site, tile, Counter);
            base
        });
        self.telemetry = Some(telemetry.clone());
    }

    /// Publishes current occupancy and cumulative kick counts into the
    /// attached recorder (a no-op without one). The engine calls this at
    /// each epoch boundary.
    #[cfg(feature = "telemetry")]
    pub fn publish_telemetry(&self) {
        if let Some(tel) = &self.telemetry {
            let base = self.telemetry_base;
            tel.with(|t| {
                t.set(base, self.len as u64);
                t.set(base + 1, self.kicks);
            });
        }
    }

    fn fingerprint(key: u64) -> Fingerprint {
        // Never 0: 0 marks an empty slot.
        let f = (hash64(key) >> 48) as u16;
        if f == 0 {
            1
        } else {
            f
        }
    }

    fn index1(&self, key: u64) -> usize {
        (hash64(key.rotate_left(17)) & self.bucket_mask) as usize
    }

    fn index2(&self, i1: usize, fp: Fingerprint) -> usize {
        ((i1 as u64) ^ (hash64(fp as u64) & self.bucket_mask)) as usize & self.bucket_mask as usize
    }

    /// Inserts `key`. Returns `false` if the filter is too full to place the
    /// fingerprint (callers should treat this as "filter saturated" and
    /// rebuild or accept degraded accuracy).
    pub fn insert(&mut self, key: u64) -> bool {
        let fp = Self::fingerprint(key);
        let i1 = self.index1(key);
        let i2 = self.index2(i1, fp);
        if self.place(i1, fp) || self.place(i2, fp) {
            self.len += 1;
            return true;
        }
        // Kick a resident fingerprint to its alternate bucket.
        let mut idx = if hash64(key ^ fp as u64) & 1 == 0 {
            i1
        } else {
            i2
        };
        let mut fp = fp;
        for kick in 0..MAX_KICKS {
            let victim_slot =
                (hash64(idx as u64 ^ fp as u64 ^ kick as u64) % BUCKET_SIZE as u64) as usize;
            std::mem::swap(&mut self.buckets[idx][victim_slot], &mut fp);
            self.kicks += 1;
            idx = self.index2(idx, fp);
            if self.place(idx, fp) {
                self.len += 1;
                return true;
            }
        }
        false
    }

    fn place(&mut self, idx: usize, fp: Fingerprint) -> bool {
        for slot in &mut self.buckets[idx] {
            if *slot == 0 {
                *slot = fp;
                return true;
            }
        }
        false
    }

    /// Tests membership. False positives are possible; false negatives are
    /// not (for keys inserted and not removed).
    pub fn contains(&self, key: u64) -> bool {
        let fp = Self::fingerprint(key);
        let i1 = self.index1(key);
        let i2 = self.index2(i1, fp);
        let hit = self.buckets[i1].contains(&fp) || self.buckets[i2].contains(&fp);
        #[cfg(feature = "trace")]
        if let Some(tr) = &self.tracer {
            let stage = if hit { "cuckoo.hit" } else { "cuckoo.miss" };
            tr.with(|s| s.instant(stage, self.trace_site, key));
        }
        hit
    }

    /// Removes one copy of `key`'s fingerprint. Returns whether a
    /// fingerprint was removed. Removing a key that was never inserted may —
    /// with fingerprint-collision probability — remove another key's
    /// fingerprint, as in the original filter.
    pub fn remove(&mut self, key: u64) -> bool {
        let fp = Self::fingerprint(key);
        let i1 = self.index1(key);
        let i2 = self.index2(i1, fp);
        for idx in [i1, i2] {
            for slot in &mut self.buckets[idx] {
                if *slot == fp {
                    *slot = 0;
                    self.len -= 1;
                    return true;
                }
            }
        }
        false
    }

    /// Number of fingerprints currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the filter holds no fingerprints.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot capacity (buckets × 4).
    pub fn capacity(&self) -> usize {
        self.buckets.len() * BUCKET_SIZE
    }

    /// Load factor in `[0, 1]`.
    pub fn load(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    /// Cumulative number of displacement kicks performed (an indicator of
    /// pressure).
    pub fn total_kicks(&self) -> u64 {
        self.kicks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        CuckooFilter::with_capacity(0);
    }

    #[test]
    fn no_false_negatives() {
        let mut f = CuckooFilter::with_capacity(4096);
        for k in 0..3000u64 {
            assert!(f.insert(k), "insert failed at {k}");
        }
        for k in 0..3000u64 {
            assert!(f.contains(k), "false negative at {k}");
        }
    }

    #[test]
    fn low_false_positive_rate() {
        let mut f = CuckooFilter::with_capacity(4096);
        for k in 0..3000u64 {
            f.insert(k);
        }
        let fps = (100_000..200_000u64).filter(|&k| f.contains(k)).count();
        let rate = fps as f64 / 100_000.0;
        assert!(rate < 0.01, "false positive rate too high: {rate}");
    }

    #[test]
    fn remove_then_absent() {
        let mut f = CuckooFilter::with_capacity(64);
        f.insert(7);
        f.insert(8);
        assert!(f.remove(7));
        assert!(!f.contains(7));
        assert!(f.contains(8));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn remove_missing_key_usually_fails() {
        let mut f = CuckooFilter::with_capacity(1024);
        f.insert(1);
        assert!(!f.remove(999_999));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn duplicate_inserts_allowed() {
        let mut f = CuckooFilter::with_capacity(64);
        assert!(f.insert(5));
        assert!(f.insert(5));
        assert_eq!(f.len(), 2);
        assert!(f.remove(5));
        assert!(f.contains(5), "one copy remains");
        assert!(f.remove(5));
        assert!(!f.contains(5));
    }

    #[test]
    fn fills_to_high_load() {
        let mut f = CuckooFilter::with_capacity(1024);
        let mut inserted = 0;
        for k in 0..f.capacity() as u64 {
            if f.insert(k) {
                inserted += 1;
            } else {
                break;
            }
        }
        assert!(
            inserted as f64 / f.capacity() as f64 > 0.9,
            "cuckoo filters should reach >90% load, got {}",
            f.load()
        );
    }

    #[test]
    fn empty_and_capacity() {
        let f = CuckooFilter::with_capacity(100);
        assert!(f.is_empty());
        assert!(f.capacity() >= 100);
        assert_eq!(f.load(), 0.0);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = CuckooFilter::with_capacity(256);
        let mut b = CuckooFilter::with_capacity(256);
        for k in 0..200u64 {
            a.insert(k * 3);
            b.insert(k * 3);
        }
        for k in 0..1000u64 {
            assert_eq!(a.contains(k), b.contains(k));
        }
    }
}
