//! Set-associative translation lookaside buffers.

use wsg_sim::Cycle;

use crate::addr::{Pfn, Vpn};

/// Geometry and timing of a TLB (Table I rows "L1 … TLB", "L2 TLB",
/// "GMMU Cache").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Lookup latency in cycles.
    pub latency: Cycle,
    /// MSHR entries limiting outstanding misses (0 = unlimited, used for
    /// structures without MSHRs such as HDPAT's peer caches).
    pub mshrs: usize,
}

impl TlbConfig {
    /// Table I L1 TLB: 1 set, 32 ways, 4-cycle latency, 4 MSHRs.
    pub fn paper_l1() -> Self {
        Self {
            sets: 1,
            ways: 32,
            latency: 4,
            mshrs: 4,
        }
    }

    /// Table I L2 TLB: 64 sets, 32 ways, 32-cycle latency, 32 MSHRs.
    pub fn paper_l2() -> Self {
        Self {
            sets: 64,
            ways: 32,
            latency: 32,
            mshrs: 32,
        }
    }

    /// Table I GMMU cache (the last-level TLB): 64 sets, 16 ways.
    pub fn paper_gmmu_cache() -> Self {
        Self {
            sets: 64,
            ways: 16,
            latency: 8,
            mshrs: 0,
        }
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }
}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    vpn: Vpn,
    pfn: Pfn,
    valid: bool,
    last_used: u64,
    /// Marks entries installed by HDPAT's proactive delivery; lets the
    /// simulator attribute hits to prefetching (Fig 16's "proactive"
    /// category and the prefetch-accuracy statistic).
    prefetched: bool,
}

/// A set-associative VPN→PFN cache with true-LRU replacement.
///
/// # Example
///
/// ```
/// use wsg_xlat::{Tlb, TlbConfig, Vpn, Pfn};
///
/// let mut tlb = Tlb::new(TlbConfig { sets: 2, ways: 2, latency: 4, mshrs: 4 });
/// assert!(tlb.lookup(Vpn(5)).is_none());
/// tlb.fill(Vpn(5), Pfn(99), false);
/// assert_eq!(tlb.lookup(Vpn(5)), Some(Pfn(99)));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    entries: Vec<TlbEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
    prefetched_hits: u64,
    #[cfg(feature = "audit")]
    auditor: Option<wsg_sim::audit::AuditHandle>,
    #[cfg(feature = "audit")]
    audit_site: u64,
    #[cfg(feature = "trace")]
    tracer: Option<wsg_sim::trace::TraceHandle>,
    #[cfg(feature = "trace")]
    trace_site: u64,
    #[cfg(feature = "telemetry")]
    telemetry: Option<wsg_sim::telemetry::TelemetryHandle>,
    #[cfg(feature = "telemetry")]
    telemetry_base: usize,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.ways > 0, "associativity must be positive");
        Self {
            cfg,
            entries: vec![
                TlbEntry {
                    vpn: Vpn(0),
                    pfn: Pfn(0),
                    valid: false,
                    last_used: 0,
                    prefetched: false,
                };
                cfg.entries()
            ],
            tick: 0,
            hits: 0,
            misses: 0,
            prefetched_hits: 0,
            #[cfg(feature = "audit")]
            auditor: None,
            #[cfg(feature = "audit")]
            audit_site: 0,
            #[cfg(feature = "trace")]
            tracer: None,
            #[cfg(feature = "trace")]
            trace_site: 0,
            #[cfg(feature = "telemetry")]
            telemetry: None,
            #[cfg(feature = "telemetry")]
            telemetry_base: 0,
        }
    }

    /// Attaches an auditor observing fills and evictions under instance id
    /// `site`.
    #[cfg(feature = "audit")]
    pub fn set_auditor(&mut self, auditor: wsg_sim::audit::AuditHandle, site: u64) {
        self.auditor = Some(auditor);
        self.audit_site = site;
    }

    /// Attaches a tracer recording lookup outcomes under instance id `site`.
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: wsg_sim::trace::TraceHandle, site: u64) {
        self.tracer = Some(tracer);
        self.trace_site = site;
    }

    /// Attaches the telemetry flight recorder, registering this TLB's
    /// counters under instance id `site` (optionally tagged with a wafer
    /// tile for heatmap exports).
    #[cfg(feature = "telemetry")]
    pub fn set_telemetry(
        &mut self,
        telemetry: &wsg_sim::telemetry::TelemetryHandle,
        site: u64,
        tile: Option<(u16, u16)>,
    ) {
        use wsg_sim::telemetry::CounterKind::{Counter, Gauge};
        self.telemetry_base = telemetry.with(|t| {
            let base = t.register("tlb.hits", site, tile, Counter);
            t.register("tlb.misses", site, tile, Counter);
            t.register("tlb.occupancy", site, tile, Gauge);
            base
        });
        self.telemetry = Some(telemetry.clone());
    }

    /// Publishes current cumulative counters into the attached recorder (a
    /// no-op without one). The engine calls this at each epoch boundary.
    #[cfg(feature = "telemetry")]
    pub fn publish_telemetry(&self) {
        if let Some(tel) = &self.telemetry {
            let base = self.telemetry_base;
            tel.with(|t| {
                t.set(base, self.hits);
                t.set(base + 1, self.misses);
                t.set(base + 2, self.occupancy() as u64);
            });
        }
    }

    #[cfg(feature = "trace")]
    fn trace_lookup(&self, stage: &'static str, vpn: Vpn) {
        if let Some(tr) = &self.tracer {
            tr.with(|s| s.instant(stage, self.trace_site, vpn.0));
        }
    }

    #[cfg(feature = "audit")]
    fn audit_fill(&self) {
        if let Some(a) = &self.auditor {
            let site = wsg_sim::audit::Site::new(wsg_sim::audit::SiteKind::Tlb, self.audit_site);
            a.with(|au| au.on_fill(site, self.occupancy(), self.cfg.entries()));
        }
    }

    #[cfg(feature = "audit")]
    fn audit_evict(&self, occupancy: usize) {
        if let Some(a) = &self.auditor {
            let site = wsg_sim::audit::Site::new(wsg_sim::audit::SiteKind::Tlb, self.audit_site);
            a.with(|au| au.on_evict(site, occupancy));
        }
    }

    /// The configuration.
    pub fn config(&self) -> TlbConfig {
        self.cfg
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        (vpn.0 as usize) & (self.cfg.sets - 1)
    }

    fn set_slice(&mut self, set: usize) -> &mut [TlbEntry] {
        let start = set * self.cfg.ways;
        &mut self.entries[start..start + self.cfg.ways]
    }

    /// Looks up `vpn`, updating LRU and statistics. Returns the PFN on hit.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<Pfn> {
        self.lookup_meta(vpn).map(|(pfn, _)| pfn)
    }

    /// Like [`Tlb::lookup`] but also reports whether the hit entry was
    /// installed by proactive delivery — the attribution needed for Fig 16's
    /// "proactive" category and the prefetch-accuracy statistic. The first
    /// hit consumes the speculative tag: the entry is demoted to a demand
    /// entry so a prefetch is counted as *used* at most once.
    pub fn lookup_meta(&mut self, vpn: Vpn) -> Option<(Pfn, bool)> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(vpn);
        let mut hit: Option<(Pfn, bool)> = None;
        for e in self.set_slice(set) {
            if e.valid && e.vpn == vpn {
                e.last_used = tick;
                hit = Some((e.pfn, e.prefetched));
                e.prefetched = false;
                break;
            }
        }
        match hit {
            Some((pfn, was_prefetched)) => {
                self.hits += 1;
                if was_prefetched {
                    self.prefetched_hits += 1;
                }
                #[cfg(feature = "trace")]
                self.trace_lookup("tlb.hit", vpn);
                Some((pfn, was_prefetched))
            }
            None => {
                self.misses += 1;
                #[cfg(feature = "trace")]
                self.trace_lookup("tlb.miss", vpn);
                None
            }
        }
    }

    /// Checks presence without perturbing LRU or statistics.
    pub fn probe(&self, vpn: Vpn) -> Option<Pfn> {
        let set = self.set_of(vpn);
        let start = set * self.cfg.ways;
        self.entries[start..start + self.cfg.ways]
            .iter()
            .find(|e| e.valid && e.vpn == vpn)
            .map(|e| e.pfn)
    }

    /// Inserts a translation at the MRU position, evicting the set's LRU
    /// entry if needed. Returns the evicted mapping, if any. `prefetched`
    /// tags entries installed by proactive delivery (attribution only).
    pub fn fill(&mut self, vpn: Vpn, pfn: Pfn, prefetched: bool) -> Option<(Vpn, Pfn)> {
        self.fill_at(vpn, pfn, prefetched, false)
    }

    /// Inserts a speculative (prefetched) translation at the *LRU* position
    /// — prefetch-aware insertion, so speculative entries are evicted before
    /// demand entries. Used by HDPAT's peer caches; the conventional IOMMU
    /// TLB of Fig 19 lacks this and thrashes under proactive delivery.
    pub fn fill_speculative(&mut self, vpn: Vpn, pfn: Pfn) -> Option<(Vpn, Pfn)> {
        self.fill_at(vpn, pfn, true, true)
    }

    fn fill_at(
        &mut self,
        vpn: Vpn,
        pfn: Pfn,
        prefetched: bool,
        lru_insert: bool,
    ) -> Option<(Vpn, Pfn)> {
        self.tick += 1;
        // LRU-position insertion uses a stamp below every live entry
        // (demand stamps start at 1).
        let tick = if lru_insert { 0 } else { self.tick };
        let set = self.set_of(vpn);
        // Update in place if present. A speculative refresh re-arms the
        // prefetched tag (a new delivery instance) but must not demote a
        // demand-hot entry to the LRU position; a demand refresh clears it.
        for e in self.set_slice(set) {
            if e.valid && e.vpn == vpn {
                e.pfn = pfn;
                if !lru_insert {
                    e.last_used = tick;
                }
                e.prefetched = prefetched;
                return None;
            }
        }
        if let Some(e) = self.set_slice(set).iter_mut().find(|e| !e.valid) {
            *e = TlbEntry {
                vpn,
                pfn,
                valid: true,
                last_used: tick,
                prefetched,
            };
            #[cfg(feature = "audit")]
            self.audit_fill();
            return None;
        }
        // Every way is valid: replace the set's LRU entry. `ways > 0` is a
        // constructor invariant, so the set slice is non-empty.
        let victim = match self.set_slice(set).iter_mut().min_by_key(|e| e.last_used) {
            Some(v) => v,
            None => unreachable!("ways > 0"),
        };
        let evicted = (victim.vpn, victim.pfn);
        *victim = TlbEntry {
            vpn,
            pfn,
            valid: true,
            last_used: tick,
            prefetched,
        };
        #[cfg(feature = "audit")]
        {
            self.audit_evict(self.occupancy() - 1);
            self.audit_fill();
        }
        Some(evicted)
    }

    /// Invalidates `vpn`; returns whether it was present.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        let set = self.set_of(vpn);
        let mut hit = false;
        for e in self.set_slice(set) {
            if e.valid && e.vpn == vpn {
                e.valid = false;
                hit = true;
                break;
            }
        }
        #[cfg(feature = "audit")]
        if hit {
            self.audit_evict(self.occupancy());
        }
        hit
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Lifetime hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hits on entries installed by proactive delivery.
    pub fn prefetched_hits(&self) -> u64 {
        self.prefetched_hits
    }

    /// Hit rate in `[0, 1]`; 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            sets: 2,
            ways: 2,
            latency: 1,
            mshrs: 4,
        })
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_sets_rejected() {
        Tlb::new(TlbConfig {
            sets: 3,
            ways: 1,
            latency: 1,
            mshrs: 0,
        });
    }

    #[test]
    fn paper_configs_have_expected_entries() {
        assert_eq!(TlbConfig::paper_l1().entries(), 32);
        assert_eq!(TlbConfig::paper_l2().entries(), 2048);
        assert_eq!(TlbConfig::paper_gmmu_cache().entries(), 1024);
    }

    #[test]
    fn fill_then_hit() {
        let mut t = tiny();
        assert!(t.lookup(Vpn(8)).is_none());
        t.fill(Vpn(8), Pfn(3), false);
        assert_eq!(t.lookup(Vpn(8)), Some(Pfn(3)));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut t = tiny();
        // Set 0 holds even VPNs.
        t.fill(Vpn(0), Pfn(0), false);
        t.fill(Vpn(2), Pfn(2), false);
        t.lookup(Vpn(0)); // 0 becomes MRU
        let evicted = t.fill(Vpn(4), Pfn(4), false).unwrap();
        assert_eq!(evicted, (Vpn(2), Pfn(2)));
        assert!(t.probe(Vpn(0)).is_some());
        assert!(t.probe(Vpn(2)).is_none());
    }

    #[test]
    fn prefetched_hits_are_attributed() {
        let mut t = tiny();
        t.fill(Vpn(1), Pfn(1), true);
        t.fill(Vpn(3), Pfn(3), false);
        t.lookup(Vpn(1));
        t.lookup(Vpn(3));
        assert_eq!(t.prefetched_hits(), 1);
        assert_eq!(t.hits(), 2);
    }

    #[test]
    fn refill_updates_pfn_in_place() {
        let mut t = tiny();
        t.fill(Vpn(6), Pfn(1), false);
        assert!(t.fill(Vpn(6), Pfn(9), false).is_none());
        assert_eq!(t.probe(Vpn(6)), Some(Pfn(9)));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn invalidate_and_occupancy() {
        let mut t = tiny();
        t.fill(Vpn(0), Pfn(0), false);
        t.fill(Vpn(1), Pfn(1), false);
        assert_eq!(t.occupancy(), 2);
        assert!(t.invalidate(Vpn(0)));
        assert!(!t.invalidate(Vpn(0)));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn probe_does_not_count() {
        let mut t = tiny();
        t.fill(Vpn(0), Pfn(0), false);
        t.probe(Vpn(0));
        t.probe(Vpn(7));
        assert_eq!(t.hits() + t.misses(), 0);
        assert_eq!(t.hit_rate(), 0.0);
    }

    #[test]
    fn fully_associative_single_set() {
        let mut t = Tlb::new(TlbConfig {
            sets: 1,
            ways: 32,
            latency: 4,
            mshrs: 4,
        });
        for i in 0..32 {
            t.fill(Vpn(i), Pfn(i), false);
        }
        assert_eq!(t.occupancy(), 32);
        // 33rd fill evicts the LRU (VPN 0).
        let evicted = t.fill(Vpn(100), Pfn(100), false).unwrap();
        assert_eq!(evicted.0, Vpn(0));
    }
}
