//! Set-associative translation lookaside buffers.

use wsg_sim::Cycle;

use crate::addr::{Pfn, Vpn};

/// Geometry and timing of a TLB (Table I rows "L1 … TLB", "L2 TLB",
/// "GMMU Cache").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Lookup latency in cycles.
    pub latency: Cycle,
    /// MSHR entries limiting outstanding misses (0 = unlimited, used for
    /// structures without MSHRs such as HDPAT's peer caches).
    pub mshrs: usize,
}

impl TlbConfig {
    /// Table I L1 TLB: 1 set, 32 ways, 4-cycle latency, 4 MSHRs.
    pub fn paper_l1() -> Self {
        Self {
            sets: 1,
            ways: 32,
            latency: 4,
            mshrs: 4,
        }
    }

    /// Table I L2 TLB: 64 sets, 32 ways, 32-cycle latency, 32 MSHRs.
    pub fn paper_l2() -> Self {
        Self {
            sets: 64,
            ways: 32,
            latency: 32,
            mshrs: 32,
        }
    }

    /// Table I GMMU cache (the last-level TLB): 64 sets, 16 ways.
    pub fn paper_gmmu_cache() -> Self {
        Self {
            sets: 64,
            ways: 16,
            latency: 8,
            mshrs: 0,
        }
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }
}

/// A set-associative VPN→PFN cache with true-LRU replacement.
///
/// The entry store is struct-of-arrays (DESIGN.md §16): the VPN tags,
/// PFNs and LRU stamps live in separate planes sized from the config at
/// construction, and validity / prefetched-ness are one bitmask word per
/// set. The hot set-probe loop therefore walks a handful of contiguous
/// tag words (eight ways per cache line) guided by the set's valid mask,
/// instead of striding over five-field entry structs.
///
/// # Example
///
/// ```
/// use wsg_xlat::{Tlb, TlbConfig, Vpn, Pfn};
///
/// let mut tlb = Tlb::new(TlbConfig { sets: 2, ways: 2, latency: 4, mshrs: 4 });
/// assert!(tlb.lookup(Vpn(5)).is_none());
/// tlb.fill(Vpn(5), Pfn(99), false);
/// assert_eq!(tlb.lookup(Vpn(5)), Some(Pfn(99)));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    /// VPN tag plane, indexed `set * ways + way`.
    vpns: Vec<Vpn>,
    /// PFN plane, same indexing as `vpns`.
    pfns: Vec<Pfn>,
    /// LRU stamp plane, same indexing (higher = more recently used;
    /// speculative LRU-position fills use stamp 0, below every live demand
    /// stamp).
    stamps: Vec<u64>,
    /// One validity bitmask per set, bit `way`.
    valid: Vec<u64>,
    /// One prefetched-tag bitmask per set, bit `way` (HDPAT proactive
    /// delivery attribution — Fig 16's "proactive" category and the
    /// prefetch-accuracy statistic).
    prefetched: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
    prefetched_hits: u64,
    #[cfg(feature = "audit")]
    auditor: Option<wsg_sim::audit::AuditHandle>,
    #[cfg(feature = "audit")]
    audit_site: u64,
    #[cfg(feature = "trace")]
    tracer: Option<wsg_sim::trace::TraceHandle>,
    #[cfg(feature = "trace")]
    trace_site: u64,
    #[cfg(feature = "telemetry")]
    telemetry: Option<wsg_sim::telemetry::TelemetryHandle>,
    #[cfg(feature = "telemetry")]
    telemetry_base: usize,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two, `ways` is zero, or `ways`
    /// exceeds 64 (the per-set valid/prefetched planes are one `u64` mask
    /// each; Table I tops out at 32 ways).
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.ways > 0, "associativity must be positive");
        assert!(cfg.ways <= 64, "at most 64 ways (one mask word per set)");
        Self {
            cfg,
            vpns: vec![Vpn(0); cfg.entries()],
            pfns: vec![Pfn(0); cfg.entries()],
            stamps: vec![0; cfg.entries()],
            valid: vec![0; cfg.sets],
            prefetched: vec![0; cfg.sets],
            tick: 0,
            hits: 0,
            misses: 0,
            prefetched_hits: 0,
            #[cfg(feature = "audit")]
            auditor: None,
            #[cfg(feature = "audit")]
            audit_site: 0,
            #[cfg(feature = "trace")]
            tracer: None,
            #[cfg(feature = "trace")]
            trace_site: 0,
            #[cfg(feature = "telemetry")]
            telemetry: None,
            #[cfg(feature = "telemetry")]
            telemetry_base: 0,
        }
    }

    /// Attaches an auditor observing fills and evictions under instance id
    /// `site`.
    #[cfg(feature = "audit")]
    pub fn set_auditor(&mut self, auditor: wsg_sim::audit::AuditHandle, site: u64) {
        self.auditor = Some(auditor);
        self.audit_site = site;
    }

    /// Attaches a tracer recording lookup outcomes under instance id `site`.
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: wsg_sim::trace::TraceHandle, site: u64) {
        self.tracer = Some(tracer);
        self.trace_site = site;
    }

    /// Attaches the telemetry flight recorder, registering this TLB's
    /// counters under instance id `site` (optionally tagged with a wafer
    /// tile for heatmap exports).
    #[cfg(feature = "telemetry")]
    pub fn set_telemetry(
        &mut self,
        telemetry: &wsg_sim::telemetry::TelemetryHandle,
        site: u64,
        tile: Option<(u16, u16)>,
    ) {
        use wsg_sim::telemetry::CounterKind::{Counter, Gauge};
        self.telemetry_base = telemetry.with(|t| {
            let base = t.register("tlb.hits", site, tile, Counter);
            t.register("tlb.misses", site, tile, Counter);
            t.register("tlb.occupancy", site, tile, Gauge);
            base
        });
        self.telemetry = Some(telemetry.clone());
    }

    /// Publishes current cumulative counters into the attached recorder (a
    /// no-op without one). The engine calls this at each epoch boundary.
    #[cfg(feature = "telemetry")]
    pub fn publish_telemetry(&self) {
        if let Some(tel) = &self.telemetry {
            let base = self.telemetry_base;
            tel.with(|t| {
                t.set(base, self.hits);
                t.set(base + 1, self.misses);
                t.set(base + 2, self.occupancy() as u64);
            });
        }
    }

    #[cfg(feature = "trace")]
    fn trace_lookup(&self, stage: &'static str, vpn: Vpn) {
        if let Some(tr) = &self.tracer {
            tr.with(|s| s.instant(stage, self.trace_site, vpn.0));
        }
    }

    #[cfg(feature = "audit")]
    fn audit_fill(&self) {
        if let Some(a) = &self.auditor {
            let site = wsg_sim::audit::Site::new(wsg_sim::audit::SiteKind::Tlb, self.audit_site);
            a.with(|au| au.on_fill(site, self.occupancy(), self.cfg.entries()));
        }
    }

    #[cfg(feature = "audit")]
    fn audit_evict(&self, occupancy: usize) {
        if let Some(a) = &self.auditor {
            let site = wsg_sim::audit::Site::new(wsg_sim::audit::SiteKind::Tlb, self.audit_site);
            a.with(|au| au.on_evict(site, occupancy));
        }
    }

    /// The configuration.
    pub fn config(&self) -> TlbConfig {
        self.cfg
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        (vpn.0 as usize) & (self.cfg.sets - 1)
    }

    /// Index of the first (lowest-numbered) valid way in `set` whose tag
    /// matches `vpn` — the way-order scan over the contiguous tag plane,
    /// visiting only valid ways via the set's mask word.
    #[inline]
    fn find_way(&self, set: usize, vpn: Vpn) -> Option<usize> {
        let start = set * self.cfg.ways;
        let mut mask = self.valid[set];
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            if self.vpns[start + way] == vpn {
                return Some(way);
            }
            mask &= mask - 1;
        }
        None
    }

    /// Looks up `vpn`, updating LRU and statistics. Returns the PFN on hit.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<Pfn> {
        self.lookup_meta(vpn).map(|(pfn, _)| pfn)
    }

    /// Like [`Tlb::lookup`] but also reports whether the hit entry was
    /// installed by proactive delivery — the attribution needed for Fig 16's
    /// "proactive" category and the prefetch-accuracy statistic. The first
    /// hit consumes the speculative tag: the entry is demoted to a demand
    /// entry so a prefetch is counted as *used* at most once.
    pub fn lookup_meta(&mut self, vpn: Vpn) -> Option<(Pfn, bool)> {
        self.tick += 1;
        let set = self.set_of(vpn);
        match self.find_way(set, vpn) {
            Some(way) => {
                let idx = set * self.cfg.ways + way;
                self.stamps[idx] = self.tick;
                let was_prefetched = self.prefetched[set] & (1 << way) != 0;
                self.prefetched[set] &= !(1 << way);
                self.hits += 1;
                if was_prefetched {
                    self.prefetched_hits += 1;
                }
                #[cfg(feature = "trace")]
                self.trace_lookup("tlb.hit", vpn);
                Some((self.pfns[idx], was_prefetched))
            }
            None => {
                self.misses += 1;
                #[cfg(feature = "trace")]
                self.trace_lookup("tlb.miss", vpn);
                None
            }
        }
    }

    /// Checks presence without perturbing LRU or statistics.
    pub fn probe(&self, vpn: Vpn) -> Option<Pfn> {
        let set = self.set_of(vpn);
        self.find_way(set, vpn)
            .map(|way| self.pfns[set * self.cfg.ways + way])
    }

    /// Inserts a translation at the MRU position, evicting the set's LRU
    /// entry if needed. Returns the evicted mapping, if any. `prefetched`
    /// tags entries installed by proactive delivery (attribution only).
    pub fn fill(&mut self, vpn: Vpn, pfn: Pfn, prefetched: bool) -> Option<(Vpn, Pfn)> {
        self.fill_at(vpn, pfn, prefetched, false)
    }

    /// Inserts a speculative (prefetched) translation at the *LRU* position
    /// — prefetch-aware insertion, so speculative entries are evicted before
    /// demand entries. Used by HDPAT's peer caches; the conventional IOMMU
    /// TLB of Fig 19 lacks this and thrashes under proactive delivery.
    pub fn fill_speculative(&mut self, vpn: Vpn, pfn: Pfn) -> Option<(Vpn, Pfn)> {
        self.fill_at(vpn, pfn, true, true)
    }

    /// Writes the planes of `(set, way)` for a (re)installed mapping.
    #[inline]
    fn write_entry(&mut self, set: usize, way: usize, vpn: Vpn, pfn: Pfn, stamp: u64, pf: bool) {
        let idx = set * self.cfg.ways + way;
        self.vpns[idx] = vpn;
        self.pfns[idx] = pfn;
        self.stamps[idx] = stamp;
        self.valid[set] |= 1 << way;
        if pf {
            self.prefetched[set] |= 1 << way;
        } else {
            self.prefetched[set] &= !(1 << way);
        }
    }

    fn fill_at(
        &mut self,
        vpn: Vpn,
        pfn: Pfn,
        prefetched: bool,
        lru_insert: bool,
    ) -> Option<(Vpn, Pfn)> {
        self.tick += 1;
        // LRU-position insertion uses a stamp below every live entry
        // (demand stamps start at 1).
        let tick = if lru_insert { 0 } else { self.tick };
        let set = self.set_of(vpn);
        // Update in place if present. A speculative refresh re-arms the
        // prefetched tag (a new delivery instance) but must not demote a
        // demand-hot entry to the LRU position; a demand refresh clears it.
        if let Some(way) = self.find_way(set, vpn) {
            let idx = set * self.cfg.ways + way;
            self.pfns[idx] = pfn;
            if !lru_insert {
                self.stamps[idx] = tick;
            }
            if prefetched {
                self.prefetched[set] |= 1 << way;
            } else {
                self.prefetched[set] &= !(1 << way);
            }
            return None;
        }
        // First invalid way, in way order.
        let ways_mask = if self.cfg.ways == 64 {
            !0u64
        } else {
            (1u64 << self.cfg.ways) - 1
        };
        let free = !self.valid[set] & ways_mask;
        if free != 0 {
            let way = free.trailing_zeros() as usize;
            self.write_entry(set, way, vpn, pfn, tick, prefetched);
            #[cfg(feature = "audit")]
            self.audit_fill();
            return None;
        }
        // Every way is valid: replace the set's LRU entry — the first way
        // (in way order) carrying the minimal stamp, scanned over the
        // contiguous stamp plane. `ways > 0` is a constructor invariant.
        let start = set * self.cfg.ways;
        let mut victim = 0;
        for way in 1..self.cfg.ways {
            if self.stamps[start + way] < self.stamps[start + victim] {
                victim = way;
            }
        }
        let evicted = (self.vpns[start + victim], self.pfns[start + victim]);
        self.write_entry(set, victim, vpn, pfn, tick, prefetched);
        #[cfg(feature = "audit")]
        {
            self.audit_evict(self.occupancy() - 1);
            self.audit_fill();
        }
        Some(evicted)
    }

    /// Invalidates `vpn`; returns whether it was present.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        let set = self.set_of(vpn);
        let hit = match self.find_way(set, vpn) {
            Some(way) => {
                self.valid[set] &= !(1 << way);
                true
            }
            None => false,
        };
        #[cfg(feature = "audit")]
        if hit {
            self.audit_evict(self.occupancy());
        }
        hit
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.valid.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Lifetime hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hits on entries installed by proactive delivery.
    pub fn prefetched_hits(&self) -> u64 {
        self.prefetched_hits
    }

    /// Hit rate in `[0, 1]`; 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            sets: 2,
            ways: 2,
            latency: 1,
            mshrs: 4,
        })
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_sets_rejected() {
        Tlb::new(TlbConfig {
            sets: 3,
            ways: 1,
            latency: 1,
            mshrs: 0,
        });
    }

    #[test]
    fn paper_configs_have_expected_entries() {
        assert_eq!(TlbConfig::paper_l1().entries(), 32);
        assert_eq!(TlbConfig::paper_l2().entries(), 2048);
        assert_eq!(TlbConfig::paper_gmmu_cache().entries(), 1024);
    }

    #[test]
    fn fill_then_hit() {
        let mut t = tiny();
        assert!(t.lookup(Vpn(8)).is_none());
        t.fill(Vpn(8), Pfn(3), false);
        assert_eq!(t.lookup(Vpn(8)), Some(Pfn(3)));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut t = tiny();
        // Set 0 holds even VPNs.
        t.fill(Vpn(0), Pfn(0), false);
        t.fill(Vpn(2), Pfn(2), false);
        t.lookup(Vpn(0)); // 0 becomes MRU
        let evicted = t.fill(Vpn(4), Pfn(4), false).unwrap();
        assert_eq!(evicted, (Vpn(2), Pfn(2)));
        assert!(t.probe(Vpn(0)).is_some());
        assert!(t.probe(Vpn(2)).is_none());
    }

    #[test]
    fn prefetched_hits_are_attributed() {
        let mut t = tiny();
        t.fill(Vpn(1), Pfn(1), true);
        t.fill(Vpn(3), Pfn(3), false);
        t.lookup(Vpn(1));
        t.lookup(Vpn(3));
        assert_eq!(t.prefetched_hits(), 1);
        assert_eq!(t.hits(), 2);
    }

    #[test]
    fn refill_updates_pfn_in_place() {
        let mut t = tiny();
        t.fill(Vpn(6), Pfn(1), false);
        assert!(t.fill(Vpn(6), Pfn(9), false).is_none());
        assert_eq!(t.probe(Vpn(6)), Some(Pfn(9)));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn invalidate_and_occupancy() {
        let mut t = tiny();
        t.fill(Vpn(0), Pfn(0), false);
        t.fill(Vpn(1), Pfn(1), false);
        assert_eq!(t.occupancy(), 2);
        assert!(t.invalidate(Vpn(0)));
        assert!(!t.invalidate(Vpn(0)));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn probe_does_not_count() {
        let mut t = tiny();
        t.fill(Vpn(0), Pfn(0), false);
        t.probe(Vpn(0));
        t.probe(Vpn(7));
        assert_eq!(t.hits() + t.misses(), 0);
        assert_eq!(t.hit_rate(), 0.0);
    }

    #[test]
    fn fully_associative_single_set() {
        let mut t = Tlb::new(TlbConfig {
            sets: 1,
            ways: 32,
            latency: 4,
            mshrs: 4,
        });
        for i in 0..32 {
            t.fill(Vpn(i), Pfn(i), false);
        }
        assert_eq!(t.occupancy(), 32);
        // 33rd fill evicts the LRU (VPN 0).
        let evicted = t.fill(Vpn(100), Pfn(100), false).unwrap();
        assert_eq!(evicted.0, Vpn(0));
    }
}
