//! Page tables with access-count tracking.

use wsg_sim::HashIndex;

use crate::addr::{Pfn, Vpn};

/// A page-table entry.
///
/// Besides the frame number, HDPAT repurposes unused PTE bits as an access
/// counter that drives *selective push*: only PTEs whose IOMMU walk count
/// exceeds a threshold are replicated to auxiliary GPMs (§IV-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// The physical frame backing this page.
    pub pfn: Pfn,
    /// The GPM whose HBM holds the frame (derived from data placement).
    pub home_gpm: u32,
    /// Walk count tracked in spare PTE bits (saturating at the bit width).
    pub access_count: u32,
}

/// The number of spare PTE bits assumed for the access counter; counts
/// saturate at `2^PTE_COUNTER_BITS - 1`.
pub const PTE_COUNTER_BITS: u32 = 6;

const COUNTER_MAX: u32 = (1 << PTE_COUNTER_BITS) - 1;

/// A page table mapping VPNs to PTEs.
///
/// Used both per-GPM (covering only that GPM's local pages, §II-B) and
/// globally at the IOMMU (covering all pages).
///
/// # Example
///
/// ```
/// use wsg_xlat::{PageTable, Vpn, Pfn};
///
/// let mut pt = PageTable::new();
/// pt.map(Vpn(1), Pfn(100), 0);
/// assert_eq!(pt.translate(Vpn(1)).map(|p| p.pfn), Some(Pfn(100)));
/// assert!(pt.translate(Vpn(2)).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    // A seeded HashIndex (DESIGN.md §11), not a std HashMap: layout is a
    // pure function of the operation history, and `iter()` sorts on demand
    // so the public traversal order stays ascending-VPN (lint rules d1/d6).
    entries: HashIndex<Pte>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty page table pre-sized for `pages` mappings, so the
    /// bulk load at simulation construction does not rehash.
    pub fn with_capacity(pages: usize) -> Self {
        Self {
            entries: HashIndex::with_capacity(pages),
        }
    }

    /// Installs (or replaces) a mapping. Returns the previous PTE, if any.
    pub fn map(&mut self, vpn: Vpn, pfn: Pfn, home_gpm: u32) -> Option<Pte> {
        self.entries.insert(
            vpn.0,
            Pte {
                pfn,
                home_gpm,
                access_count: 0,
            },
        )
    }

    /// Removes a mapping (memory free — the only TLB-shootdown trigger the
    /// paper considers, and one it deems negligible).
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        self.entries.remove(vpn.0)
    }

    /// Looks up a mapping without touching the access counter.
    pub fn translate(&self, vpn: Vpn) -> Option<Pte> {
        self.entries.get(vpn.0).copied()
    }

    /// Whether `vpn` is mapped.
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.entries.contains_key(vpn.0)
    }

    /// Looks up a mapping and increments its spare-bit access counter
    /// (saturating). Returns the PTE state *after* the increment.
    pub fn translate_counted(&mut self, vpn: Vpn) -> Option<Pte> {
        let e = self.entries.get_mut(vpn.0)?;
        e.access_count = (e.access_count + 1).min(COUNTER_MAX);
        Some(*e)
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all mappings in ascending VPN order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, &Pte)> {
        self.entries.iter_sorted().map(|(k, v)| (Vpn(k), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_unmap() {
        let mut pt = PageTable::new();
        assert!(pt.is_empty());
        pt.map(Vpn(3), Pfn(30), 2);
        let pte = pt.translate(Vpn(3)).unwrap();
        assert_eq!(pte.pfn, Pfn(30));
        assert_eq!(pte.home_gpm, 2);
        assert_eq!(pte.access_count, 0);
        assert_eq!(pt.unmap(Vpn(3)).unwrap().pfn, Pfn(30));
        assert!(pt.translate(Vpn(3)).is_none());
    }

    #[test]
    fn remap_returns_previous() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pfn(10), 0);
        let prev = pt.map(Vpn(1), Pfn(20), 1).unwrap();
        assert_eq!(prev.pfn, Pfn(10));
        assert_eq!(pt.translate(Vpn(1)).unwrap().pfn, Pfn(20));
        assert_eq!(pt.len(), 1);
    }

    #[test]
    fn counted_translation_increments() {
        let mut pt = PageTable::new();
        pt.map(Vpn(5), Pfn(50), 0);
        assert_eq!(pt.translate_counted(Vpn(5)).unwrap().access_count, 1);
        assert_eq!(pt.translate_counted(Vpn(5)).unwrap().access_count, 2);
        // Plain translate does not bump the counter.
        assert_eq!(pt.translate(Vpn(5)).unwrap().access_count, 2);
    }

    #[test]
    fn counter_saturates() {
        let mut pt = PageTable::new();
        pt.map(Vpn(7), Pfn(70), 0);
        for _ in 0..2 * COUNTER_MAX {
            pt.translate_counted(Vpn(7));
        }
        assert_eq!(pt.translate(Vpn(7)).unwrap().access_count, COUNTER_MAX);
    }

    #[test]
    fn counted_translation_of_missing_page_is_none() {
        let mut pt = PageTable::new();
        assert!(pt.translate_counted(Vpn(9)).is_none());
    }

    #[test]
    fn contains_and_iter() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pfn(1), 0);
        pt.map(Vpn(2), Pfn(2), 1);
        assert!(pt.contains(Vpn(1)));
        assert!(!pt.contains(Vpn(3)));
        assert_eq!(pt.iter().count(), 2);
    }
}
