#![warn(missing_docs)]

//! Address-translation structures for the wafer-scale GPU.
//!
//! Reproduces the translation hierarchy of Fig 1(b) / §II-B of the HDPAT
//! paper. A translation request inside a GPM traverses, in order: L1 TLB →
//! L2 TLB → Cuckoo filter → last-level TLB (GMMU cache) → GMMU page-table
//! walkers. Non-local requests cross the mesh to the central IOMMU.
//!
//! Components:
//!
//! * [`addr`] — virtual/physical page numbers, page sizes, address helpers.
//! * [`Tlb`] — set-associative VPN→PFN caches with LRU and optional MSHRs.
//! * [`CuckooFilter`] — the space-efficient presence filter (Fan et al.)
//!   that lets requests bypass the local walk when a page is definitely not
//!   local; false positives force the doubled-latency path of §II-B.
//! * [`PageTable`] — per-GPM and global page tables with the spare-bit
//!   access counters HDPAT uses for selective push (§IV-F).
//! * [`WalkerPool`] — a bounded pool of page-table walkers with an explicit
//!   PW-queue, supporting the queue-revisit coalescing of §IV-F.
//! * [`RedirectionTable`] — the 1024-entry LRU table at the IOMMU mapping
//!   recently walked/prefetched VPNs to the GPMs now holding them.

pub mod addr;
pub mod cuckoo;
pub mod page_table;
pub mod redirection;
pub mod tlb;
pub mod walker;

pub use addr::{PageSize, Pfn, Vpn};
pub use cuckoo::CuckooFilter;
pub use page_table::{PageTable, Pte};
pub use redirection::RedirectionTable;
pub use tlb::{Tlb, TlbConfig};
pub use walker::{SubmitResult, WalkerPool};
