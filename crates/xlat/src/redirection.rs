//! The IOMMU-side redirection table (§IV-F).

use wsg_sim::HashIndex;

use crate::addr::Vpn;

/// Sentinel arena index for "no neighbour" in the intrusive LRU list.
const NIL: usize = usize::MAX;

/// The lightweight redirection table HDPAT places at the IOMMU.
///
/// Maps recently walked or prefetched VPNs to the auxiliary GPM now holding
/// the PTE, so later requests for the same VPN are redirected instead of
/// re-walked. Compared with a TLB of the same area it is (per the paper):
///
/// * ~2× as dense — it stores only `(process id, VPN) → GPM id`, no physical
///   address or permission metadata, so 1024 entries fit where a TLB holds
///   512 (Fig 19);
/// * free of MSHRs — a missing entry never blocks the request, it simply
///   falls through to the PW-queue, preserving concurrency.
///
/// Eviction is LRU (Table I), tracked by a doubly-linked recency list
/// threaded through a slab arena and indexed by a seeded [`HashIndex`]
/// (DESIGN.md §11): touch, insert and evict are all O(1) with no stale
/// bookkeeping, replacing the stamp-deque compaction scheme this table
/// previously used. Capacity is fixed at construction.
///
/// # Example
///
/// ```
/// use wsg_xlat::{RedirectionTable, Vpn};
///
/// let mut rt = RedirectionTable::new(2);
/// rt.insert(Vpn(1), 7);
/// rt.insert(Vpn(2), 8);
/// assert_eq!(rt.lookup(Vpn(1)), Some(7)); // refreshes VPN 1
/// rt.insert(Vpn(3), 9);                   // evicts VPN 2 (LRU)
/// assert_eq!(rt.lookup(Vpn(2)), None);
/// assert_eq!(rt.lookup(Vpn(1)), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct RedirectionTable {
    capacity: usize,
    /// VPN → arena slot of its live node.
    index: HashIndex<usize>,
    /// Slab of LRU nodes; slots recycle through `free`, so the arena never
    /// outgrows `capacity` live + freed nodes.
    arena: Vec<Node>,
    /// Recycled arena slots.
    free: Vec<usize>,
    /// Most-recently-used node, or `NIL` when empty.
    head: usize,
    /// Least-recently-used node, or `NIL` when empty.
    tail: usize,
    hits: u64,
    misses: u64,
    #[cfg(feature = "audit")]
    auditor: Option<wsg_sim::audit::AuditHandle>,
    #[cfg(feature = "audit")]
    audit_site: u64,
    #[cfg(feature = "trace")]
    tracer: Option<wsg_sim::trace::TraceHandle>,
    #[cfg(feature = "trace")]
    trace_site: u64,
    #[cfg(feature = "telemetry")]
    telemetry: Option<wsg_sim::telemetry::TelemetryHandle>,
    #[cfg(feature = "telemetry")]
    telemetry_base: usize,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    vpn: Vpn,
    gpm: u32,
    prev: usize,
    next: usize,
}

impl RedirectionTable {
    /// Creates a table with the given entry capacity (1024 in Table I).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            index: HashIndex::with_capacity(capacity),
            arena: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            #[cfg(feature = "audit")]
            auditor: None,
            #[cfg(feature = "audit")]
            audit_site: 0,
            #[cfg(feature = "trace")]
            tracer: None,
            #[cfg(feature = "trace")]
            trace_site: 0,
            #[cfg(feature = "telemetry")]
            telemetry: None,
            #[cfg(feature = "telemetry")]
            telemetry_base: 0,
        }
    }

    /// Attaches an auditor observing entry creation and removal under
    /// instance id `site`.
    #[cfg(feature = "audit")]
    pub fn set_auditor(&mut self, auditor: wsg_sim::audit::AuditHandle, site: u64) {
        self.auditor = Some(auditor);
        self.audit_site = site;
    }

    /// Attaches a tracer recording lookup outcomes and insertions under
    /// instance id `site`.
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: wsg_sim::trace::TraceHandle, site: u64) {
        self.tracer = Some(tracer);
        self.trace_site = site;
    }

    /// Attaches the telemetry flight recorder, registering this table's
    /// lookup and occupancy metrics under instance id `site` (optionally
    /// tagged with a wafer tile for heatmap exports).
    #[cfg(feature = "telemetry")]
    pub fn set_telemetry(
        &mut self,
        telemetry: &wsg_sim::telemetry::TelemetryHandle,
        site: u64,
        tile: Option<(u16, u16)>,
    ) {
        use wsg_sim::telemetry::CounterKind::{Counter, Gauge};
        self.telemetry_base = telemetry.with(|t| {
            let base = t.register("redir.hits", site, tile, Counter);
            t.register("redir.misses", site, tile, Counter);
            t.register("redir.occupancy", site, tile, Gauge);
            base
        });
        self.telemetry = Some(telemetry.clone());
    }

    /// Publishes current cumulative counters into the attached recorder (a
    /// no-op without one). The engine calls this at each epoch boundary.
    #[cfg(feature = "telemetry")]
    pub fn publish_telemetry(&self) {
        if let Some(tel) = &self.telemetry {
            let base = self.telemetry_base;
            tel.with(|t| {
                t.set(base, self.hits());
                t.set(base + 1, self.misses());
                t.set(base + 2, self.len() as u64);
            });
        }
    }

    #[cfg(feature = "trace")]
    fn trace_event(&self, stage: &'static str, vpn: Vpn) {
        if let Some(tr) = &self.tracer {
            tr.with(|s| s.instant(stage, self.trace_site, vpn.0));
        }
    }

    #[cfg(feature = "audit")]
    fn audit_fill(&self) {
        if let Some(a) = &self.auditor {
            let site =
                wsg_sim::audit::Site::new(wsg_sim::audit::SiteKind::Redirection, self.audit_site);
            a.with(|au| au.on_fill(site, self.index.len(), self.capacity));
        }
    }

    #[cfg(feature = "audit")]
    fn audit_evict(&self) {
        if let Some(a) = &self.auditor {
            let site =
                wsg_sim::audit::Site::new(wsg_sim::audit::SiteKind::Redirection, self.audit_site);
            a.with(|au| au.on_evict(site, self.index.len()));
        }
    }

    /// Detaches node `i` from the recency list (it keeps its arena slot).
    fn unlink(&mut self, i: usize) {
        let Node { prev, next, .. } = self.arena[i];
        match prev {
            NIL => self.head = next,
            p => self.arena[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.arena[n].prev = prev,
        }
    }

    /// Attaches node `i` at the MRU end of the recency list.
    fn push_front(&mut self, i: usize) {
        self.arena[i].prev = NIL;
        self.arena[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.arena[h].prev = i,
        }
        self.head = i;
    }

    /// Refreshes (or creates) the entry for `vpn` at the MRU position.
    fn touch(&mut self, vpn: Vpn, gpm: u32) {
        if let Some(&i) = self.index.get(vpn.0) {
            self.arena[i].gpm = gpm;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let node = Node {
            vpn,
            gpm,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(slot) => {
                self.arena[slot] = node;
                slot
            }
            None => {
                self.arena.push(node);
                self.arena.len() - 1
            }
        };
        self.index.insert(vpn.0, i);
        self.push_front(i);
        #[cfg(feature = "audit")]
        self.audit_fill();
    }

    /// Removes the least-recently-used entry.
    fn evict_lru(&mut self) {
        let i = self.tail;
        if i == NIL {
            return;
        }
        self.unlink(i);
        self.index.remove(self.arena[i].vpn.0);
        self.free.push(i);
        #[cfg(feature = "audit")]
        self.audit_evict();
    }

    /// Records that `gpm` now holds the translation for `vpn`, evicting the
    /// LRU entry if the table is full.
    pub fn insert(&mut self, vpn: Vpn, gpm: u32) {
        if !self.index.contains_key(vpn.0) && self.index.len() >= self.capacity {
            self.evict_lru();
        }
        self.touch(vpn, gpm);
        #[cfg(feature = "trace")]
        self.trace_event("redir.insert", vpn);
    }

    /// Looks up `vpn`, refreshing its LRU position on hit. Returns the
    /// holder GPM.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<u32> {
        match self.index.get(vpn.0).map(|&i| self.arena[i].gpm) {
            Some(gpm) => {
                self.hits += 1;
                self.touch(vpn, gpm);
                #[cfg(feature = "trace")]
                self.trace_event("redir.hit", vpn);
                Some(gpm)
            }
            None => {
                self.misses += 1;
                #[cfg(feature = "trace")]
                self.trace_event("redir.miss", vpn);
                None
            }
        }
    }

    /// Checks presence without updating LRU or statistics.
    pub fn probe(&self, vpn: Vpn) -> Option<u32> {
        self.index.get(vpn.0).map(|&i| self.arena[i].gpm)
    }

    /// Removes `vpn` (e.g. when the holder evicted the PTE); returns whether
    /// it was present.
    pub fn remove(&mut self, vpn: Vpn) -> bool {
        match self.index.remove(vpn.0) {
            Some(i) => {
                self.unlink(i);
                self.free.push(i);
                #[cfg(feature = "audit")]
                self.audit_evict();
                true
            }
            None => false,
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        RedirectionTable::new(0);
    }

    #[test]
    fn insert_lookup_remove() {
        let mut rt = RedirectionTable::new(4);
        rt.insert(Vpn(1), 5);
        assert_eq!(rt.lookup(Vpn(1)), Some(5));
        assert!(rt.remove(Vpn(1)));
        assert!(!rt.remove(Vpn(1)));
        assert_eq!(rt.lookup(Vpn(1)), None);
        assert_eq!(rt.hits(), 1);
        assert_eq!(rt.misses(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut rt = RedirectionTable::new(3);
        for i in 0..10 {
            rt.insert(Vpn(i), i as u32);
        }
        assert_eq!(rt.len(), 3);
        assert_eq!(rt.probe(Vpn(9)), Some(9));
        assert_eq!(rt.probe(Vpn(0)), None);
    }

    #[test]
    fn lru_order_respects_lookups() {
        let mut rt = RedirectionTable::new(2);
        rt.insert(Vpn(1), 1);
        rt.insert(Vpn(2), 2);
        rt.lookup(Vpn(1)); // 1 most recent
        rt.insert(Vpn(3), 3); // evicts 2
        assert_eq!(rt.probe(Vpn(1)), Some(1));
        assert_eq!(rt.probe(Vpn(2)), None);
        assert_eq!(rt.probe(Vpn(3)), Some(3));
    }

    #[test]
    fn reinsert_updates_holder() {
        let mut rt = RedirectionTable::new(2);
        rt.insert(Vpn(1), 1);
        rt.insert(Vpn(1), 9);
        assert_eq!(rt.len(), 1);
        assert_eq!(rt.probe(Vpn(1)), Some(9));
    }

    #[test]
    fn hot_entry_refreshes_do_not_disturb_eviction() {
        let mut rt = RedirectionTable::new(2);
        rt.insert(Vpn(1), 1);
        // Refresh VPN 1 many times; the recency list must stay consistent.
        for _ in 0..100 {
            rt.lookup(Vpn(1));
        }
        rt.insert(Vpn(2), 2);
        rt.insert(Vpn(3), 3); // must evict the true LRU (VPN 1, then 2 was newer)
        assert_eq!(rt.len(), 2);
        assert_eq!(rt.probe(Vpn(3)), Some(3));
    }

    #[test]
    fn storage_stays_bounded_under_repeated_hits() {
        let mut rt = RedirectionTable::new(4);
        for i in 0..4 {
            rt.insert(Vpn(i), i as u32);
        }
        // A hot VPN: every hit refreshes the LRU position in place; the
        // arena must not grow with hits (the old stamp-deque scheme grew
        // linearly until compaction).
        for _ in 0..10_000 {
            rt.lookup(Vpn(0));
        }
        assert!(
            rt.arena.len() <= rt.capacity(),
            "arena grew to {} nodes for a {}-entry table",
            rt.arena.len(),
            rt.capacity()
        );
        // LRU semantics survive the refreshes: VPN 0 is the most recent.
        rt.insert(Vpn(9), 9);
        assert_eq!(rt.probe(Vpn(0)), Some(0));
        assert_eq!(rt.probe(Vpn(1)), None);
    }

    #[test]
    fn probe_does_not_refresh() {
        let mut rt = RedirectionTable::new(2);
        rt.insert(Vpn(1), 1);
        rt.insert(Vpn(2), 2);
        rt.probe(Vpn(1)); // does NOT refresh
        rt.insert(Vpn(3), 3); // evicts VPN 1
        assert_eq!(rt.probe(Vpn(1)), None);
        assert_eq!(rt.probe(Vpn(2)), Some(2));
    }

    #[test]
    fn remove_then_reinsert_recycles_arena_slots() {
        let mut rt = RedirectionTable::new(3);
        for round in 0..50u64 {
            for i in 0..3 {
                rt.insert(Vpn(round * 3 + i), i as u32);
            }
            for i in 0..3 {
                assert!(rt.remove(Vpn(round * 3 + i)));
            }
        }
        assert!(rt.is_empty());
        assert!(
            rt.arena.len() <= rt.capacity(),
            "freed slots must recycle, arena has {}",
            rt.arena.len()
        );
    }
}
