//! The IOMMU-side redirection table (§IV-F).

use std::collections::{BTreeMap, VecDeque};

use crate::addr::Vpn;

/// The lightweight redirection table HDPAT places at the IOMMU.
///
/// Maps recently walked or prefetched VPNs to the auxiliary GPM now holding
/// the PTE, so later requests for the same VPN are redirected instead of
/// re-walked. Compared with a TLB of the same area it is (per the paper):
///
/// * ~2× as dense — it stores only `(process id, VPN) → GPM id`, no physical
///   address or permission metadata, so 1024 entries fit where a TLB holds
///   512 (Fig 19);
/// * free of MSHRs — a missing entry never blocks the request, it simply
///   falls through to the PW-queue, preserving concurrency.
///
/// Eviction is LRU (Table I). Capacity is fixed at construction.
///
/// # Example
///
/// ```
/// use wsg_xlat::{RedirectionTable, Vpn};
///
/// let mut rt = RedirectionTable::new(2);
/// rt.insert(Vpn(1), 7);
/// rt.insert(Vpn(2), 8);
/// assert_eq!(rt.lookup(Vpn(1)), Some(7)); // refreshes VPN 1
/// rt.insert(Vpn(3), 9);                   // evicts VPN 2 (LRU)
/// assert_eq!(rt.lookup(Vpn(2)), None);
/// assert_eq!(rt.lookup(Vpn(1)), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct RedirectionTable {
    capacity: usize,
    // BTreeMap, not HashMap: keeps any future iteration over live entries
    // deterministically ordered (lint rule D1).
    entries: BTreeMap<Vpn, Slot>,
    order: VecDeque<(Vpn, u64)>,
    stamp: u64,
    hits: u64,
    misses: u64,
    #[cfg(feature = "audit")]
    auditor: Option<wsg_sim::audit::AuditHandle>,
    #[cfg(feature = "audit")]
    audit_site: u64,
    #[cfg(feature = "trace")]
    tracer: Option<wsg_sim::trace::TraceHandle>,
    #[cfg(feature = "trace")]
    trace_site: u64,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    gpm: u32,
    stamp: u64,
}

impl RedirectionTable {
    /// Creates a table with the given entry capacity (1024 in Table I).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            stamp: 0,
            hits: 0,
            misses: 0,
            #[cfg(feature = "audit")]
            auditor: None,
            #[cfg(feature = "audit")]
            audit_site: 0,
            #[cfg(feature = "trace")]
            tracer: None,
            #[cfg(feature = "trace")]
            trace_site: 0,
        }
    }

    /// Attaches an auditor observing entry creation and removal under
    /// instance id `site`.
    #[cfg(feature = "audit")]
    pub fn set_auditor(&mut self, auditor: wsg_sim::audit::AuditHandle, site: u64) {
        self.auditor = Some(auditor);
        self.audit_site = site;
    }

    /// Attaches a tracer recording lookup outcomes and insertions under
    /// instance id `site`.
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: wsg_sim::trace::TraceHandle, site: u64) {
        self.tracer = Some(tracer);
        self.trace_site = site;
    }

    #[cfg(feature = "trace")]
    fn trace_event(&self, stage: &'static str, vpn: Vpn) {
        if let Some(tr) = &self.tracer {
            tr.with(|s| s.instant(stage, self.trace_site, vpn.0));
        }
    }

    #[cfg(feature = "audit")]
    fn audit_fill(&self) {
        if let Some(a) = &self.auditor {
            let site =
                wsg_sim::audit::Site::new(wsg_sim::audit::SiteKind::Redirection, self.audit_site);
            a.with(|au| au.on_fill(site, self.entries.len(), self.capacity));
        }
    }

    #[cfg(feature = "audit")]
    fn audit_evict(&self) {
        if let Some(a) = &self.auditor {
            let site =
                wsg_sim::audit::Site::new(wsg_sim::audit::SiteKind::Redirection, self.audit_site);
            a.with(|au| au.on_evict(site, self.entries.len()));
        }
    }

    fn touch(&mut self, vpn: Vpn, gpm: u32) {
        self.stamp += 1;
        let prior = self.entries.insert(
            vpn,
            Slot {
                gpm,
                stamp: self.stamp,
            },
        );
        self.order.push_back((vpn, self.stamp));
        // Every refresh leaves a stale `(vpn, stamp)` record behind; without
        // compaction a hot VPN grows `order` linearly with hits. Rebuilding
        // from the live entries whenever the deque exceeds 2× capacity keeps
        // it O(capacity) at amortized O(1) per touch.
        if self.order.len() > 2 * self.capacity {
            let entries = &self.entries;
            self.order
                .retain(|&(vpn, stamp)| entries.get(&vpn).is_some_and(|s| s.stamp == stamp));
        }
        let _created = prior.is_none();
        #[cfg(feature = "audit")]
        if _created {
            self.audit_fill();
        }
    }

    fn evict_lru(&mut self) {
        while let Some((vpn, stamp)) = self.order.pop_front() {
            if let Some(slot) = self.entries.get(&vpn) {
                if slot.stamp == stamp {
                    self.entries.remove(&vpn);
                    #[cfg(feature = "audit")]
                    self.audit_evict();
                    return;
                }
            }
            // Stale order record (entry refreshed or already removed); skip.
        }
    }

    /// Records that `gpm` now holds the translation for `vpn`, evicting the
    /// LRU entry if the table is full.
    pub fn insert(&mut self, vpn: Vpn, gpm: u32) {
        if !self.entries.contains_key(&vpn) && self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        self.touch(vpn, gpm);
        #[cfg(feature = "trace")]
        self.trace_event("redir.insert", vpn);
    }

    /// Looks up `vpn`, refreshing its LRU position on hit. Returns the
    /// holder GPM.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<u32> {
        match self.entries.get(&vpn).map(|s| s.gpm) {
            Some(gpm) => {
                self.hits += 1;
                self.touch(vpn, gpm);
                #[cfg(feature = "trace")]
                self.trace_event("redir.hit", vpn);
                Some(gpm)
            }
            None => {
                self.misses += 1;
                #[cfg(feature = "trace")]
                self.trace_event("redir.miss", vpn);
                None
            }
        }
    }

    /// Checks presence without updating LRU or statistics.
    pub fn probe(&self, vpn: Vpn) -> Option<u32> {
        self.entries.get(&vpn).map(|s| s.gpm)
    }

    /// Removes `vpn` (e.g. when the holder evicted the PTE); returns whether
    /// it was present.
    pub fn remove(&mut self, vpn: Vpn) -> bool {
        let removed = self.entries.remove(&vpn).is_some();
        #[cfg(feature = "audit")]
        if removed {
            self.audit_evict();
        }
        removed
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        RedirectionTable::new(0);
    }

    #[test]
    fn insert_lookup_remove() {
        let mut rt = RedirectionTable::new(4);
        rt.insert(Vpn(1), 5);
        assert_eq!(rt.lookup(Vpn(1)), Some(5));
        assert!(rt.remove(Vpn(1)));
        assert!(!rt.remove(Vpn(1)));
        assert_eq!(rt.lookup(Vpn(1)), None);
        assert_eq!(rt.hits(), 1);
        assert_eq!(rt.misses(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut rt = RedirectionTable::new(3);
        for i in 0..10 {
            rt.insert(Vpn(i), i as u32);
        }
        assert_eq!(rt.len(), 3);
        assert_eq!(rt.probe(Vpn(9)), Some(9));
        assert_eq!(rt.probe(Vpn(0)), None);
    }

    #[test]
    fn lru_order_respects_lookups() {
        let mut rt = RedirectionTable::new(2);
        rt.insert(Vpn(1), 1);
        rt.insert(Vpn(2), 2);
        rt.lookup(Vpn(1)); // 1 most recent
        rt.insert(Vpn(3), 3); // evicts 2
        assert_eq!(rt.probe(Vpn(1)), Some(1));
        assert_eq!(rt.probe(Vpn(2)), None);
        assert_eq!(rt.probe(Vpn(3)), Some(3));
    }

    #[test]
    fn reinsert_updates_holder() {
        let mut rt = RedirectionTable::new(2);
        rt.insert(Vpn(1), 1);
        rt.insert(Vpn(1), 9);
        assert_eq!(rt.len(), 1);
        assert_eq!(rt.probe(Vpn(1)), Some(9));
    }

    #[test]
    fn stale_order_records_are_skipped() {
        let mut rt = RedirectionTable::new(2);
        rt.insert(Vpn(1), 1);
        // Refresh VPN 1 many times, leaving stale order records.
        for _ in 0..100 {
            rt.lookup(Vpn(1));
        }
        rt.insert(Vpn(2), 2);
        rt.insert(Vpn(3), 3); // must evict the true LRU (VPN 1 or 2, not panic)
        assert_eq!(rt.len(), 2);
        assert_eq!(rt.probe(Vpn(3)), Some(3));
    }

    #[test]
    fn order_stays_bounded_under_repeated_hits() {
        let mut rt = RedirectionTable::new(4);
        for i in 0..4 {
            rt.insert(Vpn(i), i as u32);
        }
        // A hot VPN: every hit refreshes the LRU position, which used to
        // append a fresh order record without ever reclaiming the stale one.
        for _ in 0..10_000 {
            rt.lookup(Vpn(0));
        }
        assert!(
            rt.order.len() <= 2 * rt.capacity(),
            "order grew to {} records for a {}-entry table",
            rt.order.len(),
            rt.capacity()
        );
        // LRU semantics survive compaction: VPN 0 is the most recent.
        rt.insert(Vpn(9), 9);
        assert_eq!(rt.probe(Vpn(0)), Some(0));
        assert_eq!(rt.probe(Vpn(1)), None);
    }

    #[test]
    fn probe_does_not_refresh() {
        let mut rt = RedirectionTable::new(2);
        rt.insert(Vpn(1), 1);
        rt.insert(Vpn(2), 2);
        rt.probe(Vpn(1)); // does NOT refresh
        rt.insert(Vpn(3), 3); // evicts VPN 1
        assert_eq!(rt.probe(Vpn(1)), None);
        assert_eq!(rt.probe(Vpn(2)), Some(2));
    }
}
