//! Property-based tests for the translation structures, checked against
//! reference models.

use proptest::prelude::*;
use std::collections::HashMap;
use wsg_xlat::{
    CuckooFilter, PageTable, Pfn, RedirectionTable, SubmitResult, Tlb, TlbConfig, Vpn, WalkerPool,
};

proptest! {
    /// Cuckoo filters never produce false negatives for resident keys.
    #[test]
    fn cuckoo_has_no_false_negatives(keys in proptest::collection::hash_set(0u64..1_000_000, 1..500)) {
        let mut f = CuckooFilter::with_capacity(keys.len() * 4);
        let mut inserted = Vec::new();
        for &k in &keys {
            if f.insert(k) {
                inserted.push(k);
            }
        }
        for &k in &inserted {
            prop_assert!(f.contains(k), "false negative for {k}");
        }
    }

    /// Insert-then-remove restores non-membership (up to fingerprint
    /// collisions with *other* resident keys, which we avoid by removing
    /// everything).
    #[test]
    fn cuckoo_remove_all_empties_filter(keys in proptest::collection::hash_set(0u64..100_000, 1..200)) {
        let mut f = CuckooFilter::with_capacity(keys.len() * 4);
        let inserted: Vec<u64> = keys.iter().copied().filter(|&k| f.insert(k)).collect();
        for &k in &inserted {
            prop_assert!(f.remove(k));
        }
        prop_assert!(f.is_empty());
        for &k in &inserted {
            prop_assert!(!f.contains(k));
        }
    }

    /// The TLB agrees with a reference map on lookups after arbitrary
    /// fill/invalidate sequences (ignoring capacity evictions by keeping the
    /// working set within one set's ways).
    #[test]
    fn tlb_matches_reference_within_capacity(ops in proptest::collection::vec((0u64..16, 0u64..1000, any::<bool>()), 1..200)) {
        // 1 set x 16 ways: a working set of <=16 VPNs never evicts.
        let mut tlb = Tlb::new(TlbConfig { sets: 1, ways: 16, latency: 1, mshrs: 0 });
        let mut model: HashMap<u64, u64> = HashMap::new();
        for &(vpn, pfn, invalidate) in &ops {
            if invalidate {
                let was = model.remove(&vpn).is_some();
                prop_assert_eq!(tlb.invalidate(Vpn(vpn)), was);
            } else {
                tlb.fill(Vpn(vpn), Pfn(pfn), false);
                model.insert(vpn, pfn);
            }
        }
        for (&vpn, &pfn) in &model {
            prop_assert_eq!(tlb.probe(Vpn(vpn)), Some(Pfn(pfn)));
        }
        prop_assert_eq!(tlb.occupancy(), model.len());
    }

    /// Speculative fills lose LRU races against demand fills.
    #[test]
    fn speculative_entries_evict_first(demand in 0u64..4, spec in 4u64..8) {
        // 1 set x 2 ways.
        let mut tlb = Tlb::new(TlbConfig { sets: 1, ways: 2, latency: 1, mshrs: 0 });
        tlb.fill(Vpn(demand), Pfn(demand), false);
        tlb.fill_speculative(Vpn(spec), Pfn(spec));
        // A third fill must evict the speculative entry, not the demand one.
        let evicted = tlb.fill(Vpn(100), Pfn(100), false).unwrap();
        prop_assert_eq!(evicted.0, Vpn(spec));
        prop_assert!(tlb.probe(Vpn(demand)).is_some());
    }

    /// The redirection table matches a reference LRU map.
    #[test]
    fn redirection_matches_reference_lru(ops in proptest::collection::vec((0u64..32, 0u32..48, any::<bool>()), 1..300)) {
        let cap = 8;
        let mut rt = RedirectionTable::new(cap);
        let mut order: Vec<u64> = Vec::new(); // front = LRU
        let mut vals: HashMap<u64, u32> = HashMap::new();
        for &(vpn, gpm, is_lookup) in &ops {
            if is_lookup {
                let expect = vals.get(&vpn).copied();
                prop_assert_eq!(rt.lookup(Vpn(vpn)), expect);
                if expect.is_some() {
                    order.retain(|&v| v != vpn);
                    order.push(vpn);
                }
            } else {
                if !vals.contains_key(&vpn) && vals.len() == cap {
                    let lru = order.remove(0);
                    vals.remove(&lru);
                }
                rt.insert(Vpn(vpn), gpm);
                order.retain(|&v| v != vpn);
                order.push(vpn);
                vals.insert(vpn, gpm);
            }
        }
        prop_assert_eq!(rt.len(), vals.len());
        for (&vpn, &gpm) in &vals {
            prop_assert_eq!(rt.probe(Vpn(vpn)), Some(gpm));
        }
    }

    /// Walker pools conserve requests: everything submitted is either
    /// rejected, or eventually started (directly or by promotion).
    #[test]
    fn walker_pool_conserves_requests(
        walkers in 1usize..4,
        queue in 0usize..8,
        n in 1usize..100
    ) {
        let mut pool: WalkerPool<usize> = WalkerPool::new(walkers, queue);
        let mut started = 0usize;
        let mut queued = 0usize;
        let mut rejected = 0usize;
        for i in 0..n {
            match pool.submit(i) {
                SubmitResult::Started => started += 1,
                SubmitResult::Queued => queued += 1,
                SubmitResult::Rejected => rejected += 1,
            }
        }
        // Drain: every finish either promotes a queued item or frees a walker.
        let mut promoted = 0usize;
        while pool.busy() > 0 {
            if pool.finish().is_some() {
                promoted += 1;
            }
        }
        prop_assert_eq!(promoted, queued);
        prop_assert_eq!(started + queued + rejected, n);
        prop_assert_eq!(pool.queue_len(), 0);
    }

    /// Page-table access counters saturate rather than wrap.
    #[test]
    fn pte_counter_saturates(touches in 1u32..200) {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pfn(1), 0);
        let mut last = 0;
        for _ in 0..touches {
            let c = pt.translate_counted(Vpn(1)).unwrap().access_count;
            prop_assert!(c >= last, "counter went backwards");
            last = c;
        }
        prop_assert!(last <= 63, "6 spare bits saturate at 63");
    }
}
