//! White-box behavioural tests of the translation policies, driven by
//! hand-crafted traces so each mechanism can be observed in isolation.
//!
//! Workgroup `i` runs on GPM `i mod 48`; pages are block-partitioned, so a
//! buffer page's home is known in advance and traces can target local or
//! remote pages deliberately.

use hdpat::policy::{HdpatConfig, PolicyKind};
use hdpat::{Metrics, Simulation};
use wsg_gpu::{AddressSpace, MemoryOp, SystemConfig, WorkgroupTrace};
use wsg_xlat::Vpn;

/// Builds a 48-GPM system with one workgroup per GPM; `ops_for(gpm)` gives
/// each workgroup's trace.
fn run_crafted(
    policy: PolicyKind,
    pages: u64,
    ops_for: impl Fn(u32, &AddressSpace, &wsg_gpu::Buffer) -> Vec<MemoryOp>,
) -> Metrics {
    let system = SystemConfig::paper_baseline();
    let gpms = system.gpm_count() as u32;
    let mut space = AddressSpace::new(system.page_size, gpms);
    let buf = space.alloc("crafted", pages);
    let traces: Vec<WorkgroupTrace> = (0..gpms)
        .map(|g| WorkgroupTrace::new(ops_for(g, &space, &buf)))
        .collect();
    Simulation::with_traces(system, policy, space, traces).run()
}

/// Page `p` of a 48-page buffer lives on GPM `p` (one page per GPM chunk).
fn page_addr(space: &AddressSpace, buf: &wsg_gpu::Buffer, page: u64) -> u64 {
    space.page_size().base_of(Vpn(buf.base_vpn.0 + page))
}

#[test]
fn local_accesses_never_reach_the_iommu() {
    // Every GPM touches only its own page.
    let m = run_crafted(PolicyKind::Naive, 48, |g, space, buf| {
        (0..8)
            .map(|i| MemoryOp::read(page_addr(space, buf, g as u64) + i * 64, 4))
            .collect()
    });
    assert_eq!(m.remote_requests, 0);
    assert_eq!(m.iommu_walks, 0);
    assert!(m.local_translations > 0);
}

#[test]
fn remote_accesses_walk_at_the_iommu_under_naive() {
    // Every GPM touches its right neighbour's page: all remote.
    let m = run_crafted(PolicyKind::Naive, 48, |g, space, buf| {
        let target = (g as u64 + 1) % 48;
        vec![MemoryOp::read(page_addr(space, buf, target), 4)]
    });
    assert_eq!(m.remote_requests, 48);
    assert_eq!(m.iommu_walks, 48, "no coalescing under naive");
    assert_eq!(m.resolution.value("iommu"), 48);
}

#[test]
fn gpm_mshr_coalesces_same_page_requests() {
    // One GPM issues many ops to the same remote page: one primary, the
    // rest coalesce.
    let m = run_crafted(PolicyKind::Naive, 48, |g, space, buf| {
        if g == 0 {
            (0..6)
                .map(|i| MemoryOp::read(page_addr(space, buf, 5) + i * 64, 0))
                .collect()
        } else {
            vec![MemoryOp::read(page_addr(space, buf, g as u64), 4)]
        }
    });
    assert_eq!(m.remote_requests, 1, "one primary from GPM 0");
    assert_eq!(m.remote_coalesced, 5, "five waiters merged");
}

#[test]
fn hdpat_pushes_hot_ptes_and_serves_peers() {
    // All 48 GPMs hammer page 0 (home: GPM 0) with long gap spreads so
    // later requests find pushed copies.
    let m = run_crafted(PolicyKind::hdpat(), 48, |g, space, buf| {
        (0..8)
            .map(|i| {
                let gap = (g as u64) * 40 + i * 500;
                MemoryOp {
                    vaddr: page_addr(space, buf, 0),
                    is_read: true,
                    gap,
                }
            })
            .collect()
    });
    assert!(m.ptes_pushed > 0, "hot page must be pushed to layers");
    let offloaded = m.resolution.value("peer-cache")
        + m.resolution.value("redirection")
        + m.resolution.value("proactive");
    assert!(offloaded > 0, "some requests must resolve off the IOMMU");
}

#[test]
fn prefetch_installs_sequential_neighbours() {
    // GPM 1 streams pages 10..14 (homes 10..14, all remote) sequentially;
    // proactive delivery should be issued for the successors.
    let m = run_crafted(PolicyKind::hdpat(), 48, |g, space, buf| {
        if g == 1 {
            (0..4)
                .map(|i| MemoryOp {
                    vaddr: page_addr(space, buf, 10 + i),
                    is_read: true,
                    gap: 2000, // give walks time to finish between touches
                })
                .collect()
        } else {
            vec![MemoryOp::read(page_addr(space, buf, g as u64), 4)]
        }
    });
    assert!(
        m.prefetches_issued > 0,
        "sequential walk stream must trigger proactive delivery"
    );
}

#[test]
fn barre_coalesces_in_the_pw_queue() {
    // Many GPMs request the same page nearly simultaneously: under Barre a
    // finishing walk completes the identical queued requests.
    let m = run_crafted(PolicyKind::Barre, 48, |_, space, buf| {
        vec![MemoryOp::read(page_addr(space, buf, 7), 0)]
    });
    assert!(
        m.iommu_walks < 48,
        "revisit must cut duplicate walks: {}",
        m.iommu_walks
    );
    assert!(m.iommu_coalesced > 0);
}

#[test]
fn cuckoo_false_positive_path_is_rare_but_counted() {
    // A large random-ish remote workload: false positives are possible but
    // must stay below the filter's design rate by a wide margin.
    let m = run_crafted(PolicyKind::Naive, 48, |g, space, buf| {
        (0..16)
            .map(|i| MemoryOp::read(page_addr(space, buf, (g as u64 * 7 + i * 13) % 48), 2))
            .collect()
    });
    let total = m.local_translations + m.remote_requests + m.remote_coalesced;
    assert!(
        (m.cuckoo_false_positives as f64) < 0.01 * total as f64,
        "false positives {} of {total}",
        m.cuckoo_false_positives
    );
}

#[test]
fn redirection_serves_repeat_requests_without_walks() {
    // Phase 1: GPM 0 touches page 20 twice (beyond push threshold).
    // Phase 2 (much later): GPMs 2..10 request the same page; the
    // redirection table should forward them to the holder.
    let m = run_crafted(
        PolicyKind::Hdpat(HdpatConfig::with_redirection_only()),
        48,
        |g, space, buf| {
            let addr = page_addr(space, buf, 20);
            match g {
                0 => vec![MemoryOp::read(addr, 0)],
                1 => vec![MemoryOp::read(addr, 3000)],
                2..=10 => vec![MemoryOp::read(addr, 20_000 + g as u64 * 1500)],
                _ => vec![MemoryOp::read(page_addr(space, buf, g as u64), 4)],
            }
        },
    );
    let served_off_iommu = m.resolution.value("redirection") + m.resolution.value("peer-cache");
    assert!(
        served_off_iommu > 0,
        "late repeats must be redirected: {}",
        m.resolution
    );
    assert!(m.iommu_walks < 11, "walks: {}", m.iommu_walks);
}

#[test]
fn trans_fw_piggybacks_on_running_walks() {
    let m = run_crafted(PolicyKind::TransFw, 48, |_, space, buf| {
        vec![MemoryOp::read(page_addr(space, buf, 3), 0)]
    });
    assert!(
        m.iommu_coalesced > 0,
        "simultaneous same-page requests must piggyback"
    );
    assert!(m.iommu_walks < 48);
}

#[test]
fn every_policy_is_work_conserving_on_crafted_traces() {
    for p in [
        PolicyKind::Naive,
        PolicyKind::Distributed,
        PolicyKind::Valkyrie,
        PolicyKind::hdpat(),
    ] {
        let m = run_crafted(p, 48, |g, space, buf| {
            (0..4)
                .map(|i| MemoryOp::read(page_addr(space, buf, (g as u64 + i) % 48) + i * 64, 3))
                .collect()
        });
        assert_eq!(m.ops_completed, 48 * 4, "{p} lost ops");
    }
}
