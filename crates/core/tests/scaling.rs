//! Tests for the hardware-capacity scaling that keeps reduced-scale runs
//! faithful to the paper's working-set-to-capacity ratios (DESIGN.md §6).

use hdpat::experiments::{hardware_divisor, scale_hardware};
use wsg_gpu::SystemConfig;
use wsg_workloads::Scale;

#[test]
fn divisor_matches_scale() {
    assert_eq!(hardware_divisor(Scale::Full), 1);
    assert_eq!(hardware_divisor(Scale::Bench), 64);
    assert_eq!(hardware_divisor(Scale::Unit), 256);
}

#[test]
fn full_scale_is_untouched() {
    let reference = SystemConfig::paper_baseline();
    let mut scaled = SystemConfig::paper_baseline();
    scale_hardware(&mut scaled, 1);
    assert_eq!(scaled.gpm.l2_tlb.entries(), reference.gpm.l2_tlb.entries());
    assert_eq!(
        scaled.iommu.redirection_entries,
        reference.iommu.redirection_entries
    );
    assert_eq!(scaled.gpm.l2_cache.sets, reference.gpm.l2_cache.sets);
}

#[test]
fn capacities_shrink_but_timing_does_not() {
    let reference = SystemConfig::paper_baseline();
    let mut scaled = SystemConfig::paper_baseline();
    scale_hardware(&mut scaled, 64);

    // Capacities shrink.
    assert!(scaled.gpm.l2_tlb.entries() < reference.gpm.l2_tlb.entries());
    assert!(scaled.gpm.gmmu_cache.entries() < reference.gpm.gmmu_cache.entries());
    assert!(scaled.gpm.cuckoo_capacity < reference.gpm.cuckoo_capacity);
    assert!(scaled.gpm.l2_cache.lines() < reference.gpm.l2_cache.lines());
    assert!(scaled.iommu.redirection_entries < reference.iommu.redirection_entries);
    assert!(scaled.iommu.pw_queue < reference.iommu.pw_queue);

    // Timing and concurrency structure stay at Table I values.
    assert_eq!(scaled.gpm.walk_latency, reference.gpm.walk_latency);
    assert_eq!(scaled.gpm.gmmu_walkers, reference.gpm.gmmu_walkers);
    assert_eq!(scaled.iommu.walkers, reference.iommu.walkers);
    assert_eq!(scaled.iommu.walk_latency, reference.iommu.walk_latency);
    assert_eq!(scaled.link, reference.link);
    assert_eq!(
        scaled.gpm.hbm.bytes_per_cycle,
        reference.gpm.hbm.bytes_per_cycle
    );
    assert_eq!(scaled.gpm.l1_tlb.latency, reference.gpm.l1_tlb.latency);
    assert_eq!(scaled.gpm.l2_tlb.latency, reference.gpm.l2_tlb.latency);
}

#[test]
fn floors_keep_structures_usable() {
    let mut scaled = SystemConfig::paper_baseline();
    scale_hardware(&mut scaled, 1_000_000); // absurd divisor
    assert!(scaled.gpm.l2_tlb.entries() >= 1);
    assert!(scaled.gpm.gmmu_cache.entries() >= 4);
    assert!(scaled.gpm.cuckoo_capacity >= 256);
    assert!(scaled.iommu.redirection_entries >= 16);
    assert!(scaled.iommu.pw_queue >= 8);
    assert!(scaled.gpm.l2_cache.sets >= 16);
    // Sets must remain powers of two for the cache/TLB constructors.
    assert!(scaled.gpm.l2_tlb.sets.is_power_of_two());
    assert!(scaled.gpm.l2_cache.sets.is_power_of_two());
}

#[test]
fn scaling_is_monotone_in_the_divisor() {
    let mut d64 = SystemConfig::paper_baseline();
    scale_hardware(&mut d64, 64);
    let mut d256 = SystemConfig::paper_baseline();
    scale_hardware(&mut d256, 256);
    assert!(d256.gpm.l2_tlb.entries() <= d64.gpm.l2_tlb.entries());
    assert!(d256.gpm.l2_cache.lines() <= d64.gpm.l2_cache.lines());
    assert!(d256.iommu.redirection_entries <= d64.iommu.redirection_entries);
}

#[test]
fn scaled_configs_still_simulate() {
    use hdpat::experiments::{run, RunConfig};
    use hdpat::policy::PolicyKind;
    use wsg_workloads::BenchmarkId;
    // The scaled configuration must produce a working system end to end.
    let m = run(&RunConfig::new(
        BenchmarkId::Km,
        Scale::Unit,
        PolicyKind::hdpat(),
    ));
    assert!(m.ops_completed > 0);
}
