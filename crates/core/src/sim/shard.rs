//! The sharded drive: intra-run event execution partitioned by tile group
//! with conservative lookahead (DESIGN.md §15).
//!
//! The wafer is cut into `n` shards of contiguous row-major tile bands;
//! every GPM belongs to the shard of its tile and the IOMMU to the shard of
//! the CPU tile, so *cross-shard implies cross-tile* — and every cross-tile
//! event travels through [`Simulation::send`], i.e. the mesh, whose minimum
//! transit time (`Mesh::min_transit_cycles`) is the lookahead window
//! length. The [`ShardSet`] coordinator therefore delivers events window by
//! window, exchanging boundary messages only at window barriers, and its
//! exact global `(time, stamp)` merge makes the execution order — and every
//! output byte — identical to [`Simulation::run`].
//!
//! Ownership follows the `xtask analyze` classification of the engine
//! state (`// shard:` annotations in `mod.rs`): `gpms` is the gpm-local
//! plane that partitions cleanly; the wafer-global fields (`reqs`, `mesh`,
//! `metrics`, `iommu`, …) are exactly the state a threaded drive would have
//! to synchronize, which is why this stage executes handlers on the
//! coordinator thread in merged order (the observability sinks are
//! `Rc<RefCell<..>>` and deliberately not `Send`). The window/barrier/
//! mailbox protocol and its runtime lookahead check are the same ones a
//! threaded drive would run; `wsg_sim::pool::run_sharded_workers` exercises
//! them cross-thread.

use wsg_sim::shard::ShardSet;

use super::{Event, Request, Simulation, EVENT_CAP};

/// The sharded drive's routing state, installed into
/// [`Simulation::shard_route`] for the duration of a sharded run so
/// [`Simulation::schedule`] can route handler pushes straight into the
/// owning shard's queue — no intermediate per-event outbox round-trip.
#[derive(Debug)]
pub(crate) struct ShardRoute {
    pub(crate) set: ShardSet<Event>,
    pub(crate) map: ShardMap,
}

/// Tile-group shard assignment for one wafer.
#[derive(Debug)]
pub(crate) struct ShardMap {
    /// GPM id → shard.
    gpm_shard: Vec<usize>,
    /// The shard owning the CPU tile (IOMMU events execute there).
    iommu_shard: usize,
    shards: usize,
}

impl ShardMap {
    /// Cuts the wafer into `shards` contiguous row-major tile bands
    /// (clamped to the tile count, so every shard owns at least one tile).
    pub(crate) fn new(sim: &Simulation, shards: usize) -> Self {
        let layout = &sim.cfg.layout;
        let width = layout.width() as usize;
        let tiles = width * layout.height() as usize;
        let shards = shards.clamp(1, tiles);
        let shard_of_tile = |c: wsg_noc::Coord| -> usize {
            let linear = c.y as usize * width + c.x as usize;
            linear * shards / tiles
        };
        let gpm_shard = (0..layout.gpm_count() as u32)
            .map(|id| shard_of_tile(layout.coord_of(id)))
            .collect();
        Self {
            gpm_shard,
            iommu_shard: shard_of_tile(layout.cpu()),
            shards,
        }
    }

    pub(crate) fn shards(&self) -> usize {
        self.shards
    }

    fn gpm(&self, id: u32) -> usize {
        self.gpm_shard[id as usize]
    }

    /// The shard an event executes on: the shard of the tile whose state
    /// its handler touches first (the event's delivery site). Request-
    /// addressed events route via fields that are frozen by the time the
    /// event is scheduled (`Request::gpm` is set at issue, `chains` is the
    /// engine's frozen per-GPM probe-chain slab).
    pub(crate) fn shard_of(&self, reqs: &[Request], chains: &[Vec<u32>], ev: &Event) -> usize {
        match *ev {
            Event::CuIssue { gpm, .. }
            | Event::GmmuWalkDone { gpm, .. }
            | Event::GmmuRetry { gpm, .. }
            | Event::PushArrive { gpm, .. } => self.gpm(gpm),
            Event::ChainProbe { req, idx } => {
                self.gpm(chains[reqs[req as usize].gpm as usize][idx])
            }
            Event::ParallelProbe { target, .. } => self.gpm(target),
            Event::IommuArrive { .. } | Event::IommuWalkDone { .. } => self.iommu_shard,
            Event::RedirectArrive { holder, .. } => self.gpm(holder),
            Event::XlatResponse { req, .. } | Event::DataDone { req } => {
                self.gpm(reqs[req as usize].gpm)
            }
            Event::DataAtHome { home, .. } | Event::DataReturn { home, .. } => self.gpm(home),
        }
    }
}

impl Simulation {
    /// Runs the simulation partitioned into `shards` tile-group shards
    /// under the conservative-lookahead window protocol, producing output
    /// byte-identical to [`Simulation::run`]. `shards <= 1` *is* the serial
    /// path; larger values are clamped to the wafer's tile count.
    ///
    /// # Panics
    ///
    /// Panics (in addition to [`Simulation::run`]'s conditions) if any
    /// cross-shard message violates the lookahead bound — that would mean
    /// the mesh's minimum transit time does not actually floor cross-tile
    /// delivery, breaking the window protocol's correctness argument.
    pub fn run_with_shards(self, shards: usize) -> crate::Metrics {
        if shards <= 1 {
            return self.run();
        }
        self.run_sharded(shards)
    }

    fn run_sharded(mut self, shards: usize) -> crate::Metrics {
        // lint:allow(wallclock): events-per-second accounting only, exactly
        // as in `run()`; excluded from the deterministic serialization.
        let wall_start = std::time::Instant::now();
        let lookahead = self.mesh.min_transit_cycles();
        let map = ShardMap::new(&self, shards);
        #[cfg(feature = "selfprof")]
        let map_shards = map.shards();
        // Direct drive: this coordinator is single-threaded, so cross-shard
        // routes can insert straight into the owning queue — same delivered
        // stream as the windowed protocol (see `ShardSet::new_direct`), no
        // mailbox round-trip or barrier scans, lookahead still enforced.
        let mut set: ShardSet<Event> = ShardSet::new_direct(map.shards(), lookahead);
        // Seed: move the initial event population (the per-CU issue kicks
        // scheduled by the constructor) out of the engine queue into the
        // shard queues. From here on the engine queue stays empty — with
        // the routing state installed, `Simulation::schedule` forwards
        // every handler push straight to its owning shard's queue, and the
        // engine clock is only re-anchored per delivery batch so handlers
        // (and the telemetry finalization) still read the serial `now`.
        while let Some((t, ev)) = self.queue.pop() {
            let dest = map.shard_of(&self.reqs, &self.chains, &ev);
            set.route(dest, t, ev);
        }
        self.shard_route = Some(Box::new(ShardRoute { set, map }));
        // Batched delivery (DESIGN.md §16): each `next_batch` hands over
        // every event due at the globally minimal timestamp, across all
        // shards, merged into global stamp order — the engine's per-batch
        // work amortizes over the whole timestamp. Each event's shard tag
        // is declared back via `set_current` so `route` can classify its
        // follow-ups; mid-batch routing is sound because every follow-up
        // stamps after the whole batch (see `ShardSet::next_batch`).
        let mut batch: Vec<(u32, Event)> = Vec::new();
        #[cfg(feature = "selfprof")]
        let mut prof_merge = 0u64;
        #[cfg(feature = "selfprof")]
        let mut prof_handler = vec![0u64; map_shards];
        loop {
            let route = match &mut self.shard_route {
                Some(r) => r,
                None => unreachable!("sharded drive state installed above"),
            };
            #[cfg(feature = "selfprof")]
            let m0 = std::time::Instant::now(); // lint:allow(wallclock): selfprof phase timer, ops registry only
            let next = route.set.next_batch(&mut batch);
            #[cfg(feature = "selfprof")]
            {
                prof_merge += m0.elapsed().as_nanos() as u64;
            }
            let Some(t) = next else {
                break;
            };
            self.queue.set_now(t);
            for (shard, ev) in batch.drain(..) {
                match &mut self.shard_route {
                    Some(r) => r.set.set_current(shard as usize),
                    None => unreachable!("sharded drive state installed above"),
                }
                #[cfg(feature = "selfprof")]
                let h0 = std::time::Instant::now(); // lint:allow(wallclock): selfprof phase timer, ops registry only
                self.dispatch(t, ev);
                #[cfg(feature = "selfprof")]
                {
                    prof_handler[shard as usize] += h0.elapsed().as_nanos() as u64;
                }
            }
            debug_assert!(
                self.shard_route
                    .as_ref()
                    .is_none_or(|r| r.set.stats().delivered < EVENT_CAP),
                "event explosion"
            );
        }
        #[cfg(feature = "selfprof")]
        crate::ops::engine().record_selfprof(0, prof_merge, &prof_handler);
        let route = match self.shard_route.take() {
            Some(r) => r,
            None => unreachable!("sharded drive state installed above"),
        };
        // Window-protocol conservation, on top of the usual engine checks
        // in `finish()`.
        route.set.drain_check();
        // Drive diagnostics flow into the process-wide ops registry
        // (deterministic counters — windows, delivered, cross, batches —
        // never host state); stdout and every artifact byte are unaffected.
        // The serving daemon surfaces the accumulated totals through its
        // `metrics` op; `WSG_SHARD_STATS` remains as a convenience that
        // prints the cumulative registry snapshot to stderr after each run.
        {
            let s = route.set.stats();
            crate::ops::engine().record_shard_run(
                s.windows,
                s.delivered,
                s.routed,
                s.cross,
                s.batches,
            );
        }
        if std::env::var_os("WSG_SHARD_STATS").is_some() {
            eprintln!(
                "[shard-stats] {}",
                crate::ops::engine().shard_counters().to_line()
            );
        }
        let events = route.set.stats().delivered;
        self.finish(wall_start, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_gpu::SystemConfig;
    use wsg_noc::Coord;

    fn sim() -> Simulation {
        use wsg_workloads::{BenchmarkId, Scale};
        Simulation::new(
            SystemConfig::paper_baseline(),
            crate::policy::PolicyKind::hdpat(),
            BenchmarkId::Spmv,
            Scale::Unit,
            7,
        )
    }

    #[test]
    fn partition_is_contiguous_and_complete() {
        let sim = sim();
        for shards in [1, 2, 4, 7, 48, 1000] {
            let map = ShardMap::new(&sim, shards);
            assert!(map.shards() >= 1 && map.shards() <= 49);
            // Shard ids ascend with the row-major GPM numbering and every
            // shard in range appears (bands are contiguous and non-empty
            // except possibly the CPU-only cut).
            let mut seen = vec![false; map.shards()];
            for id in 0..sim.cfg.layout.gpm_count() as u32 {
                seen[map.gpm(id)] = true;
            }
            seen[map.iommu_shard] = true;
            assert!(seen.iter().all(|&s| s), "empty shard with {shards} cuts");
        }
    }

    #[test]
    fn iommu_lives_on_the_cpu_tile_shard() {
        let sim = sim();
        let map = ShardMap::new(&sim, 4);
        // The CPU tile of the 7x7 paper wafer is (3, 3): linear 24 of 49.
        assert_eq!(sim.cfg.layout.cpu(), Coord::new(3, 3));
        assert_eq!(map.iommu_shard, 24 * 4 / 49);
    }

    #[test]
    fn cross_shard_is_always_cross_tile() {
        // The lookahead argument needs every cross-shard hop to traverse
        // the mesh: two endpoints in different shards must sit on
        // different tiles. Tiles host exactly one GPM or the CPU, so the
        // partition being a function of the tile is already sufficient;
        // pin it by checking GPM coords are unique and distinct from CPU.
        let sim = sim();
        let layout = &sim.cfg.layout;
        let mut coords: Vec<Coord> = (0..layout.gpm_count() as u32)
            .map(|id| layout.coord_of(id))
            .collect();
        coords.push(layout.cpu());
        let n = coords.len();
        coords.sort_by_key(|c| (c.y, c.x));
        coords.dedup();
        assert_eq!(coords.len(), n, "two event sites share a tile");
    }
}
