//! The sharded drive: intra-run event execution partitioned by tile group
//! with conservative lookahead (DESIGN.md §15).
//!
//! The wafer is cut into `n` shards of contiguous row-major tile bands;
//! every GPM belongs to the shard of its tile and the IOMMU to the shard of
//! the CPU tile, so *cross-shard implies cross-tile* — and every cross-tile
//! event travels through [`Simulation::send`], i.e. the mesh, whose minimum
//! transit time (`Mesh::min_transit_cycles`) is the lookahead window
//! length. The [`ShardSet`] coordinator therefore delivers events window by
//! window, exchanging boundary messages only at window barriers, and its
//! exact global `(time, stamp)` merge makes the execution order — and every
//! output byte — identical to [`Simulation::run`].
//!
//! Ownership follows the `xtask analyze` classification of the engine
//! state (`// shard:` annotations in `mod.rs`): `gpms` is the gpm-local
//! plane that partitions cleanly; the wafer-global fields (`reqs`, `mesh`,
//! `metrics`, `iommu`, …) are exactly the state a threaded drive would have
//! to synchronize, which is why this stage executes handlers on the
//! coordinator thread in merged order (the observability sinks are
//! `Rc<RefCell<..>>` and deliberately not `Send`). The window/barrier/
//! mailbox protocol and its runtime lookahead check are the same ones a
//! threaded drive would run; `wsg_sim::pool::run_sharded_workers` exercises
//! them cross-thread.

use wsg_sim::shard::ShardSet;

use super::{Event, Simulation, EVENT_CAP};

/// Tile-group shard assignment for one wafer.
#[derive(Debug)]
pub(crate) struct ShardMap {
    /// GPM id → shard.
    gpm_shard: Vec<usize>,
    /// The shard owning the CPU tile (IOMMU events execute there).
    iommu_shard: usize,
    shards: usize,
}

impl ShardMap {
    /// Cuts the wafer into `shards` contiguous row-major tile bands
    /// (clamped to the tile count, so every shard owns at least one tile).
    pub(crate) fn new(sim: &Simulation, shards: usize) -> Self {
        let layout = &sim.cfg.layout;
        let width = layout.width() as usize;
        let tiles = width * layout.height() as usize;
        let shards = shards.clamp(1, tiles);
        let shard_of_tile = |c: wsg_noc::Coord| -> usize {
            let linear = c.y as usize * width + c.x as usize;
            linear * shards / tiles
        };
        let gpm_shard = (0..layout.gpm_count() as u32)
            .map(|id| shard_of_tile(layout.coord_of(id)))
            .collect();
        Self {
            gpm_shard,
            iommu_shard: shard_of_tile(layout.cpu()),
            shards,
        }
    }

    pub(crate) fn shards(&self) -> usize {
        self.shards
    }

    fn gpm(&self, id: u32) -> usize {
        self.gpm_shard[id as usize]
    }

    /// The shard an event executes on: the shard of the tile whose state
    /// its handler touches first (the event's delivery site). Request-
    /// addressed events route via fields that are frozen by the time the
    /// event is scheduled (`Request::gpm` is set at issue, `Request::chain`
    /// is assigned once before the first probe departs).
    pub(crate) fn shard_of(&self, sim: &Simulation, ev: &Event) -> usize {
        match *ev {
            Event::CuIssue { gpm, .. }
            | Event::GmmuWalkDone { gpm, .. }
            | Event::GmmuRetry { gpm, .. }
            | Event::PushArrive { gpm, .. } => self.gpm(gpm),
            Event::ChainProbe { req, idx } => self.gpm(sim.reqs[req as usize].chain[idx]),
            Event::ParallelProbe { target, .. } => self.gpm(target),
            Event::IommuArrive { .. } | Event::IommuWalkDone { .. } => self.iommu_shard,
            Event::RedirectArrive { holder, .. } => self.gpm(holder),
            Event::XlatResponse { req, .. } | Event::DataDone { req } => {
                self.gpm(sim.reqs[req as usize].gpm)
            }
            Event::DataAtHome { home, .. } | Event::DataReturn { home, .. } => self.gpm(home),
        }
    }
}

impl Simulation {
    /// Runs the simulation partitioned into `shards` tile-group shards
    /// under the conservative-lookahead window protocol, producing output
    /// byte-identical to [`Simulation::run`]. `shards <= 1` *is* the serial
    /// path; larger values are clamped to the wafer's tile count.
    ///
    /// # Panics
    ///
    /// Panics (in addition to [`Simulation::run`]'s conditions) if any
    /// cross-shard message violates the lookahead bound — that would mean
    /// the mesh's minimum transit time does not actually floor cross-tile
    /// delivery, breaking the window protocol's correctness argument.
    pub fn run_with_shards(self, shards: usize) -> crate::Metrics {
        if shards <= 1 {
            return self.run();
        }
        self.run_sharded(shards)
    }

    fn run_sharded(mut self, shards: usize) -> crate::Metrics {
        // lint:allow(wallclock): events-per-second accounting only, exactly
        // as in `run()`; excluded from the deterministic serialization.
        let wall_start = std::time::Instant::now();
        let lookahead = self.mesh.min_transit_cycles();
        let map = ShardMap::new(&self, shards);
        let mut set: ShardSet<Event> = ShardSet::new(map.shards(), lookahead);
        // Seed: move the initial event population (the per-CU issue kicks
        // scheduled by the constructor) out of the engine queue into the
        // shard queues. From here on `self.queue` serves as the dispatch
        // *outbox* — always drained empty between deliveries.
        while let Some((t, ev)) = self.queue.pop() {
            let dest = map.shard_of(&self, &ev);
            set.route(dest, t, ev);
        }
        while let Some((t, ev, _shard)) = set.next_event() {
            // Re-anchor the outbox clock at the delivery time so handlers
            // (and the attached auditor) observe the same `now` as under
            // serial execution.
            self.queue.set_now(t);
            self.dispatch(t, ev);
            while let Some((at, out)) = self.queue.pop() {
                let dest = map.shard_of(&self, &out);
                set.route(dest, at, out);
            }
            debug_assert!(self.queue.total_popped() < EVENT_CAP, "event explosion");
        }
        // Window-protocol conservation, on top of the usual engine checks
        // in `finish()` (the outbox's own push/pop conservation included).
        set.drain_check();
        self.finish(wall_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsg_gpu::SystemConfig;
    use wsg_noc::Coord;

    fn sim() -> Simulation {
        use wsg_workloads::{BenchmarkId, Scale};
        Simulation::new(
            SystemConfig::paper_baseline(),
            crate::policy::PolicyKind::hdpat(),
            BenchmarkId::Spmv,
            Scale::Unit,
            7,
        )
    }

    #[test]
    fn partition_is_contiguous_and_complete() {
        let sim = sim();
        for shards in [1, 2, 4, 7, 48, 1000] {
            let map = ShardMap::new(&sim, shards);
            assert!(map.shards() >= 1 && map.shards() <= 49);
            // Shard ids ascend with the row-major GPM numbering and every
            // shard in range appears (bands are contiguous and non-empty
            // except possibly the CPU-only cut).
            let mut seen = vec![false; map.shards()];
            for id in 0..sim.cfg.layout.gpm_count() as u32 {
                seen[map.gpm(id)] = true;
            }
            seen[map.iommu_shard] = true;
            assert!(seen.iter().all(|&s| s), "empty shard with {shards} cuts");
        }
    }

    #[test]
    fn iommu_lives_on_the_cpu_tile_shard() {
        let sim = sim();
        let map = ShardMap::new(&sim, 4);
        // The CPU tile of the 7x7 paper wafer is (3, 3): linear 24 of 49.
        assert_eq!(sim.cfg.layout.cpu(), Coord::new(3, 3));
        assert_eq!(map.iommu_shard, 24 * 4 / 49);
    }

    #[test]
    fn cross_shard_is_always_cross_tile() {
        // The lookahead argument needs every cross-shard hop to traverse
        // the mesh: two endpoints in different shards must sit on
        // different tiles. Tiles host exactly one GPM or the CPU, so the
        // partition being a function of the tile is already sufficient;
        // pin it by checking GPM coords are unique and distinct from CPU.
        let sim = sim();
        let layout = &sim.cfg.layout;
        let mut coords: Vec<Coord> = (0..layout.gpm_count() as u32)
            .map(|id| layout.coord_of(id))
            .collect();
        coords.push(layout.cpu());
        let n = coords.len();
        coords.sort_by_key(|c| (c.y, c.x));
        coords.dedup();
        assert_eq!(coords.len(), n, "two event sites share a tile");
    }
}
