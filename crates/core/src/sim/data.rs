//! The post-translation data-access path.
//!
//! The remote-cacheline fetch is split into events (`DataAtHome`,
//! `DataReturn`) so that every mesh-link and HBM reservation is made in
//! event-time order. Reserving the return trip at request time would place
//! far-future reservations on links and starve packets handled later but
//! departing earlier.

use wsg_sim::Cycle;
use wsg_xlat::Vpn;

use super::{Event, ReqId, Simulation};

impl Simulation {
    /// Performs the data access for a translated request: L1 → L2 → local
    /// HBM, or a mesh round trip to the owning GPM's L2/HBM for remote
    /// cachelines (the zero-copy model of §II-A).
    pub(crate) fn start_data(&mut self, t: Cycle, req: ReqId, _pfn: wsg_xlat::Pfn) {
        let (gpm_id, cu, vaddr, vpn) = {
            let r = &self.reqs[req as usize];
            (r.gpm, r.cu, r.op.vaddr, r.vpn)
        };
        let gc = self.cfg.gpm;
        let line = vaddr & !(self.cfg.data_bytes - 1);

        // L1 (per-CU).
        let t1 = t + gc.l1_cache.hit_latency;
        {
            let slot = &mut self.gpms[gpm_id as usize].cus[cu as usize];
            if slot.l1_cache.lookup(line).is_hit() {
                self.schedule(t1, Event::DataDone { req });
                return;
            }
        }
        // L2 (shared).
        let t2 = t1 + gc.l2_cache.hit_latency;
        {
            let gpm = &mut self.gpms[gpm_id as usize];
            if gpm.l2_cache.lookup(line).is_hit() {
                gpm.cus[cu as usize].l1_cache.fill(line);
                self.schedule(t2, Event::DataDone { req });
                return;
            }
        }
        let home = self.home_of(vpn).unwrap_or(gpm_id);
        if home != gpm_id {
            self.note_remote_access(t2, vpn, gpm_id);
        }
        if home == gpm_id {
            // Local HBM.
            let gpm = &mut self.gpms[gpm_id as usize];
            let done = gpm.hbm.access(t2, self.cfg.data_bytes);
            gpm.l2_cache.fill(line);
            gpm.cus[cu as usize].l1_cache.fill(line);
            self.schedule(done, Event::DataDone { req });
        } else {
            // Remote cacheline fetch: request header to the home GPM.
            let from = self.gpm_coord(gpm_id);
            let to = self.gpm_coord(home);
            let bytes = self.cfg.xlat_req_bytes;
            self.send(from, to, bytes, t2, Event::DataAtHome { req, home });
        }
    }

    /// A remote data request reached the home GPM: probe its L2, fall back
    /// to its HBM, and schedule the return trip when the line is ready.
    pub(crate) fn on_data_at_home(&mut self, t: Cycle, req: ReqId, home: u32) {
        let line = self.reqs[req as usize].op.vaddr & !(self.cfg.data_bytes - 1);
        let l2_lat = self.cfg.gpm.l2_cache.hit_latency;
        let data_bytes = self.cfg.data_bytes;
        let served = {
            let hg = &mut self.gpms[home as usize];
            if hg.l2_cache.lookup(line).is_hit() {
                t + l2_lat
            } else {
                let d = hg.hbm.access(t + l2_lat, data_bytes);
                hg.l2_cache.fill(line);
                d
            }
        };
        self.schedule(served, Event::DataReturn { req, home });
    }

    /// Records a remote data access for the migration extension and
    /// triggers a migration when one GPM has been the page's sole consumer
    /// for a full streak.
    fn note_remote_access(&mut self, t: Cycle, vpn: Vpn, consumer: u32) {
        let Some(cfg) = self.migration else {
            return;
        };
        let streak = self
            .access_streak
            .get_or_insert_with(vpn.0, || (consumer, 0));
        if streak.0 == consumer {
            streak.1 += 1;
        } else {
            *streak = (consumer, 1);
        }
        if streak.1 >= cfg.streak_threshold {
            self.access_streak.remove(vpn.0);
            self.migrate_page(t, vpn, consumer, cfg);
        }
    }

    /// Migrates `vpn` to `dest`: moves the PTE between local page tables,
    /// transfers the page data across the mesh, and broadcasts a TLB
    /// shootdown to every GPM (the cost the paper cites for excluding
    /// migration).
    fn migrate_page(
        &mut self,
        t: Cycle,
        vpn: Vpn,
        dest: u32,
        cfg: crate::migration::MigrationConfig,
    ) {
        let Some(old_home) = self.home_of(vpn) else {
            return;
        };
        if old_home == dest {
            return;
        }
        let pfn = match self.iommu.page_table.translate(vpn) {
            Some(pte) => pte.pfn,
            None => return,
        };
        // Move the mapping between the local page tables (and their cuckoo
        // filters), and update the global table's home.
        {
            let old = &mut self.gpms[old_home as usize];
            old.page_table.unmap(vpn);
            old.cuckoo.remove(vpn.0);
            old.gmmu_cache.invalidate(vpn);
        }
        {
            let new = &mut self.gpms[dest as usize];
            // The GMMU cache may hold the VPN as an aux entry, in which case
            // the cuckoo filter already tracks it.
            if new.gmmu_cache.probe(vpn).is_none() {
                new.cuckoo.insert(vpn.0);
            }
            new.page_table.map(vpn, pfn, dest);
        }
        self.iommu.page_table.map(vpn, pfn, dest);
        self.iommu.redirection.remove(vpn);
        self.home_override.insert(vpn.0, dest);

        // Wafer-wide TLB shootdown: every GPM drops its copies; the
        // invalidation packets cross the mesh from the CPU tile.
        let cpu = self.cpu();
        let bytes = self.cfg.xlat_req_bytes;
        for g in 0..self.gpms.len() as u32 {
            let gpm = &mut self.gpms[g as usize];
            gpm.l2_tlb.invalidate(vpn);
            for cu in &mut gpm.cus {
                cu.l1_tlb.invalidate(vpn);
            }
            if g != dest && g != old_home && gpm.gmmu_cache.invalidate(vpn) {
                gpm.cuckoo.remove(vpn.0);
            }
            let to = self.gpm_coord(g);
            // Fire-and-forget invalidation traffic (accounted, no event).
            self.mesh.send(cpu, to, bytes, t);
        }
        // Bulk page transfer old home -> new home.
        let page_bytes = self.cfg.page_size.bytes();
        let from = self.gpm_coord(old_home);
        let to = self.gpm_coord(dest);
        self.mesh
            .send(from, to, page_bytes, t + cfg.install_latency);
        self.metrics.pages_migrated += 1;
    }

    /// The home GPM sends the cacheline back to the requester.
    pub(crate) fn on_data_return(&mut self, t: Cycle, req: ReqId, home: u32) {
        let gpm_id = self.reqs[req as usize].gpm;
        let line = self.reqs[req as usize].op.vaddr & !(self.cfg.data_bytes - 1);
        let from = self.gpm_coord(home);
        let to = self.gpm_coord(gpm_id);
        let bytes = self.cfg.data_bytes + 8;
        let out = self.mesh.send(from, to, bytes, t);
        // Cache the remote line locally (caches are flushed at kernel
        // boundaries in the zero-copy model, so this is safe).
        let cu = self.reqs[req as usize].cu;
        let gpm = &mut self.gpms[gpm_id as usize];
        gpm.l2_cache.fill(line);
        gpm.cus[cu as usize].l1_cache.fill(line);
        self.schedule(out.arrival, Event::DataDone { req });
    }
}
