//! GPM-side translation path and policy-specific remote resolution.

use wsg_sim::Cycle;
use wsg_xlat::{Pfn, SubmitResult, Vpn};

use crate::metrics::Resolution;
use crate::policy::PolicyKind;

use super::{Event, ReqId, Simulation, CUCKOO_LATENCY, PROBE_OVERHEAD, RETRY_BACKOFF};

impl Simulation {
    /// Walks a just-issued request down the local translation hierarchy
    /// (Fig 1b): L1 TLB → L2 TLB → cuckoo filter → GMMU cache → GMMU
    /// walkers, falling over to the remote path when the page is not local.
    pub(crate) fn start_translation(&mut self, t: Cycle, req: ReqId) {
        let (gpm_id, cu, vpn) = {
            let r = &self.reqs[req as usize];
            (r.gpm, r.cu, r.vpn)
        };
        let gc = self.cfg.gpm;
        let gpm = &mut self.gpms[gpm_id as usize];

        // L1 TLB.
        let t1 = t + gc.l1_tlb.latency;
        if let Some(pfn) = gpm.cus[cu as usize].l1_tlb.lookup(vpn) {
            self.metrics.local_translations += 1;
            self.start_data(t1, req, pfn);
            return;
        }
        // L2 TLB.
        let t2 = t1 + gc.l2_tlb.latency;
        if let Some(pfn) = gpm.l2_tlb.lookup(vpn) {
            self.metrics.local_translations += 1;
            gpm.cus[cu as usize].l1_tlb.fill(vpn, pfn, false);
            self.start_data(t2, req, pfn);
            return;
        }
        // Cuckoo filter: definite-absence check for the local structures.
        let t3 = t2 + CUCKOO_LATENCY;
        if gpm.cuckoo.contains(vpn.0) {
            let t4 = t3 + gc.gmmu_cache.latency;
            if let Some((pfn, prefetched)) = gpm.gmmu_cache.lookup_meta(vpn) {
                self.metrics.local_translations += 1;
                if prefetched {
                    self.metrics.prefetches_used += 1;
                }
                gpm.l2_tlb.fill(vpn, pfn, false);
                gpm.cus[cu as usize].l1_tlb.fill(vpn, pfn, false);
                self.start_data(t4, req, pfn);
                return;
            }
            if !gpm.page_table.contains(vpn) {
                // False positive: the filter promised locality the page
                // table cannot honour. The request still pays the full
                // local walk before going remote (§II-B case 3).
                self.metrics.cuckoo_false_positives += 1;
            }
            self.submit_gmmu_walk(t4, gpm_id, req);
        } else {
            // Definite miss: bypass the local walk entirely (§II-B case 1).
            self.start_remote(t3, req, false);
        }
    }

    /// Submits a GMMU page-table walk, queueing or backing off when the
    /// walker pool is saturated.
    pub(crate) fn submit_gmmu_walk(&mut self, t: Cycle, gpm_id: u32, req: ReqId) {
        let walk_latency = self.cfg.gpm.walk_latency;
        let gpm = &mut self.gpms[gpm_id as usize];
        match gpm.walkers.submit(req) {
            SubmitResult::Started => {
                self.schedule(t + walk_latency, Event::GmmuWalkDone { gpm: gpm_id, req });
            }
            SubmitResult::Queued => {}
            SubmitResult::Rejected => {
                self.schedule(t + RETRY_BACKOFF, Event::GmmuRetry { gpm: gpm_id, req });
            }
        }
    }

    /// A GMMU walk finished at `gpm_id`. Resolves locally mapped pages,
    /// falls over to the remote path for cuckoo false positives, and replies
    /// to the requester for forwarded (Trans-FW / probe-walk) requests.
    pub(crate) fn on_gmmu_walk_done(&mut self, t: Cycle, gpm_id: u32, req: ReqId) {
        let walk_latency = self.cfg.gpm.walk_latency;
        // Free the walker; a promoted queue head starts walking now.
        if let Some(next) = self.gpms[gpm_id as usize].walkers.finish() {
            self.schedule(
                t + walk_latency,
                Event::GmmuWalkDone {
                    gpm: gpm_id,
                    req: next,
                },
            );
        }
        self.metrics.local_walks += 1;
        let vpn = self.reqs[req as usize].vpn;
        let requester = self.reqs[req as usize].gpm;
        let pte = self.gpms[gpm_id as usize].page_table.translate(vpn);
        // A finishing walk satisfies identical queued walks too (the GMMU's
        // MSHRs merge same-VPN walks).
        let mut dups = std::mem::take(&mut self.walk_scratch);
        {
            let reqs = &self.reqs;
            self.gpms[gpm_id as usize]
                .walkers
                .drain_matching_into(|r| reqs[*r as usize].vpn == vpn, &mut dups);
        }
        for &dup in &dups {
            self.finish_gmmu_walk(t, gpm_id, dup, vpn, pte);
        }
        dups.clear();
        self.walk_scratch = dups;
        let _ = requester;
        self.finish_gmmu_walk(t, gpm_id, req, vpn, pte);
    }

    /// Completes one GMMU walk outcome for `req` (shared by the walked
    /// request and any same-VPN walks it satisfied).
    fn finish_gmmu_walk(
        &mut self,
        t: Cycle,
        gpm_id: u32,
        req: ReqId,
        vpn: Vpn,
        pte: Option<wsg_xlat::Pte>,
    ) {
        let requester = self.reqs[req as usize].gpm;
        match pte {
            Some(pte) => {
                self.fill_gmmu_cache(gpm_id, vpn, pte.pfn, false);
                if requester == gpm_id {
                    // Local translation completed. The request may have gone
                    // remote earlier (cuckoo false negative) and hold an
                    // MSHR entry, so completion goes through the common
                    // delivery path.
                    self.metrics.local_translations += 1;
                    self.deliver_translation(t, req, pte.pfn, None);
                } else {
                    // Forwarded walk on behalf of a remote requester.
                    let from = self.gpm_coord(gpm_id);
                    let to = self.gpm_coord(requester);
                    let bytes = self.cfg.xlat_resp_bytes;
                    self.send(
                        from,
                        to,
                        bytes,
                        t,
                        Event::XlatResponse {
                            req,
                            pfn: pte.pfn,
                            source: Resolution::PeerCache,
                        },
                    );
                }
            }
            None => {
                if requester == gpm_id {
                    // False-positive local walk: now go remote.
                    self.start_remote(t, req, false);
                } else {
                    // Forwarded walk missed (stale forward): escalate to the
                    // IOMMU.
                    let from = self.gpm_coord(gpm_id);
                    let cpu = self.cpu();
                    let bytes = self.cfg.xlat_req_bytes;
                    self.send(from, cpu, bytes, t, Event::IommuArrive { req });
                }
            }
        }
    }

    /// Starts the remote (non-local) translation path according to the
    /// active policy. `is_retry` suppresses double-counting when re-entering
    /// after back-pressure.
    pub(crate) fn start_remote(&mut self, t: Cycle, req: ReqId, is_retry: bool) {
        let (gpm_id, vpn) = {
            let r = &self.reqs[req as usize];
            (r.gpm, r.vpn)
        };
        let mshr_cap = self.cfg.gpm.l2_tlb.mshrs.max(1);
        {
            let gpm = &mut self.gpms[gpm_id as usize];
            if let Some(waiters) = gpm.remote_mshr.get_mut(vpn.0) {
                // An identical request is in flight: coalesce (secondary
                // miss in the L2 TLB MSHR).
                waiters.push(req);
                self.metrics.remote_coalesced += 1;
                return;
            }
            if gpm.remote_mshr.len() >= mshr_cap {
                // All MSHRs busy: park the request; it re-enters when an
                // entry frees (no polling).
                self.metrics.remote_retries += 1;
                gpm.mshr_stalled.push_back(req);
                return;
            }
            gpm.remote_mshr.insert(vpn.0, Vec::new());
        }
        if !is_retry || self.reqs[req as usize].remote_started.is_none() {
            self.metrics.remote_requests += 1;
        }
        self.reqs[req as usize].remote_started = Some(t);

        let from = self.gpm_coord(gpm_id);
        let cpu = self.cpu();
        let req_bytes = self.cfg.xlat_req_bytes;
        match self.policy {
            PolicyKind::Naive | PolicyKind::Barre => {
                self.send(from, cpu, req_bytes, t, Event::IommuArrive { req });
            }
            PolicyKind::TransFw => {
                // Trans-FW is modelled the way the HDPAT paper positions it:
                // a local/IOMMU-side optimization (in-flight result
                // forwarding at the IOMMU); remote requests still converge
                // on the IOMMU. See DESIGN.md §1.
                self.send(from, cpu, req_bytes, t, Event::IommuArrive { req });
            }
            PolicyKind::RouteCache { .. }
            | PolicyKind::Concentric { .. }
            | PolicyKind::Distributed
            | PolicyKind::Valkyrie => {
                // The chain lives in the frozen per-GPM `chains` slab; probes
                // carry only `(req, idx)` and index back into it, so nothing
                // is cloned into the request.
                match self.chains[gpm_id as usize].first().copied() {
                    None => self.send(from, cpu, req_bytes, t, Event::IommuArrive { req }),
                    Some(first) => {
                        let to = self.gpm_coord(first);
                        self.send(from, to, req_bytes, t, Event::ChainProbe { req, idx: 0 });
                    }
                }
            }
            PolicyKind::Hdpat(_) => {
                let map = self.concentric.as_ref().expect("HDPAT needs layer map");
                let targets = map.aux_gpms(vpn); // innermost first
                for i in 0..targets.len() {
                    let target = targets[i];
                    // Dedup against the already-probed prefix (layers can
                    // collapse onto one GPM near the wafer edge) — the list
                    // is Table-I small, so the scan needs no side set.
                    if targets[..i].contains(&target) {
                        continue;
                    }
                    let innermost = i == 0;
                    let to = self.gpm_coord(target);
                    self.send(
                        from,
                        to,
                        req_bytes,
                        t,
                        Event::ParallelProbe {
                            req,
                            target,
                            innermost,
                        },
                    );
                }
            }
        }
    }

    /// Probes the translation structures of `target` on behalf of `req`.
    /// Returns `Some((pfn, prefetched, extra_latency))` on a cache hit,
    /// `None` on a miss (after `extra_latency` has been charged by the
    /// caller via the returned latency in the miss path below).
    fn probe_gpm(&mut self, target: u32, vpn: Vpn) -> (Option<(Pfn, bool)>, Cycle) {
        let gc = self.cfg.gpm;
        // Valkyrie probes the neighbour's L2 TLB rather than its GMMU cache.
        if matches!(self.policy, PolicyKind::Valkyrie) {
            let lat = gc.l2_tlb.latency;
            let hit = self.gpms[target as usize]
                .l2_tlb
                .probe(vpn)
                .map(|p| (p, false));
            return (hit, lat);
        }
        let gpm = &mut self.gpms[target as usize];
        let mut lat = CUCKOO_LATENCY;
        if !gpm.cuckoo.contains(vpn.0) {
            return (None, lat);
        }
        lat += gc.gmmu_cache.latency;
        (gpm.gmmu_cache.lookup_meta(vpn), lat)
    }

    /// A serial probe (route / concentric / distributed / Valkyrie /
    /// Trans-FW) arrives at `chain[idx]`.
    pub(crate) fn on_chain_probe(&mut self, t: Cycle, req: ReqId, idx: usize) {
        let (vpn, requester) = {
            let r = &self.reqs[req as usize];
            (r.vpn, r.gpm)
        };
        let target = self.chains[requester as usize][idx];
        let (hit, mut lat) = self.probe_gpm(target, vpn);
        lat += PROBE_OVERHEAD;
        let resp_bytes = self.cfg.xlat_resp_bytes;
        let req_bytes = self.cfg.xlat_req_bytes;
        if let Some((pfn, prefetched)) = hit {
            let from = self.gpm_coord(target);
            let to = self.gpm_coord(requester);
            let source = if prefetched {
                Resolution::Proactive
            } else {
                Resolution::PeerCache
            };
            self.send(
                from,
                to,
                resp_bytes,
                t + lat,
                Event::XlatResponse { req, pfn, source },
            );
            return;
        }
        // The probed GPM may own the page (route-based caching checks the
        // local page table too; Trans-FW forwards the walk here on purpose).
        if self.gpms[target as usize].page_table.contains(vpn) {
            self.submit_gmmu_walk(t + lat, target, req);
            return;
        }
        self.reqs[req as usize].probed.push(target);
        let next = idx + 1;
        let from = self.gpm_coord(target);
        if let Some(next_gpm) = self.chains[requester as usize].get(next).copied() {
            let to = self.gpm_coord(next_gpm);
            self.send(
                from,
                to,
                req_bytes,
                t + lat,
                Event::ChainProbe { req, idx: next },
            );
        } else {
            let cpu = self.cpu();
            self.send(from, cpu, req_bytes, t + lat, Event::IommuArrive { req });
        }
    }

    /// An HDPAT concurrent layer probe arrives at `target` (§IV-D): hit →
    /// reply; miss at the innermost layer → forward to the IOMMU; miss at an
    /// outer layer → drop (the innermost copy of the probe carries on).
    pub(crate) fn on_parallel_probe(&mut self, t: Cycle, req: ReqId, target: u32, innermost: bool) {
        let (vpn, requester) = {
            let r = &self.reqs[req as usize];
            (r.vpn, r.gpm)
        };
        let (hit, lat) = self.probe_gpm(target, vpn);
        if let Some((pfn, prefetched)) = hit {
            let from = self.gpm_coord(target);
            let to = self.gpm_coord(requester);
            let bytes = self.cfg.xlat_resp_bytes;
            let source = if prefetched {
                Resolution::Proactive
            } else {
                Resolution::PeerCache
            };
            self.send(
                from,
                to,
                bytes,
                t + lat,
                Event::XlatResponse { req, pfn, source },
            );
            return;
        }
        if self.gpms[target as usize].page_table.contains(vpn) {
            // The aux GPM happens to own the page: serve it with a local walk.
            self.submit_gmmu_walk(t + lat, target, req);
            return;
        }
        if innermost {
            let from = self.gpm_coord(target);
            let cpu = self.cpu();
            let bytes = self.cfg.xlat_req_bytes;
            self.send(from, cpu, bytes, t + lat, Event::IommuArrive { req });
        }
    }

    /// The final translation response arrives back at the requesting GPM:
    /// record the resolution, fill the TLBs, release the MSHR waiters, and
    /// start every coalesced request's data access.
    pub(crate) fn on_xlat_response(&mut self, t: Cycle, req: ReqId, pfn: Pfn, source: Resolution) {
        if self.reqs[req as usize].resolved {
            return; // a faster concurrent probe already answered
        }
        self.metrics.record_resolution(source);
        if source == Resolution::Proactive {
            self.metrics.prefetches_used += 1;
        }
        if let Some(start) = self.reqs[req as usize].remote_started {
            let rtt = (t - start) as f64;
            self.metrics.remote_rtt.record(rtt);
            // The "remote" span covers exactly this interval, so a trace's
            // per-stage sum reconciles with the remote_rtt summary.
            #[cfg(feature = "trace")]
            if let Some(tr) = &self.tracer {
                let r = &self.reqs[req as usize];
                tr.with(|s| s.complete("remote", start, t - start, r.gpm as u64, r.vpn.0));
            }
            match source {
                Resolution::PeerCache => self.metrics.rtt_peer.record(rtt),
                Resolution::Redirection => self.metrics.rtt_redirection.record(rtt),
                Resolution::Proactive => self.metrics.rtt_proactive.record(rtt),
                Resolution::Iommu => self.metrics.rtt_iommu.record(rtt),
            }
        }
        self.deliver_translation(t, req, pfn, Some(source));
    }

    /// Delivers a completed translation to the requesting GPM: marks the
    /// request resolved, fills its TLBs, starts the data access, releases
    /// every request coalesced behind it, and admits parked requests into
    /// the freed MSHR entry. `source` is `None` for translations that
    /// completed through the local path.
    pub(crate) fn deliver_translation(
        &mut self,
        t: Cycle,
        req: ReqId,
        pfn: Pfn,
        source: Option<Resolution>,
    ) {
        self.reqs[req as usize].resolved = true;
        let (gpm_id, cu, vpn) = {
            let r = &self.reqs[req as usize];
            (r.gpm, r.cu, r.vpn)
        };
        let _ = source;
        // Whole-translation span: issue to PFN delivery at the requester.
        #[cfg(feature = "trace")]
        if let Some(tr) = &self.tracer {
            let issued = self.reqs[req as usize].issued;
            tr.with(|s| s.complete("xlat", issued, t - issued, gpm_id as u64, vpn.0));
        }

        // Opportunistic fill of the GPMs probed on the way (route-based and
        // concentric caching store the PTE as the response returns, §IV-B/C).
        let fill_probed = matches!(
            self.policy,
            PolicyKind::RouteCache { .. } | PolicyKind::Concentric { .. } | PolicyKind::Distributed
        );
        if fill_probed {
            let probed = std::mem::take(&mut self.reqs[req as usize].probed);
            for target in probed {
                self.fill_gmmu_cache(target, vpn, pfn, false);
            }
        }
        {
            let gpm = &mut self.gpms[gpm_id as usize];
            gpm.l2_tlb.fill(vpn, pfn, false);
            gpm.cus[cu as usize].l1_tlb.fill(vpn, pfn, false);
        }
        self.start_data(t, req, pfn);
        // Release coalesced waiters.
        let waiters = self.gpms[gpm_id as usize]
            .remote_mshr
            .remove(vpn.0)
            .unwrap_or_default();
        for w in waiters {
            self.reqs[w as usize].resolved = true;
            let wcu = self.reqs[w as usize].cu;
            self.gpms[gpm_id as usize].cus[wcu as usize]
                .l1_tlb
                .fill(vpn, pfn, false);
            self.start_data(t, w, pfn);
        }
        // The freed MSHR entry admits parked requests (each pop either
        // allocates the freed entry or coalesces into a live one).
        let mshr_cap = self.cfg.gpm.l2_tlb.mshrs.max(1);
        while self.gpms[gpm_id as usize].remote_mshr.len() < mshr_cap {
            let Some(w) = self.gpms[gpm_id as usize].mshr_stalled.pop_front() else {
                break;
            };
            self.start_remote(t, w, true);
        }
    }

    /// Fills a GPM's GMMU cache with a (possibly remote) PTE, maintaining
    /// the cuckoo filter: the new VPN is inserted, and an evicted VPN that
    /// is not in the local page table is removed from the filter.
    pub(crate) fn fill_gmmu_cache(&mut self, gpm_id: u32, vpn: Vpn, pfn: Pfn, prefetched: bool) {
        let gpm = &mut self.gpms[gpm_id as usize];
        let was_present = gpm.gmmu_cache.probe(vpn).is_some();
        let evicted = if prefetched {
            gpm.gmmu_cache.fill_speculative(vpn, pfn)
        } else {
            gpm.gmmu_cache.fill(vpn, pfn, false)
        };
        // Keep the filter paired 1:1 with cache residency: insert only on a
        // fresh fill (a refresh must not duplicate the fingerprint — a later
        // eviction would remove one copy and leave a phantom), and remove
        // only entries that were inserted (local pages were inserted at
        // startup and never leave).
        if !was_present && !gpm.page_table.contains(vpn) {
            gpm.cuckoo.insert(vpn.0);
        }
        if let Some((evpn, _)) = evicted {
            if !gpm.page_table.contains(evpn) {
                gpm.cuckoo.remove(evpn.0);
            }
        }
    }

    /// A pushed PTE (demand or proactive) arrives at an auxiliary GPM.
    pub(crate) fn on_push_arrive(&mut self, gpm_id: u32, vpn: Vpn, pfn: Pfn, prefetched: bool) {
        self.fill_gmmu_cache(gpm_id, vpn, pfn, prefetched);
    }
}
