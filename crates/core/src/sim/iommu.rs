//! IOMMU-side handling: arrival, redirection, PW-queue, walks, revisit
//! coalescing, proactive delivery, and selective push.

use wsg_mem::MshrOutcome;
use wsg_sim::Cycle;
use wsg_xlat::{SubmitResult, Vpn};

use crate::metrics::Resolution;

use super::{Event, ReqId, Simulation};

/// IOMMU-TLB lookup latency (Fig 19 variant).
const IOMMU_TLB_LATENCY: Cycle = 8;
/// Redirection-table lookup latency.
const REDIR_LATENCY: Cycle = 4;

impl Simulation {
    /// A translation request arrives at the IOMMU (step ① of Fig 12).
    pub(crate) fn on_iommu_arrive(&mut self, t: Cycle, req: ReqId) {
        if self.reqs[req as usize].resolved {
            // A concurrent layer probe already answered; drop the forwarded
            // copy instead of walking redundantly. If the request held a
            // place in the TLB stall queue, pass its admission along so the
            // queue keeps draining.
            if let Some(w) = self.iommu.tlb_stalled.pop_front() {
                self.schedule(t, Event::IommuArrive { req: w });
            }
            return;
        }
        let vpn = self.reqs[req as usize].vpn;
        if self.reqs[req as usize].iommu_arrived.is_none() {
            self.reqs[req as usize].iommu_arrived = Some(t);
            // Observation traces (Figs 6-8) are collected at the IOMMU.
            self.metrics.iommu_reuse.touch(vpn.0);
            if let Some(prev) = self.last_iommu_vpn {
                self.metrics.vpn_delta.record(prev.distance(vpn));
            }
            self.last_iommu_vpn = Some(vpn);
        }

        // Fig 19 variant: a conventional TLB (with MSHRs) instead of the
        // redirection table.
        if self.iommu.tlb.is_some() {
            // A request that already stalled on full MSHRs holds its place
            // in the stall order and may not re-probe the TLB (it is blocked
            // outside the structure, per the paper).
            let hit = if self.reqs[req as usize].redirect_failed {
                None
            } else {
                self.iommu.tlb.as_mut().expect("checked").lookup_meta(vpn)
            };
            if let Some((pfn, prefetched)) = hit {
                let to = self.gpm_coord(self.reqs[req as usize].gpm);
                let cpu = self.cpu();
                let bytes = self.cfg.xlat_resp_bytes;
                let source = if prefetched {
                    Resolution::Proactive
                } else {
                    Resolution::Redirection
                };
                self.send(
                    cpu,
                    to,
                    bytes,
                    t + IOMMU_TLB_LATENCY,
                    Event::XlatResponse { req, pfn, source },
                );
                return;
            }
            // TLB miss: the request must hold an MSHR before it may proceed
            // to the walkers; when all MSHRs are busy it stalls outside the
            // TLB (the concurrency limit the redirection table avoids).
            match self
                .iommu
                .tlb_mshr
                .as_mut()
                .expect("TLB variant has MSHRs")
                .register(vpn.0, req)
            {
                MshrOutcome::Primary => { /* proceed to the walk */ }
                MshrOutcome::Secondary => return, // woken when the walk fills the TLB
                MshrOutcome::Full => {
                    // Blocked outside the TLB until an MSHR frees; no
                    // polling — a walk completion admits the queue head.
                    self.metrics.iommu_tlb_stalls += 1;
                    self.reqs[req as usize].redirect_failed = true;
                    self.iommu.tlb_stalled.push_back(req);
                    return;
                }
            }
        } else if matches!(self.policy, crate::policy::PolicyKind::TransFw) {
            // Trans-FW: piggyback on an identical walk, but only while that
            // walk is actually running (the forwarding structure covers the
            // 16 active walkers, not the whole queue).
            if let Some(waiters) = self.iommu.inflight.get_mut(vpn.0) {
                waiters.push(req);
                return;
            }
        } else if self.hdpat().is_some_and(|h| h.redirection)
            && !self.reqs[req as usize].redirect_failed
        {
            // Redirection table check (step ② of Fig 12).
            if let Some(holder) = self.iommu.redirection.lookup(vpn) {
                let cpu = self.cpu();
                let to = self.gpm_coord(holder);
                let bytes = self.cfg.xlat_req_bytes;
                self.send(
                    cpu,
                    to,
                    bytes,
                    t + REDIR_LATENCY,
                    Event::RedirectArrive { req, holder },
                );
                return;
            }
        }
        self.enqueue_walk(t, req);
    }

    /// Places a request into the PW-queue (step ③), or the pre-queue buffer
    /// when the PW-queue is full.
    fn enqueue_walk(&mut self, t: Cycle, req: ReqId) {
        let walk_latency = self.cfg.iommu.walk_latency;
        match self.iommu.walkers.submit(req) {
            SubmitResult::Started => {
                self.reqs[req as usize].pw_entered = Some(t);
                self.reqs[req as usize].walk_started = Some(t);
                self.note_walk_started(req);
                self.schedule(t + walk_latency, Event::IommuWalkDone { req });
            }
            SubmitResult::Queued => {
                self.reqs[req as usize].pw_entered = Some(t);
            }
            SubmitResult::Rejected => {
                self.iommu.pre_queue.push_back(req);
            }
        }
        self.sample_iommu_buffer(t);
    }

    /// Registers a just-started walk in Trans-FW's in-flight table.
    fn note_walk_started(&mut self, req: ReqId) {
        if matches!(self.policy, crate::policy::PolicyKind::TransFw) {
            let vpn = self.reqs[req as usize].vpn;
            self.iommu.inflight.get_or_insert_with(vpn.0, Vec::new);
        }
    }

    fn sample_iommu_buffer(&mut self, t: Cycle) {
        let occupancy = (self.iommu.pre_queue.len() + self.iommu.walkers.queue_len()) as u64;
        self.metrics.iommu_buffer.record(t, occupancy);
    }

    /// A redirected request arrives at its holder GPM (step ②→peer): serve
    /// from the holder's GMMU cache or bounce back to the IOMMU if the entry
    /// was evicted meanwhile.
    pub(crate) fn on_redirect_arrive(&mut self, t: Cycle, req: ReqId, holder: u32) {
        let (vpn, requester) = {
            let r = &self.reqs[req as usize];
            (r.vpn, r.gpm)
        };
        let lat = self.cfg.gpm.gmmu_cache.latency;
        let hit = self.gpms[holder as usize].gmmu_cache.lookup_meta(vpn);
        let from = self.gpm_coord(holder);
        match hit {
            Some((pfn, prefetched)) => {
                let to = self.gpm_coord(requester);
                let bytes = self.cfg.xlat_resp_bytes;
                let source = if prefetched {
                    Resolution::Proactive
                } else {
                    Resolution::Redirection
                };
                self.send(
                    from,
                    to,
                    bytes,
                    t + lat,
                    Event::XlatResponse { req, pfn, source },
                );
            }
            None => {
                // Stale redirection: drop the entry and walk after all.
                self.metrics.redirect_misses += 1;
                self.iommu.redirection.remove(vpn);
                self.reqs[req as usize].redirect_failed = true;
                let cpu = self.cpu();
                let bytes = self.cfg.xlat_req_bytes;
                self.send(from, cpu, bytes, t + lat, Event::IommuArrive { req });
            }
        }
    }

    /// An IOMMU page-table walk finished (steps ④-⑦ of Fig 12).
    pub(crate) fn on_iommu_walk_done(&mut self, t: Cycle, req: ReqId) {
        let walk_latency = self.cfg.iommu.walk_latency;
        // Free the walker; the promoted PW-queue head starts walking.
        if let Some(next) = self.iommu.walkers.finish() {
            self.reqs[next as usize].walk_started = Some(t);
            self.note_walk_started(next);
            self.schedule(t + walk_latency, Event::IommuWalkDone { req: next });
        }
        // Refill the PW-queue from the pre-queue buffer.
        while !self.iommu.pre_queue.is_empty() && !self.iommu.walkers.is_saturated() {
            let r = self.iommu.pre_queue.pop_front().expect("non-empty");
            self.reqs[r as usize].pw_entered = Some(t);
            match self.iommu.walkers.submit(r) {
                SubmitResult::Started => {
                    self.reqs[r as usize].walk_started = Some(t);
                    self.note_walk_started(r);
                    self.schedule(t + walk_latency, Event::IommuWalkDone { req: r });
                }
                SubmitResult::Queued => {}
                SubmitResult::Rejected => unreachable!("checked saturation"),
            }
        }
        self.sample_iommu_buffer(t);

        self.metrics.iommu_walks += 1;
        self.metrics.iommu_served.record(t, 1);
        let vpn = self.reqs[req as usize].vpn;
        let pte = self
            .iommu
            .page_table
            .translate_counted(vpn)
            .unwrap_or_else(|| panic!("IOMMU walk of unmapped page {vpn}"));
        self.record_iommu_latency(t, req, true);

        // Trans-FW: forward the just-resolved walk to its piggybacked
        // requests.
        if matches!(self.policy, crate::policy::PolicyKind::TransFw) {
            for w in self.iommu.inflight.remove(vpn.0).unwrap_or_default() {
                self.metrics.iommu_coalesced += 1;
                self.respond_from_iommu(t, w, pte.pfn, Resolution::Iommu);
            }
        }

        // PW-queue revisit (step ⑥): complete identical pending requests.
        let hd = self.hdpat();
        let revisit = matches!(self.policy, crate::policy::PolicyKind::Barre)
            || hd.is_some_and(|h| h.queue_revisit);
        if revisit {
            let mut same = std::mem::take(&mut self.walk_scratch);
            {
                let reqs = &self.reqs;
                self.iommu
                    .walkers
                    .drain_matching_into(|r| reqs[*r as usize].vpn == vpn, &mut same);
            }
            for &r in &same {
                self.metrics.iommu_coalesced += 1;
                self.record_iommu_latency(t, r, false);
                self.respond_from_iommu(t, r, pte.pfn, Resolution::Iommu);
            }
            same.clear();
            self.walk_scratch = same;
        }

        // Proactive delivery (§IV-G) and selective push (§IV-F).
        if let Some(h) = hd {
            let map_available = self.concentric.is_some();
            // Selective push of the demanded PTE once its walk count passes
            // the threshold; one copy per caching layer.
            if map_available && pte.access_count >= h.push_threshold {
                self.push_to_layers(t, vpn, false);
                if h.redirection && self.iommu.tlb.is_none() {
                    let holder = self.concentric.as_ref().expect("checked").aux_gpm(vpn, 1);
                    self.iommu.redirection.insert(vpn, holder);
                }
            }
            // Prefetch VPN N+1 … N+(degree-1); adjacent PTEs share the walked
            // leaf, so no extra walk latency is charged.
            for k in 1..h.prefetch_degree as u64 {
                let nvpn = vpn.offset(k);
                if self.iommu.page_table.contains(nvpn) {
                    self.metrics.prefetches_issued += 1;
                    if map_available {
                        self.push_to_layers(t, nvpn, true);
                        // The paper updates the redirection table for VPN
                        // N+1 only (§IV-G), limiting prefetch pollution.
                        if k == 1 && h.redirection && self.iommu.tlb.is_none() {
                            let holder =
                                self.concentric.as_ref().expect("checked").aux_gpm(nvpn, 1);
                            self.iommu.redirection.insert(nvpn, holder);
                        }
                    }
                    if let Some(tlb) = self.iommu.tlb.as_mut() {
                        // Fig 19: proactive entries flush the IOMMU TLB.
                        let pfn = self.iommu.page_table.translate(nvpn).expect("mapped").pfn;
                        tlb.fill(nvpn, pfn, true);
                    }
                }
            }
        }

        // Fig 19 variant: fill the TLB and wake MSHR waiters.
        if self.iommu.tlb.is_some() {
            self.iommu
                .tlb
                .as_mut()
                .expect("checked")
                .fill(vpn, pte.pfn, false);
            let waiters = self
                .iommu
                .tlb_mshr
                .as_mut()
                .expect("TLB variant has MSHRs")
                .complete(vpn.0);
            for w in waiters {
                if w != req {
                    self.record_iommu_latency(t, w, false);
                    self.respond_from_iommu(t, w, pte.pfn, Resolution::Iommu);
                }
            }
            // The freed MSHR entry admits the stall-queue head (FIFO); it
            // proceeds straight to MSHR registration.
            if let Some(w) = self.iommu.tlb_stalled.pop_front() {
                self.schedule(t, Event::IommuArrive { req: w });
            }
        }

        self.respond_from_iommu(t, req, pte.pfn, Resolution::Iommu);
    }

    /// Pushes a PTE copy to the designated auxiliary GPM of every caching
    /// layer (one copy per layer, §IV-F).
    fn push_to_layers(&mut self, t: Cycle, vpn: Vpn, prefetched: bool) {
        let pfn = self.iommu.page_table.translate(vpn).expect("mapped").pfn;
        let targets = self
            .concentric
            .as_ref()
            .expect("HDPAT layer map")
            .aux_gpms(vpn);
        let cpu = self.cpu();
        let bytes = self.cfg.xlat_resp_bytes;
        let mut sent = Vec::new();
        for target in targets {
            if sent.contains(&target) {
                continue;
            }
            sent.push(target);
            self.metrics.ptes_pushed += 1;
            let to = self.gpm_coord(target);
            self.send(
                cpu,
                to,
                bytes,
                t,
                Event::PushArrive {
                    gpm: target,
                    vpn,
                    pfn,
                    prefetched,
                },
            );
        }
    }

    fn respond_from_iommu(&mut self, t: Cycle, req: ReqId, pfn: wsg_xlat::Pfn, source: Resolution) {
        let to = self.gpm_coord(self.reqs[req as usize].gpm);
        let cpu = self.cpu();
        let bytes = self.cfg.xlat_resp_bytes;
        self.send(cpu, to, bytes, t, Event::XlatResponse { req, pfn, source });
    }

    /// Records the Fig 3 per-request latency components. `walked` marks
    /// requests that performed their own walk (coalesced requests get a
    /// zero-walk share).
    fn record_iommu_latency(&mut self, t: Cycle, req: ReqId, walked: bool) {
        let r = &self.reqs[req as usize];
        let (Some(arrived), Some(entered)) = (r.iommu_arrived, r.pw_entered) else {
            return;
        };
        let started = if walked {
            r.walk_started.unwrap_or(t)
        } else {
            t
        };
        self.metrics
            .iommu_latency
            .add("pre-queue", entered.saturating_sub(arrived));
        self.metrics
            .iommu_latency
            .add("ptw-queue", started.saturating_sub(entered));
        self.metrics
            .iommu_latency
            .add("walk", t.saturating_sub(started));
        // Mirror the three Breakdown components as spans at the IOMMU walker
        // site, so a trace shows the same decomposition as Fig 3.
        #[cfg(feature = "trace")]
        if let Some(tr) = &self.tracer {
            let site = self.gpms.len() as u64 * (8 + 64);
            let pre = entered.saturating_sub(arrived);
            let queue = started.saturating_sub(entered);
            let walk = t.saturating_sub(started);
            tr.with(|s| {
                s.complete("iommu.pre_queue", arrived, pre, site, req as u64);
                s.complete("iommu.ptw_queue", entered, queue, site, req as u64);
                s.complete("iommu.walk", started, walk, site, req as u64);
            });
        }
    }
}
