//! The full-system discrete-event simulator.
//!
//! One [`Simulation`] owns the wafer: per-GPM translation and memory
//! hierarchies, the central IOMMU, the mesh, the in-flight request table and
//! a single event queue. Handlers are grouped by concern:
//!
//! * `translate` — the GPM-side translation path (TLBs, cuckoo filter,
//!   GMMU walks) and the policy-specific remote path (probe chains, parallel
//!   layer probes).
//! * `iommu` — arrival, redirection, PW-queue, walks, revisit coalescing,
//!   proactive delivery and selective push.
//! * `data` — the post-translation data access (caches, HBM, remote
//!   cacheline fetches).
//! * `shard` — the tile-group sharded drive with conservative lookahead
//!   ([`Simulation::run_with_shards`], DESIGN.md §15); byte-identical to
//!   the serial drive by construction.

mod data;
mod iommu;
mod shard;
mod translate;

use std::collections::VecDeque;

use wsg_gpu::{AddressSpace, CuPipeline, MemoryOp, SystemConfig, WorkgroupTrace};
use wsg_mem::{Hbm, Mshr, SetAssocCache};
use wsg_noc::{Coord, Mesh};
use wsg_sim::{Cycle, EventQueue, HashIndex};
use wsg_workloads::{BenchmarkId, Scale};
use wsg_xlat::{CuckooFilter, PageTable, Pfn, RedirectionTable, Tlb, TlbConfig, Vpn, WalkerPool};

use crate::layers::{self, ConcentricMap};
use crate::metrics::{Metrics, Resolution};
use crate::migration::MigrationConfig;
use crate::policy::{HdpatConfig, PolicyKind};

/// Cuckoo-filter query latency in cycles.
pub(crate) const CUCKOO_LATENCY: Cycle = 2;
/// Retry backoff when an MSHR or walker queue is full.
pub(crate) const RETRY_BACKOFF: Cycle = 32;
/// Router ejection + port scheduling overhead charged per serial probe
/// attempt (the repeated-translation-attempt penalty of §IV-B).
pub(crate) const PROBE_OVERHEAD: Cycle = 30;
/// Aggregation window of the IOMMU time series.
pub(crate) const TIME_WINDOW: Cycle = 10_000;
/// Safety cap on the event count: blowing past it indicates a scheduling
/// bug (an event storm), not a big workload. Checked by both the serial and
/// the sharded drive in debug builds.
pub(crate) const EVENT_CAP: u64 = 2_000_000_000;

/// Index into the in-flight request table.
pub(crate) type ReqId = u32;

/// One compute unit: issue pipeline plus its private L1 TLB and L1 cache.
#[derive(Debug)]
pub(crate) struct CuSlot {
    pub pipeline: CuPipeline,
    pub l1_tlb: Tlb,
    pub l1_cache: SetAssocCache,
}

/// Per-GPM simulator state.
#[derive(Debug)]
pub(crate) struct GpmState {
    pub cus: Vec<CuSlot>,
    pub l2_tlb: Tlb,
    pub cuckoo: CuckooFilter,
    /// Last-level TLB / GMMU cache; holds local translations *and* the
    /// auxiliary (pushed) remote PTEs without priority difference (§V-A).
    pub gmmu_cache: Tlb,
    pub walkers: WalkerPool<ReqId>,
    pub page_table: PageTable,
    pub l2_cache: SetAssocCache,
    pub hbm: Hbm,
    /// L2-TLB MSHR for outgoing remote translations: VPN → waiters
    /// coalesced behind the primary request. A seeded [`HashIndex`] keyed by
    /// raw VPN; the stalled-CU panic formatter sorts on demand, so reporting
    /// stays deterministic (lint rules d1/d6).
    pub remote_mshr: HashIndex<Vec<ReqId>>,
    /// Requests stalled because every MSHR entry is occupied; drained in
    /// FIFO order as entries free up.
    pub mshr_stalled: VecDeque<ReqId>,
}

/// The central IOMMU state.
#[derive(Debug)]
pub(crate) struct IommuState {
    pub walkers: WalkerPool<ReqId>,
    /// The input ("pre-queue") buffer requests wait in while the PW-queue is
    /// full (Fig 3's pre-queue component, Fig 4's buffer).
    pub pre_queue: VecDeque<ReqId>,
    pub redirection: RedirectionTable,
    /// The Fig 19 alternative: a conventional TLB (with MSHRs) in place of
    /// the redirection table.
    pub tlb: Option<Tlb>,
    pub tlb_mshr: Option<Mshr<ReqId>>,
    /// Requests blocked outside the IOMMU TLB because its MSHRs are full
    /// (Fig 19's concurrency pathology); drained one per walk completion.
    pub tlb_stalled: VecDeque<ReqId>,
    pub page_table: PageTable,
    /// Trans-FW's in-flight walk table: requests arriving for a VPN whose
    /// walk is already queued or running piggyback on it instead of
    /// enqueueing their own (remote forwarding of in-flight results).
    pub inflight: HashIndex<Vec<ReqId>>,
}

/// One in-flight memory operation with its translation bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct Request {
    pub gpm: u32,
    pub cu: u32,
    pub op: MemoryOp,
    pub vpn: Vpn,
    /// Issue cycle, kept for the whole-translation trace span.
    #[cfg(feature = "trace")]
    pub issued: Cycle,
    pub remote_started: Option<Cycle>,
    pub iommu_arrived: Option<Cycle>,
    pub pw_entered: Option<Cycle>,
    pub walk_started: Option<Cycle>,
    /// GPMs probed so far (filled with the PTE on response — the
    /// opportunistic caching of the route/concentric baselines).
    pub probed: Vec<u32>,
    /// Set when a redirection attempt failed, so the IOMMU does not redirect
    /// the same request twice.
    pub redirect_failed: bool,
    /// Set once a translation response has been accepted (duplicate probe
    /// replies are ignored).
    pub resolved: bool,
}

/// Simulator events.
#[derive(Debug, Clone)]
pub(crate) enum Event {
    /// A CU tries to issue its next memory operation.
    CuIssue { gpm: u32, cu: u32 },
    /// A GMMU page-table walk finished at `gpm`.
    GmmuWalkDone { gpm: u32, req: ReqId },
    /// Retry a GMMU walk submission that found the queue full.
    GmmuRetry { gpm: u32, req: ReqId },
    /// A serial probe arrives at `chain[idx]` of the request's chain.
    ChainProbe { req: ReqId, idx: usize },
    /// An HDPAT concurrent layer probe arrives at `target`.
    ParallelProbe {
        req: ReqId,
        target: u32,
        innermost: bool,
    },
    /// A translation request arrives at the IOMMU.
    IommuArrive { req: ReqId },
    /// An IOMMU page-table walk finished.
    IommuWalkDone { req: ReqId },
    /// A redirected request arrives at its holder GPM.
    RedirectArrive { req: ReqId, holder: u32 },
    /// A pushed PTE arrives at an auxiliary GPM.
    PushArrive {
        gpm: u32,
        vpn: Vpn,
        pfn: Pfn,
        prefetched: bool,
    },
    /// The final translation response arrives at the requesting GPM.
    XlatResponse {
        req: ReqId,
        pfn: Pfn,
        source: Resolution,
    },
    /// A remote data request arrived at the page's home GPM.
    DataAtHome { req: ReqId, home: u32 },
    /// The home GPM's L2/HBM produced the line; send it back.
    DataReturn { req: ReqId, home: u32 },
    /// The post-translation data access completed.
    DataDone { req: ReqId },
}

/// The full-system simulator. Construct with [`Simulation::new`] (generated
/// workload) or [`Simulation::with_traces`] (caller-provided traces), then
/// call [`Simulation::run`].
#[derive(Debug)]
pub struct Simulation {
    pub(crate) cfg: SystemConfig,        // shard: wafer-global, frozen
    pub(crate) policy: PolicyKind,       // shard: wafer-global, frozen
    pub(crate) space: AddressSpace,      // shard: wafer-global, frozen
    pub(crate) queue: EventQueue<Event>, // shard: wafer-global
    pub(crate) mesh: Mesh,               // shard: wafer-global
    pub(crate) gpms: Vec<GpmState>,      // shard: gpm-local
    pub(crate) iommu: IommuState,        // shard: wafer-global
    pub(crate) reqs: Vec<Request>,       // shard: wafer-global
    pub(crate) metrics: Metrics,         // shard: wafer-global
    pub(crate) concentric: Option<ConcentricMap>, // shard: wafer-global, frozen
    /// Per-GPM serial probe chains, precomputed per policy.
    pub(crate) chains: Vec<Vec<u32>>, // shard: wafer-global, frozen
    pub(crate) last_iommu_vpn: Option<Vpn>, // shard: wafer-global
    /// Sharded-drive routing state ([`shard::ShardRoute`]); `None` under
    /// the serial drive. When present, [`Simulation::schedule`] routes
    /// events straight into the shard queues instead of `queue`, skipping
    /// the per-event outbox round-trip.
    pub(crate) shard_route: Option<Box<shard::ShardRoute>>, // shard: wafer-global, drive infrastructure
    /// Reusable buffer for walker-queue revisit drains, taken and returned
    /// around each [`wsg_xlat::WalkerPool::drain_matching_into`] call so the
    /// hot dispatch path never allocates for coalesced walks.
    pub(crate) walk_scratch: Vec<ReqId>, // shard: wafer-global, drive infrastructure
    /// `WSG_TRACE_REQ` debug hook, resolved once at construction so the
    /// dispatch loop never touches the process environment per event.
    pub(crate) trace_req: Option<ReqId>, // shard: wafer-global, frozen
    /// Optional page-migration extension (see [`crate::migration`]).
    pub(crate) migration: Option<MigrationConfig>, // shard: wafer-global, frozen
    /// Dynamic home overrides for migrated pages (checked before the static
    /// block placement).
    pub(crate) home_override: HashIndex<u32>, // shard: wafer-global
    /// Per-page (last remote consumer, consecutive-access streak).
    pub(crate) access_streak: HashIndex<(u32, u32)>, // shard: wafer-global
    /// The runtime invariant auditor observing the queue, mesh, and every
    /// translation structure (`audit` feature only).
    #[cfg(feature = "audit")]
    // shard: wafer-global
    // lint:allow(shared-mut): the auditor is a sanctioned sink (DESIGN.md
    // §13); the engine root handle shares it with every audited structure.
    pub(crate) auditor: std::rc::Rc<std::cell::RefCell<wsg_sim::audit::ConservationAuditor>>,
    /// Request-lifecycle trace sink handle (`trace` feature only); attached
    /// with [`Simulation::set_tracer`], absent by default.
    #[cfg(feature = "trace")]
    pub(crate) tracer: Option<wsg_sim::trace::TraceHandle>, // shard: wafer-global
    /// Telemetry flight-recorder handle (`telemetry` feature only);
    /// attached with [`Simulation::set_telemetry`], absent by default.
    #[cfg(feature = "telemetry")]
    pub(crate) telemetry: Option<wsg_sim::telemetry::TelemetryHandle>, // shard: wafer-global
    /// Simulated time of the next telemetry epoch boundary; `dispatch`
    /// publishes and samples when event time reaches it.
    #[cfg(feature = "telemetry")]
    pub(crate) telemetry_next: Cycle, // shard: wafer-global
    /// First id of the engine-level telemetry counters.
    #[cfg(feature = "telemetry")]
    pub(crate) telemetry_base: usize, // shard: wafer-global
}

impl Simulation {
    /// Builds a simulation of `benchmark` at `scale` under `policy`.
    pub fn new(
        system: SystemConfig,
        policy: PolicyKind,
        benchmark: BenchmarkId,
        scale: Scale,
        seed: u64,
    ) -> Self {
        let mut space = AddressSpace::new(system.page_size, system.gpm_count() as u32);
        let traces = wsg_workloads::generate(benchmark, scale, &mut space, seed);
        Self::with_traces(system, policy, space, traces)
    }

    /// Builds a simulation from caller-provided traces (for custom
    /// workloads). Workgroup `i` of `n` runs on GPM `i·G/n`; within a GPM,
    /// workgroups are round-robined over its CUs.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or the address space's GPM count does not
    /// match the system layout.
    pub fn with_traces(
        system: SystemConfig,
        policy: PolicyKind,
        space: AddressSpace,
        traces: Vec<WorkgroupTrace>,
    ) -> Self {
        assert!(!traces.is_empty(), "no workgroups to simulate");
        assert_eq!(
            space.gpm_count() as usize,
            system.gpm_count(),
            "address space and wafer disagree on GPM count"
        );
        let g = system.gpm_count();

        let concentric = match policy {
            PolicyKind::Hdpat(h) => Some(ConcentricMap::new(
                &system.layout,
                h.caching_layers.min(system.layout.max_layer()),
                h.rotation,
            )),
            _ => None,
        };
        let chains: Vec<Vec<u32>> = (0..g as u32)
            .map(|id| match policy {
                PolicyKind::RouteCache { .. } => layers::route_chain(&system.layout, id),
                PolicyKind::Concentric { caching_layers } => {
                    layers::concentric_chain(&system.layout, caching_layers, id)
                }
                PolicyKind::Distributed => layers::nearest_group_peer(&system.layout, id)
                    .into_iter()
                    .collect(),
                PolicyKind::Valkyrie => layers::nearest_neighbor(&system.layout, id)
                    .into_iter()
                    .collect(),
                _ => Vec::new(),
            })
            .collect();

        // Build per-GPM state and page tables from the address space.
        let mut gpms: Vec<GpmState> = (0..g as u32)
            .map(|_id| {
                let gc = system.gpm;
                GpmState {
                    cus: (0..gc.cus)
                        .map(|_| CuSlot {
                            pipeline: CuPipeline::new(gc.max_outstanding_per_cu),
                            l1_tlb: Tlb::new(gc.l1_tlb),
                            l1_cache: SetAssocCache::new(gc.l1_cache),
                        })
                        .collect(),
                    l2_tlb: Tlb::new(gc.l2_tlb),
                    cuckoo: CuckooFilter::with_capacity(gc.cuckoo_capacity),
                    gmmu_cache: Tlb::new(gc.gmmu_cache),
                    walkers: WalkerPool::new(gc.gmmu_walkers, gc.gmmu_queue),
                    page_table: PageTable::new(),
                    l2_cache: SetAssocCache::new(gc.l2_cache),
                    hbm: Hbm::new(gc.hbm),
                    remote_mshr: HashIndex::with_capacity(gc.l2_tlb.mshrs.max(1)),
                    mshr_stalled: VecDeque::new(),
                }
            })
            .collect();

        let mut global_pt = PageTable::with_capacity(space.total_pages() as usize);
        for (vpn, home) in space.iter_pages() {
            let pfn = Pfn(vpn.0); // identity frame mapping
            global_pt.map(vpn, pfn, home);
            gpms[home as usize].page_table.map(vpn, pfn, home);
            gpms[home as usize].cuckoo.insert(vpn.0);
        }

        let iommu_cfg = system.iommu;
        let use_tlb = matches!(policy, PolicyKind::Hdpat(h) if h.iommu_tlb_instead);
        let iommu = IommuState {
            walkers: WalkerPool::new(iommu_cfg.walkers, iommu_cfg.pw_queue),
            pre_queue: VecDeque::new(),
            redirection: RedirectionTable::new(iommu_cfg.redirection_entries),
            // Same-area TLB: half the entries of the redirection table
            // (512 vs 1024, §V-E), 4-way, with 32 MSHRs.
            tlb: use_tlb.then(|| {
                Tlb::new(TlbConfig {
                    sets: (iommu_cfg.redirection_entries / 2 / 4).next_power_of_two(),
                    ways: 4,
                    latency: 8,
                    mshrs: 32,
                })
            }),
            // 32 MSHRs at the paper's 1024-entry scale; shrinks with the
            // table so the blocking behaviour is preserved at reduced scale.
            // 32 MSHRs x 8 target slots at the paper's 1024-entry scale;
            // shrinks with the table so the blocking behaviour of Fig 19 is
            // preserved at reduced scale.
            tlb_mshr: use_tlb
                .then(|| Mshr::with_targets((iommu_cfg.redirection_entries / 32).max(8), 8)),
            tlb_stalled: VecDeque::new(),
            page_table: global_pt,
            inflight: HashIndex::new(),
        };

        let mesh = Mesh::new(system.layout.width(), system.layout.height(), system.link);
        let metrics = Metrics::new(g, TIME_WINDOW);
        let peak_outstanding = g * system.gpm.cus as usize;

        let mut sim = Self {
            cfg: system,
            policy,
            space,
            // Far-future overflow tier pre-sized to the wafer's maximum
            // outstanding-request population (ring pushes dominate, but HBM
            // refresh-style long delays land here).
            queue: EventQueue::with_capacity(peak_outstanding),
            mesh,
            gpms,
            iommu,
            reqs: Vec::new(),
            metrics,
            concentric,
            chains,
            last_iommu_vpn: None,
            shard_route: None,
            walk_scratch: Vec::new(),
            trace_req: std::env::var("WSG_TRACE_REQ")
                .ok()
                .and_then(|v| v.parse().ok()),
            migration: None,
            home_override: HashIndex::new(),
            access_streak: HashIndex::new(),
            #[cfg(feature = "audit")]
            // lint:allow(shared-mut): constructing the sanctioned audit
            // sink root (see the `auditor` field).
            auditor: std::rc::Rc::new(std::cell::RefCell::new(
                wsg_sim::audit::ConservationAuditor::new(),
            )),
            #[cfg(feature = "trace")]
            tracer: None,
            #[cfg(feature = "telemetry")]
            telemetry: None,
            #[cfg(feature = "telemetry")]
            telemetry_next: 0,
            #[cfg(feature = "telemetry")]
            telemetry_base: 0,
        };

        // Attach the auditor to every structure before the first event, so
        // the occupancy mirrors start from empty state.
        #[cfg(feature = "audit")]
        {
            use wsg_sim::audit::AuditHandle;
            let handle = AuditHandle::of(&sim.auditor);
            // lint:allow(site-registry): the event queue is audit-only by
            // design — trace spans and telemetry counters model component
            // occupancy, not scheduler bookkeeping.
            sim.queue.set_auditor(handle.clone());
            sim.mesh.set_auditor(handle.clone());
            // Site ids: GPM-local structures get gpm*8+slot; per-CU L1 TLBs
            // and IOMMU structures hang off the top of the range. The L1
            // stride widens past 64 for presets with more CUs per GPM
            // (e.g. MI300's 76) — a fixed 64 made neighbouring GPMs share
            // site ids, and the two occupancy streams diverged the mirror.
            let g_total = sim.gpms.len() as u64;
            let cu_stride = sim.cu_site_stride();
            for (g, gpm) in sim.gpms.iter_mut().enumerate() {
                let g = g as u64;
                gpm.l2_tlb.set_auditor(handle.clone(), g * 8);
                gpm.gmmu_cache.set_auditor(handle.clone(), g * 8 + 1);
                gpm.walkers.set_auditor(handle.clone(), g * 8 + 2);
                for (c, cu) in gpm.cus.iter_mut().enumerate() {
                    cu.l1_tlb
                        // lint:allow(site-registry): per-CU L1 TLBs audit and
                        // trace but are deliberately not telemetry-attached —
                        // the per-GPM L2s capture the spatial picture at a
                        // fraction of the artifact size (see `set_telemetry`).
                        .set_auditor(handle.clone(), g_total * 8 + g * cu_stride + c as u64);
                }
            }
            let iommu_base = g_total * 8 + g_total * cu_stride;
            sim.iommu.walkers.set_auditor(handle.clone(), iommu_base);
            sim.iommu
                .redirection
                .set_auditor(handle.clone(), iommu_base + 1);
            if let Some(tlb) = &mut sim.iommu.tlb {
                tlb.set_auditor(handle.clone(), iommu_base + 2);
            }
        }

        // Dispatch workgroups breadth-first (round-robin) across GPMs, the
        // way GPU runtimes launch blocks across compute dies; pages are
        // block-partitioned (§II-A), so workgroups and their data generally
        // land on different GPMs — the source of the wafer-scale
        // translation pressure of observations O1/O2.
        let mut next_cu = vec![0u32; g];
        for (i, wg) in traces.into_iter().enumerate() {
            if wg.is_empty() {
                continue;
            }
            let gpm = i % g;
            let cu = next_cu[gpm];
            next_cu[gpm] = (cu + 1) % sim.cfg.gpm.cus;
            sim.gpms[gpm].cus[cu as usize].pipeline.push_workgroup(wg);
        }
        // Kick every CU.
        for gpm in 0..g as u32 {
            for cu in 0..sim.cfg.gpm.cus {
                sim.queue.push(0, Event::CuIssue { gpm, cu });
            }
        }
        sim
    }

    /// The active translation policy.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Per-GPM site-id stride for the L1-TLB range of the audit/trace
    /// numbering: at least 64 (the historical stride, kept so existing
    /// configurations number identically) and wide enough that a preset with
    /// more than 64 CUs per GPM cannot alias a neighbouring GPM's sites.
    #[cfg(any(feature = "audit", feature = "trace", feature = "telemetry"))]
    fn cu_site_stride(&self) -> u64 {
        self.gpms
            .iter()
            .map(|g| g.cus.len() as u64)
            .max()
            .unwrap_or(0)
            .max(64)
    }

    /// Attaches a request-lifecycle trace sink to the engine and every model
    /// structure, using the same site-id numbering as the audit feature:
    /// GPM-local structures at `gpm*8 + slot` (L2 TLB 0, GMMU cache 1,
    /// walkers 2, cuckoo 3, HBM 4), per-CU L1 TLBs at
    /// `G*8 + gpm*S + cu` where the stride `S = max(64, CUs per GPM)`, and
    /// IOMMU structures from `G*8 + G*S` (walkers +0, redirection +1,
    /// TLB +2, TLB MSHR +3).
    ///
    /// Attach before [`Simulation::run`]; tracing is purely observational
    /// and never changes metrics (`tests/trace_determinism.rs`).
    #[cfg(feature = "trace")]
    pub fn set_tracer(
        &mut self,
        // lint:allow(shared-mut): the sanctioned sink handle type at the
        // attach boundary (DESIGN.md §13).
        sink: &std::rc::Rc<std::cell::RefCell<wsg_sim::trace::TraceSink>>,
    ) {
        use wsg_sim::trace::TraceHandle;
        let handle = TraceHandle::of(sink);
        self.mesh.set_tracer(handle.clone());
        let g_total = self.gpms.len() as u64;
        let cu_stride = self.cu_site_stride();
        for (g, gpm) in self.gpms.iter_mut().enumerate() {
            let g = g as u64;
            gpm.l2_tlb.set_tracer(handle.clone(), g * 8);
            gpm.gmmu_cache.set_tracer(handle.clone(), g * 8 + 1);
            gpm.walkers.set_tracer(handle.clone(), g * 8 + 2);
            // The cuckoo filter and HBM have no audit occupancy mirror
            // (conservation is audited on the structures they front), so
            // they register with the trace and telemetry sinks only.
            gpm.cuckoo.set_tracer(handle.clone(), g * 8 + 3); // lint:allow(site-registry): see above.
            gpm.hbm.set_tracer(handle.clone(), g * 8 + 4); // lint:allow(site-registry): see above.
            for (c, cu) in gpm.cus.iter_mut().enumerate() {
                cu.l1_tlb
                    .set_tracer(handle.clone(), g_total * 8 + g * cu_stride + c as u64);
            }
        }
        let iommu_base = g_total * 8 + g_total * cu_stride;
        self.iommu.walkers.set_tracer(handle.clone(), iommu_base);
        self.iommu
            .redirection
            .set_tracer(handle.clone(), iommu_base + 1);
        if let Some(tlb) = &mut self.iommu.tlb {
            tlb.set_tracer(handle.clone(), iommu_base + 2);
        }
        if let Some(mshr) = &mut self.iommu.tlb_mshr {
            // lint:allow(site-registry): MSHR occupancy is audited via its
            // owning TLB; the MSHR itself traces and samples only.
            mshr.set_tracer(handle.clone(), iommu_base + 3);
        }
        self.tracer = Some(handle);
    }

    /// Attaches the telemetry flight recorder to the engine and every
    /// model structure, using the audit/trace site-id numbering (see
    /// [`Simulation::set_tracer`]). GPM-local structures are tagged with
    /// their wafer tile and IOMMU structures with the CPU tile, so the
    /// recorder can render spatial heatmaps; per-CU L1 TLBs are *not*
    /// attached — the per-GPM L2s already capture the spatial picture at a
    /// fraction of the artifact size.
    ///
    /// Attach before [`Simulation::run`]; telemetry is purely
    /// observational and never changes metrics
    /// (`tests/telemetry_determinism.rs`).
    #[cfg(feature = "telemetry")]
    pub fn set_telemetry(
        &mut self,
        // lint:allow(shared-mut): the sanctioned sink handle type at the
        // attach boundary (DESIGN.md §13).
        sink: &std::rc::Rc<std::cell::RefCell<wsg_sim::telemetry::TelemetrySink>>,
    ) {
        use wsg_sim::telemetry::{CounterKind, TelemetryHandle};
        let handle = TelemetryHandle::of(sink);
        self.mesh.set_telemetry(&handle);
        let g_total = self.gpms.len() as u64;
        let cu_stride = self.cu_site_stride();
        let tiles: Vec<(u16, u16)> = (0..g_total as u32)
            .map(|id| {
                let c = self.cfg.layout.coord_of(id);
                (c.x, c.y)
            })
            .collect();
        for (g, gpm) in self.gpms.iter_mut().enumerate() {
            let tile = Some(tiles[g]);
            let g = g as u64;
            gpm.l2_tlb.set_telemetry(&handle, g * 8, tile);
            gpm.gmmu_cache.set_telemetry(&handle, g * 8 + 1, tile);
            gpm.walkers.set_telemetry(&handle, g * 8 + 2, tile);
            gpm.cuckoo.set_telemetry(&handle, g * 8 + 3, tile);
            gpm.hbm.set_telemetry(&handle, g * 8 + 4, tile);
        }
        let cpu = self.cfg.layout.cpu();
        let cpu_tile = Some((cpu.x, cpu.y));
        let iommu_base = g_total * 8 + g_total * cu_stride;
        self.iommu
            .walkers
            .set_telemetry(&handle, iommu_base, cpu_tile);
        self.iommu
            .redirection
            .set_telemetry(&handle, iommu_base + 1, cpu_tile);
        if let Some(tlb) = &mut self.iommu.tlb {
            tlb.set_telemetry(&handle, iommu_base + 2, cpu_tile);
        }
        if let Some(mshr) = &mut self.iommu.tlb_mshr {
            mshr.set_telemetry(&handle, iommu_base + 3, cpu_tile);
        }
        self.telemetry_base = handle.with(|t| {
            let base = t.register("iommu.pre_queue", iommu_base, cpu_tile, CounterKind::Gauge);
            t.register("engine.ops_completed", 0, None, CounterKind::Counter);
            base
        });
        self.telemetry_next = handle.with(|t| t.next_sample_at());
        self.telemetry = Some(handle);
    }

    /// Publishes every attached structure's current counters into the
    /// telemetry registry. Called at each epoch boundary and once at the
    /// end of the run, never per event.
    #[cfg(feature = "telemetry")]
    fn publish_telemetry_all(&self) {
        self.mesh.publish_telemetry();
        for gpm in &self.gpms {
            gpm.l2_tlb.publish_telemetry();
            gpm.gmmu_cache.publish_telemetry();
            gpm.walkers.publish_telemetry();
            gpm.cuckoo.publish_telemetry();
            gpm.hbm.publish_telemetry();
        }
        self.iommu.walkers.publish_telemetry();
        self.iommu.redirection.publish_telemetry();
        if let Some(tlb) = &self.iommu.tlb {
            tlb.publish_telemetry();
        }
        if let Some(mshr) = &self.iommu.tlb_mshr {
            mshr.publish_telemetry();
        }
        if let Some(tel) = &self.telemetry {
            let base = self.telemetry_base;
            tel.with(|t| {
                t.set(base, self.iommu.pre_queue.len() as u64);
                t.set(base + 1, self.metrics.ops_completed);
            });
        }
    }

    /// Enables the streak-based page-migration extension (see
    /// [`crate::migration`]). Composes with any translation policy.
    pub fn with_migration(mut self, cfg: MigrationConfig) -> Self {
        self.migration = Some(cfg);
        self
    }

    /// The current home GPM of `vpn`: a migrated override if present,
    /// otherwise the static block placement.
    pub(crate) fn home_of(&self, vpn: Vpn) -> Option<u32> {
        self.home_override
            .get(vpn.0)
            .copied()
            .or_else(|| self.space.home_gpm(vpn))
    }

    /// The HDPAT configuration, if the active policy is in the HDPAT family.
    pub(crate) fn hdpat(&self) -> Option<HdpatConfig> {
        match self.policy {
            PolicyKind::Hdpat(h) => Some(h),
            _ => None,
        }
    }

    /// Runs the simulation to completion and returns the collected metrics.
    ///
    /// # Panics
    ///
    /// Panics if the event count explodes past a safety cap (indicating a
    /// scheduling bug rather than a big workload).
    pub fn run(mut self) -> Metrics {
        // lint:allow(wallclock): events-per-second accounting only; the
        // reading lands in `Metrics::host_wall_nanos`, which is excluded
        // from the deterministic serialization, and never feeds back into
        // the model.
        let wall_start = std::time::Instant::now();
        // Batched dispatch (DESIGN.md §16): drain one whole calendar bucket
        // per iteration instead of popping per event, amortizing the queue's
        // bitmap scan and clock bookkeeping. `drain_bucket` delivers the
        // exact per-pop `(time, payload)` stream — handlers scheduling more
        // work at `t` see it arrive in a later batch, just as later pops
        // would have delivered it.
        let mut batch: Vec<Event> = Vec::new();
        #[cfg(feature = "selfprof")]
        let (mut prof_dispatch, mut prof_handler) = (0u64, 0u64);
        loop {
            #[cfg(feature = "selfprof")]
            // selfprof phase timer; host-time buckets land in `ops::engine()`
            // only, never in simulation state.
            let d0 = std::time::Instant::now(); // lint:allow(wallclock): selfprof phase timer, ops registry only
            let drained = self.queue.drain_bucket(&mut batch);
            #[cfg(feature = "selfprof")]
            {
                prof_dispatch += d0.elapsed().as_nanos() as u64;
            }
            if drained == 0 {
                break;
            }
            let t = self.queue.now();
            #[cfg(feature = "selfprof")]
            let h0 = std::time::Instant::now(); // lint:allow(wallclock): selfprof phase timer, ops registry only
            for ev in batch.drain(..) {
                self.dispatch(t, ev);
            }
            #[cfg(feature = "selfprof")]
            {
                prof_handler += h0.elapsed().as_nanos() as u64;
            }
            debug_assert!(self.queue.total_popped() < EVENT_CAP, "event explosion");
        }
        // The serial drive has no barrier-merge phase and one logical shard:
        // handler time lands in bucket 0, merge stays zero.
        #[cfg(feature = "selfprof")]
        crate::ops::engine().record_selfprof(prof_dispatch, 0, &[prof_handler]);
        let events = self.queue.total_popped();
        self.finish(wall_start, events)
    }

    /// End-of-run checks and metrics finalization, shared verbatim between
    /// [`Simulation::run`] and the sharded drive
    /// ([`Simulation::run_with_shards`]) so the two paths cannot drift.
    /// `events` is the delivered event count — the engine queue's popped
    /// total under the serial drive, the shard set's under the sharded one
    /// (whose events never transit the engine queue).
    fn finish(mut self, wall_start: std::time::Instant, events: u64) -> Metrics {
        // All CUs must have drained; anything else is a lost-wakeup bug.
        for (g, gpm) in self.gpms.iter().enumerate() {
            for (c, cu) in gpm.cus.iter().enumerate() {
                if !cu.pipeline.is_drained() {
                    let stuck: Vec<String> = self
                        .reqs
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| {
                            r.gpm == g as u32 && !r.resolved && r.remote_started.is_some()
                        })
                        .map(|(i, r)| {
                            format!(
                                "req{i} vpn={} arr={:?} pw={:?} walk={:?} rdf={}",
                                r.vpn,
                                r.iommu_arrived,
                                r.pw_entered,
                                r.walk_started,
                                r.redirect_failed
                            )
                        })
                        .collect();
                    let parked = gpm.mshr_stalled.len();
                    let mshr: Vec<String> = gpm
                        .remote_mshr
                        .iter_sorted()
                        .map(|(v, w)| format!("{}:{}", Vpn(v), w.len()))
                        .collect();
                    panic!(
                        "CU {c} of GPM {g} stalled with work remaining; parked={parked} mshr={mshr:?} stuck={stuck:?} iommu_busy={} iommu_q={} pre_q={}",
                        self.iommu.walkers.busy(), self.iommu.walkers.queue_len(), self.iommu.pre_queue.len()
                    );
                }
            }
        }
        // Conservation: every scheduled event was consumed.
        self.queue.drain_check();
        // Runtime invariants: the auditor saw a clean run.
        #[cfg(feature = "audit")]
        {
            let total = self.auditor.borrow_mut().finish();
            assert_eq!(
                total,
                0,
                "runtime invariant violations: {:#?}",
                self.auditor.borrow().violations()
            );
        }
        // Close the telemetry recording at the last event time: sample any
        // remaining whole epochs plus the trailing partial one.
        #[cfg(feature = "telemetry")]
        if let Some(tel) = self.telemetry.clone() {
            self.publish_telemetry_all();
            let end = self.queue.now();
            tel.with(|s| s.finalize(end));
        }
        self.metrics.total_cycles = self.metrics.gpm_finish.iter().copied().max().unwrap_or(0);
        self.metrics.sim_events = events;
        self.metrics.host_wall_nanos = wall_start.elapsed().as_nanos() as u64;
        self.metrics.noc_bytes = self.mesh.total_bytes();
        self.metrics.noc_hop_bytes = self.mesh.total_hop_bytes();
        self.metrics.noc_packets = self.mesh.total_packets();
        // Fold the per-stage latency distributions into the metrics. This
        // does not touch `to_deterministic_string`, so traced and untraced
        // runs serialize identically (DESIGN.md §10).
        #[cfg(feature = "trace")]
        if let Some(tr) = &self.tracer {
            self.metrics.stage_latency = tr.with(|s| {
                s.stage_summary()
                    .into_iter()
                    .map(|(stage, stats)| (stage.to_string(), stats))
                    .collect()
            });
        }
        self.metrics
    }

    /// The request id an event is about, if any.
    fn event_req(ev: &Event) -> Option<ReqId> {
        match ev {
            Event::GmmuWalkDone { req, .. }
            | Event::GmmuRetry { req, .. }
            | Event::ChainProbe { req, .. }
            | Event::ParallelProbe { req, .. }
            | Event::IommuArrive { req }
            | Event::IommuWalkDone { req }
            | Event::RedirectArrive { req, .. }
            | Event::XlatResponse { req, .. }
            | Event::DataAtHome { req, .. }
            | Event::DataReturn { req, .. }
            | Event::DataDone { req } => Some(*req),
            Event::CuIssue { .. } | Event::PushArrive { .. } => None,
        }
    }

    fn dispatch(&mut self, t: Cycle, ev: Event) {
        if let Some(target) = self.trace_req {
            if Self::event_req(&ev) == Some(target) {
                eprintln!("TRACE t={t} {ev:?}");
            }
        }
        // Sample telemetry epochs lazily off the event stream rather than
        // via scheduled events: the queue's sequence numbers and popped
        // count stay exactly as in a telemetry-off run, and state cannot
        // change between events, so sampling at the first event past an
        // epoch boundary observes the same values an end-of-epoch probe
        // would have.
        #[cfg(feature = "telemetry")]
        if self.telemetry.is_some() && t >= self.telemetry_next {
            self.publish_telemetry_all();
            if let Some(tel) = self.telemetry.clone() {
                tel.with(|s| s.sample_up_to(t));
                self.telemetry_next = tel.with(|s| s.next_sample_at());
            }
        }
        // Stamp the (cycle, request) context so leaf-structure hooks can
        // emit instants without the engine threading either value through.
        #[cfg(feature = "trace")]
        if let Some(tr) = &self.tracer {
            let rid = Self::event_req(&ev)
                .map(u64::from)
                .unwrap_or(wsg_sim::trace::NO_REQ);
            tr.with(|s| s.set_context(t, rid));
        }
        match ev {
            Event::CuIssue { gpm, cu } => self.on_cu_issue(t, gpm, cu),
            Event::GmmuWalkDone { gpm, req } => self.on_gmmu_walk_done(t, gpm, req),
            Event::GmmuRetry { gpm, req } => self.submit_gmmu_walk(t, gpm, req),
            Event::ChainProbe { req, idx } => self.on_chain_probe(t, req, idx),
            Event::ParallelProbe {
                req,
                target,
                innermost,
            } => self.on_parallel_probe(t, req, target, innermost),
            Event::IommuArrive { req } => self.on_iommu_arrive(t, req),
            Event::IommuWalkDone { req } => self.on_iommu_walk_done(t, req),
            Event::RedirectArrive { req, holder } => self.on_redirect_arrive(t, req, holder),
            Event::PushArrive {
                gpm,
                vpn,
                pfn,
                prefetched,
            } => self.on_push_arrive(gpm, vpn, pfn, prefetched),
            Event::XlatResponse { req, pfn, source } => self.on_xlat_response(t, req, pfn, source),
            Event::DataAtHome { req, home } => self.on_data_at_home(t, req, home),
            Event::DataReturn { req, home } => self.on_data_return(t, req, home),
            Event::DataDone { req } => self.on_data_done(t, req),
        }
    }

    /// Schedules `ev` to fire at absolute cycle `time` — into the engine
    /// queue under the serial drive, or straight into the owning shard's
    /// queue under the sharded drive. Every handler goes through this seam;
    /// the direct routing keeps the sharded drive from paying a per-event
    /// push/pop round-trip through an intermediate outbox. Routing in push
    /// order assigns the same delivery order as the serial queue's
    /// `(time, seq)` order: stamps only break ties *within* a timestamp,
    /// and same-time pushes of one handler arrive in push order either way.
    #[inline]
    pub(crate) fn schedule(&mut self, time: Cycle, ev: Event) {
        match &mut self.shard_route {
            None => self.queue.push(time, ev),
            Some(r) => {
                let dest = r.map.shard_of(&self.reqs, &self.chains, &ev);
                r.set.route(dest, time, ev);
            }
        }
    }

    /// Sends `ev` as a packet of `bytes` from tile `from` to tile `to`,
    /// scheduling it at the mesh-computed arrival time.
    pub(crate) fn send(&mut self, from: Coord, to: Coord, bytes: u64, depart: Cycle, ev: Event) {
        let out = self.mesh.send(from, to, bytes, depart);
        self.schedule(out.arrival, ev);
    }

    /// The tile of GPM `id`.
    pub(crate) fn gpm_coord(&self, id: u32) -> Coord {
        self.cfg.layout.coord_of(id)
    }

    /// The CPU tile (IOMMU location).
    pub(crate) fn cpu(&self) -> Coord {
        self.cfg.layout.cpu()
    }

    fn on_cu_issue(&mut self, t: Cycle, gpm: u32, cu: u32) {
        let slot = &mut self.gpms[gpm as usize].cus[cu as usize];
        let Some((issue_at, _)) = slot.pipeline.next_issue(t) else {
            return;
        };
        let op = slot.pipeline.issue(issue_at);
        let vpn = self.cfg.page_size.vpn_of(op.vaddr);
        let req = self.reqs.len() as ReqId;
        #[cfg(feature = "trace")]
        if let Some(tr) = &self.tracer {
            tr.with(|s| {
                s.set_context(issue_at, req as u64);
                s.instant("issue", gpm as u64, vpn.0);
            });
        }
        self.reqs.push(Request {
            gpm,
            cu,
            op,
            vpn,
            #[cfg(feature = "trace")]
            issued: issue_at,
            remote_started: None,
            iommu_arrived: None,
            pw_entered: None,
            walk_started: None,
            probed: Vec::new(),
            redirect_failed: false,
            resolved: false,
        });
        self.start_translation(issue_at, req);
        // Chain the next issue: gaps accumulate from this issue time.
        self.schedule(issue_at, Event::CuIssue { gpm, cu });
    }

    fn on_data_done(&mut self, t: Cycle, req: ReqId) {
        let r = &self.reqs[req as usize];
        let (g, c) = (r.gpm, r.cu);
        self.gpms[g as usize].cus[c as usize]
            .pipeline
            .complete_at(t);
        self.metrics.ops_completed += 1;
        let f = &mut self.metrics.gpm_finish[g as usize];
        *f = (*f).max(t);
        self.schedule(t, Event::CuIssue { gpm: g, cu: c });
    }
}
