//! Simulation metrics backing every figure of the evaluation.

use wsg_sim::stats::{
    Breakdown, Histogram, LogHistogram, ReuseTracker, Summary, TimeSeries, Window,
};
use wsg_sim::Cycle;

/// Version of the metrics measurement contract: what the fields of
/// [`Metrics`] mean and which of them [`Metrics::to_deterministic_string`]
/// renders. The on-disk run cache stamps every entry with this number and
/// treats a mismatch as a miss, so bumping it invalidates all previously
/// cached runs at once.
///
/// **Bump this whenever the deterministic-string contract changes**: a field
/// is added to / removed from / reordered in `to_deterministic_string`, a
/// field's semantics change (same name, different measurement), or the cache
/// text codec below changes shape. Purely additive fields that stay outside
/// the deterministic string (like `host_wall_nanos`) still require a bump if
/// they enter the cache text, because older entries would fail to parse —
/// which is safe (a miss) but wasteful, so make it explicit.
pub const METRICS_CONTRACT_VERSION: u32 = 1;

/// How a non-local translation request was ultimately resolved — the four
/// categories of Fig 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// Served from a peer GPM's cache (concentric/route/distributed hit on a
    /// demand-installed entry).
    PeerCache,
    /// Redirected by the IOMMU's redirection table to a holder GPM.
    Redirection,
    /// Served from an entry installed by proactive delivery (a prefetched
    /// PTE, wherever it was found).
    Proactive,
    /// Resolved by an IOMMU page-table walk (or coalesced onto one).
    Iommu,
}

impl Resolution {
    /// Stable label used in breakdowns and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            Resolution::PeerCache => "peer-cache",
            Resolution::Redirection => "redirection",
            Resolution::Proactive => "proactive",
            Resolution::Iommu => "iommu",
        }
    }
}

/// Everything measured during one simulation run.
///
/// Each field maps to one or more paper figures; see the field docs. The
/// struct is plain data — the simulator fills it and the bench harness
/// formats it.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Total execution time: the cycle at which the last CU drained.
    pub total_cycles: Cycle,
    /// Per-GPM finish time (Fig 5's geometric imbalance).
    pub gpm_finish: Vec<Cycle>,
    /// Memory operations completed.
    pub ops_completed: u64,

    /// Translations resolved entirely inside the requesting GPM
    /// (L1/L2/last-level TLB hits and local walks).
    pub local_translations: u64,
    /// Local page-table walks performed by GMMUs.
    pub local_walks: u64,
    /// Cuckoo-filter false positives (wasted local walks before remote
    /// forwarding, §II-B's doubled-latency case).
    pub cuckoo_false_positives: u64,
    /// Non-local translation requests issued (after GPM-side coalescing).
    pub remote_requests: u64,
    /// Remote requests coalesced into an in-flight identical request at the
    /// requesting GPM (L2 TLB MSHR merge).
    pub remote_coalesced: u64,

    /// Resolution-source counts for remote translations (Fig 16).
    pub resolution: Breakdown,
    /// Per-request IOMMU latency components (Fig 3): `pre-queue`,
    /// `ptw-queue`, `walk`.
    pub iommu_latency: Breakdown,
    /// IOMMU input-buffer occupancy sampled over time (Fig 4).
    pub iommu_buffer: TimeSeries,
    /// IOMMU-served translations over time (Fig 13).
    pub iommu_served: TimeSeries,
    /// Per-VPN translation request stream at the IOMMU: occurrence counts
    /// (Fig 6) and reuse distances (Fig 7).
    pub iommu_reuse: ReuseTracker,
    /// VPN distance between consecutive IOMMU translation requests (Fig 8).
    pub vpn_delta: Histogram,
    /// Remote-translation round-trip time, request issue to PFN arrival
    /// (Fig 17).
    pub remote_rtt: Summary,
    /// Round-trip time split by resolution source (diagnostics for Fig 17).
    pub rtt_peer: Summary,
    /// RTT of redirection-resolved requests.
    pub rtt_redirection: Summary,
    /// RTT of proactively-served requests.
    pub rtt_proactive: Summary,
    /// RTT of IOMMU-walk-resolved requests.
    pub rtt_iommu: Summary,
    /// Remote-path retries due to a full L2-TLB MSHR at the requester.
    pub remote_retries: u64,
    /// IOMMU walks performed (including prefetch walks).
    pub iommu_walks: u64,
    /// Requests completed by PW-queue revisit coalescing.
    pub iommu_coalesced: u64,
    /// Redirection-table hits that failed at the holder (entry evicted).
    pub redirect_misses: u64,
    /// Requests stalled because the IOMMU TLB's MSHRs were full (Fig 19
    /// variant only).
    pub iommu_tlb_stalls: u64,

    /// PTEs pushed to auxiliary GPMs (demand + prefetch).
    pub ptes_pushed: u64,
    /// Prefetched PTEs delivered (`degree − 1` per prefetching walk).
    pub prefetches_issued: u64,
    /// Prefetched entries that served a later request (accuracy numerator;
    /// the paper reports 65.55 % average accuracy).
    pub prefetches_used: u64,

    /// Total payload bytes injected into the mesh.
    pub noc_bytes: u64,
    /// Total bytes × hops moved across mesh links.
    pub noc_hop_bytes: u64,
    /// Mesh packets injected.
    pub noc_packets: u64,
    /// Pages migrated by the optional migration extension.
    pub pages_migrated: u64,

    /// Discrete events the run's event queue processed (the hot-loop work
    /// unit of DESIGN.md §11). Excluded from
    /// [`Metrics::to_deterministic_string`] so figure outputs stay
    /// byte-comparable across engine revisions that schedule differently.
    pub sim_events: u64,
    /// Host wall-clock nanoseconds spent inside `Simulation::run`.
    /// Host-dependent by nature, so — like `stage_latency` — deliberately
    /// excluded from [`Metrics::to_deterministic_string`].
    pub host_wall_nanos: u64,

    /// Per-stage latency distributions folded from an attached trace sink,
    /// sorted by stage name (`trace` feature only). Deliberately excluded
    /// from [`Metrics::to_deterministic_string`], which must stay
    /// byte-identical whether or not a tracer was attached; render with
    /// [`Metrics::stage_latency_string`].
    #[cfg(feature = "trace")]
    pub stage_latency: Vec<(String, wsg_sim::trace::StageStats)>,
}

impl Metrics {
    /// Creates zeroed metrics with the standard breakdown categories.
    pub fn new(gpm_count: usize, time_window: Cycle) -> Self {
        Self {
            total_cycles: 0,
            gpm_finish: vec![0; gpm_count],
            ops_completed: 0,
            local_translations: 0,
            local_walks: 0,
            cuckoo_false_positives: 0,
            remote_requests: 0,
            remote_coalesced: 0,
            resolution: Breakdown::new(&["peer-cache", "redirection", "proactive", "iommu"]),
            iommu_latency: Breakdown::new(&["pre-queue", "ptw-queue", "walk"]),
            iommu_buffer: TimeSeries::new(time_window),
            iommu_served: TimeSeries::new(time_window),
            iommu_reuse: ReuseTracker::new(),
            vpn_delta: Histogram::new(1, 64),
            remote_rtt: Summary::new(),
            rtt_peer: Summary::new(),
            rtt_redirection: Summary::new(),
            rtt_proactive: Summary::new(),
            rtt_iommu: Summary::new(),
            remote_retries: 0,
            iommu_walks: 0,
            iommu_coalesced: 0,
            redirect_misses: 0,
            iommu_tlb_stalls: 0,
            ptes_pushed: 0,
            prefetches_issued: 0,
            prefetches_used: 0,
            noc_bytes: 0,
            noc_hop_bytes: 0,
            noc_packets: 0,
            pages_migrated: 0,
            sim_events: 0,
            host_wall_nanos: 0,
            #[cfg(feature = "trace")]
            stage_latency: Vec::new(),
        }
    }

    /// Renders the per-stage latency table (populated by a traced run) in a
    /// stable text form: one line per stage in name order, all values exact
    /// integers. Kept separate from [`Metrics::to_deterministic_string`] so
    /// the determinism contract is unaffected by tracing.
    #[cfg(feature = "trace")]
    pub fn stage_latency_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (stage, st) in &self.stage_latency {
            let _ = writeln!(
                s,
                "{stage}: count={} sum={} p50={} p95={} p99={} min={} max={}",
                st.count, st.sum, st.p50, st.p95, st.p99, st.min, st.max
            );
        }
        s
    }

    /// Records a resolved remote translation.
    pub fn record_resolution(&mut self, r: Resolution) {
        self.resolution.add(r.label(), 1);
    }

    /// Fraction of remote translations *not* served by an IOMMU walk — the
    /// paper's "offloads 42.1 % of translations" headline.
    pub fn offload_fraction(&self) -> f64 {
        let total = self.resolution.total();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.resolution.share("iommu")
    }

    /// Prefetch accuracy: used / issued (0 when prefetching is off).
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetches_used as f64 / self.prefetches_issued as f64
        }
    }

    /// Speedup of this run relative to `baseline` (> 1 means faster).
    ///
    /// # Panics
    ///
    /// Panics if this run recorded zero cycles.
    pub fn speedup_vs(&self, baseline: &Metrics) -> f64 {
        assert!(self.total_cycles > 0, "run did not execute");
        baseline.total_cycles as f64 / self.total_cycles as f64
    }

    /// Imbalance across GPM finish times: `max / mean` (Fig 5's disparity).
    pub fn gpm_imbalance(&self) -> f64 {
        let n = self.gpm_finish.len();
        if n == 0 {
            return 1.0;
        }
        let max = *self.gpm_finish.iter().max().unwrap() as f64;
        let mean = self.gpm_finish.iter().sum::<Cycle>() as f64 / n as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Per-VPN IOMMU translation count histogram (Fig 6).
    pub fn translation_count_histogram(&self) -> LogHistogram {
        self.iommu_reuse.count_histogram()
    }

    /// Serializes every metric into a stable text form: two runs of the same
    /// `(benchmark, seed)` must produce byte-identical output
    /// (`tests/determinism.rs` enforces this). Fields appear in declaration
    /// order; the reuse tracker is rendered through its order-independent
    /// accessors because its internal bookkeeping is hash-keyed.
    pub fn to_deterministic_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "total_cycles: {}", self.total_cycles);
        let _ = writeln!(s, "gpm_finish: {:?}", self.gpm_finish);
        let _ = writeln!(s, "ops_completed: {}", self.ops_completed);
        let _ = writeln!(s, "local_translations: {}", self.local_translations);
        let _ = writeln!(s, "local_walks: {}", self.local_walks);
        let _ = writeln!(s, "cuckoo_false_positives: {}", self.cuckoo_false_positives);
        let _ = writeln!(s, "remote_requests: {}", self.remote_requests);
        let _ = writeln!(s, "remote_coalesced: {}", self.remote_coalesced);
        let _ = writeln!(s, "resolution: {:?}", self.resolution);
        let _ = writeln!(s, "iommu_latency: {:?}", self.iommu_latency);
        let _ = writeln!(s, "iommu_buffer: {:?}", self.iommu_buffer);
        let _ = writeln!(s, "iommu_served: {:?}", self.iommu_served);
        let _ = writeln!(
            s,
            "iommu_reuse.counts: {:?}",
            self.iommu_reuse.count_histogram()
        );
        let _ = writeln!(
            s,
            "iommu_reuse.reuse: {:?}",
            self.iommu_reuse.reuse_histogram()
        );
        let _ = writeln!(
            s,
            "iommu_reuse.distinct: {}",
            self.iommu_reuse.distinct_keys()
        );
        let _ = writeln!(
            s,
            "iommu_reuse.touches: {}",
            self.iommu_reuse.total_touches()
        );
        let _ = writeln!(s, "vpn_delta: {:?}", self.vpn_delta);
        let _ = writeln!(s, "remote_rtt: {:?}", self.remote_rtt);
        let _ = writeln!(s, "rtt_peer: {:?}", self.rtt_peer);
        let _ = writeln!(s, "rtt_redirection: {:?}", self.rtt_redirection);
        let _ = writeln!(s, "rtt_proactive: {:?}", self.rtt_proactive);
        let _ = writeln!(s, "rtt_iommu: {:?}", self.rtt_iommu);
        let _ = writeln!(s, "remote_retries: {}", self.remote_retries);
        let _ = writeln!(s, "iommu_walks: {}", self.iommu_walks);
        let _ = writeln!(s, "iommu_coalesced: {}", self.iommu_coalesced);
        let _ = writeln!(s, "redirect_misses: {}", self.redirect_misses);
        let _ = writeln!(s, "iommu_tlb_stalls: {}", self.iommu_tlb_stalls);
        let _ = writeln!(s, "ptes_pushed: {}", self.ptes_pushed);
        let _ = writeln!(s, "prefetches_issued: {}", self.prefetches_issued);
        let _ = writeln!(s, "prefetches_used: {}", self.prefetches_used);
        let _ = writeln!(s, "noc_bytes: {}", self.noc_bytes);
        let _ = writeln!(s, "noc_hop_bytes: {}", self.noc_hop_bytes);
        let _ = writeln!(s, "noc_packets: {}", self.noc_packets);
        let _ = writeln!(s, "pages_migrated: {}", self.pages_migrated);
        s
    }

    /// Serializes the full metrics state into the exact, line-oriented text
    /// form stored by the disk run cache. Unlike
    /// [`Metrics::to_deterministic_string`] (a *rendering* for comparison),
    /// this is a *codec*: [`Metrics::from_cache_text`] reconstructs a
    /// `Metrics` whose every accessor — including the deterministic string —
    /// is byte-identical to the original. Floating-point state is written as
    /// IEEE-754 bit patterns, so the round trip is exact, not
    /// shortest-representation approximate.
    ///
    /// `sim_events` and `host_wall_nanos` are included (a cache hit reports
    /// the original run's event count and host cost); the trace-only
    /// `stage_latency` table is not — cached runs never carry trace data.
    ///
    /// The first line pins the codec shape (`metrics-codec v1`) and the
    /// measurement contract ([`METRICS_CONTRACT_VERSION`]); decoding rejects
    /// any mismatch, which the disk cache treats as a miss.
    pub fn to_cache_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "metrics-codec v1 contract {}", METRICS_CONTRACT_VERSION);
        let _ = writeln!(s, "total_cycles {}", self.total_cycles);
        let _ = write!(s, "gpm_finish {}", self.gpm_finish.len());
        for c in &self.gpm_finish {
            let _ = write!(s, " {c}");
        }
        let _ = writeln!(s);
        let _ = writeln!(s, "ops_completed {}", self.ops_completed);
        let _ = writeln!(s, "local_translations {}", self.local_translations);
        let _ = writeln!(s, "local_walks {}", self.local_walks);
        let _ = writeln!(s, "cuckoo_false_positives {}", self.cuckoo_false_positives);
        let _ = writeln!(s, "remote_requests {}", self.remote_requests);
        let _ = writeln!(s, "remote_coalesced {}", self.remote_coalesced);
        write_breakdown(&mut s, "resolution", &self.resolution);
        write_breakdown(&mut s, "iommu_latency", &self.iommu_latency);
        write_timeseries(&mut s, "iommu_buffer", &self.iommu_buffer);
        write_timeseries(&mut s, "iommu_served", &self.iommu_served);
        let _ = writeln!(
            s,
            "iommu_reuse {} {}",
            self.iommu_reuse.total_touches(),
            self.iommu_reuse.distinct_keys()
        );
        for (k, c) in self.iommu_reuse.counts_sorted() {
            let _ = writeln!(s, "c {k} {c}");
        }
        write_log_histogram(
            &mut s,
            "iommu_reuse.hist",
            self.iommu_reuse.reuse_histogram(),
        );
        write_histogram(&mut s, "vpn_delta", &self.vpn_delta);
        write_summary(&mut s, "remote_rtt", &self.remote_rtt);
        write_summary(&mut s, "rtt_peer", &self.rtt_peer);
        write_summary(&mut s, "rtt_redirection", &self.rtt_redirection);
        write_summary(&mut s, "rtt_proactive", &self.rtt_proactive);
        write_summary(&mut s, "rtt_iommu", &self.rtt_iommu);
        let _ = writeln!(s, "remote_retries {}", self.remote_retries);
        let _ = writeln!(s, "iommu_walks {}", self.iommu_walks);
        let _ = writeln!(s, "iommu_coalesced {}", self.iommu_coalesced);
        let _ = writeln!(s, "redirect_misses {}", self.redirect_misses);
        let _ = writeln!(s, "iommu_tlb_stalls {}", self.iommu_tlb_stalls);
        let _ = writeln!(s, "ptes_pushed {}", self.ptes_pushed);
        let _ = writeln!(s, "prefetches_issued {}", self.prefetches_issued);
        let _ = writeln!(s, "prefetches_used {}", self.prefetches_used);
        let _ = writeln!(s, "noc_bytes {}", self.noc_bytes);
        let _ = writeln!(s, "noc_hop_bytes {}", self.noc_hop_bytes);
        let _ = writeln!(s, "noc_packets {}", self.noc_packets);
        let _ = writeln!(s, "pages_migrated {}", self.pages_migrated);
        let _ = writeln!(s, "sim_events {}", self.sim_events);
        let _ = writeln!(s, "host_wall_nanos {}", self.host_wall_nanos);
        let _ = writeln!(s, "end");
        s
    }

    /// Parses text produced by [`Metrics::to_cache_text`] back into a
    /// `Metrics` value. Strict by design: any missing line, unexpected key,
    /// malformed number, count mismatch, or codec/contract version mismatch
    /// is an error — the disk cache maps every error to a miss and discards
    /// the entry, so corruption can never surface as wrong results.
    pub fn from_cache_text(text: &str) -> Result<Metrics, String> {
        let mut r = LineReader::new(text);
        let header = r.fields("metrics-codec", 3)?;
        if header[0] != "v1" {
            return Err(format!("unsupported codec version `{}`", header[0]));
        }
        if header[1] != "contract" || header[2] != METRICS_CONTRACT_VERSION.to_string() {
            return Err(format!(
                "contract version mismatch: entry has `{} {}`, this build requires `contract {}`",
                header[1], header[2], METRICS_CONTRACT_VERSION
            ));
        }

        let total_cycles = r.scalar("total_cycles")?;
        let gpm_finish = r.u64_list("gpm_finish")?;
        let ops_completed = r.scalar("ops_completed")?;
        let local_translations = r.scalar("local_translations")?;
        let local_walks = r.scalar("local_walks")?;
        let cuckoo_false_positives = r.scalar("cuckoo_false_positives")?;
        let remote_requests = r.scalar("remote_requests")?;
        let remote_coalesced = r.scalar("remote_coalesced")?;
        let resolution = r.breakdown(
            "resolution",
            &["peer-cache", "redirection", "proactive", "iommu"],
        )?;
        let iommu_latency = r.breakdown("iommu_latency", &["pre-queue", "ptw-queue", "walk"])?;
        let iommu_buffer = r.timeseries("iommu_buffer")?;
        let iommu_served = r.timeseries("iommu_served")?;

        let reuse_head = r.fields("iommu_reuse", 2)?;
        let touches: u64 = parse(&reuse_head[0], "iommu_reuse touches")?;
        let distinct: usize = parse(&reuse_head[1], "iommu_reuse distinct")?;
        let mut counts = Vec::with_capacity(distinct);
        for _ in 0..distinct {
            let kv = r.fields("c", 2)?;
            counts.push((
                parse(&kv[0], "reuse count key")?,
                parse(&kv[1], "reuse count value")?,
            ));
        }
        let reuse_hist = r.log_histogram("iommu_reuse.hist")?;
        let iommu_reuse = ReuseTracker::from_parts(counts, touches, reuse_hist);

        let vpn_delta = r.histogram("vpn_delta")?;
        let remote_rtt = r.summary("remote_rtt")?;
        let rtt_peer = r.summary("rtt_peer")?;
        let rtt_redirection = r.summary("rtt_redirection")?;
        let rtt_proactive = r.summary("rtt_proactive")?;
        let rtt_iommu = r.summary("rtt_iommu")?;
        let remote_retries = r.scalar("remote_retries")?;
        let iommu_walks = r.scalar("iommu_walks")?;
        let iommu_coalesced = r.scalar("iommu_coalesced")?;
        let redirect_misses = r.scalar("redirect_misses")?;
        let iommu_tlb_stalls = r.scalar("iommu_tlb_stalls")?;
        let ptes_pushed = r.scalar("ptes_pushed")?;
        let prefetches_issued = r.scalar("prefetches_issued")?;
        let prefetches_used = r.scalar("prefetches_used")?;
        let noc_bytes = r.scalar("noc_bytes")?;
        let noc_hop_bytes = r.scalar("noc_hop_bytes")?;
        let noc_packets = r.scalar("noc_packets")?;
        let pages_migrated = r.scalar("pages_migrated")?;
        let sim_events = r.scalar("sim_events")?;
        let host_wall_nanos = r.scalar("host_wall_nanos")?;
        r.fields("end", 0)?;
        r.expect_eof()?;

        Ok(Metrics {
            total_cycles,
            gpm_finish,
            ops_completed,
            local_translations,
            local_walks,
            cuckoo_false_positives,
            remote_requests,
            remote_coalesced,
            resolution,
            iommu_latency,
            iommu_buffer,
            iommu_served,
            iommu_reuse,
            vpn_delta,
            remote_rtt,
            rtt_peer,
            rtt_redirection,
            rtt_proactive,
            rtt_iommu,
            remote_retries,
            iommu_walks,
            iommu_coalesced,
            redirect_misses,
            iommu_tlb_stalls,
            ptes_pushed,
            prefetches_issued,
            prefetches_used,
            noc_bytes,
            noc_hop_bytes,
            noc_packets,
            pages_migrated,
            sim_events,
            host_wall_nanos,
            #[cfg(feature = "trace")]
            stage_latency: Vec::new(),
        })
    }
}

fn write_breakdown(s: &mut String, key: &str, b: &Breakdown) {
    use std::fmt::Write as _;
    let _ = write!(s, "{key} {}", b.samples());
    for (&name, &value) in b.names().iter().zip(b.raw_values()) {
        let _ = write!(s, " {name}={value}");
    }
    let _ = writeln!(s);
}

fn write_timeseries(s: &mut String, key: &str, ts: &TimeSeries) {
    use std::fmt::Write as _;
    let _ = writeln!(s, "{key} {} {}", ts.window_width(), ts.windows().count());
    for w in ts.windows() {
        let _ = writeln!(s, "w {} {} {} {}", w.count, w.sum, w.min, w.max);
    }
}

fn write_histogram(s: &mut String, key: &str, h: &Histogram) {
    use std::fmt::Write as _;
    let _ = write!(
        s,
        "{key} {} {} {} {} {} {}",
        h.bucket_width(),
        h.overflow(),
        h.count(),
        h.raw_sum(),
        h.max(),
        h.raw_buckets().len()
    );
    for b in h.raw_buckets() {
        let _ = write!(s, " {b}");
    }
    let _ = writeln!(s);
}

fn write_log_histogram(s: &mut String, key: &str, h: &LogHistogram) {
    use std::fmt::Write as _;
    let _ = write!(
        s,
        "{key} {} {} {} {}",
        h.count(),
        h.raw_sum(),
        h.max(),
        h.raw_buckets().len()
    );
    for b in h.raw_buckets() {
        let _ = write!(s, " {b}");
    }
    let _ = writeln!(s);
}

fn write_summary(s: &mut String, key: &str, sm: &Summary) {
    use std::fmt::Write as _;
    // f64 state as IEEE-754 bit patterns for an exact round trip; an empty
    // summary writes zeros (ignored on decode).
    let _ = writeln!(
        s,
        "{key} {} {:016x} {:016x} {:016x}",
        sm.count(),
        sm.sum().to_bits(),
        sm.min().unwrap_or(0.0).to_bits(),
        sm.max().unwrap_or(0.0).to_bits()
    );
}

fn parse<T: std::str::FromStr>(token: &str, what: &str) -> Result<T, String> {
    token
        .parse()
        .map_err(|_| format!("malformed {what}: `{token}`"))
}

fn parse_f64_bits(token: &str, what: &str) -> Result<f64, String> {
    u64::from_str_radix(token, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("malformed {what} bits: `{token}`"))
}

/// Strict cursor over the lines of a cache-text document. Every accessor
/// checks the line's leading key and exact field count, so a truncated or
/// shuffled document fails loudly at the first bad line.
struct LineReader<'a> {
    lines: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> LineReader<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            lines: text.lines(),
            line_no: 0,
        }
    }

    /// Consumes the next line, asserts its first token is `key` and that
    /// exactly `n` fields follow, returning those fields.
    fn fields(&mut self, key: &str, n: usize) -> Result<Vec<String>, String> {
        self.line_no += 1;
        let line = self.lines.next().ok_or_else(|| {
            format!(
                "line {}: unexpected end of entry (wanted `{key}`)",
                self.line_no
            )
        })?;
        let mut tokens = line.split_whitespace();
        let head = tokens.next().unwrap_or("");
        if head != key {
            return Err(format!(
                "line {}: expected `{key}`, found `{head}`",
                self.line_no
            ));
        }
        let fields: Vec<String> = tokens.map(str::to_string).collect();
        if fields.len() != n {
            return Err(format!(
                "line {}: `{key}` carries {} field(s), expected {n}",
                self.line_no,
                fields.len()
            ));
        }
        Ok(fields)
    }

    fn expect_eof(&mut self) -> Result<(), String> {
        match self.lines.next() {
            None => Ok(()),
            Some(extra) => Err(format!(
                "line {}: trailing data after `end`: `{extra}`",
                self.line_no + 1
            )),
        }
    }

    fn scalar<T: std::str::FromStr>(&mut self, key: &str) -> Result<T, String> {
        let f = self.fields(key, 1)?;
        parse(&f[0], key)
    }

    fn u64_list(&mut self, key: &str) -> Result<Vec<u64>, String> {
        self.line_no += 1;
        let line = self.lines.next().ok_or_else(|| {
            format!(
                "line {}: unexpected end of entry (wanted `{key}`)",
                self.line_no
            )
        })?;
        let mut tokens = line.split_whitespace();
        let head = tokens.next().unwrap_or("");
        if head != key {
            return Err(format!(
                "line {}: expected `{key}`, found `{head}`",
                self.line_no
            ));
        }
        let n: usize = parse(
            tokens
                .next()
                .ok_or_else(|| format!("line {}: `{key}` missing length", self.line_no))?,
            "list length",
        )?;
        let values: Vec<u64> = tokens
            .map(|t| parse(t, "list element"))
            .collect::<Result<_, _>>()?;
        if values.len() != n {
            return Err(format!(
                "line {}: `{key}` declares {n} element(s) but carries {}",
                self.line_no,
                values.len()
            ));
        }
        Ok(values)
    }

    fn breakdown(&mut self, key: &str, names: &[&'static str]) -> Result<Breakdown, String> {
        let f = self.fields(key, 1 + names.len())?;
        let samples: u64 = parse(&f[0], "breakdown samples")?;
        let mut values = Vec::with_capacity(names.len());
        for (i, &name) in names.iter().enumerate() {
            let field = &f[1 + i];
            let value = field
                .strip_prefix(name)
                .and_then(|rest| rest.strip_prefix('='))
                .ok_or_else(|| {
                    format!("`{key}` component {i} is `{field}`, expected `{name}=<n>`")
                })?;
            values.push(parse(value, "breakdown value")?);
        }
        Ok(Breakdown::from_parts(names, values, samples))
    }

    fn timeseries(&mut self, key: &str) -> Result<TimeSeries, String> {
        let head = self.fields(key, 2)?;
        let width: Cycle = parse(&head[0], "window width")?;
        if width == 0 {
            return Err(format!("`{key}` has zero window width"));
        }
        let n: usize = parse(&head[1], "window count")?;
        let mut windows = Vec::with_capacity(n);
        for i in 0..n {
            let f = self.fields("w", 4)?;
            windows.push(Window {
                start: i as Cycle * width,
                count: parse(&f[0], "window count")?,
                sum: parse(&f[1], "window sum")?,
                min: parse(&f[2], "window min")?,
                max: parse(&f[3], "window max")?,
            });
        }
        Ok(TimeSeries::from_parts(width, windows))
    }

    fn histogram(&mut self, key: &str) -> Result<Histogram, String> {
        self.line_no += 1;
        let line = self.lines.next().ok_or_else(|| {
            format!(
                "line {}: unexpected end of entry (wanted `{key}`)",
                self.line_no
            )
        })?;
        let mut t = line.split_whitespace();
        if t.next() != Some(key) {
            return Err(format!("line {}: expected `{key}`", self.line_no));
        }
        let mut next = |what: &str| -> Result<String, String> {
            t.next()
                .map(str::to_string)
                .ok_or_else(|| format!("`{key}` missing {what}"))
        };
        let width: u64 = parse(&next("bucket width")?, "bucket width")?;
        let overflow: u64 = parse(&next("overflow")?, "overflow")?;
        let count: u64 = parse(&next("count")?, "count")?;
        let sum: u128 = parse(&next("sum")?, "sum")?;
        let max: u64 = parse(&next("max")?, "max")?;
        let n: usize = parse(&next("bucket count")?, "bucket count")?;
        let buckets: Vec<u64> = t.map(|x| parse(x, "bucket")).collect::<Result<_, _>>()?;
        if buckets.len() != n || n == 0 || width == 0 {
            return Err(format!("`{key}` bucket list malformed"));
        }
        Ok(Histogram::from_parts(
            width, buckets, overflow, count, sum, max,
        ))
    }

    fn log_histogram(&mut self, key: &str) -> Result<LogHistogram, String> {
        self.line_no += 1;
        let line = self.lines.next().ok_or_else(|| {
            format!(
                "line {}: unexpected end of entry (wanted `{key}`)",
                self.line_no
            )
        })?;
        let mut t = line.split_whitespace();
        if t.next() != Some(key) {
            return Err(format!("line {}: expected `{key}`", self.line_no));
        }
        let mut next = |what: &str| -> Result<String, String> {
            t.next()
                .map(str::to_string)
                .ok_or_else(|| format!("`{key}` missing {what}"))
        };
        let count: u64 = parse(&next("count")?, "count")?;
        let sum: u128 = parse(&next("sum")?, "sum")?;
        let max: u64 = parse(&next("max")?, "max")?;
        let n: usize = parse(&next("bucket count")?, "bucket count")?;
        let buckets: Vec<u64> = t.map(|x| parse(x, "bucket")).collect::<Result<_, _>>()?;
        if buckets.len() != n {
            return Err(format!("`{key}` bucket list malformed"));
        }
        Ok(LogHistogram::from_parts(buckets, count, sum, max))
    }

    fn summary(&mut self, key: &str) -> Result<Summary, String> {
        let f = self.fields(key, 4)?;
        let count: u64 = parse(&f[0], "summary count")?;
        Ok(Summary::from_parts(
            count,
            parse_f64_bits(&f[1], "summary sum")?,
            parse_f64_bits(&f[2], "summary min")?,
            parse_f64_bits(&f[3], "summary max")?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_metrics_are_zeroed() {
        let m = Metrics::new(48, 10_000);
        assert_eq!(m.total_cycles, 0);
        assert_eq!(m.gpm_finish.len(), 48);
        assert_eq!(m.offload_fraction(), 0.0);
        assert_eq!(m.prefetch_accuracy(), 0.0);
    }

    #[test]
    fn offload_fraction_excludes_iommu() {
        let mut m = Metrics::new(1, 100);
        m.record_resolution(Resolution::PeerCache);
        m.record_resolution(Resolution::Redirection);
        m.record_resolution(Resolution::Proactive);
        m.record_resolution(Resolution::Iommu);
        assert!((m.offload_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_ratio_of_cycles() {
        let mut base = Metrics::new(1, 100);
        base.total_cycles = 1000;
        let mut fast = Metrics::new(1, 100);
        fast.total_cycles = 500;
        assert_eq!(fast.speedup_vs(&base), 2.0);
    }

    #[test]
    #[should_panic(expected = "did not execute")]
    fn speedup_of_empty_run_panics() {
        let base = Metrics::new(1, 100);
        let empty = Metrics::new(1, 100);
        empty.speedup_vs(&base);
    }

    #[test]
    fn imbalance_of_uniform_finish_is_one() {
        let mut m = Metrics::new(4, 100);
        m.gpm_finish = vec![100, 100, 100, 100];
        assert!((m.gpm_imbalance() - 1.0).abs() < 1e-12);
        m.gpm_finish = vec![100, 100, 100, 200];
        assert!(m.gpm_imbalance() > 1.3);
    }

    #[test]
    fn prefetch_accuracy_ratio() {
        let mut m = Metrics::new(1, 100);
        m.prefetches_issued = 100;
        m.prefetches_used = 65;
        assert!((m.prefetch_accuracy() - 0.65).abs() < 1e-12);
    }

    /// `stage_latency_string` is the only rendered view of trace-fed stage
    /// stats, so its exact shape (line per stage, declaration order of the
    /// sorted vector, integer fields) is pinned here.
    #[cfg(feature = "trace")]
    mod stage_latency {
        use super::super::*;
        use wsg_sim::trace::StageStats;

        #[test]
        fn empty_stage_latency_renders_as_empty_string() {
            let m = Metrics::new(1, 100);
            assert_eq!(m.stage_latency_string(), "");
        }

        #[test]
        fn single_stage_line_pins_the_exact_format() {
            let mut m = Metrics::new(1, 100);
            m.stage_latency = vec![(
                "walk".to_string(),
                StageStats::from_durations(vec![4, 2, 6]),
            )];
            assert_eq!(
                m.stage_latency_string(),
                "walk: count=3 sum=12 p50=4 p95=6 p99=6 min=2 max=6\n"
            );
        }

        #[test]
        fn stages_render_one_line_each_in_vector_order() {
            let mut m = Metrics::new(1, 100);
            m.stage_latency = vec![
                ("issue".to_string(), StageStats::from_durations(vec![1])),
                ("walk".to_string(), StageStats::from_durations(vec![2, 2])),
            ];
            let s = m.stage_latency_string();
            let lines: Vec<&str> = s.lines().collect();
            assert_eq!(lines.len(), 2);
            assert!(lines[0].starts_with("issue: count=1 "));
            assert!(lines[1].starts_with("walk: count=2 "));
        }

        #[test]
        fn single_sample_stage_collapses_every_percentile() {
            let st = StageStats::from_durations(vec![42]);
            assert_eq!((st.p50, st.p95, st.p99), (42, 42, 42));
            assert_eq!((st.min, st.max, st.count, st.sum), (42, 42, 1, 42));
        }

        #[test]
        fn tie_heavy_stage_percentiles_sit_on_the_mode() {
            // Nine 5s and one 1: every nearest-rank percentile above p10
            // lands on the repeated value.
            let mut d = vec![5u64; 9];
            d.push(1);
            let st = StageStats::from_durations(d);
            assert_eq!((st.p50, st.p95, st.p99), (5, 5, 5));
            assert_eq!((st.min, st.max), (1, 5));
        }
    }

    /// Builds a metrics value with every field populated and some
    /// deliberately awkward values (negative RTTs never occur, but NaN-free
    /// odd floats and huge u64s do).
    fn populated_metrics() -> Metrics {
        let mut m = Metrics::new(3, 100);
        m.total_cycles = 123_456;
        m.gpm_finish = vec![100, 123_456, 99_999];
        m.ops_completed = 1 << 40;
        m.local_translations = 7;
        m.local_walks = 5;
        m.cuckoo_false_positives = 2;
        m.remote_requests = 11;
        m.remote_coalesced = 3;
        m.record_resolution(Resolution::PeerCache);
        m.record_resolution(Resolution::Iommu);
        m.record_resolution(Resolution::Iommu);
        m.iommu_latency.add("pre-queue", 4);
        m.iommu_latency.add("walk", 90);
        m.iommu_buffer.record(5, 2);
        m.iommu_buffer.record(250, 9);
        m.iommu_served.record(110, 1);
        for k in [42, 42, 7, 42, 9_000_000_000] {
            m.iommu_reuse.touch(k);
        }
        m.vpn_delta.record(0);
        m.vpn_delta.record(63);
        m.vpn_delta.record(1_000_000); // overflow bucket
        for v in [0.5, 17.25, 3.0] {
            m.remote_rtt.record(v);
        }
        m.rtt_peer.record(1.0 / 3.0);
        m.rtt_iommu.record(f64::MAX / 2.0);
        m.remote_retries = 1;
        m.iommu_walks = 6;
        m.iommu_coalesced = 2;
        m.redirect_misses = 1;
        m.iommu_tlb_stalls = 4;
        m.ptes_pushed = 12;
        m.prefetches_issued = 9;
        m.prefetches_used = 6;
        m.noc_bytes = u64::MAX - 1;
        m.noc_hop_bytes = 1 << 50;
        m.noc_packets = 77;
        m.pages_migrated = 1;
        m.sim_events = 987_654_321;
        m.host_wall_nanos = 1_000_000;
        m
    }

    #[test]
    fn cache_text_round_trips_exactly() {
        let m = populated_metrics();
        let text = m.to_cache_text();
        let back = Metrics::from_cache_text(&text).expect("decode");
        // The deterministic string is the byte-identity contract...
        assert_eq!(back.to_deterministic_string(), m.to_deterministic_string());
        // ...and the re-encoding closes the loop on every field outside it
        // too (sim_events, host_wall_nanos, raw f64 bits, reuse counts).
        assert_eq!(back.to_cache_text(), text);
        assert_eq!(back.sim_events, m.sim_events);
        assert_eq!(back.host_wall_nanos, m.host_wall_nanos);
        assert_eq!(back.iommu_reuse.occurrences(42), 3);
        assert_eq!(
            back.remote_rtt.sum().to_bits(),
            m.remote_rtt.sum().to_bits()
        );
    }

    #[test]
    fn cache_text_of_empty_metrics_round_trips() {
        let m = Metrics::new(4, 10_000);
        let back = Metrics::from_cache_text(&m.to_cache_text()).expect("decode");
        assert_eq!(back.to_cache_text(), m.to_cache_text());
        assert_eq!(back.remote_rtt.min(), None);
    }

    #[test]
    fn truncated_cache_text_is_rejected() {
        let text = populated_metrics().to_cache_text();
        // Chop at every line boundary: each prefix must fail, never panic.
        let lines: Vec<&str> = text.lines().collect();
        for keep in 0..lines.len() {
            let partial = lines[..keep].join("\n");
            assert!(
                Metrics::from_cache_text(&partial).is_err(),
                "truncation to {keep} lines must fail"
            );
        }
        assert!(Metrics::from_cache_text(&text).is_ok());
    }

    #[test]
    fn corrupted_cache_text_is_rejected() {
        let text = populated_metrics().to_cache_text();
        // Flip one token on a scalar line.
        let bad = text.replace("ops_completed", "ops_completedX");
        assert!(Metrics::from_cache_text(&bad).is_err());
        // Damage a number.
        let bad = text.replace("total_cycles 123456", "total_cycles 12z456");
        assert!(Metrics::from_cache_text(&bad).is_err());
        // Trailing garbage after `end`.
        let bad = format!("{text}garbage\n");
        assert!(Metrics::from_cache_text(&bad).is_err());
    }

    #[test]
    fn contract_version_mismatch_is_rejected() {
        let text = populated_metrics().to_cache_text();
        let bad = text.replace(
            &format!("contract {METRICS_CONTRACT_VERSION}"),
            "contract 999999",
        );
        let err = Metrics::from_cache_text(&bad).unwrap_err();
        assert!(err.contains("contract version mismatch"), "{err}");
        let bad = text.replace("metrics-codec v1", "metrics-codec v9");
        assert!(Metrics::from_cache_text(&bad)
            .unwrap_err()
            .contains("unsupported codec version"));
    }

    #[test]
    fn resolution_labels_match_breakdown() {
        let mut m = Metrics::new(1, 100);
        for r in [
            Resolution::PeerCache,
            Resolution::Redirection,
            Resolution::Proactive,
            Resolution::Iommu,
        ] {
            m.record_resolution(r);
            assert_eq!(m.resolution.value(r.label()), 1);
        }
    }
}
