//! Simulation metrics backing every figure of the evaluation.

use wsg_sim::stats::{Breakdown, Histogram, LogHistogram, ReuseTracker, Summary, TimeSeries};
use wsg_sim::Cycle;

/// How a non-local translation request was ultimately resolved — the four
/// categories of Fig 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// Served from a peer GPM's cache (concentric/route/distributed hit on a
    /// demand-installed entry).
    PeerCache,
    /// Redirected by the IOMMU's redirection table to a holder GPM.
    Redirection,
    /// Served from an entry installed by proactive delivery (a prefetched
    /// PTE, wherever it was found).
    Proactive,
    /// Resolved by an IOMMU page-table walk (or coalesced onto one).
    Iommu,
}

impl Resolution {
    /// Stable label used in breakdowns and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            Resolution::PeerCache => "peer-cache",
            Resolution::Redirection => "redirection",
            Resolution::Proactive => "proactive",
            Resolution::Iommu => "iommu",
        }
    }
}

/// Everything measured during one simulation run.
///
/// Each field maps to one or more paper figures; see the field docs. The
/// struct is plain data — the simulator fills it and the bench harness
/// formats it.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Total execution time: the cycle at which the last CU drained.
    pub total_cycles: Cycle,
    /// Per-GPM finish time (Fig 5's geometric imbalance).
    pub gpm_finish: Vec<Cycle>,
    /// Memory operations completed.
    pub ops_completed: u64,

    /// Translations resolved entirely inside the requesting GPM
    /// (L1/L2/last-level TLB hits and local walks).
    pub local_translations: u64,
    /// Local page-table walks performed by GMMUs.
    pub local_walks: u64,
    /// Cuckoo-filter false positives (wasted local walks before remote
    /// forwarding, §II-B's doubled-latency case).
    pub cuckoo_false_positives: u64,
    /// Non-local translation requests issued (after GPM-side coalescing).
    pub remote_requests: u64,
    /// Remote requests coalesced into an in-flight identical request at the
    /// requesting GPM (L2 TLB MSHR merge).
    pub remote_coalesced: u64,

    /// Resolution-source counts for remote translations (Fig 16).
    pub resolution: Breakdown,
    /// Per-request IOMMU latency components (Fig 3): `pre-queue`,
    /// `ptw-queue`, `walk`.
    pub iommu_latency: Breakdown,
    /// IOMMU input-buffer occupancy sampled over time (Fig 4).
    pub iommu_buffer: TimeSeries,
    /// IOMMU-served translations over time (Fig 13).
    pub iommu_served: TimeSeries,
    /// Per-VPN translation request stream at the IOMMU: occurrence counts
    /// (Fig 6) and reuse distances (Fig 7).
    pub iommu_reuse: ReuseTracker,
    /// VPN distance between consecutive IOMMU translation requests (Fig 8).
    pub vpn_delta: Histogram,
    /// Remote-translation round-trip time, request issue to PFN arrival
    /// (Fig 17).
    pub remote_rtt: Summary,
    /// Round-trip time split by resolution source (diagnostics for Fig 17).
    pub rtt_peer: Summary,
    /// RTT of redirection-resolved requests.
    pub rtt_redirection: Summary,
    /// RTT of proactively-served requests.
    pub rtt_proactive: Summary,
    /// RTT of IOMMU-walk-resolved requests.
    pub rtt_iommu: Summary,
    /// Remote-path retries due to a full L2-TLB MSHR at the requester.
    pub remote_retries: u64,
    /// IOMMU walks performed (including prefetch walks).
    pub iommu_walks: u64,
    /// Requests completed by PW-queue revisit coalescing.
    pub iommu_coalesced: u64,
    /// Redirection-table hits that failed at the holder (entry evicted).
    pub redirect_misses: u64,
    /// Requests stalled because the IOMMU TLB's MSHRs were full (Fig 19
    /// variant only).
    pub iommu_tlb_stalls: u64,

    /// PTEs pushed to auxiliary GPMs (demand + prefetch).
    pub ptes_pushed: u64,
    /// Prefetched PTEs delivered (`degree − 1` per prefetching walk).
    pub prefetches_issued: u64,
    /// Prefetched entries that served a later request (accuracy numerator;
    /// the paper reports 65.55 % average accuracy).
    pub prefetches_used: u64,

    /// Total payload bytes injected into the mesh.
    pub noc_bytes: u64,
    /// Total bytes × hops moved across mesh links.
    pub noc_hop_bytes: u64,
    /// Mesh packets injected.
    pub noc_packets: u64,
    /// Pages migrated by the optional migration extension.
    pub pages_migrated: u64,

    /// Discrete events the run's event queue processed (the hot-loop work
    /// unit of DESIGN.md §11). Excluded from
    /// [`Metrics::to_deterministic_string`] so figure outputs stay
    /// byte-comparable across engine revisions that schedule differently.
    pub sim_events: u64,
    /// Host wall-clock nanoseconds spent inside `Simulation::run`.
    /// Host-dependent by nature, so — like `stage_latency` — deliberately
    /// excluded from [`Metrics::to_deterministic_string`].
    pub host_wall_nanos: u64,

    /// Per-stage latency distributions folded from an attached trace sink,
    /// sorted by stage name (`trace` feature only). Deliberately excluded
    /// from [`Metrics::to_deterministic_string`], which must stay
    /// byte-identical whether or not a tracer was attached; render with
    /// [`Metrics::stage_latency_string`].
    #[cfg(feature = "trace")]
    pub stage_latency: Vec<(String, wsg_sim::trace::StageStats)>,
}

impl Metrics {
    /// Creates zeroed metrics with the standard breakdown categories.
    pub fn new(gpm_count: usize, time_window: Cycle) -> Self {
        Self {
            total_cycles: 0,
            gpm_finish: vec![0; gpm_count],
            ops_completed: 0,
            local_translations: 0,
            local_walks: 0,
            cuckoo_false_positives: 0,
            remote_requests: 0,
            remote_coalesced: 0,
            resolution: Breakdown::new(&["peer-cache", "redirection", "proactive", "iommu"]),
            iommu_latency: Breakdown::new(&["pre-queue", "ptw-queue", "walk"]),
            iommu_buffer: TimeSeries::new(time_window),
            iommu_served: TimeSeries::new(time_window),
            iommu_reuse: ReuseTracker::new(),
            vpn_delta: Histogram::new(1, 64),
            remote_rtt: Summary::new(),
            rtt_peer: Summary::new(),
            rtt_redirection: Summary::new(),
            rtt_proactive: Summary::new(),
            rtt_iommu: Summary::new(),
            remote_retries: 0,
            iommu_walks: 0,
            iommu_coalesced: 0,
            redirect_misses: 0,
            iommu_tlb_stalls: 0,
            ptes_pushed: 0,
            prefetches_issued: 0,
            prefetches_used: 0,
            noc_bytes: 0,
            noc_hop_bytes: 0,
            noc_packets: 0,
            pages_migrated: 0,
            sim_events: 0,
            host_wall_nanos: 0,
            #[cfg(feature = "trace")]
            stage_latency: Vec::new(),
        }
    }

    /// Renders the per-stage latency table (populated by a traced run) in a
    /// stable text form: one line per stage in name order, all values exact
    /// integers. Kept separate from [`Metrics::to_deterministic_string`] so
    /// the determinism contract is unaffected by tracing.
    #[cfg(feature = "trace")]
    pub fn stage_latency_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (stage, st) in &self.stage_latency {
            let _ = writeln!(
                s,
                "{stage}: count={} sum={} p50={} p95={} p99={} min={} max={}",
                st.count, st.sum, st.p50, st.p95, st.p99, st.min, st.max
            );
        }
        s
    }

    /// Records a resolved remote translation.
    pub fn record_resolution(&mut self, r: Resolution) {
        self.resolution.add(r.label(), 1);
    }

    /// Fraction of remote translations *not* served by an IOMMU walk — the
    /// paper's "offloads 42.1 % of translations" headline.
    pub fn offload_fraction(&self) -> f64 {
        let total = self.resolution.total();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.resolution.share("iommu")
    }

    /// Prefetch accuracy: used / issued (0 when prefetching is off).
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetches_used as f64 / self.prefetches_issued as f64
        }
    }

    /// Speedup of this run relative to `baseline` (> 1 means faster).
    ///
    /// # Panics
    ///
    /// Panics if this run recorded zero cycles.
    pub fn speedup_vs(&self, baseline: &Metrics) -> f64 {
        assert!(self.total_cycles > 0, "run did not execute");
        baseline.total_cycles as f64 / self.total_cycles as f64
    }

    /// Imbalance across GPM finish times: `max / mean` (Fig 5's disparity).
    pub fn gpm_imbalance(&self) -> f64 {
        let n = self.gpm_finish.len();
        if n == 0 {
            return 1.0;
        }
        let max = *self.gpm_finish.iter().max().unwrap() as f64;
        let mean = self.gpm_finish.iter().sum::<Cycle>() as f64 / n as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Per-VPN IOMMU translation count histogram (Fig 6).
    pub fn translation_count_histogram(&self) -> LogHistogram {
        self.iommu_reuse.count_histogram()
    }

    /// Serializes every metric into a stable text form: two runs of the same
    /// `(benchmark, seed)` must produce byte-identical output
    /// (`tests/determinism.rs` enforces this). Fields appear in declaration
    /// order; the reuse tracker is rendered through its order-independent
    /// accessors because its internal bookkeeping is hash-keyed.
    pub fn to_deterministic_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "total_cycles: {}", self.total_cycles);
        let _ = writeln!(s, "gpm_finish: {:?}", self.gpm_finish);
        let _ = writeln!(s, "ops_completed: {}", self.ops_completed);
        let _ = writeln!(s, "local_translations: {}", self.local_translations);
        let _ = writeln!(s, "local_walks: {}", self.local_walks);
        let _ = writeln!(s, "cuckoo_false_positives: {}", self.cuckoo_false_positives);
        let _ = writeln!(s, "remote_requests: {}", self.remote_requests);
        let _ = writeln!(s, "remote_coalesced: {}", self.remote_coalesced);
        let _ = writeln!(s, "resolution: {:?}", self.resolution);
        let _ = writeln!(s, "iommu_latency: {:?}", self.iommu_latency);
        let _ = writeln!(s, "iommu_buffer: {:?}", self.iommu_buffer);
        let _ = writeln!(s, "iommu_served: {:?}", self.iommu_served);
        let _ = writeln!(
            s,
            "iommu_reuse.counts: {:?}",
            self.iommu_reuse.count_histogram()
        );
        let _ = writeln!(
            s,
            "iommu_reuse.reuse: {:?}",
            self.iommu_reuse.reuse_histogram()
        );
        let _ = writeln!(
            s,
            "iommu_reuse.distinct: {}",
            self.iommu_reuse.distinct_keys()
        );
        let _ = writeln!(
            s,
            "iommu_reuse.touches: {}",
            self.iommu_reuse.total_touches()
        );
        let _ = writeln!(s, "vpn_delta: {:?}", self.vpn_delta);
        let _ = writeln!(s, "remote_rtt: {:?}", self.remote_rtt);
        let _ = writeln!(s, "rtt_peer: {:?}", self.rtt_peer);
        let _ = writeln!(s, "rtt_redirection: {:?}", self.rtt_redirection);
        let _ = writeln!(s, "rtt_proactive: {:?}", self.rtt_proactive);
        let _ = writeln!(s, "rtt_iommu: {:?}", self.rtt_iommu);
        let _ = writeln!(s, "remote_retries: {}", self.remote_retries);
        let _ = writeln!(s, "iommu_walks: {}", self.iommu_walks);
        let _ = writeln!(s, "iommu_coalesced: {}", self.iommu_coalesced);
        let _ = writeln!(s, "redirect_misses: {}", self.redirect_misses);
        let _ = writeln!(s, "iommu_tlb_stalls: {}", self.iommu_tlb_stalls);
        let _ = writeln!(s, "ptes_pushed: {}", self.ptes_pushed);
        let _ = writeln!(s, "prefetches_issued: {}", self.prefetches_issued);
        let _ = writeln!(s, "prefetches_used: {}", self.prefetches_used);
        let _ = writeln!(s, "noc_bytes: {}", self.noc_bytes);
        let _ = writeln!(s, "noc_hop_bytes: {}", self.noc_hop_bytes);
        let _ = writeln!(s, "noc_packets: {}", self.noc_packets);
        let _ = writeln!(s, "pages_migrated: {}", self.pages_migrated);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_metrics_are_zeroed() {
        let m = Metrics::new(48, 10_000);
        assert_eq!(m.total_cycles, 0);
        assert_eq!(m.gpm_finish.len(), 48);
        assert_eq!(m.offload_fraction(), 0.0);
        assert_eq!(m.prefetch_accuracy(), 0.0);
    }

    #[test]
    fn offload_fraction_excludes_iommu() {
        let mut m = Metrics::new(1, 100);
        m.record_resolution(Resolution::PeerCache);
        m.record_resolution(Resolution::Redirection);
        m.record_resolution(Resolution::Proactive);
        m.record_resolution(Resolution::Iommu);
        assert!((m.offload_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_ratio_of_cycles() {
        let mut base = Metrics::new(1, 100);
        base.total_cycles = 1000;
        let mut fast = Metrics::new(1, 100);
        fast.total_cycles = 500;
        assert_eq!(fast.speedup_vs(&base), 2.0);
    }

    #[test]
    #[should_panic(expected = "did not execute")]
    fn speedup_of_empty_run_panics() {
        let base = Metrics::new(1, 100);
        let empty = Metrics::new(1, 100);
        empty.speedup_vs(&base);
    }

    #[test]
    fn imbalance_of_uniform_finish_is_one() {
        let mut m = Metrics::new(4, 100);
        m.gpm_finish = vec![100, 100, 100, 100];
        assert!((m.gpm_imbalance() - 1.0).abs() < 1e-12);
        m.gpm_finish = vec![100, 100, 100, 200];
        assert!(m.gpm_imbalance() > 1.3);
    }

    #[test]
    fn prefetch_accuracy_ratio() {
        let mut m = Metrics::new(1, 100);
        m.prefetches_issued = 100;
        m.prefetches_used = 65;
        assert!((m.prefetch_accuracy() - 0.65).abs() < 1e-12);
    }

    /// `stage_latency_string` is the only rendered view of trace-fed stage
    /// stats, so its exact shape (line per stage, declaration order of the
    /// sorted vector, integer fields) is pinned here.
    #[cfg(feature = "trace")]
    mod stage_latency {
        use super::super::*;
        use wsg_sim::trace::StageStats;

        #[test]
        fn empty_stage_latency_renders_as_empty_string() {
            let m = Metrics::new(1, 100);
            assert_eq!(m.stage_latency_string(), "");
        }

        #[test]
        fn single_stage_line_pins_the_exact_format() {
            let mut m = Metrics::new(1, 100);
            m.stage_latency = vec![(
                "walk".to_string(),
                StageStats::from_durations(vec![4, 2, 6]),
            )];
            assert_eq!(
                m.stage_latency_string(),
                "walk: count=3 sum=12 p50=4 p95=6 p99=6 min=2 max=6\n"
            );
        }

        #[test]
        fn stages_render_one_line_each_in_vector_order() {
            let mut m = Metrics::new(1, 100);
            m.stage_latency = vec![
                ("issue".to_string(), StageStats::from_durations(vec![1])),
                ("walk".to_string(), StageStats::from_durations(vec![2, 2])),
            ];
            let s = m.stage_latency_string();
            let lines: Vec<&str> = s.lines().collect();
            assert_eq!(lines.len(), 2);
            assert!(lines[0].starts_with("issue: count=1 "));
            assert!(lines[1].starts_with("walk: count=2 "));
        }

        #[test]
        fn single_sample_stage_collapses_every_percentile() {
            let st = StageStats::from_durations(vec![42]);
            assert_eq!((st.p50, st.p95, st.p99), (42, 42, 42));
            assert_eq!((st.min, st.max, st.count, st.sum), (42, 42, 1, 42));
        }

        #[test]
        fn tie_heavy_stage_percentiles_sit_on_the_mode() {
            // Nine 5s and one 1: every nearest-rank percentile above p10
            // lands on the repeated value.
            let mut d = vec![5u64; 9];
            d.push(1);
            let st = StageStats::from_durations(d);
            assert_eq!((st.p50, st.p95, st.p99), (5, 5, 5));
            assert_eq!((st.min, st.max), (1, 5));
        }
    }

    #[test]
    fn resolution_labels_match_breakdown() {
        let mut m = Metrics::new(1, 100);
        for r in [
            Resolution::PeerCache,
            Resolution::Redirection,
            Resolution::Proactive,
            Resolution::Iommu,
        ] {
            m.record_resolution(r);
            assert_eq!(m.resolution.value(r.label()), 1);
        }
    }
}
