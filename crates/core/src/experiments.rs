//! One-call experiment runner used by the examples, tests, and the figure
//! benches.

use wsg_gpu::SystemConfig;
use wsg_workloads::{BenchmarkId, Scale};

/// Divides the capacity of every translation/cache structure by the same
/// factor the workload scale divides memory footprints by, so the
/// working-set-to-capacity ratios of the paper's full-size configuration are
/// preserved at reduced scale. Timing parameters (latencies, walker counts,
/// bandwidths) are untouched — only sizes shrink.
pub fn scale_hardware(system: &mut SystemConfig, divisor: usize) {
    if divisor <= 1 {
        return;
    }
    let d = divisor;
    let shrink_sets = |sets: usize, floor: usize| (sets / d).max(floor).next_power_of_two();
    let g = &mut system.gpm;
    g.l1_tlb.ways = (g.l1_tlb.ways / d.min(4)).max(8); // small already; shrink gently
    g.l2_tlb.sets = shrink_sets(g.l2_tlb.sets, 1);
    g.l2_tlb.ways = g.l2_tlb.ways.min(8);
    g.gmmu_cache.sets = shrink_sets(g.gmmu_cache.sets, 4);
    g.gmmu_cache.ways = g.gmmu_cache.ways.min(8);
    g.cuckoo_capacity = (g.cuckoo_capacity / d).max(256);
    g.l1_cache.sets = shrink_sets(g.l1_cache.sets, 4);
    g.l2_cache.sets = shrink_sets(g.l2_cache.sets, 16);
    system.iommu.redirection_entries = (system.iommu.redirection_entries / d).max(16);
    system.iommu.pw_queue = (system.iommu.pw_queue / d).max(8);
}

/// The hardware-capacity divisor matching each workload scale's footprint
/// reduction (Table II is divided by ~64 at `Bench`, ~512 at `Unit`).
pub fn hardware_divisor(scale: Scale) -> usize {
    match scale {
        Scale::Full => 1,
        Scale::Bench => 64,
        Scale::Unit => 256,
    }
}

use crate::metrics::Metrics;
use crate::policy::PolicyKind;
use crate::sim::Simulation;

/// A fully specified simulation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Hardware configuration (wafer, GPM, IOMMU, page size, mesh).
    pub system: SystemConfig,
    /// Translation policy under test.
    pub policy: PolicyKind,
    /// Workload.
    pub benchmark: BenchmarkId,
    /// Workload scale.
    pub scale: Scale,
    /// Workload generator seed (the default 42 is used throughout the
    /// reproduction for determinism).
    pub seed: u64,
}

impl RunConfig {
    /// A run on the paper-baseline system (7×7 wafer, MI100 GPMs, 4 KB
    /// pages), with structure capacities scaled to match the workload scale
    /// (see [`scale_hardware`]).
    pub fn new(benchmark: BenchmarkId, scale: Scale, policy: PolicyKind) -> Self {
        let mut system = SystemConfig::paper_baseline();
        scale_hardware(&mut system, hardware_divisor(scale));
        Self {
            system,
            policy,
            benchmark,
            scale,
            seed: 42,
        }
    }

    /// A run that keeps the paper's full-size structure capacities
    /// regardless of workload scale (for sensitivity checks).
    pub fn new_unscaled(benchmark: BenchmarkId, scale: Scale, policy: PolicyKind) -> Self {
        Self {
            system: SystemConfig::paper_baseline(),
            policy,
            benchmark,
            scale,
            seed: 42,
        }
    }

    /// Replaces the system configuration and re-applies capacity scaling
    /// for this run's workload scale.
    pub fn with_system(mut self, mut system: SystemConfig) -> Self {
        scale_hardware(&mut system, hardware_divisor(self.scale));
        self.system = system;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Runs one simulation to completion.
///
/// # Example
///
/// ```
/// use hdpat::experiments::{run, RunConfig};
/// use hdpat::policy::PolicyKind;
/// use wsg_workloads::{BenchmarkId, Scale};
///
/// let m = run(&RunConfig::new(BenchmarkId::Relu, Scale::Unit, PolicyKind::Naive));
/// assert!(m.total_cycles > 0);
/// assert!(m.ops_completed > 0);
/// ```
pub fn run(cfg: &RunConfig) -> Metrics {
    Simulation::new(
        cfg.system.clone(),
        cfg.policy,
        cfg.benchmark,
        cfg.scale,
        cfg.seed,
    )
    .run()
}

/// Runs `policy` and the naive baseline on the same workload and returns
/// `(baseline, policy_metrics, speedup)`.
pub fn run_with_baseline(cfg: &RunConfig) -> (Metrics, Metrics, f64) {
    let base_cfg = RunConfig {
        policy: PolicyKind::Naive,
        ..cfg.clone()
    };
    let base = run(&base_cfg);
    let m = run(cfg);
    let speedup = m.speedup_vs(&base);
    (base, m, speedup)
}

/// Runs every Table II benchmark under `policy` at `scale` and returns
/// per-benchmark metrics in catalog order.
pub fn run_all(
    policy: PolicyKind,
    scale: Scale,
    system: &SystemConfig,
) -> Vec<(BenchmarkId, Metrics)> {
    BenchmarkId::all()
        .into_iter()
        .map(|b| {
            let cfg = RunConfig::new(b, scale, policy).with_system(system.clone());
            (b, run(&cfg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_run_completes_all_ops() {
        let m = run(&RunConfig::new(
            BenchmarkId::Relu,
            Scale::Unit,
            PolicyKind::Naive,
        ));
        assert!(m.ops_completed > 1000, "ops: {}", m.ops_completed);
        assert!(m.total_cycles > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = RunConfig::new(BenchmarkId::Spmv, Scale::Unit, PolicyKind::hdpat());
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.ops_completed, b.ops_completed);
        assert_eq!(a.iommu_walks, b.iommu_walks);
    }

    #[test]
    fn hdpat_reduces_iommu_walks_on_spmv() {
        let (base, hd, speedup) = run_with_baseline(&RunConfig::new(
            BenchmarkId::Spmv,
            Scale::Unit,
            PolicyKind::hdpat(),
        ));
        assert!(
            hd.iommu_walks < base.iommu_walks,
            "HDPAT walks {} vs baseline {}",
            hd.iommu_walks,
            base.iommu_walks
        );
        assert!(speedup > 0.8, "speedup {speedup}");
    }

    #[test]
    fn baseline_resolves_everything_at_iommu() {
        let m = run(&RunConfig::new(
            BenchmarkId::Spmv,
            Scale::Unit,
            PolicyKind::Naive,
        ));
        assert_eq!(m.resolution.value("peer-cache"), 0);
        assert_eq!(m.resolution.value("redirection"), 0);
        assert!(m.resolution.value("iommu") > 0);
    }

    #[test]
    fn hdpat_offloads_translations() {
        let m = run(&RunConfig::new(
            BenchmarkId::Pr,
            Scale::Unit,
            PolicyKind::hdpat(),
        ));
        assert!(
            m.offload_fraction() > 0.05,
            "offload fraction {}",
            m.offload_fraction()
        );
    }
}
