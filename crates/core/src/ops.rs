//! Operational observability for the serving path and the engine.
//!
//! This module is the ops spine of the daemon: an allocation-light registry
//! of request-lifecycle latency histograms, serving gauges, cache counters,
//! and engine-side drive counters, exposed three ways:
//!
//! * the `metrics` wire op ([`crate::serve::proto`]) returns
//!   [`OpsRegistry::snapshot_json`] as one canonical JSON line;
//! * `hdpat-sim serve --metrics-out FILE [--metrics-interval SECS]`
//!   periodically dumps the same snapshot (JSON, or Prometheus text for
//!   `.prom`/`.txt` files) to disk;
//! * `hdpat-sim serve --ops-log FILE` appends one [`OpsLog`] JSONL event per
//!   request state transition.
//!
//! **Determinism contract.** Everything here is wall-clock flavored and
//! *never* feeds simulation state, [`crate::metrics::Metrics`], or any
//! deterministic artifact: run outputs are byte-identical with the layer on
//! or off (ci.sh ops lane), and xtask rule d10 bans ops-style field names
//! (`*_nanos`, `*_us`, `queue_wait*`, `selfprof*`, `stage_latency`) from
//! `Metrics::to_deterministic_string`.
//!
//! Two accumulation scopes exist on purpose:
//!
//! * **Per-daemon** — each [`crate::serve::Daemon`] owns its own
//!   [`OpsRegistry`], so tests and embedded daemons never share request
//!   counters and the reconciliation invariant (`submitted == sum of tier
//!   counts` at quiescence) holds per instance.
//! * **Process-global** — engine code (the sharded drive, the `selfprof`
//!   phase timer) has no daemon handle, so its counters accumulate on
//!   [`engine()`] and every snapshot includes them.

use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::experiments::DiskCacheStats;
use crate::serve::json::Json;
use wsg_sim::stats::LogHistogram;

/// Terminal outcome of a submitted request, the attribution axis for every
/// latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Served from the in-memory `RunCache`.
    Memory,
    /// Served from the persistent disk cache.
    Disk,
    /// Actually simulated on a pool worker.
    Simulated,
    /// Cancelled by the client while still queued.
    Cancelled,
    /// Dropped from the queue because the client disconnected.
    ClientGone,
}

impl Tier {
    /// Every tier, in canonical exposition order.
    pub const ALL: [Tier; 5] = [
        Tier::Memory,
        Tier::Disk,
        Tier::Simulated,
        Tier::Cancelled,
        Tier::ClientGone,
    ];

    /// Stable wire token (snapshot keys, ops-log fields, Prometheus labels).
    pub fn token(self) -> &'static str {
        match self {
            Tier::Memory => "memory",
            Tier::Disk => "disk",
            Tier::Simulated => "simulated",
            Tier::Cancelled => "cancelled",
            Tier::ClientGone => "client-gone",
        }
    }

    fn index(self) -> usize {
        match self {
            Tier::Memory => 0,
            Tier::Disk => 1,
            Tier::Simulated => 2,
            Tier::Cancelled => 3,
            Tier::ClientGone => 4,
        }
    }
}

/// Latency accumulators for one outcome tier. All histograms are log-scaled
/// microseconds ([`LogHistogram`]), so one struct spans cache hits (tens of
/// µs) and cold simulations (tens of seconds) without tuning.
#[derive(Debug, Clone, Default)]
pub struct TierStats {
    /// Requests that terminated in this tier.
    pub count: u64,
    /// enqueue → schedule (time waiting in the per-client queue).
    pub queue_wait_us: LogHistogram,
    /// schedule → completion (cache probe or simulation on a worker).
    pub service_us: LogHistogram,
    /// enqueue → completion.
    pub total_us: LogHistogram,
}

/// Cumulative engine-side shard-drive counters (see
/// [`wsg_sim::shard::ShardStats`] for per-run semantics).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardCounters {
    /// Sharded runs recorded.
    pub runs: u64,
    /// Lookahead windows crossed (barriers executed).
    pub windows: u64,
    /// Events delivered through the merge.
    pub delivered: u64,
    /// Events routed in.
    pub routed: u64,
    /// Events that crossed a shard boundary.
    pub cross: u64,
    /// Batches handed out by the merge.
    pub batches: u64,
}

impl ShardCounters {
    /// One-line rendering for the `WSG_SHARD_STATS` stderr convenience.
    pub fn to_line(&self) -> String {
        format!(
            "runs={} windows={} delivered={} routed={} cross={} batches={}",
            self.runs, self.windows, self.delivered, self.routed, self.cross, self.batches
        )
    }
}

/// Cumulative `--features selfprof` phase timings, in host nanoseconds.
/// Phases partition the hot loop: *dispatch* (event extraction: bucket
/// drain or batch fetch), *merge* (sharded-drive barrier merge inside
/// `next_batch`), and *handler* (event handler execution, split per shard
/// under the sharded drive; index 0 holds everything under the serial
/// drive).
#[cfg(feature = "selfprof")]
#[derive(Debug, Clone, Default)]
pub struct SelfProf {
    /// Runs that recorded phase timings.
    pub runs: u64,
    /// Nanoseconds extracting runnable events.
    pub dispatch_nanos: u64,
    /// Nanoseconds in the sharded barrier merge (0 under the serial drive).
    pub merge_nanos: u64,
    /// Nanoseconds executing handlers, indexed by shard.
    pub handler_nanos: Vec<u64>,
}

/// Engine-side counters shared process-wide — simulation code has no daemon
/// handle, so these accumulate globally (see the module docs).
#[derive(Debug, Default)]
pub struct EngineCounters {
    shard: Mutex<ShardCounters>,
    #[cfg(feature = "selfprof")]
    selfprof: Mutex<SelfProf>,
}

impl EngineCounters {
    /// Folds one sharded run's drive stats into the cumulative counters.
    pub fn record_shard_run(
        &self,
        windows: u64,
        delivered: u64,
        routed: u64,
        cross: u64,
        batches: u64,
    ) {
        let mut s = self.shard.lock().expect("shard counters poisoned");
        s.runs = s.runs.saturating_add(1);
        s.windows = s.windows.saturating_add(windows);
        s.delivered = s.delivered.saturating_add(delivered);
        s.routed = s.routed.saturating_add(routed);
        s.cross = s.cross.saturating_add(cross);
        s.batches = s.batches.saturating_add(batches);
    }

    /// Current cumulative shard counters.
    pub fn shard_counters(&self) -> ShardCounters {
        *self.shard.lock().expect("shard counters poisoned")
    }

    /// Folds one run's phase timings into the cumulative profile.
    #[cfg(feature = "selfprof")]
    pub fn record_selfprof(&self, dispatch_nanos: u64, merge_nanos: u64, handler_nanos: &[u64]) {
        let mut p = self.selfprof.lock().expect("selfprof poisoned");
        p.runs = p.runs.saturating_add(1);
        p.dispatch_nanos = p.dispatch_nanos.saturating_add(dispatch_nanos);
        p.merge_nanos = p.merge_nanos.saturating_add(merge_nanos);
        if p.handler_nanos.len() < handler_nanos.len() {
            p.handler_nanos.resize(handler_nanos.len(), 0);
        }
        for (acc, &n) in p.handler_nanos.iter_mut().zip(handler_nanos.iter()) {
            *acc = acc.saturating_add(n);
        }
    }

    /// Current cumulative phase timings.
    #[cfg(feature = "selfprof")]
    pub fn selfprof(&self) -> SelfProf {
        self.selfprof.lock().expect("selfprof poisoned").clone()
    }
}

/// The process-global engine counter sink.
pub fn engine() -> &'static EngineCounters {
    static ENGINE: OnceLock<EngineCounters> = OnceLock::new();
    ENGINE.get_or_init(EngineCounters::default)
}

/// Live serving gauges, sampled by the daemon under its scheduler lock at
/// snapshot time (they are views of scheduler state, not accumulators).
#[derive(Debug, Clone, Default)]
pub struct GaugeSample {
    /// Connected clients.
    pub clients: u64,
    /// Jobs waiting in per-client queues (not yet picked).
    pub queued: u64,
    /// `(client id, queued jobs)` per connected client, ascending by id.
    pub queue_depth_per_client: Vec<(u64, u64)>,
    /// Jobs picked and executing on workers.
    pub inflight: u64,
    /// Pool worker threads.
    pub workers: u64,
    /// Workers currently executing a job (`workers - busy` are idle).
    pub workers_busy: u64,
    /// Completed results parked in per-client reorder buffers.
    pub reorder_buffered: u64,
    /// Whole seconds since the daemon started.
    pub uptime_seconds: u64,
    /// Entries in the in-memory run cache.
    pub memory_entries: u64,
    /// Disk-cache gauges, when a cache directory is configured.
    pub disk: Option<DiskGauges>,
}

/// Point-in-time view of the persistent disk cache.
#[derive(Debug, Clone)]
pub struct DiskGauges {
    /// Entries currently on disk.
    pub entries: u64,
    /// Bytes of entry files currently on disk.
    pub resident_bytes: u64,
    /// Configured `--cache-budget`, if any.
    pub budget: Option<u64>,
    /// Lifetime hit/miss/write/eviction counters.
    pub stats: DiskCacheStats,
}

/// Per-daemon registry of request-lifecycle metrics.
///
/// Lock discipline: `submitted` is a lone atomic touched on the submit fast
/// path; the histogram block is behind one mutex taken exactly once per
/// request *termination* (milliseconds-to-seconds apart), so the serving
/// path never contends on it.
#[derive(Debug, Default)]
pub struct OpsRegistry {
    submitted: AtomicU64,
    lifecycle: Mutex<[TierStats; 5]>,
}

impl OpsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one accepted submit (rejected requests never enqueue and are
    /// not counted).
    pub fn record_submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Accepted submits so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Records a request's terminal transition: each submit terminates in
    /// exactly one tier, so at quiescence `submitted == Σ tier.count` and
    /// every tier's histogram counts equal its `count`.
    pub fn record_outcome(&self, tier: Tier, queue_wait_us: u64, service_us: u64, total_us: u64) {
        let mut tiers = self.lifecycle.lock().expect("lifecycle poisoned");
        let t = &mut tiers[tier.index()];
        t.count = t.count.saturating_add(1);
        t.queue_wait_us.record(queue_wait_us);
        t.service_us.record(service_us);
        t.total_us.record(total_us);
    }

    /// Clones the per-tier accumulators, in [`Tier::ALL`] order.
    pub fn lifecycle(&self) -> [TierStats; 5] {
        self.lifecycle.lock().expect("lifecycle poisoned").clone()
    }

    /// Builds the canonical JSON snapshot served by the `metrics` wire op
    /// and written by `--metrics-out`. Engine counters come from
    /// [`engine()`]; gauges are whatever the caller just sampled.
    pub fn snapshot_json(&self, gauges: &GaugeSample) -> Json {
        let tiers = self.lifecycle();
        let completed: u64 = tiers.iter().map(|t| t.count).sum();
        let mut tier_members = Vec::with_capacity(Tier::ALL.len());
        for tier in Tier::ALL {
            let t = &tiers[tier.index()];
            tier_members.push((
                tier.token().to_string(),
                Json::Obj(vec![
                    ("count".into(), Json::U64(t.count)),
                    ("queue_wait_us".into(), histogram_json(&t.queue_wait_us)),
                    ("service_us".into(), histogram_json(&t.service_us)),
                    ("total_us".into(), histogram_json(&t.total_us)),
                ]),
            ));
        }
        let requests = Json::Obj(vec![
            ("submitted".into(), Json::U64(self.submitted())),
            ("completed".into(), Json::U64(completed)),
            ("tiers".into(), Json::Obj(tier_members)),
        ]);

        let depth = gauges
            .queue_depth_per_client
            .iter()
            .map(|&(client, depth)| {
                Json::Obj(vec![
                    ("client".into(), Json::U64(client)),
                    ("depth".into(), Json::U64(depth)),
                ])
            })
            .collect();
        let gauges_json = Json::Obj(vec![
            ("clients".into(), Json::U64(gauges.clients)),
            ("queued".into(), Json::U64(gauges.queued)),
            ("queue_depth".into(), Json::Arr(depth)),
            ("inflight".into(), Json::U64(gauges.inflight)),
            ("workers".into(), Json::U64(gauges.workers)),
            ("workers_busy".into(), Json::U64(gauges.workers_busy)),
            (
                "workers_idle".into(),
                Json::U64(gauges.workers.saturating_sub(gauges.workers_busy)),
            ),
            (
                "reorder_buffered".into(),
                Json::U64(gauges.reorder_buffered),
            ),
            ("uptime_seconds".into(), Json::U64(gauges.uptime_seconds)),
        ]);

        let disk = match &gauges.disk {
            None => Json::Null,
            Some(d) => Json::Obj(vec![
                ("entries".into(), Json::U64(d.entries)),
                ("resident_bytes".into(), Json::U64(d.resident_bytes)),
                (
                    "budget_bytes".into(),
                    d.budget.map_or(Json::Null, Json::U64),
                ),
                ("hits".into(), Json::U64(d.stats.hits)),
                ("misses".into(), Json::U64(d.stats.misses)),
                ("writes".into(), Json::U64(d.stats.writes)),
                ("evictions".into(), Json::U64(d.stats.evictions)),
                ("discarded".into(), Json::U64(d.stats.discarded)),
            ]),
        };
        let cache = Json::Obj(vec![
            ("memory_entries".into(), Json::U64(gauges.memory_entries)),
            ("disk".into(), disk),
        ]);

        let s = engine().shard_counters();
        let shard = Json::Obj(vec![
            ("runs".into(), Json::U64(s.runs)),
            ("windows".into(), Json::U64(s.windows)),
            ("delivered".into(), Json::U64(s.delivered)),
            ("routed".into(), Json::U64(s.routed)),
            ("cross".into(), Json::U64(s.cross)),
            ("batches".into(), Json::U64(s.batches)),
        ]);

        let mut members = vec![
            ("type".to_string(), Json::Str("metrics".into())),
            ("schema".to_string(), Json::U64(1)),
            ("requests".to_string(), requests),
            ("gauges".to_string(), gauges_json),
            ("cache".to_string(), cache),
            ("shard".to_string(), shard),
        ];
        members.push(("selfprof".to_string(), selfprof_json()));
        Json::Obj(members)
    }

    /// Renders the snapshot as Prometheus text exposition (one gauge/counter
    /// sample per line, `# TYPE` headers, stable label order) for
    /// `--metrics-out` files ending in `.prom`/`.txt`.
    pub fn snapshot_prometheus(&self, gauges: &GaugeSample) -> String {
        let mut out = String::new();
        let tiers = self.lifecycle();
        let completed: u64 = tiers.iter().map(|t| t.count).sum();
        out.push_str("# TYPE hdpat_requests_submitted counter\n");
        out.push_str(&format!("hdpat_requests_submitted {}\n", self.submitted()));
        out.push_str("# TYPE hdpat_requests_completed counter\n");
        out.push_str(&format!("hdpat_requests_completed {completed}\n"));
        out.push_str("# TYPE hdpat_requests_total counter\n");
        for tier in Tier::ALL {
            let t = &tiers[tier.index()];
            out.push_str(&format!(
                "hdpat_requests_total{{tier=\"{}\"}} {}\n",
                tier.token(),
                t.count
            ));
        }
        out.push_str("# TYPE hdpat_request_latency_us summary\n");
        for tier in Tier::ALL {
            let t = &tiers[tier.index()];
            for (phase, h) in [
                ("queue_wait", &t.queue_wait_us),
                ("service", &t.service_us),
                ("total", &t.total_us),
            ] {
                for (stat, v) in [
                    ("p50", h.quantile_upper_bound(0.50)),
                    ("p95", h.quantile_upper_bound(0.95)),
                    ("p99", h.quantile_upper_bound(0.99)),
                    ("max", h.max()),
                ] {
                    out.push_str(&format!(
                        "hdpat_request_latency_us{{tier=\"{}\",phase=\"{phase}\",stat=\"{stat}\"}} {v}\n",
                        tier.token()
                    ));
                }
            }
        }
        for (name, v) in [
            ("hdpat_clients", gauges.clients),
            ("hdpat_jobs_queued", gauges.queued),
            ("hdpat_jobs_inflight", gauges.inflight),
            ("hdpat_pool_workers", gauges.workers),
            ("hdpat_pool_workers_busy", gauges.workers_busy),
            ("hdpat_reorder_buffered", gauges.reorder_buffered),
            ("hdpat_uptime_seconds", gauges.uptime_seconds),
            ("hdpat_cache_memory_entries", gauges.memory_entries),
        ] {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        out.push_str("# TYPE hdpat_queue_depth gauge\n");
        for &(client, depth) in &gauges.queue_depth_per_client {
            out.push_str(&format!(
                "hdpat_queue_depth{{client=\"{client}\"}} {depth}\n"
            ));
        }
        if let Some(d) = &gauges.disk {
            for (name, v) in [
                ("hdpat_disk_cache_entries", d.entries),
                ("hdpat_disk_cache_resident_bytes", d.resident_bytes),
                ("hdpat_disk_cache_budget_bytes", d.budget.unwrap_or(0)),
            ] {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
            }
            for (name, v) in [
                ("hdpat_disk_cache_hits", d.stats.hits),
                ("hdpat_disk_cache_misses", d.stats.misses),
                ("hdpat_disk_cache_writes", d.stats.writes),
                ("hdpat_disk_cache_evictions", d.stats.evictions),
                ("hdpat_disk_cache_discarded", d.stats.discarded),
            ] {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
        }
        let s = engine().shard_counters();
        for (name, v) in [
            ("hdpat_shard_runs", s.runs),
            ("hdpat_shard_windows", s.windows),
            ("hdpat_shard_delivered", s.delivered),
            ("hdpat_shard_routed", s.routed),
            ("hdpat_shard_cross", s.cross),
            ("hdpat_shard_batches", s.batches),
        ] {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        #[cfg(feature = "selfprof")]
        {
            let p = engine().selfprof();
            for (name, v) in [
                ("hdpat_selfprof_runs", p.runs),
                ("hdpat_selfprof_dispatch_nanos", p.dispatch_nanos),
                ("hdpat_selfprof_merge_nanos", p.merge_nanos),
            ] {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            out.push_str("# TYPE hdpat_selfprof_handler_nanos counter\n");
            for (shard, &n) in p.handler_nanos.iter().enumerate() {
                out.push_str(&format!(
                    "hdpat_selfprof_handler_nanos{{shard=\"{shard}\"}} {n}\n"
                ));
            }
        }
        out
    }
}

/// JSON rendering of one latency histogram: counts, integer-only summary
/// stats (bucketed p50/p95/p99, exact max, saturating sum), and the
/// non-empty `[lower_bound, count]` buckets.
fn histogram_json(h: &LogHistogram) -> Json {
    let buckets = h
        .iter()
        .map(|(lo, c)| Json::Arr(vec![Json::U64(lo), Json::U64(c)]))
        .collect();
    Json::Obj(vec![
        ("count".into(), Json::U64(h.count())),
        (
            "sum".into(),
            Json::U64(u64::try_from(h.raw_sum()).unwrap_or(u64::MAX)),
        ),
        ("p50".into(), Json::U64(h.quantile_upper_bound(0.50))),
        ("p95".into(), Json::U64(h.quantile_upper_bound(0.95))),
        ("p99".into(), Json::U64(h.quantile_upper_bound(0.99))),
        ("max".into(), Json::U64(h.max())),
        ("buckets".into(), Json::Arr(buckets)),
    ])
}

#[cfg(feature = "selfprof")]
fn selfprof_json() -> Json {
    let p = engine().selfprof();
    Json::Obj(vec![
        ("runs".into(), Json::U64(p.runs)),
        ("dispatch_nanos".into(), Json::U64(p.dispatch_nanos)),
        ("merge_nanos".into(), Json::U64(p.merge_nanos)),
        (
            "handler_nanos".into(),
            Json::Arr(p.handler_nanos.iter().map(|&n| Json::U64(n)).collect()),
        ),
    ])
}

#[cfg(not(feature = "selfprof"))]
fn selfprof_json() -> Json {
    Json::Null
}

/// Append-only JSONL ops log: one object per request state transition
/// (`enqueue`, `schedule`, `complete`, `cancel`, `client-gone`, plus daemon
/// `start`/`shutdown` markers), each stamped with wall-clock milliseconds
/// since the Unix epoch. Lines are flushed per event so `tail -f` and
/// post-mortem reads always see whole records.
#[derive(Debug)]
pub struct OpsLog {
    file: Mutex<io::BufWriter<std::fs::File>>,
}

impl OpsLog {
    /// Creates (truncating) the log file.
    pub fn create(path: &Path) -> io::Result<OpsLog> {
        let file = std::fs::File::create(path)?;
        Ok(OpsLog {
            file: Mutex::new(io::BufWriter::new(file)),
        })
    }

    /// Appends one event. `fields` follow the `ev` and `t_ms` members in
    /// the given order; write errors are swallowed (observability must
    /// never take the serving path down).
    pub fn event(&self, ev: &str, fields: &[(&str, Json)]) {
        let t_ms = std::time::SystemTime::now() // lint:allow(wallclock): ops-log timestamps annotate the serving timeline; they never reach simulation state or any deterministic artifact
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut members = vec![
            ("ev".to_string(), Json::Str(ev.to_string())),
            ("t_ms".to_string(), Json::U64(t_ms)),
        ];
        members.extend(fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())));
        let line = Json::Obj(members).to_line();
        if let Ok(mut f) = self.file.lock() {
            let _ = writeln!(f, "{line}");
            let _ = f.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_reconcile_with_submits() {
        let reg = OpsRegistry::new();
        for _ in 0..6 {
            reg.record_submit();
        }
        reg.record_outcome(Tier::Memory, 10, 1, 11);
        reg.record_outcome(Tier::Memory, 20, 2, 22);
        reg.record_outcome(Tier::Disk, 30, 3, 33);
        reg.record_outcome(Tier::Simulated, 40, 400_000, 400_040);
        reg.record_outcome(Tier::Cancelled, 50, 0, 50);
        reg.record_outcome(Tier::ClientGone, 60, 0, 60);
        let tiers = reg.lifecycle();
        let completed: u64 = tiers.iter().map(|t| t.count).sum();
        assert_eq!(completed, reg.submitted());
        for t in &tiers {
            assert_eq!(t.queue_wait_us.count(), t.count);
            assert_eq!(t.service_us.count(), t.count);
            assert_eq!(t.total_us.count(), t.count);
        }
    }

    #[test]
    fn snapshot_json_is_canonical_and_reconciles() {
        let reg = OpsRegistry::new();
        reg.record_submit();
        reg.record_submit();
        reg.record_outcome(Tier::Memory, 5, 1, 6);
        reg.record_outcome(Tier::Simulated, 7, 900, 907);
        let gauges = GaugeSample {
            clients: 1,
            queue_depth_per_client: vec![(1, 0)],
            workers: 4,
            memory_entries: 2,
            ..GaugeSample::default()
        };
        let snap = reg.snapshot_json(&gauges);
        let line = snap.to_line();
        let parsed = Json::parse(&line).expect("snapshot parses");
        assert_eq!(parsed.to_line(), line, "snapshot must be canonical");
        assert_eq!(
            parsed.get("type").and_then(Json::as_str),
            Some("metrics"),
            "snapshot type tag"
        );
        let requests = parsed.get("requests").expect("requests section");
        assert_eq!(requests.get("submitted").and_then(Json::as_u64), Some(2));
        assert_eq!(requests.get("completed").and_then(Json::as_u64), Some(2));
        let tiers = requests.get("tiers").expect("tiers section");
        let mut total = 0;
        for tier in Tier::ALL {
            let t = tiers.get(tier.token()).expect("every tier present");
            let count = t.get("count").and_then(Json::as_u64).unwrap();
            let hist_count = t
                .get("total_us")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64)
                .unwrap();
            assert_eq!(count, hist_count, "histogram count matches tier count");
            total += count;
        }
        assert_eq!(total, 2, "tier counts sum to submitted");
    }

    #[test]
    fn prometheus_text_has_core_series() {
        let reg = OpsRegistry::new();
        reg.record_submit();
        reg.record_outcome(Tier::Disk, 1, 2, 3);
        let text = reg.snapshot_prometheus(&GaugeSample {
            workers: 2,
            queue_depth_per_client: vec![(3, 1)],
            ..GaugeSample::default()
        });
        assert!(text.contains("hdpat_requests_submitted 1\n"));
        assert!(text.contains("hdpat_requests_total{tier=\"disk\"} 1\n"));
        assert!(text.contains("hdpat_queue_depth{client=\"3\"} 1\n"));
        assert!(text.contains("# TYPE hdpat_pool_workers gauge\nhdpat_pool_workers 2\n"));
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn ops_log_writes_parseable_jsonl() {
        let dir = std::env::temp_dir().join(format!("hdpat-opslog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ops.jsonl");
        let log = OpsLog::create(&path).unwrap();
        log.event("enqueue", &[("id", Json::Str("q1".into()))]);
        log.event("complete", &[("tier", Json::Str("memory".into()))]);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = Json::parse(line).expect("ops log line parses");
            assert!(v.get("ev").and_then(Json::as_str).is_some());
            assert!(v.get("t_ms").and_then(Json::as_u64).is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
