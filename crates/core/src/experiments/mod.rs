//! Experiment runners used by the examples, tests, and the figure benches:
//! the one-call [`run`] plus the deterministic parallel sweep API
//! ([`SweepCtx`], [`RunCache`]) that deduplicates and fans independent
//! points across worker threads without changing a single output byte, and
//! the persistent [`DiskCache`] that carries completed runs across
//! processes (the store behind `hdpat-sim serve`).

mod diskcache;
mod fingerprint;

pub use diskcache::{DiskCache, DiskCacheStats};
pub use fingerprint::FINGERPRINT_VERSION;

use wsg_gpu::SystemConfig;
use wsg_workloads::{BenchmarkId, Scale};

/// Divides the capacity of every translation/cache structure by the same
/// factor the workload scale divides memory footprints by, so the
/// working-set-to-capacity ratios of the paper's full-size configuration are
/// preserved at reduced scale. Timing parameters (latencies, walker counts,
/// bandwidths) are untouched — only sizes shrink.
pub fn scale_hardware(system: &mut SystemConfig, divisor: usize) {
    if divisor <= 1 {
        return;
    }
    let d = divisor;
    let shrink_sets = |sets: usize, floor: usize| (sets / d).max(floor).next_power_of_two();
    let g = &mut system.gpm;
    g.l1_tlb.ways = (g.l1_tlb.ways / d.min(4)).max(8); // small already; shrink gently
    g.l2_tlb.sets = shrink_sets(g.l2_tlb.sets, 1);
    g.l2_tlb.ways = g.l2_tlb.ways.min(8);
    g.gmmu_cache.sets = shrink_sets(g.gmmu_cache.sets, 4);
    g.gmmu_cache.ways = g.gmmu_cache.ways.min(8);
    g.cuckoo_capacity = (g.cuckoo_capacity / d).max(256);
    g.l1_cache.sets = shrink_sets(g.l1_cache.sets, 4);
    g.l2_cache.sets = shrink_sets(g.l2_cache.sets, 16);
    system.iommu.redirection_entries = (system.iommu.redirection_entries / d).max(16);
    system.iommu.pw_queue = (system.iommu.pw_queue / d).max(8);
}

/// The hardware-capacity divisor matching each workload scale's footprint
/// reduction (Table II is divided by ~64 at `Bench`, ~512 at `Unit`).
pub fn hardware_divisor(scale: Scale) -> usize {
    match scale {
        Scale::Full => 1,
        Scale::Bench => 64,
        Scale::Unit => 256,
    }
}

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::Metrics;
use crate::policy::PolicyKind;
use crate::sim::Simulation;

/// A fully specified simulation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Hardware configuration (wafer, GPM, IOMMU, page size, mesh).
    pub system: SystemConfig,
    /// Translation policy under test.
    pub policy: PolicyKind,
    /// Workload.
    pub benchmark: BenchmarkId,
    /// Workload scale.
    pub scale: Scale,
    /// Workload generator seed (the default 42 is used throughout the
    /// reproduction for determinism).
    pub seed: u64,
}

impl RunConfig {
    /// A run on the paper-baseline system (7×7 wafer, MI100 GPMs, 4 KB
    /// pages), with structure capacities scaled to match the workload scale
    /// (see [`scale_hardware`]).
    pub fn new(benchmark: BenchmarkId, scale: Scale, policy: PolicyKind) -> Self {
        let mut system = SystemConfig::paper_baseline();
        scale_hardware(&mut system, hardware_divisor(scale));
        Self {
            system,
            policy,
            benchmark,
            scale,
            seed: 42,
        }
    }

    /// A run that keeps the paper's full-size structure capacities
    /// regardless of workload scale (for sensitivity checks).
    pub fn new_unscaled(benchmark: BenchmarkId, scale: Scale, policy: PolicyKind) -> Self {
        Self {
            system: SystemConfig::paper_baseline(),
            policy,
            benchmark,
            scale,
            seed: 42,
        }
    }

    /// Replaces the system configuration and re-applies capacity scaling
    /// for this run's workload scale.
    pub fn with_system(mut self, mut system: SystemConfig) -> Self {
        scale_hardware(&mut system, hardware_divisor(self.scale));
        self.system = system;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Canonical fingerprint of this run: two configs simulate identically
    /// if and only if their fingerprints are equal, no matter how they were
    /// constructed (`new` + `with_system` vs hand-assembled fields).
    ///
    /// The fingerprint is an explicitly versioned, hand-rendered enumeration
    /// of every semantically meaningful field, prefixed with
    /// [`FINGERPRINT_VERSION`] (see DESIGN.md §14 for the full stability
    /// contract and why the old `Debug`-format key was replaced). Every
    /// config struct is fully destructured in the renderer, so adding a
    /// field anywhere is a compile error until its rendering — and a version
    /// bump — are decided. [`RunCache`] uses the fingerprint as the
    /// in-memory key and [`DiskCache`] as the persistent content address, so
    /// identical requests hit across processes, restarts, and machines.
    pub fn fingerprint(&self) -> String {
        fingerprint::fingerprint(self)
    }
}

/// Runs one simulation to completion.
///
/// # Example
///
/// ```
/// use hdpat::experiments::{run, RunConfig};
/// use hdpat::policy::PolicyKind;
/// use wsg_workloads::{BenchmarkId, Scale};
///
/// let m = run(&RunConfig::new(BenchmarkId::Relu, Scale::Unit, PolicyKind::Naive));
/// assert!(m.total_cycles > 0);
/// assert!(m.ops_completed > 0);
/// ```
pub fn run(cfg: &RunConfig) -> Metrics {
    Simulation::new(
        cfg.system.clone(),
        cfg.policy,
        cfg.benchmark,
        cfg.scale,
        cfg.seed,
    )
    .run()
}

/// Runs one experiment point like [`run`], executing the event population
/// across `shards` tile-group shards under the conservative-lookahead
/// window protocol (DESIGN.md §15). `shards <= 1` is exactly [`run`].
///
/// The shard count is purely an *execution* parameter: the metrics are
/// byte-identical to [`run`] for every value (`tests/equivalence.rs` pins
/// this property-based), which is also why it is deliberately **not** part
/// of [`RunConfig::fingerprint`] — cached results are valid across shard
/// counts.
pub fn run_with_shards(cfg: &RunConfig, shards: usize) -> Metrics {
    Simulation::new(
        cfg.system.clone(),
        cfg.policy,
        cfg.benchmark,
        cfg.scale,
        cfg.seed,
    )
    .run_with_shards(shards)
}

/// Runs one experiment point like [`run`], with a request-lifecycle trace
/// sink attached for the whole run. Returns the metrics (with
/// `stage_latency` populated) together with the filled sink.
///
/// Tracing is purely observational: the metrics' deterministic serialization
/// is byte-identical to an untraced [`run`] of the same point
/// (`tests/trace_determinism.rs`).
#[cfg(feature = "trace")]
pub fn run_traced(cfg: &RunConfig) -> (Metrics, wsg_sim::trace::TraceSink) {
    let mut sim = Simulation::new(
        cfg.system.clone(),
        cfg.policy,
        cfg.benchmark,
        cfg.scale,
        cfg.seed,
    );
    let sink = wsg_sim::trace::TraceSink::shared();
    sim.set_tracer(&sink);
    // `run` consumes the simulation, dropping the engine's sink handles, so
    // the Rc unwraps cleanly; the clone fallback is defensive only.
    let metrics = sim.run();
    // lint:allow(shared-mut): harness-boundary unwrap of the sink handle;
    // the Rc never outlives this function and never crosses into the model.
    let sink = std::rc::Rc::try_unwrap(sink)
        .map(|cell| cell.into_inner())
        .unwrap_or_else(|rc| rc.borrow().clone());
    (metrics, sink)
}

/// Runs one experiment point like [`run`], with the telemetry flight
/// recorder attached and sampling every `sample_interval` cycles. Returns
/// the metrics together with the filled registry, ready for the CSV /
/// JSON / Perfetto-counter and heatmap exports.
///
/// Telemetry is purely observational: the metrics' deterministic
/// serialization is byte-identical to a plain [`run`] of the same point,
/// and the sink's exports are byte-identical across hosts and `--jobs`
/// values (`tests/telemetry_determinism.rs`).
#[cfg(feature = "telemetry")]
pub fn run_telemetry(
    cfg: &RunConfig,
    sample_interval: wsg_sim::Cycle,
) -> (Metrics, wsg_sim::telemetry::TelemetrySink) {
    let mut sim = Simulation::new(
        cfg.system.clone(),
        cfg.policy,
        cfg.benchmark,
        cfg.scale,
        cfg.seed,
    );
    let sink = wsg_sim::telemetry::TelemetrySink::shared(sample_interval);
    sim.set_telemetry(&sink);
    // `run` consumes the simulation, dropping the engine's sink handles, so
    // the Rc unwraps cleanly; the clone fallback is defensive only.
    let metrics = sim.run();
    // lint:allow(shared-mut): harness-boundary unwrap of the sink handle;
    // the Rc never outlives this function and never crosses into the model.
    let sink = std::rc::Rc::try_unwrap(sink)
        .map(|cell| cell.into_inner())
        .unwrap_or_else(|rc| rc.borrow().clone());
    (metrics, sink)
}

/// Runs one experiment point with both the request-lifecycle tracer and the
/// telemetry flight recorder attached, so span events and counter tracks
/// share one simulated clock. Feed both sinks to
/// [`wsg_sim::telemetry::TelemetrySink::merge_chrome_json`] for a single
/// Perfetto document.
#[cfg(all(feature = "telemetry", feature = "trace"))]
pub fn run_telemetry_traced(
    cfg: &RunConfig,
    sample_interval: wsg_sim::Cycle,
) -> (
    Metrics,
    wsg_sim::telemetry::TelemetrySink,
    wsg_sim::trace::TraceSink,
) {
    let mut sim = Simulation::new(
        cfg.system.clone(),
        cfg.policy,
        cfg.benchmark,
        cfg.scale,
        cfg.seed,
    );
    let tel = wsg_sim::telemetry::TelemetrySink::shared(sample_interval);
    sim.set_telemetry(&tel);
    let trc = wsg_sim::trace::TraceSink::shared();
    sim.set_tracer(&trc);
    let metrics = sim.run();
    // lint:allow(shared-mut): harness-boundary unwrap of the sink handles;
    // the Rcs never outlive this function and never cross into the model.
    let tel = std::rc::Rc::try_unwrap(tel)
        .map(|cell| cell.into_inner())
        .unwrap_or_else(|rc| rc.borrow().clone());
    // lint:allow(shared-mut): harness-boundary unwrap (see above).
    let trc = std::rc::Rc::try_unwrap(trc)
        .map(|cell| cell.into_inner())
        .unwrap_or_else(|rc| rc.borrow().clone());
    (metrics, tel, trc)
}

/// Keyed in-memory cache of completed runs: [`RunConfig::fingerprint`] →
/// [`Metrics`].
///
/// The cache is shared by reference across every figure of one bench
/// invocation, so common points (most prominently the Naive baseline, which
/// a dozen figures normalize against) are simulated exactly once. Entries
/// are `Arc`-shared — a hit hands back the same metrics object the miss
/// produced, so cached and uncached paths cannot diverge.
///
/// Thread-safe: [`SweepCtx::sweep`] fills it from pool workers.
#[derive(Debug, Default)]
pub struct RunCache {
    /// BTreeMap keeps any future iteration over the cache deterministic
    /// (lint rule d1); lookups are by exact fingerprint.
    entries: Mutex<BTreeMap<String, Arc<Metrics>>>,
}

impl RunCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The metrics cached for `key`, if present.
    pub fn get(&self, key: &str) -> Option<Arc<Metrics>> {
        match self.entries.lock() {
            Ok(map) => map.get(key).cloned(),
            Err(poisoned) => poisoned.into_inner().get(key).cloned(),
        }
    }

    /// Stores `metrics` under `key`. First writer wins: on a duplicate
    /// insert the existing entry is kept, so every reader of a key observes
    /// one object identity.
    pub fn insert(&self, key: String, metrics: Arc<Metrics>) {
        let mut map = match self.entries.lock() {
            Ok(map) => map,
            Err(poisoned) => poisoned.into_inner(),
        };
        map.entry(key).or_insert(metrics);
    }

    /// Number of cached points.
    pub fn len(&self) -> usize {
        match self.entries.lock() {
            Ok(map) => map.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Execution context for simulation sweeps: a worker-thread budget plus a
/// [`RunCache`] threaded across every sweep issued through it.
///
/// # Determinism contract (see DESIGN.md §9)
///
/// * Results are returned in **input order**, never completion order.
/// * Each point is fully specified by its [`RunConfig`] (including the
///   seed), so where and when it executes cannot affect its metrics.
/// * Consequently the output is byte-identical for every `jobs` value and
///   for cached vs uncached execution (`tests/sweep_determinism.rs`
///   enforces this) — `jobs` and the cache only change wall-clock time.
#[derive(Debug)]
pub struct SweepCtx {
    cache: Option<RunCache>,
    disk: Option<DiskCache>,
    jobs: usize,
    /// Intra-run shard count handed to [`run_with_shards`] for every point
    /// this context executes; 1 = the serial drive.
    shards: usize,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    events: AtomicU64,
    progress: Option<Progress>,
}

/// Live progress state for [`SweepCtx::with_progress`]: completed/total
/// runs plus the context start time for events-per-second and ETA. Written
/// only to stderr — deterministic outputs never see it.
#[derive(Debug)]
struct Progress {
    total: AtomicU64,
    done: AtomicU64,
    // Progress display only; the reading is printed to stderr and never
    // feeds back into the model or any artifact.
    started: std::time::Instant,
}

impl SweepCtx {
    /// A context running up to `jobs` simulations concurrently (clamped to
    /// at least 1), with caching enabled.
    pub fn new(jobs: usize) -> Self {
        Self {
            cache: Some(RunCache::new()),
            disk: None,
            jobs: jobs.max(1),
            shards: 1,
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            events: AtomicU64::new(0),
            progress: None,
        }
    }

    /// Attaches a persistent [`DiskCache`]: sweep points missing from the
    /// in-memory cache are probed on disk before being scheduled, and every
    /// freshly simulated point is written back. Purely an optimization —
    /// results are byte-identical with and without the disk cache
    /// (`tests/sweep_determinism.rs`), only wall-clock time changes.
    ///
    /// The disk probe sits behind the in-memory cache, so it only applies to
    /// contexts with caching enabled ([`SweepCtx::new`]); attaching it to a
    /// [`SweepCtx::without_cache`] context is a no-op by construction.
    pub fn with_disk_cache(mut self, disk: DiskCache) -> Self {
        self.disk = Some(disk);
        self
    }

    /// The attached disk cache, if any — for hit-rate reporting.
    pub fn disk_cache(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// Executes every point this context simulates across `shards`
    /// tile-group shards (see [`run_with_shards`]; clamped to at least 1).
    /// Purely an execution parameter — results, cache keys and every
    /// artifact are byte-identical for every value.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The intra-run shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Enables the live progress reporter: every completed simulation
    /// updates a `completed/total runs, events/sec, ETA` line on stderr.
    /// Reporting is cosmetic — results and every written artifact are
    /// byte-identical with and without it.
    pub fn with_progress(mut self) -> Self {
        self.progress = Some(Progress {
            total: AtomicU64::new(0),
            done: AtomicU64::new(0),
            // lint:allow(wallclock): progress display only (see Progress).
            started: std::time::Instant::now(),
        });
        self
    }

    /// One completed run: bump the counter and redraw the stderr line.
    fn report_progress(&self) {
        let Some(p) = &self.progress else { return };
        let done = p.done.fetch_add(1, Ordering::Relaxed) + 1;
        let total = p.total.load(Ordering::Relaxed).max(done);
        let events = self.events.load(Ordering::Relaxed);
        let secs = p.started.elapsed().as_secs_f64();
        let rate = if secs > 0.0 {
            events as f64 / secs
        } else {
            0.0
        };
        let eta = if total > done {
            secs / done as f64 * (total - done) as f64
        } else {
            0.0
        };
        eprint!(
            "\r[sweep] {done}/{total} runs  {:.1}M events  {:.2}M ev/s  ETA {eta:.0}s ",
            events as f64 / 1e6,
            rate / 1e6,
        );
        let _ = std::io::Write::flush(&mut std::io::stderr());
    }

    /// Announces `n` upcoming runs to the reporter and returns whether it
    /// is enabled.
    fn announce_runs(&self, n: usize) -> bool {
        match &self.progress {
            Some(p) => {
                p.total.fetch_add(n as u64, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// A serial context (`jobs = 1`): today's exact one-at-a-time behaviour,
    /// still with cross-figure caching.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A context sized to the host's available parallelism.
    pub fn auto() -> Self {
        Self::new(wsg_sim::pool::default_jobs())
    }

    /// A context with the run cache disabled: every sweep point is simulated
    /// fresh, even within a single [`SweepCtx::sweep`] call. Exists to prove
    /// the cache is purely an optimization.
    pub fn without_cache(jobs: usize) -> Self {
        Self {
            cache: None,
            ..Self::new(jobs)
        }
    }

    /// The worker-thread budget.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// `(cache hits, simulations executed)` across the context's lifetime.
    /// Disk-cache hits are counted separately ([`SweepCtx::disk_hits`]) —
    /// they are neither an in-memory hit nor an executed simulation.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Sweep points resolved from the attached disk cache (always 0 when no
    /// disk cache is attached).
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Total simulator events delivered by runs this context actually
    /// executed (cache hits contribute nothing — their events were counted
    /// when the miss ran). Feeds the `--perf-out` trajectory artifact; not
    /// part of any deterministic output.
    pub fn events_executed(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Runs a single point through the cache.
    pub fn run(&self, cfg: &RunConfig) -> Arc<Metrics> {
        let mut out = self.sweep(std::slice::from_ref(cfg));
        match out.pop() {
            Some(m) => m,
            // sweep() returns exactly one result per input point.
            None => unreachable!("sweep of one point returned no result"),
        }
    }

    /// Runs every point and returns metrics **in input order**.
    ///
    /// Duplicate and already-cached points are simulated once (unless the
    /// cache is disabled); the unique remainder is executed across the
    /// worker pool. See the type-level determinism contract.
    pub fn sweep(&self, cfgs: &[RunConfig]) -> Vec<Arc<Metrics>> {
        let Some(cache) = &self.cache else {
            self.misses.fetch_add(cfgs.len() as u64, Ordering::Relaxed);
            let reporting = self.announce_runs(cfgs.len());
            let out = wsg_sim::pool::run_indexed_with(
                self.jobs,
                cfgs.len(),
                |i| {
                    let m = Arc::new(run_with_shards(&cfgs[i], self.shards));
                    self.events.fetch_add(m.sim_events, Ordering::Relaxed);
                    m
                },
                |_| self.report_progress(),
            );
            if reporting && !cfgs.is_empty() {
                eprintln!();
            }
            return out;
        };
        let keys: Vec<String> = cfgs.iter().map(RunConfig::fingerprint).collect();
        // Unique uncached points, in first-occurrence order. Each unique
        // point missing from memory is probed on disk before it is scheduled
        // — a disk hit is promoted into the in-memory cache (so duplicates
        // of it downstream count as ordinary hits) and never simulated.
        let mut pending = BTreeSet::new();
        let mut todo: Vec<usize> = Vec::new();
        let mut from_disk: u64 = 0;
        for (i, key) in keys.iter().enumerate() {
            if cache.get(key).is_none() && pending.insert(key.as_str()) {
                if let Some(m) = self.disk.as_ref().and_then(|d| d.get(key)) {
                    cache.insert(key.clone(), Arc::new(m));
                    from_disk += 1;
                } else {
                    todo.push(i);
                }
            }
        }
        self.disk_hits.fetch_add(from_disk, Ordering::Relaxed);
        self.hits.fetch_add(
            cfgs.len() as u64 - todo.len() as u64 - from_disk,
            Ordering::Relaxed,
        );
        self.misses.fetch_add(todo.len() as u64, Ordering::Relaxed);
        let reporting = self.announce_runs(todo.len());
        let fresh = wsg_sim::pool::run_indexed_with(
            self.jobs,
            todo.len(),
            |j| {
                let m = Arc::new(run_with_shards(&cfgs[todo[j]], self.shards));
                self.events.fetch_add(m.sim_events, Ordering::Relaxed);
                m
            },
            |_| self.report_progress(),
        );
        if reporting && !todo.is_empty() {
            eprintln!();
        }
        for (j, &i) in todo.iter().enumerate() {
            cache.insert(keys[i].clone(), fresh[j].clone());
            if let Some(disk) = &self.disk {
                disk.insert(&keys[i], &fresh[j]);
            }
        }
        keys.iter()
            .map(|key| match cache.get(key) {
                Some(m) => m,
                None => unreachable!("sweep point missing from cache after execution"),
            })
            .collect()
    }
}

impl Default for SweepCtx {
    fn default() -> Self {
        Self::auto()
    }
}

/// Runs `policy` and the naive baseline on the same workload and returns
/// `(baseline, policy_metrics, speedup)`.
pub fn run_with_baseline(cfg: &RunConfig) -> (Metrics, Metrics, f64) {
    let base_cfg = RunConfig {
        policy: PolicyKind::Naive,
        ..cfg.clone()
    };
    let base = run(&base_cfg);
    let m = run(cfg);
    let speedup = m.speedup_vs(&base);
    (base, m, speedup)
}

/// Runs every Table II benchmark under `policy` at `scale` and returns
/// per-benchmark metrics in catalog order.
pub fn run_all(
    policy: PolicyKind,
    scale: Scale,
    system: &SystemConfig,
) -> Vec<(BenchmarkId, Metrics)> {
    BenchmarkId::all()
        .into_iter()
        .map(|b| {
            let cfg = RunConfig::new(b, scale, policy).with_system(system.clone());
            (b, run(&cfg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_content_based() {
        // `new` scales the baseline for Unit; `with_system` re-applies the
        // same scaling to an identical baseline — same content, same key.
        let a = RunConfig::new(BenchmarkId::Relu, Scale::Unit, PolicyKind::Naive);
        let b = RunConfig::new(BenchmarkId::Relu, Scale::Unit, PolicyKind::Naive)
            .with_system(SystemConfig::paper_baseline());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), a.clone().with_seed(7).fingerprint());
        assert_ne!(
            a.fingerprint(),
            RunConfig::new(BenchmarkId::Relu, Scale::Unit, PolicyKind::hdpat()).fingerprint()
        );
    }

    #[test]
    fn sweep_dedups_and_preserves_input_order() {
        let relu = RunConfig::new(BenchmarkId::Relu, Scale::Unit, PolicyKind::Naive);
        let aes = RunConfig::new(BenchmarkId::Aes, Scale::Unit, PolicyKind::Naive);
        let ctx = SweepCtx::serial();
        let out = ctx.sweep(&[relu.clone(), aes.clone(), relu.clone()]);
        assert_eq!(out.len(), 3);
        // Duplicate points resolve to the same Arc, simulated once.
        assert!(Arc::ptr_eq(&out[0], &out[2]));
        assert!(!Arc::ptr_eq(&out[0], &out[1]));
        let (hits, misses) = ctx.cache_stats();
        assert_eq!((hits, misses), (1, 2));
        // A later sweep through the same context hits the cache.
        let again = ctx.run(&aes);
        assert!(Arc::ptr_eq(&again, &out[1]));
        assert_eq!(ctx.cache_stats(), (2, 2));
    }

    #[test]
    fn sweep_matches_serial_run_across_jobs_and_caching() {
        let cfgs: Vec<RunConfig> = [BenchmarkId::Relu, BenchmarkId::Aes]
            .into_iter()
            .map(|b| RunConfig::new(b, Scale::Unit, PolicyKind::Naive))
            .collect();
        let reference: Vec<String> = cfgs
            .iter()
            .map(|c| run(c).to_deterministic_string())
            .collect();
        for ctx in [
            SweepCtx::serial(),
            SweepCtx::new(4),
            SweepCtx::without_cache(4),
        ] {
            let got: Vec<String> = ctx
                .sweep(&cfgs)
                .iter()
                .map(|m| m.to_deterministic_string())
                .collect();
            assert_eq!(got, reference, "jobs={} diverged", ctx.jobs());
        }
    }

    #[test]
    fn sweep_resolves_from_disk_across_contexts() {
        let dir =
            std::env::temp_dir().join(format!("hdpat-sweep-disk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RunConfig::new(BenchmarkId::Relu, Scale::Unit, PolicyKind::Naive);

        // First context: cold disk, the point is simulated and written back.
        let warm = SweepCtx::serial().with_disk_cache(DiskCache::open(&dir, None).unwrap());
        let first = warm.run(&cfg);
        assert_eq!(warm.cache_stats(), (0, 1));
        assert_eq!(warm.disk_hits(), 0);

        // Second context (fresh memory cache, same directory): served from
        // disk, nothing simulated, bytes identical.
        let cold = SweepCtx::serial().with_disk_cache(DiskCache::open(&dir, None).unwrap());
        let out = cold.sweep(&[cfg.clone(), cfg.clone()]);
        assert_eq!(cold.cache_stats(), (1, 0), "no simulation on the reload");
        assert_eq!(cold.disk_hits(), 1);
        assert_eq!(
            out[0].to_deterministic_string(),
            first.to_deterministic_string()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn naive_run_completes_all_ops() {
        let m = run(&RunConfig::new(
            BenchmarkId::Relu,
            Scale::Unit,
            PolicyKind::Naive,
        ));
        assert!(m.ops_completed > 1000, "ops: {}", m.ops_completed);
        assert!(m.total_cycles > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = RunConfig::new(BenchmarkId::Spmv, Scale::Unit, PolicyKind::hdpat());
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.ops_completed, b.ops_completed);
        assert_eq!(a.iommu_walks, b.iommu_walks);
    }

    #[test]
    fn hdpat_reduces_iommu_walks_on_spmv() {
        let (base, hd, speedup) = run_with_baseline(&RunConfig::new(
            BenchmarkId::Spmv,
            Scale::Unit,
            PolicyKind::hdpat(),
        ));
        assert!(
            hd.iommu_walks < base.iommu_walks,
            "HDPAT walks {} vs baseline {}",
            hd.iommu_walks,
            base.iommu_walks
        );
        assert!(speedup > 0.8, "speedup {speedup}");
    }

    #[test]
    fn baseline_resolves_everything_at_iommu() {
        let m = run(&RunConfig::new(
            BenchmarkId::Spmv,
            Scale::Unit,
            PolicyKind::Naive,
        ));
        assert_eq!(m.resolution.value("peer-cache"), 0);
        assert_eq!(m.resolution.value("redirection"), 0);
        assert!(m.resolution.value("iommu") > 0);
    }

    #[test]
    fn hdpat_offloads_translations() {
        let m = run(&RunConfig::new(
            BenchmarkId::Pr,
            Scale::Unit,
            PolicyKind::hdpat(),
        ));
        assert!(
            m.offload_fraction() > 0.05,
            "offload fraction {}",
            m.offload_fraction()
        );
    }
}
