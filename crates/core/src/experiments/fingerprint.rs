//! The versioned, content-addressed [`RunConfig`] fingerprint.
//!
//! # Why not `Debug`?
//!
//! Until PR 7 the fingerprint was the `Debug` rendering of every `RunConfig`
//! field. That was *content-based* (two equal configs rendered identically)
//! but **fragile as a persistence key**: `derive(Debug)` output changes
//! whenever a field is renamed, added, or reordered — even when the change
//! is semantically irrelevant — and nothing forced a version bump when a
//! change *was* semantically meaningful. Harmless for a cache that died
//! with the process; unacceptable for an on-disk store shared across
//! processes, builds, and machines. See DESIGN.md §14.
//!
//! # The v2 contract
//!
//! [`fingerprint`] renders every semantically meaningful field **by hand**,
//! in a fixed order, under an explicit leading version token
//! (`hdpat-rc-v2`). The stability contract:
//!
//! * Equal configs (field-wise) always produce equal fingerprints, however
//!   they were constructed.
//! * Any config difference that can change simulation output produces a
//!   different fingerprint.
//! * The rendering for a given config never changes silently: every struct
//!   is **fully destructured** (no `..` rest patterns), so adding a field
//!   to any config type is a compile error here — the author must decide
//!   how the new field renders and bump [`FINGERPRINT_VERSION`].
//! * `tests::v2_fingerprint_is_pinned` asserts the exact string for the
//!   paper-baseline config; it failing means the contract changed and the
//!   version must be bumped (which orphans old disk-cache entries — by
//!   design).
//!
//! `f64` parameters render with Rust's shortest-roundtrip formatting, which
//! is injective (distinct values → distinct text), so equality of rendering
//! equals bit-equality of the parameter.

use std::fmt::Write as _;

use wsg_gpu::{GpmConfig, IommuConfig, SystemConfig};
use wsg_mem::{CacheConfig, HbmConfig};
use wsg_noc::LinkParams;
use wsg_workloads::Scale;
use wsg_xlat::TlbConfig;

use super::RunConfig;
use crate::policy::{HdpatConfig, PolicyKind};

/// Version token prefixed to every fingerprint. Bump when the rendering
/// below changes shape or any rendered field changes meaning; old disk-cache
/// entries then simply never match again.
pub const FINGERPRINT_VERSION: &str = "hdpat-rc-v2";

/// Renders the canonical fingerprint of `cfg` (see the module docs for the
/// stability contract). Exposed through [`RunConfig::fingerprint`].
pub fn fingerprint(cfg: &RunConfig) -> String {
    let RunConfig {
        system,
        policy,
        benchmark,
        scale,
        seed,
    } = cfg;
    let mut s = String::with_capacity(512);
    s.push_str(FINGERPRINT_VERSION);
    s.push('|');
    push_system(&mut s, system);
    s.push('|');
    push_policy(&mut s, policy);
    let _ = write!(
        s,
        "|bench={}|scale={}|seed={seed}",
        benchmark.info().abbr,
        scale_token(*scale)
    );
    s
}

fn scale_token(scale: Scale) -> &'static str {
    match scale {
        Scale::Full => "full",
        Scale::Bench => "bench",
        Scale::Unit => "unit",
    }
}

fn push_system(s: &mut String, system: &SystemConfig) {
    let SystemConfig {
        layout,
        gpm,
        iommu,
        page_size,
        link,
        xlat_req_bytes,
        xlat_resp_bytes,
        data_bytes,
    } = system;
    // WaferLayout's tile list is fully derived from (width, height, cpu) by
    // its constructor, so those three values are the complete content.
    let cpu = layout.cpu();
    let _ = write!(
        s,
        "wafer={}x{}cpu{},{}",
        layout.width(),
        layout.height(),
        cpu.x,
        cpu.y
    );
    s.push_str("|gpm=");
    push_gpm(s, gpm);
    s.push_str("|iommu=");
    push_iommu(s, iommu);
    let LinkParams {
        latency,
        bytes_per_cycle,
    } = link;
    let _ = write!(
        s,
        "|page={}|link={latency},{bytes_per_cycle:?}|pkt={xlat_req_bytes},{xlat_resp_bytes},{data_bytes}",
        page_size.bytes()
    );
}

fn push_gpm(s: &mut String, gpm: &GpmConfig) {
    let GpmConfig {
        cus,
        max_outstanding_per_cu,
        l1_tlb,
        l2_tlb,
        gmmu_cache,
        cuckoo_capacity,
        gmmu_walkers,
        gmmu_queue,
        walk_latency,
        l1_cache,
        l2_cache,
        hbm,
    } = gpm;
    let _ = write!(s, "cus:{cus},out:{max_outstanding_per_cu},l1t:");
    push_tlb(s, l1_tlb);
    s.push_str(",l2t:");
    push_tlb(s, l2_tlb);
    s.push_str(",gmmu:");
    push_tlb(s, gmmu_cache);
    let _ = write!(
        s,
        ",cuckoo:{cuckoo_capacity},walkers:{gmmu_walkers},pwq:{gmmu_queue},walklat:{walk_latency},l1c:"
    );
    push_cache(s, l1_cache);
    s.push_str(",l2c:");
    push_cache(s, l2_cache);
    s.push_str(",hbm:");
    let HbmConfig {
        capacity_bytes,
        bytes_per_cycle,
        access_latency,
        channels,
    } = hbm;
    let _ = write!(
        s,
        "{capacity_bytes}/{bytes_per_cycle:?}/{access_latency}/{channels}"
    );
}

fn push_tlb(s: &mut String, tlb: &TlbConfig) {
    let TlbConfig {
        sets,
        ways,
        latency,
        mshrs,
    } = tlb;
    let _ = write!(s, "{sets}/{ways}/{latency}/{mshrs}");
}

fn push_cache(s: &mut String, c: &CacheConfig) {
    let CacheConfig {
        sets,
        ways,
        line_bytes,
        hit_latency,
    } = c;
    let _ = write!(s, "{sets}/{ways}/{line_bytes}/{hit_latency}");
}

fn push_iommu(s: &mut String, iommu: &IommuConfig) {
    let IommuConfig {
        walkers,
        walk_latency,
        pw_queue,
        pre_queue,
        redirection_entries,
    } = iommu;
    let _ = write!(
        s,
        "walkers:{walkers},walklat:{walk_latency},pwq:{pw_queue},preq:{pre_queue},redir:{redirection_entries}"
    );
}

fn push_policy(s: &mut String, policy: &PolicyKind) {
    s.push_str("policy=");
    match policy {
        PolicyKind::Naive => s.push_str("naive"),
        PolicyKind::RouteCache { caching_layers } => {
            let _ = write!(s, "route-cache:layers={caching_layers}");
        }
        PolicyKind::Concentric { caching_layers } => {
            let _ = write!(s, "concentric:layers={caching_layers}");
        }
        PolicyKind::Distributed => s.push_str("distributed"),
        PolicyKind::TransFw => s.push_str("trans-fw"),
        PolicyKind::Valkyrie => s.push_str("valkyrie"),
        PolicyKind::Barre => s.push_str("barre"),
        PolicyKind::Hdpat(cfg) => {
            let HdpatConfig {
                caching_layers,
                rotation,
                redirection,
                prefetch_degree,
                push_threshold,
                queue_revisit,
                iommu_tlb_instead,
            } = cfg;
            let _ = write!(
                s,
                "hdpat:layers={caching_layers},rot={},redir={},pf={prefetch_degree},push={push_threshold},revisit={},tlb={}",
                *rotation as u8, *redirection as u8, *queue_revisit as u8, *iommu_tlb_instead as u8
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use wsg_workloads::BenchmarkId;

    use super::*;

    /// The load-bearing pin: the exact fingerprint of the paper-baseline
    /// Unit-scale Naive config. If this test fails, the fingerprint contract
    /// changed — bump [`FINGERPRINT_VERSION`], update this string, and
    /// accept that existing disk-cache entries are orphaned.
    #[test]
    fn v2_fingerprint_is_pinned() {
        let cfg = RunConfig::new(BenchmarkId::Relu, Scale::Unit, PolicyKind::Naive);
        assert_eq!(
            cfg.fingerprint(),
            "hdpat-rc-v2|wafer=7x7cpu3,3\
             |gpm=cus:32,out:8,l1t:1/8/4/4,l2t:1/8/32/32,gmmu:4/8/8/0,\
             cuckoo:256,walkers:8,pwq:32,walklat:500,l1c:4/4/64/4,l2c:16/16/64/32,\
             hbm:8589934592/1230.0/120/8\
             |iommu=walkers:16,walklat:500,pwq:8,preq:4096,redir:16\
             |page=4096|link=32,768.0|pkt=32,32,64\
             |policy=naive|bench=RELU|scale=unit|seed=42"
        );
    }

    #[test]
    fn hdpat_policy_parameters_are_rendered() {
        let cfg = RunConfig::new(BenchmarkId::Spmv, Scale::Unit, PolicyKind::hdpat());
        let fp = cfg.fingerprint();
        assert!(
            fp.contains("policy=hdpat:layers=2,rot=1,redir=1,pf=4,push=2,revisit=1,tlb=0"),
            "{fp}"
        );
        // Every ablation flag must be visible in the key.
        let ablated = RunConfig::new(
            BenchmarkId::Spmv,
            Scale::Unit,
            PolicyKind::Hdpat(HdpatConfig::peer_caching_only()),
        );
        assert_ne!(fp, ablated.fingerprint());
    }

    #[test]
    fn fingerprint_is_single_line_and_versioned() {
        for policy in [
            PolicyKind::Naive,
            PolicyKind::RouteCache { caching_layers: 2 },
            PolicyKind::Concentric { caching_layers: 3 },
            PolicyKind::Distributed,
            PolicyKind::TransFw,
            PolicyKind::Valkyrie,
            PolicyKind::Barre,
            PolicyKind::hdpat(),
        ] {
            let fp = RunConfig::new(BenchmarkId::Aes, Scale::Unit, policy).fingerprint();
            assert!(fp.starts_with("hdpat-rc-v2|"), "{fp}");
            assert!(!fp.contains('\n'), "{fp}");
        }
    }

    #[test]
    fn distinct_policies_have_distinct_fingerprints() {
        let policies = [
            PolicyKind::Naive,
            PolicyKind::RouteCache { caching_layers: 2 },
            PolicyKind::RouteCache { caching_layers: 3 },
            PolicyKind::Concentric { caching_layers: 2 },
            PolicyKind::Distributed,
            PolicyKind::TransFw,
            PolicyKind::Valkyrie,
            PolicyKind::Barre,
            PolicyKind::hdpat(),
            PolicyKind::Hdpat(HdpatConfig::with_redirection_only()),
            PolicyKind::Hdpat(HdpatConfig::with_prefetch_only()),
            PolicyKind::Hdpat(HdpatConfig::with_iommu_tlb()),
        ];
        let mut fps: Vec<String> = policies
            .iter()
            .map(|&p| RunConfig::new(BenchmarkId::Mm, Scale::Unit, p).fingerprint())
            .collect();
        let before = fps.len();
        fps.sort();
        fps.dedup();
        assert_eq!(fps.len(), before);
    }

    #[test]
    fn system_parameters_feed_the_fingerprint() {
        let base = RunConfig::new(BenchmarkId::Fft, Scale::Unit, PolicyKind::Naive);
        let mut bigger_wafer = base.clone();
        bigger_wafer.system.layout = wsg_gpu::WaferLayout::paper_7x12();
        assert_ne!(base.fingerprint(), bigger_wafer.fingerprint());

        let mut other_page = base.clone();
        other_page.system.page_size = wsg_xlat::PageSize::Size64K;
        assert_ne!(base.fingerprint(), other_page.fingerprint());

        let mut other_link = base.clone();
        other_link.system.link.bytes_per_cycle += 0.5;
        assert_ne!(base.fingerprint(), other_link.fingerprint());
    }
}
