//! The on-disk, content-addressed run cache behind `hdpat-sim serve` and the
//! `--cache-dir` CLI flags.
//!
//! # Layout
//!
//! One directory, two files per entry:
//!
//! * `<hash>.run` — the entry itself: a small header (format version,
//!   metrics contract version, the **full fingerprint** for collision
//!   detection, payload length, checksum) followed by the exact
//!   [`Metrics::to_cache_text`] payload. `<hash>` is the 128-bit FNV-1a of
//!   the fingerprint in hex, so keys of unbounded length map to fixed-size
//!   file names.
//! * `<hash>.atime` — a sidecar access stamp (nanoseconds since the Unix
//!   epoch as text), refreshed on every hit and write. Filesystem atime is
//!   unreliable (`noatime`/`relatime` mounts), so the cache keeps its own.
//!
//! # Guarantees
//!
//! * **Corruption can never surface as wrong results.** Every read
//!   re-verifies the header, the embedded fingerprint, the payload checksum,
//!   and the full metrics parse; any failure is a miss and the damaged entry
//!   is deleted. `tests/disk_cache.rs` truncates and corrupts entries to
//!   prove it.
//! * **Writes are atomic.** Entries are written to a temp file and
//!   `rename`d into place, so a concurrent reader sees the old entry, no
//!   entry, or the complete new entry — never a torn one.
//! * **Versioned.** The entry header carries
//!   [`crate::metrics::METRICS_CONTRACT_VERSION`]; bumping it (or the
//!   fingerprint version, which changes the key) invalidates stale entries.
//! * **Bounded.** With a size budget configured, every insert evicts
//!   least-recently-used entries (by sidecar stamp) until the cache fits.
//!
//! See DESIGN.md §14 and OPERATIONS.md for the operational contract.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::metrics::{Metrics, METRICS_CONTRACT_VERSION};

/// Magic first line of every cache entry file.
const ENTRY_MAGIC: &str = "hdpat-diskcache v1";

/// 128-bit FNV-1a of `data` — the content address of a fingerprint. FNV is
/// not cryptographic; collisions are handled by storing and re-checking the
/// full fingerprint inside the entry.
fn fnv128_hex(data: &str) -> String {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for b in data.as_bytes() {
        h ^= *b as u128;
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:032x}")
}

/// 64-bit FNV-1a payload checksum.
fn fnv64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x00000100000001b3;
    let mut h = OFFSET;
    for b in data {
        h ^= *b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Lifetime counters of one [`DiskCache`] handle (process-local; a second
/// process opening the same directory has its own counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCacheStats {
    /// Entries served from disk.
    pub hits: u64,
    /// Lookups that found no (valid) entry.
    pub misses: u64,
    /// Entries written.
    pub writes: u64,
    /// Entries evicted to respect the size budget.
    pub evictions: u64,
    /// Damaged entries discarded during reads.
    pub discarded: u64,
}

/// A persistent, content-addressed store of completed runs:
/// [`super::RunConfig::fingerprint`] → [`Metrics`], surviving process exit
/// and shared between concurrent processes.
///
/// All methods take `&self`; the type is `Sync` and safe to share across the
/// worker pool and daemon threads. Lookups and inserts are best-effort: I/O
/// errors degrade to misses / dropped writes, never to panics or wrong
/// metrics.
///
/// # Example
///
/// ```
/// use hdpat::experiments::{run, DiskCache, RunConfig};
/// use hdpat::policy::PolicyKind;
/// use wsg_workloads::{BenchmarkId, Scale};
///
/// let dir = std::env::temp_dir().join(format!("hdpat-doc-cache-{}", std::process::id()));
/// let cache = DiskCache::open(&dir, None).unwrap();
/// let cfg = RunConfig::new(BenchmarkId::Relu, Scale::Unit, PolicyKind::Naive);
/// let fp = cfg.fingerprint();
/// assert!(cache.get(&fp).is_none());
/// let m = run(&cfg);
/// cache.insert(&fp, &m);
/// let cached = cache.get(&fp).unwrap();
/// assert_eq!(cached.to_deterministic_string(), m.to_deterministic_string());
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    budget: Option<u64>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    evictions: AtomicU64,
    discarded: AtomicU64,
    tmp_seq: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if necessary) the cache directory. `budget`, when
    /// set, caps the total size in bytes of all `.run` entries; inserts
    /// evict least-recently-used entries to stay under it.
    pub fn open(dir: &Path, budget: Option<u64>) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured size budget in bytes, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Lifetime counters of this handle.
    pub fn stats(&self) -> DiskCacheStats {
        DiskCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }

    /// Number of entries currently on disk.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// Total bytes of entry files currently on disk — the quantity the
    /// `--cache-budget` evictor compares against its budget. Scans the
    /// directory, so call it on demand (status/metrics paths), not per hit.
    pub fn resident_bytes(&self) -> u64 {
        self.entries().iter().map(|(_, size, _)| *size).sum()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the metrics cached for `fingerprint`. Any validation failure
    /// (stale version, checksum/parse error, fingerprint collision,
    /// truncation) is a miss; damaged entries are deleted so they cannot
    /// fail again.
    pub fn get(&self, fingerprint: &str) -> Option<Metrics> {
        let path = self.entry_path(fingerprint);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match parse_entry(&bytes, fingerprint) {
            Ok(metrics) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.touch(&path);
                Some(metrics)
            }
            Err(_) => {
                // Entry exists but is damaged or stale: discard it so the
                // slot is rewritten by the next insert.
                let _ = fs::remove_file(&path);
                let _ = fs::remove_file(stamp_path(&path));
                self.discarded.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `metrics` under `fingerprint`, atomically (temp file +
    /// rename), then enforces the size budget. Best-effort: an I/O failure
    /// drops the write silently — the cache is an optimization, never a
    /// correctness dependency.
    pub fn insert(&self, fingerprint: &str, metrics: &Metrics) {
        let path = self.entry_path(fingerprint);
        let payload = metrics.to_cache_text();
        let mut doc = String::with_capacity(payload.len() + 256);
        doc.push_str(ENTRY_MAGIC);
        doc.push('\n');
        doc.push_str(&format!("contract {METRICS_CONTRACT_VERSION}\n"));
        doc.push_str(&format!("fingerprint {fingerprint}\n"));
        doc.push_str(&format!(
            "payload {} fnv64 {:016x}\n",
            payload.len(),
            fnv64(payload.as_bytes())
        ));
        doc.push_str(&payload);
        if self.write_atomic(&path, doc.as_bytes()).is_ok() {
            self.writes.fetch_add(1, Ordering::Relaxed);
            self.touch(&path);
            self.enforce_budget();
        }
    }

    fn entry_path(&self, fingerprint: &str) -> PathBuf {
        self.dir.join(format!("{}.run", fnv128_hex(fingerprint)))
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Refreshes the entry's access stamp. The stamp is harness-side
    /// bookkeeping for eviction ordering only — it never reaches simulation
    /// state or any deterministic output.
    fn touch(&self, entry: &Path) {
        // lint:allow(wallclock): LRU access stamp for cache eviction; the
        // reading orders evictions and never feeds model state or artifacts.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let _ = self.write_atomic(&stamp_path(entry), format!("{nanos}\n").as_bytes());
    }

    /// All `.run` entries with their sizes and access stamps, sorted oldest
    /// stamp first (ties broken by file name for determinism).
    ///
    /// An entry whose sidecar is missing or corrupt must NOT become the
    /// automatic eviction victim: a crash between `write_atomic(entry)` and
    /// the stamp refresh, or a stray deletion of the sidecar, would
    /// otherwise pin the *newest* write as "oldest" and silently evict it
    /// on the next insert. The fallback chain is sidecar stamp → entry-file
    /// mtime → now, so an unstamped entry ranks by its actual write time
    /// and a fully unreadable one ranks newest (never the silent victim).
    fn entries(&self) -> Vec<(PathBuf, u64, u128)> {
        let Ok(dir) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out: Vec<(PathBuf, u64, u128)> = dir
            .filter_map(|e| {
                let path = e.ok()?.path();
                if path.extension()? != "run" {
                    return None;
                }
                let meta = fs::metadata(&path).ok()?;
                let size = meta.len();
                let stamp = fs::read_to_string(stamp_path(&path))
                    .ok()
                    .and_then(|s| s.trim().parse::<u128>().ok())
                    .unwrap_or_else(|| fallback_stamp(&meta));
                Some((path, size, stamp))
            })
            .collect();
        out.sort_by(|a, b| (a.2, &a.0).cmp(&(b.2, &b.0)));
        out
    }

    /// Evicts least-recently-used entries until the total size of all
    /// entries fits the budget.
    fn enforce_budget(&self) {
        let Some(budget) = self.budget else { return };
        let entries = self.entries();
        let mut total: u64 = entries.iter().map(|(_, size, _)| size).sum();
        for (path, size, _) in entries {
            if total <= budget {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                let _ = fs::remove_file(stamp_path(&path));
                self.evictions.fetch_add(1, Ordering::Relaxed);
                total = total.saturating_sub(size);
            }
        }
    }
}

fn stamp_path(entry: &Path) -> PathBuf {
    entry.with_extension("atime")
}

/// Eviction stamp for an entry without a usable `.atime` sidecar: the entry
/// file's own mtime, and if even that is unreadable, "now" — so the entry
/// sorts as the newest rather than the oldest.
fn fallback_stamp(meta: &fs::Metadata) -> u128 {
    // lint:allow(wallclock): same role as `touch` — harness-side LRU
    // ordering only, never fed into simulation state or artifacts.
    let now = std::time::SystemTime::now();
    meta.modified()
        .unwrap_or(now)
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(u128::MAX)
}

/// Validates and decodes one entry file. Every failure mode returns an
/// error string (mapped to a miss by the caller) — this function must never
/// panic on attacker- or corruption-shaped input.
fn parse_entry(bytes: &[u8], fingerprint: &str) -> Result<Metrics, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "entry is not UTF-8".to_string())?;
    let mut rest = text;
    let mut next_line = |what: &str| -> Result<&str, String> {
        let nl = rest
            .find('\n')
            .ok_or_else(|| format!("truncated before {what}"))?;
        let (line, tail) = rest.split_at(nl);
        rest = &tail[1..];
        Ok(line)
    };
    if next_line("magic")? != ENTRY_MAGIC {
        return Err("bad magic".to_string());
    }
    let contract = next_line("contract")?;
    if contract != format!("contract {METRICS_CONTRACT_VERSION}") {
        return Err(format!("stale contract line `{contract}`"));
    }
    let fp_line = next_line("fingerprint")?;
    let stored_fp = fp_line
        .strip_prefix("fingerprint ")
        .ok_or_else(|| "bad fingerprint line".to_string())?;
    if stored_fp != fingerprint {
        // A 128-bit hash collision or a foreign file: never serve it.
        return Err("fingerprint mismatch (hash collision?)".to_string());
    }
    let payload_line = next_line("payload header")?;
    let mut t = payload_line.split_whitespace();
    if t.next() != Some("payload") {
        return Err("bad payload header".to_string());
    }
    let declared_len: usize = t
        .next()
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| "bad payload length".to_string())?;
    if t.next() != Some("fnv64") {
        return Err("bad payload header".to_string());
    }
    let declared_sum = t
        .next()
        .and_then(|x| u64::from_str_radix(x, 16).ok())
        .ok_or_else(|| "bad payload checksum".to_string())?;
    if rest.len() != declared_len {
        return Err(format!(
            "payload length mismatch: header {declared_len}, file {}",
            rest.len()
        ));
    }
    if fnv64(rest.as_bytes()) != declared_sum {
        return Err("payload checksum mismatch".to_string());
    }
    Metrics::from_cache_text(rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hdpat-diskcache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_metrics(cycles: u64) -> Metrics {
        let mut m = Metrics::new(2, 100);
        m.total_cycles = cycles;
        m.ops_completed = cycles * 3;
        m.remote_rtt.record(cycles as f64 / 7.0);
        m.iommu_reuse.touch(cycles);
        m.iommu_reuse.touch(cycles);
        m
    }

    #[test]
    fn insert_then_get_round_trips() {
        let dir = tmpdir("roundtrip");
        let cache = DiskCache::open(&dir, None).unwrap();
        let m = sample_metrics(1234);
        assert!(cache.get("fp-a").is_none());
        cache.insert("fp-a", &m);
        let got = cache.get("fp-a").expect("hit");
        assert_eq!(got.to_cache_text(), m.to_cache_text());
        assert_eq!(
            cache.stats(),
            DiskCacheStats {
                hits: 1,
                misses: 1,
                writes: 1,
                evictions: 0,
                discarded: 0,
            }
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn distinct_fingerprints_do_not_alias() {
        let dir = tmpdir("alias");
        let cache = DiskCache::open(&dir, None).unwrap();
        cache.insert("fp-a", &sample_metrics(1));
        cache.insert("fp-b", &sample_metrics(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("fp-a").unwrap().total_cycles, 1);
        assert_eq!(cache.get("fp-b").unwrap().total_cycles, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_fingerprint_in_entry_is_rejected() {
        let dir = tmpdir("collision");
        let cache = DiskCache::open(&dir, None).unwrap();
        cache.insert("fp-a", &sample_metrics(1));
        // Simulate a 128-bit hash collision by renaming fp-a's entry file to
        // fp-b's slot: the embedded fingerprint no longer matches.
        let a = dir.join(format!("{}.run", fnv128_hex("fp-a")));
        let b = dir.join(format!("{}.run", fnv128_hex("fp-b")));
        fs::rename(&a, &b).unwrap();
        assert!(cache.get("fp-b").is_none());
        assert!(!b.exists(), "colliding entry must be discarded");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_and_truncated_entries_are_misses_and_discarded() {
        let dir = tmpdir("corrupt");
        let cache = DiskCache::open(&dir, None).unwrap();
        let m = sample_metrics(99);
        cache.insert("fp", &m);
        let path = dir.join(format!("{}.run", fnv128_hex("fp")));
        let original = fs::read(&path).unwrap();

        // Truncate at several byte offsets, including mid-payload.
        for cut in [0, 10, original.len() / 2, original.len() - 1] {
            fs::write(&path, &original[..cut]).unwrap();
            assert!(cache.get("fp").is_none(), "cut at {cut} must miss");
            assert!(!path.exists(), "cut at {cut} must discard the entry");
            fs::write(&path, &original).unwrap();
        }

        // Flip a payload byte: checksum must catch it.
        let mut flipped = original.clone();
        let last = flipped.len() - 2;
        flipped[last] ^= 0x01;
        fs::write(&path, &flipped).unwrap();
        assert!(cache.get("fp").is_none());

        // A fresh insert repairs the slot.
        cache.insert("fp", &m);
        assert_eq!(cache.get("fp").unwrap().total_cycles, 99);
        assert!(cache.stats().discarded >= 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_contract_version_is_a_miss() {
        let dir = tmpdir("stale");
        let cache = DiskCache::open(&dir, None).unwrap();
        cache.insert("fp", &sample_metrics(5));
        let path = dir.join(format!("{}.run", fnv128_hex("fp")));
        let doc = fs::read_to_string(&path).unwrap();
        let stale = doc.replace(
            &format!("contract {METRICS_CONTRACT_VERSION}"),
            "contract 0",
        );
        fs::write(&path, stale).unwrap();
        assert!(cache.get("fp").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_eviction_respects_budget_and_access_order() {
        let dir = tmpdir("evict");
        let cache = DiskCache::open(&dir, None).unwrap();
        cache.insert("fp-old", &sample_metrics(1));
        let entry_bytes = fs::metadata(dir.join(format!("{}.run", fnv128_hex("fp-old"))))
            .unwrap()
            .len();
        // Budget fits two entries but not three.
        let budgeted = DiskCache::open(&dir, Some(entry_bytes * 2 + entry_bytes / 2)).unwrap();
        // Guard against coarse clocks: stamps must strictly order the three
        // accesses below even where SystemTime ticks in large steps.
        let tick = || std::thread::sleep(std::time::Duration::from_millis(5));
        tick();
        budgeted.insert("fp-mid", &sample_metrics(2));
        tick();
        // Touch fp-old so fp-mid becomes the least recently used...
        assert!(budgeted.get("fp-old").is_some());
        tick();
        // ...then overflow the budget: fp-mid must go, fp-old must stay.
        budgeted.insert("fp-new", &sample_metrics(3));
        assert!(budgeted.stats().evictions >= 1);
        assert!(budgeted.get("fp-mid").is_none());
        assert!(budgeted.get("fp-old").is_some());
        assert!(budgeted.get("fp-new").is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_sidecar_does_not_mark_the_entry_as_eviction_victim() {
        // Regression: a lost/corrupt `.atime` sidecar used to parse to
        // stamp 0, making that entry sort "oldest" and become the silent
        // victim of the next budget enforcement — even if it was the most
        // recent write. The fallback is the entry file's mtime, so it must
        // outlive a genuinely older, properly-stamped entry.
        let dir = tmpdir("lost-sidecar");
        let cache = DiskCache::open(&dir, None).unwrap();
        cache.insert("fp-a", &sample_metrics(1));
        let entry_bytes = fs::metadata(dir.join(format!("{}.run", fnv128_hex("fp-a"))))
            .unwrap()
            .len();
        let budgeted = DiskCache::open(&dir, Some(entry_bytes * 2 + entry_bytes / 2)).unwrap();
        let tick = || std::thread::sleep(std::time::Duration::from_millis(5));
        tick();
        budgeted.insert("fp-b", &sample_metrics(2));
        // fp-b loses its sidecar (crash between entry write and stamp
        // refresh, stray cleanup, ...).
        fs::remove_file(dir.join(format!("{}.atime", fnv128_hex("fp-b")))).unwrap();
        tick();
        // Overflow the budget: the oldest entry by actual age is fp-a, and
        // that is what must go — not the unstamped-but-newer fp-b.
        budgeted.insert("fp-c", &sample_metrics(3));
        assert!(budgeted.stats().evictions >= 1);
        assert!(
            budgeted.get("fp-a").is_none(),
            "oldest entry must be evicted"
        );
        assert!(
            budgeted.get("fp-b").is_some(),
            "unstamped entry must survive"
        );
        assert!(budgeted.get("fp-c").is_some());
        // A corrupt (unparseable) sidecar takes the same fallback path.
        fs::write(
            dir.join(format!("{}.atime", fnv128_hex("fp-b"))),
            b"not-a-stamp\n",
        )
        .unwrap();
        let entries = budgeted.entries();
        let garbled = entries
            .iter()
            .find(|(p, _, _)| p.ends_with(format!("{}.run", fnv128_hex("fp-b"))))
            .expect("entry listed");
        assert!(
            garbled.2 > 0,
            "corrupt sidecar must not collapse to stamp 0"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn equal_stamps_evict_in_file_name_order() {
        // Pin the deterministic tiebreak: when two entries carry the same
        // stamp, the lexicographically smaller entry file name goes first.
        let dir = tmpdir("stamp-tie");
        let cache = DiskCache::open(&dir, None).unwrap();
        cache.insert("fp-a", &sample_metrics(1));
        cache.insert("fp-b", &sample_metrics(2));
        for fp in ["fp-a", "fp-b"] {
            fs::write(dir.join(format!("{}.atime", fnv128_hex(fp))), b"777\n").unwrap();
        }
        let entries = cache.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].2, entries[1].2, "stamps must tie");
        assert!(entries[0].0 < entries[1].0, "ties break by file name");
        // One-entry budget: exactly the first-sorted (smaller-named) entry
        // is evicted, regardless of insert order.
        let victim = entries[0].0.clone();
        let survivor = entries[1].0.clone();
        let budgeted = DiskCache::open(&dir, Some(entries[1].1)).unwrap();
        budgeted.enforce_budget();
        assert!(!victim.exists(), "smaller-named tied entry must be evicted");
        assert!(survivor.exists(), "larger-named tied entry must survive");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hash_is_stable_and_wide() {
        // Pin the content address so entries written by older builds keep
        // resolving (the fingerprint, not the hash, is the versioned part).
        assert_eq!(
            fnv128_hex("hdpat-rc-v2|example"),
            fnv128_hex("hdpat-rc-v2|example")
        );
        assert_ne!(fnv128_hex("a"), fnv128_hex("b"));
        assert_eq!(fnv128_hex("").len(), 32);
    }
}
