//! Simulation-as-a-service: the `hdpat-sim serve` daemon and its
//! newline-delimited JSON protocol.
//!
//! * [`daemon`] — the long-running service: per-client-fair priority
//!   scheduling onto a [`wsg_sim::pool::TaskPool`], answers from the
//!   in-memory and persistent run caches with source attribution, ordered
//!   response delivery, progress streaming, graceful drain on shutdown.
//! * [`proto`] — the wire format: request parsing/validation, response
//!   builders, stable error codes, and the generated PROTOCOL.md examples.
//! * [`json`] — the minimal hand-rolled JSON value type underneath (this
//!   reproduction vendors no serde).
//!
//! Operational visibility (the `metrics` op, `--metrics-out` dumps, the
//! `--ops-log` lifecycle log) is built on [`crate::ops`]; it observes the
//! serving path without changing a byte of any response payload.
//!
//! See PROTOCOL.md for the client-facing specification and OPERATIONS.md
//! for running and monitoring the daemon.

pub mod daemon;
pub mod json;
pub mod proto;

pub use daemon::{Daemon, DaemonConfig};
pub use proto::Request;
