//! A minimal JSON value type with a strict parser and canonical writer.
//!
//! The registry is unreachable in this build environment (no serde), so the
//! serve protocol hand-rolls the little JSON it needs: newline-delimited
//! objects of modest size and depth. Design points:
//!
//! * Object members preserve **insertion order** (a `Vec` of pairs, not a
//!   map), so writing is deterministic and PROTOCOL.md examples match the
//!   emitted bytes exactly.
//! * Numbers keep their integer identity: `U64`/`I64` for anything that
//!   parses as an integer, `F64` only for values with a fraction or
//!   exponent. A `u64` seed survives the round trip exactly — it is never
//!   squeezed through an `f64`.
//! * The parser is strict (trailing garbage, unterminated strings, bad
//!   escapes, duplicate-agnostic) and depth-capped, so a malformed or
//!   hostile request line can only produce an error response, never a panic
//!   or runaway recursion.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Protocol messages are at most
/// ~3 levels deep; the cap only exists to bound recursion on hostile input.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`.
    U64(u64),
    /// A negative integer that fits `i64`.
    I64(i64),
    /// Any other number (fraction or exponent present, or out of integer
    /// range).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Serializes the value on one line (no pretty-printing): the NDJSON
    /// wire form. Writing then parsing round-trips every value this module
    /// can represent.
    pub fn to_line(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, s: &mut String) {
        match self {
            Json::Null => s.push_str("null"),
            Json::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(s, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(s, "{n}");
            }
            Json::F64(x) => {
                // JSON has no NaN/Inf; the protocol never produces them, and
                // `null` is the least-wrong rendering if one ever appears.
                if x.is_finite() {
                    let _ = write!(s, "{x:?}");
                } else {
                    s.push_str("null");
                }
            }
            Json::Str(t) => write_escaped(s, t),
            Json::Arr(items) => {
                s.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    item.write(s);
                }
                s.push(']');
            }
            Json::Obj(members) => {
                s.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    write_escaped(s, key);
                    s.push(':');
                    value.write(s);
                }
                s.push('}');
            }
        }
    }

    /// The member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// Value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn write_escaped(s: &mut String, text: &str) {
    s.push('"');
    for c in text.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value(depth + 1)?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte `{}` at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // protocol; map lone surrogates to U+FFFD
                            // rather than failing the whole message.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape `\\{}`", esc as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so this is
                    // always well-formed).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let Some(c) = text.chars().next() else {
                        return Err("unterminated string".to_string());
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number bytes")?;
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("malformed number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_object() {
        let v = Json::parse(
            r#"{"op":"submit","id":"q1","seed":18446744073709551615,"neg":-3,"pi":3.5,"flag":true,"tags":["a","b"],"none":null}"#,
        )
        .unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(v.get("neg"), Some(&Json::I64(-3)));
        assert_eq!(v.get("pi"), Some(&Json::F64(3.5)));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&Json::Null));
    }

    #[test]
    fn write_parse_round_trips_and_preserves_member_order() {
        let v = Json::Obj(vec![
            ("z".into(), Json::U64(1)),
            ("a".into(), Json::Str("x\"\\\n".into())),
            (
                "nest".into(),
                Json::Arr(vec![Json::Bool(false), Json::Null, Json::F64(-0.25)]),
            ),
        ]);
        let line = v.to_line();
        assert!(line.find("\"z\"").unwrap() < line.find("\"a\"").unwrap());
        assert_eq!(Json::parse(&line).unwrap(), v);
        assert!(!line.contains('\n'), "wire form must be one line");
    }

    #[test]
    fn u64_seed_survives_exactly() {
        let line = Json::U64(u64::MAX).to_line();
        assert_eq!(line, "18446744073709551615");
        assert_eq!(Json::parse(&line).unwrap(), Json::U64(u64::MAX));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "{\"a\":1} trailing",
            "nul",
            "+5",
            "--2",
            "1e",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn depth_bomb_is_rejected_not_overflowed() {
        let bomb = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn control_characters_are_escaped() {
        let line = Json::Str("a\u{0001}b\tc".into()).to_line();
        assert_eq!(line, "\"a\\u0001b\\tc\"");
        assert_eq!(
            Json::parse(&line).unwrap(),
            Json::Str("a\u{0001}b\tc".into())
        );
    }
}
