//! The `hdpat-sim serve` daemon: a long-running simulation service.
//!
//! Clients connect (Unix socket, stdio, or any `BufRead`/`Write` pair in
//! tests), send newline-delimited JSON requests ([`super::proto`]), and
//! receive newline-delimited responses. The daemon:
//!
//! * schedules submits onto a [`wsg_sim::pool::TaskPool`] of simulation
//!   workers with **per-client fairness and priorities** — among the
//!   head-of-queue jobs of all clients, the highest priority runs first,
//!   ties going to the least-recently-scheduled client (so one chatty
//!   client cannot starve the others), FIFO within a client;
//! * answers from the in-memory [`RunCache`] and the persistent
//!   [`DiskCache`] before simulating, attributing every result to its
//!   source (`memory` / `disk` / `simulated`);
//! * streams per-run `progress` events through the completion-observer hook
//!   of [`wsg_sim::pool::run_indexed_with`] — the same plumbing behind the
//!   CLI's `--progress` reporter;
//! * releases each client's result lines **in submission order** (a
//!   per-client reorder buffer; a cancellation occupies the cancelled
//!   run's position), whatever order the scheduler completes them in;
//! * drains every queued and in-flight run before acknowledging a
//!   `shutdown`.
//!
//! # Ordering contract
//!
//! Responses tied to a submitted id (`result`, `cancelled`) are released in
//! submission order per client. Control responses (`status`,
//! `cache-stats`, `error`) and `progress` events are written immediately,
//! so they may overtake pending results; every line is written atomically
//! (never interleaved mid-line).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use wsg_sim::pool::{Task, TaskPool};

use super::json::Json;
use super::proto::{self, codes, Request, Source, Submit};
use crate::experiments::{run, DiskCache, RunCache};
use crate::ops::{DiskGauges, GaugeSample, OpsLog, OpsRegistry, Tier};

/// Daemon construction parameters.
#[derive(Debug, Clone, Default)]
pub struct DaemonConfig {
    /// Simulation worker threads (0 → available parallelism).
    pub jobs: usize,
    /// Directory of the persistent run cache; `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// Disk-cache size budget in bytes (`None` = unbounded); ignored
    /// without `cache_dir`.
    pub cache_budget: Option<u64>,
    /// Structured JSONL ops log (`--ops-log`): one event per request state
    /// transition. `None` disables it.
    pub ops_log: Option<PathBuf>,
    /// Metrics snapshot dump file (`--metrics-out`): Prometheus text for
    /// `.prom`/`.txt` paths, canonical JSON otherwise. Written at shutdown,
    /// and periodically when `metrics_interval` is set.
    pub metrics_out: Option<PathBuf>,
    /// Seconds between periodic `metrics_out` rewrites; `None` writes only
    /// the final shutdown snapshot.
    pub metrics_interval: Option<u64>,
}

/// A writer shared between the connection thread (control responses,
/// progress events) and the pool workers (ordered result flushes). The
/// mutex makes every line write atomic.
type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// One queued submit.
struct Job {
    /// Position in the client's submission order; the slot its response
    /// releases in.
    seq: u64,
    submit: Submit,
    /// When the submit entered the queue (request-lifecycle timing; feeds
    /// only the ops layer, never simulation state).
    enqueued: Instant,
    /// When [`SchedState::pick`] handed the job to a worker; `None` while
    /// queued (and forever, for cancelled/dropped jobs).
    scheduled: Option<Instant>,
}

/// Per-connection state.
struct Client {
    writer: SharedWriter,
    /// Submits waiting for a worker, in submission order.
    queue: VecDeque<Job>,
    /// Scheduler tick at which this client last got a worker (fairness
    /// tie-break: the smallest value wins).
    last_scheduled: u64,
    /// Next submission sequence number.
    next_seq: u64,
    /// Next sequence number whose response may be written.
    next_release: u64,
    /// Completed responses waiting for their turn (the reorder buffer).
    ready: BTreeMap<u64, String>,
    /// In-order lines ready to write; drained by the single active flusher.
    outbox: VecDeque<String>,
    /// Whether some thread is currently draining `outbox` to the writer.
    flushing: bool,
    /// Ids submitted but not yet answered (duplicate detection + cancel
    /// lookup).
    live: BTreeSet<String>,
    /// The connection died abruptly (reader error, not an orderly EOF).
    /// No response can ever be delivered again: queued jobs are dropped at
    /// disconnect and the entry lingers only while `inflight > 0`, so
    /// running jobs can account against it before it is reaped.
    gone: bool,
    /// Jobs picked by a pool worker and not yet finished.
    inflight: u64,
}

/// Scheduler state under the daemon's one mutex.
struct SchedState {
    clients: BTreeMap<u64, Client>,
    next_client: u64,
    /// Monotonic scheduling counter feeding `Client::last_scheduled`.
    tick: u64,
    /// Jobs currently executing on workers.
    running: u64,
    /// Responses released since the daemon started (results + cancels).
    completed: u64,
    shutting_down: bool,
    /// Runs completed after the shutdown request — the `drained` count of
    /// the ack.
    drained_runs: u64,
}

impl SchedState {
    fn queued(&self) -> u64 {
        self.clients.values().map(|c| c.queue.len() as u64).sum()
    }

    /// Picks the next job: highest priority among every client's queue
    /// front, ties to the least-recently-scheduled client, then to the
    /// lowest client id (BTreeMap order). FIFO within a client.
    fn pick(&mut self) -> Option<(u64, Job)> {
        let best = self
            .clients
            .iter()
            .filter_map(|(&cid, c)| {
                // `abandon` clears a gone client's queue under this same
                // lock, so the scheduler must never see one with work; the
                // filter below is belt-and-braces for release builds.
                debug_assert!(
                    !c.gone || c.queue.is_empty(),
                    "scheduler saw a disconnected client with queued jobs"
                );
                if c.gone {
                    return None;
                }
                c.queue
                    .front()
                    .map(|job| {
                        (
                            job.submit.priority,
                            std::cmp::Reverse(c.last_scheduled),
                            std::cmp::Reverse(cid),
                        )
                    })
                    .map(|rank| (rank, cid))
            })
            .max()
            .map(|(_, cid)| cid)?;
        let tick = self.tick;
        self.tick += 1;
        let client = match self.clients.get_mut(&best) {
            Some(c) => c,
            None => unreachable!("picked client vanished under the lock"),
        };
        client.last_scheduled = tick;
        client.inflight += 1;
        let mut job = match client.queue.pop_front() {
            Some(j) => j,
            None => unreachable!("picked client's queue emptied under the lock"),
        };
        // lint:allow(wallclock): schedule stamp for queue-wait latency; ops
        // observability only, never reaches simulation state.
        job.scheduled = Some(Instant::now());
        Some((best, job))
    }

    /// Files `line` as the response occupying `seq` of client `cid` and
    /// moves every now-releasable response to the outbox. Returns whether
    /// anything became flushable.
    fn finish(&mut self, cid: u64, seq: u64, id: &str, line: String) -> bool {
        self.completed += 1;
        let Some(client) = self.clients.get_mut(&cid) else {
            // The connection unregistered mid-run (reader thread died); the
            // result is still in the caches, only the response is dropped.
            return false;
        };
        client.live.remove(id);
        if client.gone {
            // Abrupt disconnect: the response has nowhere to go, and it
            // must not sit in the reorder buffer forever (earlier seqs of
            // a gone client will never release it). The result itself is
            // already in the caches.
            return false;
        }
        client.ready.insert(seq, line);
        let mut moved = false;
        while let Some(line) = client.ready.remove(&client.next_release) {
            client.outbox.push_back(line);
            client.next_release += 1;
            moved = true;
        }
        moved
    }

    /// [`SchedState::finish`] for a pool-executed job: accounts the
    /// in-flight slot taken in [`SchedState::pick`] and reaps the client if
    /// the disconnect teardown was waiting on this job.
    fn finish_run(&mut self, cid: u64, seq: u64, id: &str, line: String) -> bool {
        if let Some(c) = self.clients.get_mut(&cid) {
            debug_assert!(c.inflight > 0, "finish_run without a matching pick");
            c.inflight = c.inflight.saturating_sub(1);
        }
        let moved = self.finish(cid, seq, id, line);
        self.reap(cid);
        moved
    }

    /// Removes a gone client once its last in-flight job has finished —
    /// the deferred half of [`Shared::abandon`].
    fn reap(&mut self, cid: u64) {
        if self
            .clients
            .get(&cid)
            .is_some_and(|c| c.gone && c.inflight == 0)
        {
            self.clients.remove(&cid);
        }
    }
}

/// State shared between connection threads and pool workers.
struct Shared {
    state: Mutex<SchedState>,
    /// Wakes workers when jobs arrive or shutdown begins.
    work: Condvar,
    /// Wakes drain waiters (EOF, shutdown) when responses complete/flush.
    drained: Condvar,
    mem: RunCache,
    disk: Option<DiskCache>,
    /// Request-lifecycle metrics for this daemon instance ([`crate::ops`]).
    ops: OpsRegistry,
    /// Structured JSONL ops log, when configured.
    ops_log: Option<OpsLog>,
    /// Pool worker count (the `workers` gauge).
    workers: u64,
    /// Daemon start, for the uptime gauge.
    started: Instant,
}

/// Whole microseconds from `a` to `b`, zero when `b` is not after `a`.
fn micros_between(a: Instant, b: Instant) -> u64 {
    u64::try_from(b.saturating_duration_since(a).as_micros()).unwrap_or(u64::MAX)
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Shared {
    fn is_shutting_down(&self) -> bool {
        lock(&self.state).shutting_down
    }

    /// Appends one ops-log event, when the log is configured.
    fn log_event(&self, ev: &str, fields: &[(&str, Json)]) {
        if let Some(log) = &self.ops_log {
            log.event(ev, fields);
        }
    }

    /// Records a request's terminal transition in the registry and the ops
    /// log: `ev` is the transition (`complete` / `cancel` / `client-gone`),
    /// `tier` the outcome attribution. `scheduled` is `None` for jobs that
    /// never reached a worker (their whole life was queue wait).
    fn record_terminal(
        &self,
        ev: &str,
        tier: Tier,
        cid: u64,
        id: &str,
        enqueued: Instant,
        scheduled: Option<Instant>,
    ) {
        // lint:allow(wallclock): request-lifecycle completion stamp; feeds
        // only the ops registry and ops log, never simulation state or any
        // deterministic artifact.
        let now = Instant::now();
        let queue_wait_us = micros_between(enqueued, scheduled.unwrap_or(now));
        let service_us = scheduled.map_or(0, |s| micros_between(s, now));
        let total_us = micros_between(enqueued, now);
        self.ops
            .record_outcome(tier, queue_wait_us, service_us, total_us);
        self.log_event(
            ev,
            &[
                ("client", Json::U64(cid)),
                ("id", Json::Str(id.to_string())),
                ("tier", Json::Str(tier.token().to_string())),
                ("queue_wait_us", Json::U64(queue_wait_us)),
                ("service_us", Json::U64(service_us)),
                ("total_us", Json::U64(total_us)),
            ],
        );
    }

    /// Samples the serving gauges: scheduler state under the lock, then the
    /// cache views (the disk occupancy scan happens outside the lock).
    fn gauge_sample(&self) -> GaugeSample {
        let (clients, queued, queue_depth_per_client, inflight, reorder_buffered) = {
            let st = lock(&self.state);
            let mut depth = Vec::with_capacity(st.clients.len());
            let mut reorder = 0u64;
            for (&cid, c) in &st.clients {
                depth.push((cid, c.queue.len() as u64));
                reorder += c.ready.len() as u64;
            }
            (
                st.clients.len() as u64,
                st.queued(),
                depth,
                st.running,
                reorder,
            )
        };
        let disk = self.disk.as_ref().map(|d| DiskGauges {
            entries: d.len() as u64,
            resident_bytes: d.resident_bytes(),
            budget: d.budget(),
            stats: d.stats(),
        });
        GaugeSample {
            clients,
            queued,
            queue_depth_per_client,
            inflight,
            workers: self.workers,
            workers_busy: inflight,
            reorder_buffered,
            uptime_seconds: self.started.elapsed().as_secs(),
            memory_entries: self.mem.len() as u64,
            disk,
        }
    }

    /// The extended `status` reply members.
    fn status_report(&self) -> proto::StatusReport {
        let st = lock(&self.state);
        let mut queue_depth = Vec::with_capacity(st.clients.len());
        let mut reorder_buffered = 0u64;
        for (&cid, c) in &st.clients {
            queue_depth.push((cid, c.queue.len() as u64));
            reorder_buffered += c.ready.len() as u64;
        }
        proto::StatusReport {
            queued: st.queued(),
            running: st.running,
            completed: st.completed,
            clients: st.clients.len() as u64,
            queue_depth,
            workers: self.workers,
            reorder_buffered,
            uptime_seconds: self.started.elapsed().as_secs(),
        }
    }

    /// Writes the metrics snapshot to `path` (atomically, via a sibling
    /// temp file): Prometheus text for `.prom`/`.txt`, canonical JSON
    /// otherwise. Failures are swallowed — observability must never take
    /// the serving path down.
    fn write_metrics_out(&self, path: &Path) {
        let gauges = self.gauge_sample();
        let prom = matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("prom") | Some("txt")
        );
        let text = if prom {
            self.ops.snapshot_prometheus(&gauges)
        } else {
            let mut line = self.ops.snapshot_json(&gauges).to_line();
            line.push('\n');
            line
        };
        let tmp = path.with_extension("tmp-metrics");
        if std::fs::write(&tmp, &text).is_ok() && std::fs::rename(&tmp, path).is_ok() {
            return;
        }
        let _ = std::fs::write(path, &text);
    }

    /// Writes one line immediately (control responses, progress events).
    fn write_now(writer: &SharedWriter, line: &str) {
        let mut w = lock(writer);
        // A failed write means the client is gone; its jobs still complete
        // and populate the caches.
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }

    fn writer_of(&self, cid: u64) -> Option<SharedWriter> {
        lock(&self.state)
            .clients
            .get(&cid)
            .map(|c| Arc::clone(&c.writer))
    }

    /// Drains `cid`'s outbox to its writer, preserving order. Only one
    /// thread flushes a client at a time; concurrent completers hand their
    /// lines to the active flusher via the outbox.
    fn flush_client(&self, cid: u64) {
        {
            let mut st = lock(&self.state);
            let Some(c) = st.clients.get_mut(&cid) else {
                return;
            };
            if c.flushing {
                return; // the active flusher will pick our lines up
            }
            c.flushing = true;
        }
        loop {
            let (writer, batch) = {
                let mut st = lock(&self.state);
                let Some(c) = st.clients.get_mut(&cid) else {
                    return;
                };
                if c.outbox.is_empty() {
                    c.flushing = false;
                    drop(st);
                    // Drain waiters check "outbox empty and not flushing".
                    self.drained.notify_all();
                    return;
                }
                (Arc::clone(&c.writer), std::mem::take(&mut c.outbox))
            };
            let mut w = lock(&writer);
            for line in batch {
                let _ = writeln!(w, "{line}");
            }
            let _ = w.flush();
        }
    }

    /// Executes one job on a pool worker: resolve from the caches or
    /// simulate, then release the result through the reorder buffer.
    fn execute(self: &Arc<Self>, cid: u64, job: Job) {
        let Job {
            seq,
            submit,
            enqueued,
            scheduled,
        } = job;
        if self.ops_log.is_some() {
            let queue_wait_us = scheduled.map_or(0, |s| micros_between(enqueued, s));
            self.log_event(
                "schedule",
                &[
                    ("client", Json::U64(cid)),
                    ("id", Json::Str(submit.id.clone())),
                    ("queue_wait_us", Json::U64(queue_wait_us)),
                ],
            );
        }
        let cfg = submit.run_config();
        let key = cfg.fingerprint();
        let resolved = if let Some(m) = self.mem.get(&key) {
            Some((m, Source::Memory))
        } else if let Some(m) = self.disk.as_ref().and_then(|d| d.get(&key)) {
            let m = Arc::new(m);
            self.mem.insert(key.clone(), Arc::clone(&m));
            Some((m, Source::Disk))
        } else {
            None
        };
        let (metrics, source) = match resolved {
            Some(hit) => hit,
            None => {
                let writer = self.writer_of(cid);
                let progress = submit.progress;
                if progress {
                    if let Some(w) = &writer {
                        Self::write_now(w, &proto::progress_line(&submit.id, "started"));
                    }
                }
                // The simulation runs through the pool's completion-observer
                // plumbing (the hook behind the CLI's `--progress` line), so
                // the `finished` event fires exactly when the run completes,
                // before any caching or response work.
                let out = wsg_sim::pool::run_indexed_with(
                    1,
                    1,
                    |_| run(&cfg),
                    |_| {
                        if progress {
                            if let Some(w) = &writer {
                                Self::write_now(w, &proto::progress_line(&submit.id, "finished"));
                            }
                        }
                    },
                );
                let m = match out.into_iter().next() {
                    Some(m) => Arc::new(m),
                    None => unreachable!("run_indexed_with(_, 1, ..) returned no result"),
                };
                self.mem.insert(key.clone(), Arc::clone(&m));
                if let Some(disk) = &self.disk {
                    disk.insert(&key, &m);
                }
                (m, Source::Simulated)
            }
        };
        let line = proto::result_line(&submit.id, source, &key, &metrics);
        let tier = match source {
            Source::Memory => Tier::Memory,
            Source::Disk => Tier::Disk,
            Source::Simulated => Tier::Simulated,
        };
        self.record_terminal("complete", tier, cid, &submit.id, enqueued, scheduled);
        {
            let mut st = lock(&self.state);
            st.running -= 1;
            if st.shutting_down {
                st.drained_runs += 1;
            }
            st.finish_run(cid, seq, &submit.id, line);
        }
        self.drained.notify_all();
        self.flush_client(cid);
    }

    /// The `TaskPool` fetch hook: blocks until a job is schedulable, or
    /// returns `None` (retiring the worker) once the daemon is shutting
    /// down and nothing is queued.
    fn fetch(self: &Arc<Self>) -> Option<Task> {
        let mut st = lock(&self.state);
        loop {
            if let Some((cid, job)) = st.pick() {
                st.running += 1;
                let shared = Arc::clone(self);
                return Some(Box::new(move || shared.execute(cid, job)));
            }
            if st.shutting_down {
                return None;
            }
            st = match self.work.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    fn register(&self, writer: Box<dyn Write + Send>) -> u64 {
        let mut st = lock(&self.state);
        let cid = st.next_client;
        st.next_client += 1;
        st.clients.insert(
            cid,
            Client {
                writer: Arc::new(Mutex::new(writer)),
                queue: VecDeque::new(),
                last_scheduled: 0,
                next_seq: 0,
                next_release: 0,
                ready: BTreeMap::new(),
                outbox: VecDeque::new(),
                flushing: false,
                live: BTreeSet::new(),
                gone: false,
                inflight: 0,
            },
        );
        cid
    }

    /// Blocks until every submit of `cid` has been answered and written.
    fn drain_client(&self, cid: u64) {
        let mut st = lock(&self.state);
        loop {
            let Some(c) = st.clients.get(&cid) else {
                return;
            };
            if c.next_release == c.next_seq && c.outbox.is_empty() && !c.flushing {
                return;
            }
            st = match self.drained.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    fn unregister(&self, cid: u64) {
        lock(&self.state).clients.remove(&cid);
    }

    /// Tears down client `cid` after an abrupt connection error (the
    /// counterpart of the orderly `drain_client` + `unregister` path).
    /// Queued jobs are dropped before any worker wastes a slot on them,
    /// buffered responses are discarded (the socket is dead), and the
    /// entry itself is reaped — immediately if idle, otherwise by
    /// [`SchedState::finish_run`] when the last in-flight job completes.
    fn abandon(&self, cid: u64) {
        let dropped = {
            let mut st = lock(&self.state);
            let Some(c) = st.clients.get_mut(&cid) else {
                return;
            };
            c.gone = true;
            let dropped = std::mem::take(&mut c.queue);
            c.ready.clear();
            c.outbox.clear();
            c.live.clear();
            st.reap(cid);
            dropped
        };
        // A shutdown drain may be blocked on this client's queued jobs or
        // unflushed outbox, both of which just vanished.
        self.drained.notify_all();
        // Dropped-at-disconnect jobs terminate in the client-gone tier
        // (in-flight ones still finish and count under their real source).
        for job in dropped {
            self.record_terminal(
                "client-gone",
                Tier::ClientGone,
                cid,
                &job.submit.id,
                job.enqueued,
                job.scheduled,
            );
        }
    }

    /// Handles one request line from client `cid`.
    fn handle(&self, cid: u64, line: &str) -> Flow {
        let request = match Request::parse(line) {
            Ok(r) => r,
            Err(e) => {
                if let Some(w) = self.writer_of(cid) {
                    Self::write_now(&w, &e.to_line());
                }
                return Flow::Continue;
            }
        };
        match request {
            Request::Submit(submit) => self.handle_submit(cid, submit),
            Request::Status => {
                let line = proto::status_line(&self.status_report());
                if let Some(w) = self.writer_of(cid) {
                    Self::write_now(&w, &line);
                }
                Flow::Continue
            }
            Request::CacheStats => {
                let line = proto::cache_stats_line(
                    self.mem.len() as u64,
                    self.disk.as_ref().map(|d| proto::DiskReport {
                        dir: d.dir(),
                        entries: d.len() as u64,
                        resident_bytes: d.resident_bytes(),
                        budget: d.budget(),
                        stats: d.stats(),
                    }),
                );
                if let Some(w) = self.writer_of(cid) {
                    Self::write_now(&w, &line);
                }
                Flow::Continue
            }
            Request::Metrics => {
                let line = self.ops.snapshot_json(&self.gauge_sample()).to_line();
                if let Some(w) = self.writer_of(cid) {
                    Self::write_now(&w, &line);
                }
                Flow::Continue
            }
            Request::Cancel { id } => {
                self.handle_cancel(cid, &id);
                Flow::Continue
            }
            Request::Shutdown => {
                self.handle_shutdown(cid);
                Flow::Stop
            }
        }
    }

    fn handle_submit(&self, cid: u64, submit: Submit) -> Flow {
        // lint:allow(wallclock): enqueue stamp for queue-wait latency; ops
        // observability only, never reaches simulation state.
        let enqueued = Instant::now();
        let accepted = {
            let mut st = lock(&self.state);
            if st.shutting_down {
                Err(proto::error_line(
                    Some(&submit.id),
                    codes::SHUTTING_DOWN,
                    "daemon is draining; resubmit to the next instance",
                ))
            } else {
                let Some(c) = st.clients.get_mut(&cid) else {
                    return Flow::Stop;
                };
                if c.live.contains(&submit.id) {
                    Err(proto::error_line(
                        Some(&submit.id),
                        codes::DUPLICATE_ID,
                        &format!("id `{}` is still in flight on this connection", submit.id),
                    ))
                } else {
                    c.live.insert(submit.id.clone());
                    let seq = c.next_seq;
                    c.next_seq += 1;
                    let id = submit.id.clone();
                    c.queue.push_back(Job {
                        seq,
                        submit,
                        enqueued,
                        scheduled: None,
                    });
                    Ok((seq, id))
                }
            }
        };
        match accepted {
            Err(line) => {
                if let Some(w) = self.writer_of(cid) {
                    Self::write_now(&w, &line);
                }
            }
            Ok((seq, id)) => {
                self.ops.record_submit();
                self.log_event(
                    "enqueue",
                    &[
                        ("client", Json::U64(cid)),
                        ("id", Json::Str(id)),
                        ("seq", Json::U64(seq)),
                    ],
                );
                self.work.notify_all();
            }
        }
        Flow::Continue
    }

    fn handle_cancel(&self, cid: u64, id: &str) {
        let outcome = {
            let mut st = lock(&self.state);
            let Some(c) = st.clients.get_mut(&cid) else {
                return;
            };
            match c.queue.iter().position(|j| j.submit.id == id) {
                Some(pos) => {
                    let job = match c.queue.remove(pos) {
                        Some(j) => j,
                        None => unreachable!("position() index out of queue range"),
                    };
                    let enqueued = job.enqueued;
                    st.finish(cid, job.seq, id, proto::cancelled_line(id));
                    Ok(enqueued)
                }
                None => Err(proto::error_line(
                    Some(id),
                    codes::NOT_FOUND,
                    &format!("id `{id}` is not queued here"),
                )),
            }
        };
        match outcome {
            Err(line) => {
                if let Some(w) = self.writer_of(cid) {
                    Self::write_now(&w, &line);
                }
            }
            Ok(enqueued) => {
                self.record_terminal("cancel", Tier::Cancelled, cid, id, enqueued, None);
                self.flush_client(cid);
            }
        }
    }

    /// Shutdown: stop intake, wake the workers so they drain and retire,
    /// wait until everything queued/running is answered *and written*, then
    /// acknowledge.
    fn handle_shutdown(&self, cid: u64) {
        {
            let mut st = lock(&self.state);
            st.shutting_down = true;
        }
        self.work.notify_all();
        let drained = {
            let mut st = lock(&self.state);
            loop {
                let busy = st.queued() > 0
                    || st.running > 0
                    || st
                        .clients
                        .get(&cid)
                        .is_some_and(|c| c.flushing || !c.outbox.is_empty());
                if !busy {
                    break st.drained_runs;
                }
                st = match self.drained.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        self.log_event("shutdown", &[("drained", Json::U64(drained))]);
        if let Some(w) = self.writer_of(cid) {
            Self::write_now(&w, &proto::shutdown_ack_line(drained));
        }
    }

    /// Reads requests from `reader` until EOF, a `shutdown`, or (for
    /// sockets with a read timeout) the daemon shutting down underneath an
    /// idle connection; then waits for this client's results to drain and
    /// unregisters it.
    fn serve_connection<R: BufRead>(
        self: &Arc<Self>,
        mut reader: R,
        writer: Box<dyn Write + Send>,
    ) {
        let cid = self.register(writer);
        let mut acc = String::new();
        loop {
            match reader.read_line(&mut acc) {
                Ok(0) => {
                    // EOF; a final unterminated line still counts.
                    if !acc.trim().is_empty() {
                        let line = std::mem::take(&mut acc);
                        let _ = self.handle(cid, line.trim());
                    }
                    break;
                }
                Ok(_) if acc.ends_with('\n') => {
                    let line = std::mem::take(&mut acc);
                    let line = line.trim();
                    if !line.is_empty() && matches!(self.handle(cid, line), Flow::Stop) {
                        break;
                    }
                }
                // A partial line (no newline yet): keep accumulating.
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    // Timeout tick on a socket reader: notice a shutdown
                    // initiated by another client and close.
                    if self.is_shutting_down() {
                        break;
                    }
                }
                Err(_) => {
                    // Abrupt disconnect (reset, broken pipe, ...): unlike
                    // the orderly EOF path below, nothing can be written
                    // back, so don't wait for queued work — drop it.
                    self.abandon(cid);
                    return;
                }
            }
        }
        self.drain_client(cid);
        self.unregister(cid);
    }
}

/// Whether the connection loop keeps reading after a request.
enum Flow {
    Continue,
    Stop,
}

/// A running simulation daemon; see the module docs.
///
/// Construct with [`Daemon::new`], attach connections with
/// [`Daemon::serve_connection`] (any reader/writer pair: stdio, pipes,
/// sockets) or [`Daemon::serve_unix`], and retire it with
/// [`Daemon::join`].
pub struct Daemon {
    shared: Arc<Shared>,
    pool: Option<TaskPool>,
    /// Periodic metrics dump destination, re-written one final time at
    /// [`Daemon::join`] so the file always ends on post-drain totals.
    metrics_out: Option<PathBuf>,
    /// The periodic `--metrics-interval` dump thread, if configured.
    dump: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Builds the daemon: opens the disk cache (when configured), opens the
    /// ops log / metrics dump (when configured), and spawns the simulation
    /// worker pool.
    pub fn new(config: DaemonConfig) -> std::io::Result<Self> {
        let disk = match &config.cache_dir {
            Some(dir) => Some(DiskCache::open(dir, config.cache_budget)?),
            None => None,
        };
        let jobs = if config.jobs == 0 {
            wsg_sim::pool::default_jobs()
        } else {
            config.jobs
        };
        let ops_log = match &config.ops_log {
            Some(path) => Some(OpsLog::create(path)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                clients: BTreeMap::new(),
                next_client: 0,
                tick: 1,
                running: 0,
                completed: 0,
                shutting_down: false,
                drained_runs: 0,
            }),
            work: Condvar::new(),
            drained: Condvar::new(),
            mem: RunCache::new(),
            disk,
            ops: OpsRegistry::new(),
            ops_log,
            workers: jobs as u64,
            // lint:allow(wallclock): daemon start stamp for the uptime gauge;
            // ops observability only, never reaches simulation state.
            started: Instant::now(),
        });
        shared.log_event(
            "start",
            &[
                ("jobs", Json::U64(jobs as u64)),
                (
                    "cache_dir",
                    match &config.cache_dir {
                        Some(d) => Json::Str(d.display().to_string()),
                        None => Json::Null,
                    },
                ),
            ],
        );
        let for_pool = Arc::clone(&shared);
        let pool = TaskPool::new(jobs, move || for_pool.fetch());
        let dump = match (&config.metrics_out, config.metrics_interval) {
            (Some(path), Some(secs)) => {
                let path = path.clone();
                let shared = Arc::clone(&shared);
                Some(wsg_sim::pool::spawn_detached("hdpat-metrics-dump", {
                    move || {
                        let period = std::time::Duration::from_secs(secs.max(1));
                        'dump: loop {
                            // Sleep in small steps so shutdown is noticed
                            // promptly instead of after a full interval.
                            let mut slept = std::time::Duration::ZERO;
                            while slept < period {
                                if shared.is_shutting_down() {
                                    break 'dump;
                                }
                                let step = std::time::Duration::from_millis(50);
                                std::thread::sleep(step);
                                slept += step;
                            }
                            shared.write_metrics_out(&path);
                        }
                    }
                }))
            }
            _ => None,
        };
        Ok(Self {
            shared,
            pool: Some(pool),
            metrics_out: config.metrics_out.clone(),
            dump,
        })
    }

    /// Simulation worker count.
    pub fn jobs(&self) -> usize {
        self.pool.as_ref().map_or(0, TaskPool::workers)
    }

    /// Whether a shutdown request has been accepted.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.is_shutting_down()
    }

    /// Serves one client connection to completion (EOF or shutdown); the
    /// ordering semantics are described in the module docs. Blocking; call
    /// from one thread per connection. Returns once every response for
    /// this client has been written.
    pub fn serve_connection<R, W>(&self, reader: R, writer: W)
    where
        R: BufRead,
        W: Write + Send + 'static,
    {
        self.shared.serve_connection(reader, Box::new(writer));
    }

    /// Binds `path` and serves Unix-socket clients until a client sends
    /// `shutdown`. Each connection gets its own handler thread; the socket
    /// file is removed on exit.
    #[cfg(unix)]
    pub fn serve_unix(&self, path: &Path) -> std::io::Result<()> {
        use std::os::unix::net::UnixListener;
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let mut handlers = Vec::new();
        while !self.is_shutting_down() {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    // The timeout keeps idle connection readers responsive
                    // to a shutdown initiated elsewhere.
                    stream.set_read_timeout(Some(std::time::Duration::from_millis(50)))?;
                    let reader = std::io::BufReader::new(stream.try_clone()?);
                    let shared = Arc::clone(&self.shared);
                    handlers.push(wsg_sim::pool::spawn_detached(
                        "hdpat-serve-conn",
                        move || {
                            shared.serve_connection(reader, Box::new(stream));
                        },
                    ));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                Err(e) => {
                    let _ = std::fs::remove_file(path);
                    return Err(e);
                }
            }
        }
        for h in handlers {
            // Handler threads exit on their own after shutdown (read
            // timeout); a panicked handler already dropped its client.
            let _ = h.join();
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    /// Stub so non-Unix builds still compile; the serve transport is
    /// Unix-socket only.
    #[cfg(not(unix))]
    pub fn serve_unix(&self, _path: &Path) -> std::io::Result<()> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "unix sockets are unavailable on this platform; use --stdio",
        ))
    }

    /// Retires the daemon: initiates shutdown (if no client did) and joins
    /// the worker pool, so every in-flight run finishes first.
    pub fn join(mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutting_down = true;
        }
        self.shared.work.notify_all();
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
        if let Some(dump) = self.dump.take() {
            let _ = dump.join();
        }
        // Final dump after the pool drained, so the file on disk always ends
        // on totals that include every completed request.
        if let Some(path) = &self.metrics_out {
            self.shared.write_metrics_out(path);
        }
        self.shared.log_event("stop", &[]);
    }

    /// Cache statistics snapshot: `(memory entries, disk stats)`.
    pub fn cache_stats(&self) -> (usize, Option<crate::experiments::DiskCacheStats>) {
        (
            self.shared.mem.len(),
            self.shared.disk.as_ref().map(DiskCache::stats),
        )
    }

    /// Current operational metrics snapshot — the same canonical JSON object
    /// the `metrics` wire op returns. See [`crate::ops`] for the schema.
    pub fn metrics_snapshot(&self) -> Json {
        self.shared.ops.snapshot_json(&self.shared.gauge_sample())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::json::Json;
    use std::io::Cursor;

    /// A `Write` handle over a shared buffer, so tests can read back what
    /// the daemon wrote after the connection closes.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(lock(&self.0).clone()).expect("daemon wrote invalid UTF-8")
        }

        fn lines(&self) -> Vec<String> {
            self.contents().lines().map(str::to_string).collect()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            lock(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn daemon(jobs: usize) -> Daemon {
        Daemon::new(DaemonConfig {
            jobs,
            ..DaemonConfig::default()
        })
        .expect("daemon boots without a cache dir")
    }

    fn member(line: &str, key: &str) -> Json {
        Json::parse(line)
            .unwrap_or_else(|e| panic!("`{line}` is not JSON: {e}"))
            .get(key)
            .unwrap_or_else(|| panic!("`{line}` has no `{key}`"))
            .clone()
    }

    #[test]
    fn submits_are_answered_in_submission_order() {
        let d = daemon(4);
        let out = SharedBuf::default();
        // Different priorities force out-of-order execution; responses must
        // come back in submission order regardless.
        let mix = [
            r#"{"op":"submit","id":"a","benchmark":"RELU","policy":"naive","scale":"unit","priority":0}"#,
            r#"{"op":"submit","id":"b","benchmark":"AES","policy":"naive","scale":"unit","priority":9}"#,
            r#"{"op":"submit","id":"c","benchmark":"RELU","policy":"naive","scale":"unit","priority":5}"#,
        ]
        .join("\n");
        d.serve_connection(Cursor::new(mix), out.clone());
        let lines = out.lines();
        assert_eq!(lines.len(), 3, "{lines:?}");
        let ids: Vec<Json> = lines.iter().map(|l| member(l, "id")).collect();
        assert_eq!(ids, ["a", "b", "c"].map(|s| Json::Str(s.into())).to_vec());
        // `a` and `c` are the same run. With concurrent workers both may
        // miss and simulate (the caches are consulted at execution time),
        // so only the bytes — not the attribution — are guaranteed equal.
        assert_eq!(member(&lines[0], "source"), Json::Str("simulated".into()));
        assert!(
            matches!(
                member(&lines[2], "source"),
                Json::Str(s) if s == "memory" || s == "simulated"
            ),
            "{lines:?}"
        );
        assert_eq!(member(&lines[0], "metrics"), member(&lines[2], "metrics"));
        d.join();
    }

    #[test]
    fn concurrent_clients_each_get_their_own_ordered_responses() {
        let d = Arc::new(daemon(4));
        let mut handles = Vec::new();
        let mut bufs = Vec::new();
        for client in 0..3u32 {
            let out = SharedBuf::default();
            bufs.push(out.clone());
            let d = Arc::clone(&d);
            handles.push(wsg_sim::pool::spawn_detached("test-client", move || {
                let mix: String = (0..4)
                    .map(|i| {
                        // Shared points across clients so the caches get
                        // concurrent traffic.
                        let bench = if i % 2 == 0 { "RELU" } else { "AES" };
                        format!(
                            "{{\"op\":\"submit\",\"id\":\"c{client}-{i}\",\"benchmark\":\"{bench}\",\
                             \"policy\":\"naive\",\"scale\":\"unit\",\"priority\":{}}}\n",
                            i % 3
                        )
                    })
                    .collect();
                d.serve_connection(Cursor::new(mix), out);
            }));
        }
        for h in handles {
            h.join().expect("client thread panicked");
        }
        for (client, out) in bufs.iter().enumerate() {
            let lines = out.lines();
            assert_eq!(lines.len(), 4, "client {client}: {lines:?}");
            for (i, line) in lines.iter().enumerate() {
                assert_eq!(
                    member(line, "id"),
                    Json::Str(format!("c{client}-{i}")),
                    "client {client} out of order: {lines:?}"
                );
            }
        }
        match Arc::try_unwrap(d) {
            Ok(d) => d.join(),
            Err(_) => unreachable!("client threads joined; no handles remain"),
        }
    }

    /// A connection that delivers its request bytes, then fails like a
    /// reset socket — an abrupt error, not an orderly EOF.
    struct AbruptRead {
        inner: Cursor<Vec<u8>>,
    }

    impl std::io::Read for AbruptRead {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.inner.read(buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "peer reset the connection",
                ));
            }
            Ok(n)
        }
    }

    #[test]
    fn abrupt_disconnect_drops_queued_work_and_reaps_the_client() {
        // Regression: an abrupt reader error used to take the same path as
        // an orderly EOF — `drain_client` blocked until every queued job
        // had been *simulated*, each result parked forever in the reorder
        // buffer of a client nobody would ever flush again. The disconnect
        // path must instead drop queued jobs, let in-flight ones finish
        // into the caches, and reap the client record.
        let d = daemon(1);
        let out = SharedBuf::default();
        // Three distinct cache-missing runs on a one-worker pool: at most
        // one can be in flight by the time the reader errors out.
        let mix: String = (0..3)
            .map(|i| {
                format!(
                    "{{\"op\":\"submit\",\"id\":\"gone-{i}\",\"benchmark\":\"RELU\",\
                     \"policy\":\"naive\",\"scale\":\"unit\",\"seed\":{i},\"priority\":0}}\n"
                )
            })
            .collect();
        let reader = std::io::BufReader::new(AbruptRead {
            inner: Cursor::new(mix.into_bytes()),
        });
        // Must return promptly (abandon), not after simulating all three.
        d.serve_connection(reader, out.clone());
        // The client record disappears as soon as its in-flight job (if
        // any) completes; bounded poll so a regression fails, not hangs.
        let mut tries = 0;
        while !lock(&d.shared.state).clients.is_empty() {
            tries += 1;
            assert!(tries < 2000, "disconnected client was never reaped");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        {
            let st = lock(&d.shared.state);
            assert_eq!(st.queued(), 0, "queued jobs must die with the client");
            assert_eq!(st.running, 0);
        }
        // At most the one in-flight run was simulated into the cache; the
        // two queued ones were dropped (pre-fix: all three executed).
        let (mem_entries, _) = d.cache_stats();
        assert!(
            mem_entries <= 1,
            "doomed queued jobs were simulated: {mem_entries}"
        );
        assert!(
            out.lines().len() <= 1,
            "responses written after the disconnect: {:?}",
            out.lines()
        );
        // The daemon stays healthy: a fresh, orderly client is served.
        let out2 = SharedBuf::default();
        let submit = r#"{"op":"submit","id":"z","benchmark":"RELU","policy":"naive","scale":"unit","priority":0}"#;
        d.serve_connection(Cursor::new(submit), out2.clone());
        let lines = out2.lines();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert_eq!(member(&lines[0], "id"), Json::Str("z".into()));
        d.join();
    }

    #[test]
    fn progress_events_bracket_simulated_runs_only() {
        let d = daemon(1);
        let out = SharedBuf::default();
        let mix = concat!(
            r#"{"op":"submit","id":"p1","benchmark":"RELU","policy":"naive","scale":"unit","progress":true}"#,
            "\n",
            // Same run again: memory hit, so no progress events.
            r#"{"op":"submit","id":"p2","benchmark":"RELU","policy":"naive","scale":"unit","progress":true}"#,
        );
        d.serve_connection(Cursor::new(mix), out.clone());
        let lines = out.lines();
        let kinds: Vec<(String, String)> = lines
            .iter()
            .map(|l| {
                let ty = member(l, "type");
                let id = member(l, "id");
                (
                    ty.as_str().unwrap_or("?").to_string(),
                    id.as_str().unwrap_or("?").to_string(),
                )
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("progress".into(), "p1".into()),
                ("progress".into(), "p1".into()),
                ("result".into(), "p1".into()),
                ("result".into(), "p2".into()),
            ],
            "{lines:?}"
        );
        assert_eq!(member(&lines[0], "state"), Json::Str("started".into()));
        assert_eq!(member(&lines[1], "state"), Json::Str("finished".into()));
        assert_eq!(member(&lines[3], "source"), Json::Str("memory".into()));
        d.join();
    }

    #[test]
    fn cancel_occupies_the_cancelled_slot_and_misses_report_not_found() {
        // One worker: k1 occupies it (FIFO within a client), so k2 is still
        // queued when the cancel arrives a few request lines later. The
        // worker races the reader, though, so the test also tolerates k2
        // having started (the cancel then reports not-found and k2 runs to
        // a result).
        let d = daemon(1);
        let out = SharedBuf::default();
        let mix = [
            r#"{"op":"submit","id":"k1","benchmark":"MM","policy":"naive","scale":"unit"}"#,
            r#"{"op":"submit","id":"k2","benchmark":"AES","policy":"naive","scale":"unit"}"#,
            r#"{"op":"cancel","id":"k2"}"#,
            r#"{"op":"cancel","id":"nonexistent"}"#,
        ]
        .join("\n");
        d.serve_connection(Cursor::new(mix), out.clone());
        let lines = out.lines();
        // Errors (not-found) are immediate, so they may precede the k1/k2
        // responses; the cancel for `nonexistent` always produces one, the
        // cancel for k2 only in the already-started race.
        let errors: Vec<&String> = lines
            .iter()
            .filter(|l| member(l, "type") == Json::Str("error".into()))
            .collect();
        assert!((1..=2).contains(&errors.len()), "{lines:?}");
        for e in &errors {
            assert_eq!(member(e, "code"), Json::Str(codes::NOT_FOUND.into()));
        }
        let ordered: Vec<String> = lines
            .iter()
            .filter(|l| member(l, "type") != Json::Str("error".into()))
            .map(|l| {
                format!(
                    "{}:{}",
                    member(l, "type").as_str().unwrap_or("?"),
                    member(l, "id").as_str().unwrap_or("?")
                )
            })
            .collect();
        // k2 either got cancelled while queued or had already started on the
        // racing worker (then it completes as a result; the cancel reported
        // not-found — but we asserted exactly one error, the nonexistent
        // one, so whichever happened shows up here in submission order).
        assert_eq!(
            ordered.first().map(String::as_str),
            Some("result:k1"),
            "{lines:?}"
        );
        assert!(
            ordered.get(1).map(String::as_str) == Some("cancelled:k2")
                || ordered.get(1).map(String::as_str) == Some("result:k2"),
            "{lines:?}"
        );
        d.join();
    }

    #[test]
    fn shutdown_drains_and_acks_last() {
        let d = daemon(2);
        let out = SharedBuf::default();
        let mix = [
            r#"{"op":"submit","id":"s1","benchmark":"RELU","policy":"naive","scale":"unit"}"#,
            r#"{"op":"submit","id":"s2","benchmark":"AES","policy":"naive","scale":"unit"}"#,
            r#"{"op":"shutdown"}"#,
            // Never read: the connection stops at the shutdown request.
            r#"{"op":"status"}"#,
        ]
        .join("\n");
        d.serve_connection(Cursor::new(mix), out.clone());
        let lines = out.lines();
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert_eq!(member(&lines[0], "id"), Json::Str("s1".into()));
        assert_eq!(member(&lines[1], "id"), Json::Str("s2".into()));
        assert_eq!(member(&lines[2], "type"), Json::Str("shutdown-ack".into()));
        assert!(d.is_shutting_down());
        // New submits after shutdown are rejected.
        let late = SharedBuf::default();
        d.serve_connection(
            Cursor::new(r#"{"op":"submit","id":"x","benchmark":"RELU","policy":"naive"}"#),
            late.clone(),
        );
        let lines = late.lines();
        assert_eq!(lines.len(), 1);
        assert_eq!(
            member(&lines[0], "code"),
            Json::Str(codes::SHUTTING_DOWN.into())
        );
        d.join();
    }

    #[test]
    fn status_cache_stats_and_duplicate_ids() {
        let d = daemon(2);
        let out = SharedBuf::default();
        let mix = [
            r#"{"op":"status"}"#,
            r#"{"op":"submit","id":"dup","benchmark":"RELU","policy":"naive","scale":"unit"}"#,
            r#"{"op":"submit","id":"dup","benchmark":"AES","policy":"naive","scale":"unit"}"#,
            r#"{"op":"cache-stats"}"#,
        ]
        .join("\n");
        d.serve_connection(Cursor::new(mix), out.clone());
        let lines = out.lines();
        assert_eq!(
            member(&lines[0], "type"),
            Json::Str("status".into()),
            "{lines:?}"
        );
        let dup_errors = lines
            .iter()
            .filter(|l| member(l, "type") == Json::Str("error".into()))
            .count();
        assert_eq!(dup_errors, 1, "{lines:?}");
        let cache = lines
            .iter()
            .find(|l| member(l, "type") == Json::Str("cache-stats".into()))
            .unwrap_or_else(|| panic!("no cache-stats in {lines:?}"));
        assert_eq!(member(cache, "disk"), Json::Bool(false));
        let results = lines
            .iter()
            .filter(|l| member(l, "type") == Json::Str("result".into()))
            .count();
        assert_eq!(results, 1, "{lines:?}");
        d.join();
    }

    #[test]
    fn disk_cache_attribution_across_daemon_instances() {
        let dir =
            std::env::temp_dir().join(format!("hdpat-daemon-disk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = DaemonConfig {
            jobs: 1,
            cache_dir: Some(dir.clone()),
            ..DaemonConfig::default()
        };
        let submit =
            r#"{"op":"submit","id":"d1","benchmark":"RELU","policy":"naive","scale":"unit"}"#;

        let first = Daemon::new(config.clone()).expect("first daemon boots");
        let out1 = SharedBuf::default();
        first.serve_connection(Cursor::new(submit), out1.clone());
        first.join();
        let lines = out1.lines();
        assert_eq!(member(&lines[0], "source"), Json::Str("simulated".into()));

        // A fresh daemon (empty memory cache) resolves the same submit from
        // the persistent store, byte-identically.
        let second = Daemon::new(config).expect("second daemon boots");
        let out2 = SharedBuf::default();
        second.serve_connection(Cursor::new(submit), out2.clone());
        let (mem_entries, disk_stats) = second.cache_stats();
        second.join();
        let lines2 = out2.lines();
        assert_eq!(member(&lines2[0], "source"), Json::Str("disk".into()));
        assert_eq!(member(&lines[0], "metrics"), member(&lines2[0], "metrics"));
        assert_eq!(mem_entries, 1, "disk hit promotes into memory");
        assert_eq!(disk_stats.map(|s| s.hits), Some(1));
        std::fs::remove_dir_all(&dir).expect("test dir removable");
    }

    #[test]
    fn metrics_op_returns_a_reconciling_snapshot() {
        let d = daemon(2);
        let out = SharedBuf::default();
        let mix = [
            r#"{"op":"submit","id":"m1","benchmark":"RELU","policy":"naive","scale":"unit"}"#,
            // Same point again: a memory hit once m1 has simulated.
            r#"{"op":"submit","id":"m2","benchmark":"RELU","policy":"naive","scale":"unit"}"#,
            r#"{"op":"metrics"}"#,
        ]
        .join("\n");
        d.serve_connection(Cursor::new(mix), out.clone());
        let lines = out.lines();
        let snap = lines
            .iter()
            .find(|l| member(l, "type") == Json::Str("metrics".into()))
            .unwrap_or_else(|| panic!("no metrics response in {lines:?}"));
        let v = Json::parse(snap).expect("metrics snapshot parses");
        // Canonical: the emitted line round-trips byte-identically.
        assert_eq!(v.to_line(), *snap);
        let requests = v.get("requests").expect("requests member");
        assert_eq!(requests.get("submitted").and_then(Json::as_u64), Some(2));
        // The metrics op answers in-line (not through the reorder buffer),
        // so it may observe m2 still in flight; at quiescence — which the
        // Daemon accessor samples after serve_connection returned — every
        // submit is attributed to exactly one tier.
        let quiesced = d.metrics_snapshot();
        let requests = quiesced.get("requests").expect("requests member");
        assert_eq!(requests.get("completed").and_then(Json::as_u64), Some(2));
        let tiers = requests.get("tiers").expect("tiers member");
        let count = |tier: &str| {
            tiers
                .get(tier)
                .and_then(|t| t.get("count"))
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("tier {tier} missing in {quiesced:?}"))
        };
        assert_eq!(
            count("simulated") + count("memory") + count("disk"),
            2,
            "{quiesced:?}"
        );
        assert_eq!(count("cancelled") + count("client-gone"), 0);
        // Gauges reflect the drained pool.
        let gauges = quiesced.get("gauges").expect("gauges member");
        assert_eq!(gauges.get("queued").and_then(Json::as_u64), Some(0));
        assert_eq!(gauges.get("inflight").and_then(Json::as_u64), Some(0));
        assert_eq!(gauges.get("workers").and_then(Json::as_u64), Some(2));
        d.join();
    }

    #[test]
    fn status_reports_ops_members_and_cancel_counts_into_the_registry() {
        let d = daemon(1);
        let out = SharedBuf::default();
        let mix = [
            r#"{"op":"submit","id":"c1","benchmark":"MM","policy":"naive","scale":"unit"}"#,
            r#"{"op":"submit","id":"c2","benchmark":"AES","policy":"naive","scale":"unit"}"#,
            r#"{"op":"cancel","id":"c2"}"#,
            r#"{"op":"status"}"#,
        ]
        .join("\n");
        d.serve_connection(Cursor::new(mix), out.clone());
        let lines = out.lines();
        let status = lines
            .iter()
            .find(|l| member(l, "type") == Json::Str("status".into()))
            .unwrap_or_else(|| panic!("no status in {lines:?}"));
        let v = Json::parse(status).expect("status parses");
        assert_eq!(v.get("workers").and_then(Json::as_u64), Some(1));
        assert!(v.get("uptime_seconds").and_then(Json::as_u64).is_some());
        assert!(v.get("reorder_buffered").and_then(Json::as_u64).is_some());
        assert!(
            matches!(v.get("queue_depth"), Some(Json::Arr(_))),
            "{status}"
        );
        // Whichever way the worker/cancel race went, both submits terminate
        // in exactly one tier each.
        let quiesced = d.metrics_snapshot();
        let requests = quiesced.get("requests").expect("requests member");
        assert_eq!(requests.get("submitted").and_then(Json::as_u64), Some(2));
        assert_eq!(requests.get("completed").and_then(Json::as_u64), Some(2));
        d.join();
    }

    #[test]
    fn ops_log_records_the_request_lifecycle() {
        let dir = std::env::temp_dir().join(format!("hdpat-ops-log-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("test dir creatable");
        let log_path = dir.join("ops.jsonl");
        let d = Daemon::new(DaemonConfig {
            jobs: 1,
            ops_log: Some(log_path.clone()),
            ..DaemonConfig::default()
        })
        .expect("daemon boots with an ops log");
        let out = SharedBuf::default();
        let submit =
            r#"{"op":"submit","id":"log1","benchmark":"RELU","policy":"naive","scale":"unit"}"#;
        d.serve_connection(Cursor::new(submit), out.clone());
        d.join();
        let log = std::fs::read_to_string(&log_path).expect("ops log written");
        let events: Vec<String> = log
            .lines()
            .map(|l| {
                Json::parse(l)
                    .unwrap_or_else(|e| panic!("ops log line `{l}` is not JSON: {e}"))
                    .get("ev")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| panic!("ops log line `{l}` has no ev"))
                    .to_string()
            })
            .collect();
        assert_eq!(events.first().map(String::as_str), Some("start"), "{log}");
        assert_eq!(events.last().map(String::as_str), Some("stop"), "{log}");
        for required in ["enqueue", "schedule", "complete"] {
            assert_eq!(events.iter().filter(|e| *e == required).count(), 1, "{log}");
        }
        // Lifecycle events carry the latency decomposition.
        let complete = log
            .lines()
            .find(|l| l.contains("\"ev\":\"complete\""))
            .expect("complete event");
        let v = Json::parse(complete).expect("complete event parses");
        assert_eq!(v.get("id").and_then(Json::as_str), Some("log1"));
        assert_eq!(v.get("tier").and_then(Json::as_str), Some("simulated"));
        for field in ["queue_wait_us", "service_us", "total_us", "t_ms"] {
            assert!(
                v.get(field).and_then(Json::as_u64).is_some(),
                "missing {field}: {complete}"
            );
        }
        std::fs::remove_dir_all(&dir).expect("test dir removable");
    }

    #[test]
    fn malformed_lines_get_errors_and_do_not_kill_the_connection() {
        let d = daemon(1);
        let out = SharedBuf::default();
        let mix = concat!(
            "{broken\n",
            "\n", // blank lines are ignored
            r#"{"op":"submit","id":"ok","benchmark":"RELU","policy":"naive","scale":"unit"}"#,
        );
        d.serve_connection(Cursor::new(mix), out.clone());
        let lines = out.lines();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert_eq!(member(&lines[0], "type"), Json::Str("error".into()));
        assert_eq!(
            member(&lines[0], "code"),
            Json::Str(codes::BAD_REQUEST.into())
        );
        assert_eq!(member(&lines[1], "type"), Json::Str("result".into()));
        d.join();
    }
}
