//! Wire protocol of the `hdpat-sim serve` daemon: newline-delimited JSON
//! requests and responses.
//!
//! One request per line, one or more response lines per request. The full
//! human-readable specification lives in PROTOCOL.md at the repository
//! root; the examples there are generated from [`protocol_examples`] (via
//! `hdpat-sim regen-protocol`), so the document cannot drift from this
//! module without CI noticing.
//!
//! Compatibility rules:
//!
//! * Request `op` tokens, response `type` tokens, member names, and error
//!   codes are **stable** — never renamed, only added.
//! * Parsers ignore unknown members, so old daemons tolerate newer clients
//!   (and vice versa) as long as the required members are present.
//! * Policy tokens come from [`PolicyKind::catalog`], benchmark tokens from
//!   the Table II abbreviations (`hdpat-sim list`), scale tokens are
//!   `unit` / `bench` / `full`.

use wsg_workloads::{BenchmarkId, Scale};

use super::json::Json;
use crate::experiments::RunConfig;
use crate::metrics::Metrics;
use crate::policy::PolicyKind;

/// Stable error codes carried by `{"type":"error"}` responses.
pub mod codes {
    /// The line is not a JSON object, or a required member is missing or of
    /// the wrong type. The `message` member says which.
    pub const BAD_REQUEST: &str = "bad-request";
    /// The `op` token names no known operation.
    pub const UNKNOWN_OP: &str = "unknown-op";
    /// The `benchmark` token names no Table II workload.
    pub const UNKNOWN_BENCHMARK: &str = "unknown-benchmark";
    /// The `policy` token is not in the policy catalog.
    pub const UNKNOWN_POLICY: &str = "unknown-policy";
    /// The `scale` token is not `unit`, `bench`, or `full`.
    pub const UNKNOWN_SCALE: &str = "unknown-scale";
    /// A submit reused a request id that is still live on this connection.
    pub const DUPLICATE_ID: &str = "duplicate-id";
    /// A cancel named an id that is unknown, already running, or already
    /// answered — nothing left to cancel.
    pub const NOT_FOUND: &str = "not-found";
    /// The daemon is draining after a shutdown request and accepts no new
    /// work.
    pub const SHUTTING_DOWN: &str = "shutting-down";
}

/// Where a result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Simulated fresh by this daemon.
    Simulated,
    /// Served from the in-memory run cache.
    Memory,
    /// Served from the persistent on-disk cache.
    Disk,
}

impl Source {
    /// The stable wire token.
    pub fn token(self) -> &'static str {
        match self {
            Source::Simulated => "simulated",
            Source::Memory => "memory",
            Source::Disk => "disk",
        }
    }
}

/// A parsed and validated `submit` request.
#[derive(Debug, Clone)]
pub struct Submit {
    /// Client-chosen request id, echoed on every response for this run.
    pub id: String,
    /// Workload.
    pub benchmark: BenchmarkId,
    /// Translation policy.
    pub policy: PolicyKind,
    /// Workload scale (default `bench`).
    pub scale: Scale,
    /// Workload seed (default 42).
    pub seed: u64,
    /// Scheduling priority; higher runs earlier (default 0).
    pub priority: u64,
    /// Whether to stream `progress` events for this run (default false).
    pub progress: bool,
}

impl Submit {
    /// The fully specified run this submit describes. Built through
    /// [`RunConfig::new`], so a daemon request and the equivalent CLI
    /// invocation produce the same fingerprint and share cache entries.
    pub fn run_config(&self) -> RunConfig {
        RunConfig::new(self.benchmark, self.scale, self.policy).with_seed(self.seed)
    }
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Schedule a simulation.
    Submit(Submit),
    /// Report daemon queue/worker occupancy.
    Status,
    /// Cancel a still-queued submit by id.
    Cancel {
        /// The id given at submit time.
        id: String,
    },
    /// Report run-cache and disk-cache statistics.
    CacheStats,
    /// Report the full operational metrics snapshot ([`crate::ops`]):
    /// request-lifecycle latency histograms per outcome tier, serving
    /// gauges, cache counters, and engine-side drive counters.
    Metrics,
    /// Stop accepting work, drain, and exit.
    Shutdown,
}

/// A request parse/validation failure, carrying the stable error code and
/// the offending request id when one could be extracted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Human-readable detail (not part of the stability contract).
    pub message: String,
    /// The request's `id`, if the line carried one.
    pub id: Option<String>,
}

impl ProtoError {
    fn new(code: &'static str, message: impl Into<String>, id: Option<String>) -> Self {
        Self {
            code,
            message: message.into(),
            id,
        }
    }

    /// The `{"type":"error"}` response line for this failure.
    pub fn to_line(&self) -> String {
        error_line(self.id.as_deref(), self.code, &self.message)
    }
}

/// Looks a benchmark up by its Table II abbreviation (ASCII
/// case-insensitive), e.g. `"SPMV"`.
pub fn parse_benchmark(token: &str) -> Option<BenchmarkId> {
    BenchmarkId::all()
        .into_iter()
        .find(|b| b.info().abbr.eq_ignore_ascii_case(token))
}

/// Looks a workload scale up by its wire token (ASCII case-insensitive).
pub fn parse_scale(token: &str) -> Option<Scale> {
    match token.to_ascii_lowercase().as_str() {
        "unit" => Some(Scale::Unit),
        "bench" => Some(Scale::Bench),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

/// The wire token of a workload scale.
pub fn scale_token(scale: Scale) -> &'static str {
    match scale {
        Scale::Unit => "unit",
        Scale::Bench => "bench",
        Scale::Full => "full",
    }
}

impl Request {
    /// Parses and validates one request line.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let value = Json::parse(line).map_err(|e| {
            ProtoError::new(codes::BAD_REQUEST, format!("malformed JSON: {e}"), None)
        })?;
        if !matches!(value, Json::Obj(_)) {
            return Err(ProtoError::new(
                codes::BAD_REQUEST,
                "request must be a JSON object",
                None,
            ));
        }
        // Best-effort id for error attribution, before strict validation.
        let id = value
            .get("id")
            .and_then(Json::as_str)
            .map(|s| s.to_string());
        let op = value.get("op").and_then(Json::as_str).ok_or_else(|| {
            ProtoError::new(codes::BAD_REQUEST, "missing string member `op`", id.clone())
        })?;
        match op {
            "submit" => Self::parse_submit(&value).map(Request::Submit),
            "status" => Ok(Request::Status),
            "cancel" => {
                let id = id.ok_or_else(|| {
                    ProtoError::new(codes::BAD_REQUEST, "cancel needs an `id`", None)
                })?;
                Ok(Request::Cancel { id })
            }
            "cache-stats" => Ok(Request::CacheStats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtoError::new(
                codes::UNKNOWN_OP,
                format!("unknown op `{other}`"),
                id,
            )),
        }
    }

    fn parse_submit(value: &Json) -> Result<Submit, ProtoError> {
        let id = value
            .get("id")
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| {
                ProtoError::new(
                    codes::BAD_REQUEST,
                    "submit needs a non-empty string `id`",
                    None,
                )
            })?
            .to_string();
        let some_id = Some(id.clone());
        let bench_token = value
            .get("benchmark")
            .and_then(Json::as_str)
            .ok_or_else(|| {
                ProtoError::new(
                    codes::BAD_REQUEST,
                    "submit needs a string `benchmark`",
                    some_id.clone(),
                )
            })?;
        let benchmark = parse_benchmark(bench_token).ok_or_else(|| {
            ProtoError::new(
                codes::UNKNOWN_BENCHMARK,
                format!("unknown benchmark `{bench_token}`; see `hdpat-sim list`"),
                some_id.clone(),
            )
        })?;
        let policy_token = value.get("policy").and_then(Json::as_str).ok_or_else(|| {
            ProtoError::new(
                codes::BAD_REQUEST,
                "submit needs a string `policy`",
                some_id.clone(),
            )
        })?;
        let policy = PolicyKind::from_token(policy_token).ok_or_else(|| {
            ProtoError::new(
                codes::UNKNOWN_POLICY,
                format!("unknown policy `{policy_token}`; see `hdpat-sim list`"),
                some_id.clone(),
            )
        })?;
        let scale = match value.get("scale") {
            None => Scale::Bench,
            Some(s) => {
                let token = s.as_str().ok_or_else(|| {
                    ProtoError::new(
                        codes::BAD_REQUEST,
                        "`scale` must be a string",
                        some_id.clone(),
                    )
                })?;
                parse_scale(token).ok_or_else(|| {
                    ProtoError::new(
                        codes::UNKNOWN_SCALE,
                        format!("unknown scale `{token}`; use unit, bench, or full"),
                        some_id.clone(),
                    )
                })?
            }
        };
        let u64_member = |name: &str, default: u64| -> Result<u64, ProtoError> {
            match value.get(name) {
                None => Ok(default),
                Some(v) => v.as_u64().ok_or_else(|| {
                    ProtoError::new(
                        codes::BAD_REQUEST,
                        format!("`{name}` must be a non-negative integer"),
                        some_id.clone(),
                    )
                }),
            }
        };
        let seed = u64_member("seed", 42)?;
        let priority = u64_member("priority", 0)?;
        let progress = match value.get("progress") {
            None => false,
            Some(v) => v.as_bool().ok_or_else(|| {
                ProtoError::new(
                    codes::BAD_REQUEST,
                    "`progress` must be a boolean",
                    some_id.clone(),
                )
            })?,
        };
        Ok(Submit {
            id,
            benchmark,
            policy,
            scale,
            seed,
            priority,
            progress,
        })
    }
}

/// Builds the canonical `submit` request line for one run — the daemon's
/// parser accepts exactly what this emits, and `hdpat-sim emit-mix` and the
/// replay bench are built on it.
pub fn submit_line(
    id: &str,
    benchmark: BenchmarkId,
    policy_token: &str,
    scale: Scale,
    seed: u64,
) -> String {
    Json::Obj(vec![
        ("op".into(), Json::Str("submit".into())),
        ("id".into(), Json::Str(id.into())),
        ("benchmark".into(), Json::Str(benchmark.info().abbr.into())),
        ("policy".into(), Json::Str(policy_token.into())),
        ("scale".into(), Json::Str(scale_token(scale).into())),
        ("seed".into(), Json::U64(seed)),
    ])
    .to_line()
}

/// The `{"type":"result"}` line answering a submit: id, attribution,
/// fingerprint, headline scalars, and the full deterministic metrics
/// serialization (`metrics` member, `Metrics::to_deterministic_string`).
pub fn result_line(id: &str, source: Source, fingerprint: &str, metrics: &Metrics) -> String {
    Json::Obj(vec![
        ("type".into(), Json::Str("result".into())),
        ("id".into(), Json::Str(id.into())),
        ("source".into(), Json::Str(source.token().into())),
        ("fingerprint".into(), Json::Str(fingerprint.into())),
        ("total_cycles".into(), Json::U64(metrics.total_cycles)),
        ("ops_completed".into(), Json::U64(metrics.ops_completed)),
        ("iommu_walks".into(), Json::U64(metrics.iommu_walks)),
        (
            "metrics".into(),
            Json::Str(metrics.to_deterministic_string()),
        ),
    ])
    .to_line()
}

/// A `{"type":"progress"}` event: `state` is `"started"` when the run
/// leaves the queue for a worker and `"finished"` when the simulation
/// completes. Only emitted for submits with `"progress":true`, and only for
/// runs that actually simulate (cache hits answer directly).
pub fn progress_line(id: &str, state: &str) -> String {
    Json::Obj(vec![
        ("type".into(), Json::Str("progress".into())),
        ("id".into(), Json::Str(id.into())),
        ("state".into(), Json::Str(state.into())),
    ])
    .to_line()
}

/// A `{"type":"error"}` line; `id` is `null` when the failing line carried
/// none.
pub fn error_line(id: Option<&str>, code: &str, message: &str) -> String {
    Json::Obj(vec![
        ("type".into(), Json::Str("error".into())),
        ("id".into(), id.map_or(Json::Null, |i| Json::Str(i.into()))),
        ("code".into(), Json::Str(code.into())),
        ("message".into(), Json::Str(message.into())),
    ])
    .to_line()
}

/// Everything a `{"type":"status"}` reply reports. The original four
/// members (`queued`/`running`/`completed`/`clients`) are scheduling state;
/// the rest are the serving gauges an operator needs at a glance.
#[derive(Debug, Clone, Default)]
pub struct StatusReport {
    /// Jobs waiting in per-client queues (total queue depth).
    pub queued: u64,
    /// Jobs executing on pool workers (in-flight).
    pub running: u64,
    /// Runs completed since start.
    pub completed: u64,
    /// Connected clients.
    pub clients: u64,
    /// `(client id, queued jobs)` per connected client, ascending by id.
    pub queue_depth: Vec<(u64, u64)>,
    /// Pool worker threads (`workers - running` are idle).
    pub workers: u64,
    /// Completed results parked in per-client reorder buffers.
    pub reorder_buffered: u64,
    /// Whole seconds since the daemon started.
    pub uptime_seconds: u64,
}

/// The `{"type":"status"}` line answering a status request.
pub fn status_line(report: &StatusReport) -> String {
    let depth = report
        .queue_depth
        .iter()
        .map(|&(client, depth)| {
            Json::Obj(vec![
                ("client".into(), Json::U64(client)),
                ("depth".into(), Json::U64(depth)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("type".into(), Json::Str("status".into())),
        ("queued".into(), Json::U64(report.queued)),
        ("running".into(), Json::U64(report.running)),
        ("completed".into(), Json::U64(report.completed)),
        ("clients".into(), Json::U64(report.clients)),
        ("queue_depth".into(), Json::Arr(depth)),
        ("workers".into(), Json::U64(report.workers)),
        (
            "reorder_buffered".into(),
            Json::U64(report.reorder_buffered),
        ),
        ("uptime_seconds".into(), Json::U64(report.uptime_seconds)),
    ])
    .to_line()
}

/// Disk-store state reported by [`cache_stats_line`].
#[derive(Debug, Clone)]
pub struct DiskReport<'a> {
    /// Cache directory.
    pub dir: &'a std::path::Path,
    /// Entries currently on disk.
    pub entries: u64,
    /// Bytes of entry files currently on disk.
    pub resident_bytes: u64,
    /// Configured `--cache-budget`, if any.
    pub budget: Option<u64>,
    /// Lifetime hit/miss/write/eviction counters.
    pub stats: crate::experiments::DiskCacheStats,
}

/// The `{"type":"cache-stats"}` line: in-memory entry count plus the disk
/// store's counters and occupancy — resident bytes and the configured
/// budget expose `--cache-budget` pressure, not just hit rates. All disk
/// members are zero/null, with `"disk":false`, when the daemon runs
/// without a cache directory.
pub fn cache_stats_line(memory_entries: u64, disk: Option<DiskReport<'_>>) -> String {
    let mut members = vec![
        ("type".into(), Json::Str("cache-stats".into())),
        ("memory_entries".into(), Json::U64(memory_entries)),
        ("disk".into(), Json::Bool(disk.is_some())),
    ];
    let (dir, entries, resident, budget, stats) = match disk {
        Some(d) => (
            Json::Str(d.dir.display().to_string()),
            d.entries,
            d.resident_bytes,
            d.budget.map_or(Json::Null, Json::U64),
            d.stats,
        ),
        None => (Json::Null, 0, 0, Json::Null, Default::default()),
    };
    members.push(("disk_dir".into(), dir));
    members.push(("disk_entries".into(), Json::U64(entries)));
    members.push(("disk_resident_bytes".into(), Json::U64(resident)));
    members.push(("disk_budget_bytes".into(), budget));
    members.push(("disk_hits".into(), Json::U64(stats.hits)));
    members.push(("disk_misses".into(), Json::U64(stats.misses)));
    members.push(("disk_writes".into(), Json::U64(stats.writes)));
    members.push(("disk_evictions".into(), Json::U64(stats.evictions)));
    members.push(("disk_discarded".into(), Json::U64(stats.discarded)));
    Json::Obj(members).to_line()
}

/// The `{"type":"cancelled"}` line confirming a cancel; released in the
/// cancelled submit's position of the client's result order.
pub fn cancelled_line(id: &str) -> String {
    Json::Obj(vec![
        ("type".into(), Json::Str("cancelled".into())),
        ("id".into(), Json::Str(id.into())),
    ])
    .to_line()
}

/// The `{"type":"shutdown-ack"}` line, written after every queued and
/// in-flight run has drained; `drained` counts the runs completed between
/// the shutdown request and the ack.
pub fn shutdown_ack_line(drained: u64) -> String {
    Json::Obj(vec![
        ("type".into(), Json::Str("shutdown-ack".into())),
        ("drained".into(), Json::U64(drained)),
    ])
    .to_line()
}

/// The generated examples section of PROTOCOL.md: every request form and
/// every response type as real wire lines, produced by the same builders
/// the daemon uses. `hdpat-sim regen-protocol` splices this between the
/// GENERATED markers; `--check` (in CI) fails when the document has
/// drifted from the code.
pub fn protocol_examples() -> String {
    let mut s = String::new();
    let mut section = |title: &str, explain: &str, lines: &[String]| {
        s.push_str("### ");
        s.push_str(title);
        s.push_str("\n\n");
        s.push_str(explain);
        s.push_str("\n\n```json\n");
        for line in lines {
            // Every example must round-trip through the real parser/writer.
            let parsed = match Json::parse(line) {
                Ok(p) => p,
                Err(e) => unreachable!("example `{line}` does not parse: {e}"),
            };
            assert_eq!(parsed.to_line(), *line, "example is not canonical");
            s.push_str(line);
            s.push('\n');
        }
        s.push_str("```\n\n");
    };

    section(
        "submit → result",
        "Request one run; the result echoes the id, attributes its source \
         (`simulated`, `memory`, or `disk`), and carries the headline \
         scalars plus the full deterministic metrics serialization.",
        &[
            submit_line("q0001", BenchmarkId::Spmv, "hdpat", Scale::Unit, 42),
            Json::Obj(vec![
                ("type".into(), Json::Str("result".into())),
                ("id".into(), Json::Str("q0001".into())),
                ("source".into(), Json::Str("simulated".into())),
                (
                    "fingerprint".into(),
                    Json::Str(format!(
                        "{}|wafer=7x7cpu3,3|...|seed=42",
                        crate::experiments::FINGERPRINT_VERSION
                    )),
                ),
                ("total_cycles".into(), Json::U64(1260193)),
                ("ops_completed".into(), Json::U64(57344)),
                ("iommu_walks".into(), Json::U64(1597)),
                (
                    "metrics".into(),
                    Json::Str("total_cycles 1260193\n...".into()),
                ),
            ])
            .to_line(),
        ],
    );
    section(
        "submit with progress streaming",
        "With `\"progress\":true` the daemon emits `started` when the run \
         leaves the queue and `finished` when the simulation completes \
         (cache hits skip both). Progress events are written immediately — \
         they are the only lines exempt from per-client result ordering.",
        &[
            Json::Obj(vec![
                ("op".into(), Json::Str("submit".into())),
                ("id".into(), Json::Str("q0002".into())),
                ("benchmark".into(), Json::Str("PR".into())),
                ("policy".into(), Json::Str("naive".into())),
                ("scale".into(), Json::Str("unit".into())),
                ("priority".into(), Json::U64(7)),
                ("progress".into(), Json::Bool(true)),
            ])
            .to_line(),
            progress_line("q0002", "started"),
            progress_line("q0002", "finished"),
        ],
    );
    section(
        "status",
        "Queue and worker occupancy at the instant the request is handled: \
         total and per-client queue depth, in-flight runs (`running`, out \
         of `workers` pool threads), reorder-buffered results awaiting \
         in-order release, and daemon uptime.",
        &[
            Json::Obj(vec![("op".into(), Json::Str("status".into()))]).to_line(),
            status_line(&StatusReport {
                queued: 3,
                running: 2,
                completed: 17,
                clients: 2,
                queue_depth: vec![(1, 2), (2, 1)],
                workers: 4,
                reorder_buffered: 1,
                uptime_seconds: 86,
            }),
        ],
    );
    section(
        "cancel",
        "Cancels a still-queued submit. The confirmation is released in the \
         cancelled run's position of the client's result order; a run \
         already executing (or already answered, or never submitted) \
         reports `not-found`.",
        &[
            Json::Obj(vec![
                ("op".into(), Json::Str("cancel".into())),
                ("id".into(), Json::Str("q0003".into())),
            ])
            .to_line(),
            cancelled_line("q0003"),
            error_line(
                Some("q0004"),
                codes::NOT_FOUND,
                "id `q0004` is not queued here",
            ),
        ],
    );
    section(
        "cache-stats",
        "In-memory run-cache occupancy plus the persistent store's \
         counters and occupancy: `disk_resident_bytes` against \
         `disk_budget_bytes` (null when unbudgeted) shows `--cache-budget` \
         pressure. `disk` is `false` (and the disk members zero/null) when \
         the daemon runs without `--cache-dir`.",
        &[
            Json::Obj(vec![("op".into(), Json::Str("cache-stats".into()))]).to_line(),
            cache_stats_line(
                12,
                Some(DiskReport {
                    dir: std::path::Path::new("/var/cache/hdpat"),
                    entries: 70,
                    resident_bytes: 191_362,
                    budget: Some(1_048_576),
                    stats: crate::experiments::DiskCacheStats {
                        hits: 58,
                        misses: 12,
                        writes: 12,
                        evictions: 0,
                        discarded: 0,
                    },
                }),
            ),
        ],
    );
    section(
        "metrics",
        "The full operational snapshot: per-tier request-lifecycle latency \
         histograms (log-scaled microseconds, `[lower_bound, count]` \
         buckets), serving gauges, cache state, and engine drive counters. \
         The same snapshot backs `hdpat-sim serve --metrics-out`; \
         `selfprof` is null unless the daemon was built with `--features \
         selfprof`. At quiescence the tier counts sum to `submitted`.",
        &[
            Json::Obj(vec![("op".into(), Json::Str("metrics".into()))]).to_line(),
            example_metrics_line(),
        ],
    );
    section(
        "shutdown",
        "Stops intake, drains every queued and in-flight run (their results \
         are still delivered), then acknowledges and closes.",
        &[
            Json::Obj(vec![("op".into(), Json::Str("shutdown".into()))]).to_line(),
            shutdown_ack_line(5),
        ],
    );
    section(
        "errors",
        "Every failure is a one-line `error` response with a stable `code`; \
         `id` is null when the failing line carried none. The codes: \
         `bad-request`, `unknown-op`, `unknown-benchmark`, \
         `unknown-policy`, `unknown-scale`, `duplicate-id`, `not-found`, \
         `shutting-down`.",
        &[
            error_line(
                None,
                codes::BAD_REQUEST,
                "malformed JSON: expected `:` at byte 9",
            ),
            error_line(
                Some("q0005"),
                codes::UNKNOWN_POLICY,
                "unknown policy `hdapt`; see `hdpat-sim list`",
            ),
            error_line(
                Some("q0006"),
                codes::SHUTTING_DOWN,
                "daemon is draining; resubmit to the next instance",
            ),
        ],
    );
    s
}

/// A deterministic `metrics` reply for PROTOCOL.md, built through the real
/// snapshot path: 70 submits resolving to 58 disk hits and 12 simulations,
/// with plausible fixed latencies. Engine counters read the process-global
/// sink, which is untouched (all zero) in a `regen-protocol` invocation.
fn example_metrics_line() -> String {
    use crate::ops::{DiskGauges, GaugeSample, OpsRegistry, Tier};
    let reg = OpsRegistry::new();
    for _ in 0..70 {
        reg.record_submit();
    }
    for i in 0..58u64 {
        reg.record_outcome(Tier::Disk, 40 + i, 350, 390 + i);
    }
    for i in 0..12u64 {
        reg.record_outcome(
            Tier::Simulated,
            55,
            180_000 + 4_000 * i,
            180_055 + 4_000 * i,
        );
    }
    let gauges = GaugeSample {
        clients: 2,
        queued: 3,
        queue_depth_per_client: vec![(1, 2), (2, 1)],
        inflight: 2,
        workers: 4,
        workers_busy: 2,
        reorder_buffered: 1,
        uptime_seconds: 86,
        memory_entries: 12,
        disk: Some(DiskGauges {
            entries: 70,
            resident_bytes: 191_362,
            budget: Some(1_048_576),
            stats: crate::experiments::DiskCacheStats {
                hits: 58,
                misses: 12,
                writes: 12,
                evictions: 0,
                discarded: 0,
            },
        }),
    };
    reg.snapshot_json(&gauges).to_line()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_line_round_trips_through_the_parser() {
        let line = submit_line("q1", BenchmarkId::Spmv, "hdpat", Scale::Unit, 7);
        let Request::Submit(s) = Request::parse(&line).unwrap() else {
            unreachable!("submit line parsed as non-submit");
        };
        assert_eq!(s.id, "q1");
        assert_eq!(s.benchmark, BenchmarkId::Spmv);
        assert_eq!(s.policy, PolicyKind::hdpat());
        assert_eq!(s.scale, Scale::Unit);
        assert_eq!(s.seed, 7);
        assert_eq!(s.priority, 0);
        assert!(!s.progress);
        // The submit describes the same run the CLI would build.
        assert_eq!(
            s.run_config().fingerprint(),
            RunConfig::new(BenchmarkId::Spmv, Scale::Unit, PolicyKind::hdpat())
                .with_seed(7)
                .fingerprint()
        );
    }

    #[test]
    fn defaults_and_unknown_members_are_tolerated() {
        let Request::Submit(s) = Request::parse(
            r#"{"op":"submit","id":"a","benchmark":"relu","policy":"NAIVE","future_member":1}"#,
        )
        .unwrap() else {
            unreachable!("parsed as non-submit");
        };
        assert_eq!(s.scale, Scale::Bench);
        assert_eq!(s.seed, 42);
        assert_eq!(s.priority, 0);
        assert_eq!(s.policy, PolicyKind::Naive);
    }

    #[test]
    fn control_requests_parse() {
        assert!(matches!(
            Request::parse(r#"{"op":"status"}"#).unwrap(),
            Request::Status
        ));
        assert!(matches!(
            Request::parse(r#"{"op":"cache-stats"}"#).unwrap(),
            Request::CacheStats
        ));
        assert!(matches!(
            Request::parse(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        ));
        assert!(matches!(
            Request::parse(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
        match Request::parse(r#"{"op":"cancel","id":"x"}"#).unwrap() {
            Request::Cancel { id } => assert_eq!(id, "x"),
            other => unreachable!("parsed as {other:?}"),
        }
    }

    #[test]
    fn validation_failures_carry_stable_codes_and_ids() {
        let cases = [
            ("{not json", codes::BAD_REQUEST, None),
            ("[1,2]", codes::BAD_REQUEST, None),
            (r#"{"id":"q9"}"#, codes::BAD_REQUEST, Some("q9")),
            (
                r#"{"op":"frobnicate","id":"q9"}"#,
                codes::UNKNOWN_OP,
                Some("q9"),
            ),
            (
                r#"{"op":"submit","id":"q9","benchmark":"nope","policy":"naive"}"#,
                codes::UNKNOWN_BENCHMARK,
                Some("q9"),
            ),
            (
                r#"{"op":"submit","id":"q9","benchmark":"relu","policy":"nope"}"#,
                codes::UNKNOWN_POLICY,
                Some("q9"),
            ),
            (
                r#"{"op":"submit","id":"q9","benchmark":"relu","policy":"naive","scale":"tiny"}"#,
                codes::UNKNOWN_SCALE,
                Some("q9"),
            ),
            (
                r#"{"op":"submit","id":"q9","benchmark":"relu","policy":"naive","seed":-1}"#,
                codes::BAD_REQUEST,
                Some("q9"),
            ),
            (
                r#"{"op":"submit","benchmark":"relu","policy":"naive"}"#,
                codes::BAD_REQUEST,
                None,
            ),
            (r#"{"op":"cancel"}"#, codes::BAD_REQUEST, None),
        ];
        for (line, code, id) in cases {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, code, "`{line}`");
            assert_eq!(err.id.as_deref(), id, "`{line}`");
            // The rendered error is itself valid protocol JSON.
            let rendered = Json::parse(&err.to_line()).unwrap();
            assert_eq!(rendered.get("type").and_then(Json::as_str), Some("error"));
            assert_eq!(rendered.get("code").and_then(Json::as_str), Some(code));
        }
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let m = Metrics::new(1, 10_000);
        for line in [
            result_line("q1", Source::Disk, "hdpat-rc-v2|...", &m),
            progress_line("q1", "started"),
            error_line(None, codes::BAD_REQUEST, "x"),
            status_line(&StatusReport {
                queued: 1,
                running: 2,
                completed: 3,
                clients: 4,
                queue_depth: vec![(1, 1)],
                workers: 2,
                reorder_buffered: 0,
                uptime_seconds: 5,
            }),
            cache_stats_line(0, None),
            cancelled_line("q1"),
            shutdown_ack_line(0),
            example_metrics_line(),
        ] {
            assert!(!line.contains('\n'), "{line}");
            Json::parse(&line).unwrap();
        }
    }

    #[test]
    fn status_and_cache_stats_carry_ops_members() {
        let status = Json::parse(&status_line(&StatusReport {
            queued: 3,
            running: 2,
            completed: 17,
            clients: 2,
            queue_depth: vec![(1, 2), (2, 1)],
            workers: 4,
            reorder_buffered: 1,
            uptime_seconds: 9,
        }))
        .unwrap();
        assert_eq!(status.get("workers").and_then(Json::as_u64), Some(4));
        assert_eq!(status.get("uptime_seconds").and_then(Json::as_u64), Some(9));
        assert_eq!(
            status.get("reorder_buffered").and_then(Json::as_u64),
            Some(1)
        );
        match status.get("queue_depth") {
            Some(Json::Arr(rows)) => {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].get("client").and_then(Json::as_u64), Some(1));
                assert_eq!(rows[0].get("depth").and_then(Json::as_u64), Some(2));
            }
            other => unreachable!("queue_depth must be an array, got {other:?}"),
        }

        let cs = Json::parse(&cache_stats_line(
            1,
            Some(DiskReport {
                dir: std::path::Path::new("/tmp/c"),
                entries: 3,
                resident_bytes: 9000,
                budget: Some(10_000),
                stats: crate::experiments::DiskCacheStats {
                    hits: 1,
                    misses: 2,
                    writes: 2,
                    evictions: 4,
                    discarded: 0,
                },
            }),
        ))
        .unwrap();
        assert_eq!(
            cs.get("disk_resident_bytes").and_then(Json::as_u64),
            Some(9000)
        );
        assert_eq!(
            cs.get("disk_budget_bytes").and_then(Json::as_u64),
            Some(10_000)
        );
        assert_eq!(cs.get("disk_evictions").and_then(Json::as_u64), Some(4));
        // Without a disk store the occupancy members are zero/null.
        let bare = Json::parse(&cache_stats_line(0, None)).unwrap();
        assert_eq!(
            bare.get("disk_resident_bytes").and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(bare.get("disk_budget_bytes"), Some(&Json::Null));
    }

    #[test]
    fn result_line_carries_the_exact_deterministic_metrics() {
        let m = Metrics::new(1, 10_000);
        let line = result_line("q1", Source::Memory, "fp", &m);
        let v = Json::parse(&line).unwrap();
        assert_eq!(
            v.get("metrics").and_then(Json::as_str),
            Some(m.to_deterministic_string().as_str())
        );
        assert_eq!(v.get("source").and_then(Json::as_str), Some("memory"));
    }

    #[test]
    fn examples_build_and_mention_every_op_and_code() {
        let doc = protocol_examples();
        for op in [
            "submit",
            "status",
            "cancel",
            "cache-stats",
            "metrics",
            "shutdown",
        ] {
            assert!(doc.contains(&format!("\"op\":\"{op}\"")), "missing op {op}");
        }
        for code in [
            codes::BAD_REQUEST,
            codes::UNKNOWN_POLICY,
            codes::NOT_FOUND,
            codes::SHUTTING_DOWN,
        ] {
            assert!(doc.contains(code), "missing code {code}");
        }
    }
}
