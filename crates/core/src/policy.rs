//! Translation policies: HDPAT and every baseline of the evaluation.

use std::fmt;

/// Tunable parameters of the HDPAT mechanism family (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HdpatConfig {
    /// Number of concentric caching layers `C` (default 2 on a 7×7 wafer:
    /// one step inside the border, §IV-C).
    pub caching_layers: u32,
    /// Whether the per-layer 180° rotation is applied (§IV-E).
    pub rotation: bool,
    /// Whether the IOMMU redirection table is enabled (§IV-F).
    pub redirection: bool,
    /// Proactive-delivery degree: a walk of VPN N also fetches
    /// N+1 … N+(degree−1). 1 disables prefetching; the paper's default is 4
    /// and Fig 18 sweeps {1, 4, 8}.
    pub prefetch_degree: u32,
    /// PTE walk count required before the IOMMU pushes a copy to the
    /// auxiliary layers (selective push, §IV-F).
    pub push_threshold: u32,
    /// Whether a finishing walker completes identical pending PW-queue
    /// requests (queue revisit, §IV-F).
    pub queue_revisit: bool,
    /// Fig 19 ablation: replace the redirection table with a conventional
    /// TLB of equal area (512 entries + MSHRs) at the IOMMU.
    pub iommu_tlb_instead: bool,
}

impl HdpatConfig {
    /// The paper's full HDPAT configuration.
    pub fn paper_default() -> Self {
        Self {
            caching_layers: 2,
            rotation: true,
            redirection: true,
            prefetch_degree: 4,
            push_threshold: 2,
            queue_revisit: true,
            iommu_tlb_instead: false,
        }
    }

    /// Clustering + rotation peer caching only (the "cluster & rotation" bar
    /// of Fig 15).
    pub fn peer_caching_only() -> Self {
        Self {
            redirection: false,
            prefetch_degree: 1,
            queue_revisit: false,
            ..Self::paper_default()
        }
    }

    /// Peer caching + redirection table, no prefetch (Fig 15's "+redirection").
    pub fn with_redirection_only() -> Self {
        Self {
            prefetch_degree: 1,
            ..Self::paper_default()
        }
    }

    /// Peer caching + prefetch, no redirection (Fig 15's "+prefetching").
    pub fn with_prefetch_only() -> Self {
        Self {
            redirection: false,
            ..Self::paper_default()
        }
    }

    /// Fig 19 variant: full HDPAT but with an IOMMU TLB instead of the
    /// redirection table.
    pub fn with_iommu_tlb() -> Self {
        Self {
            iommu_tlb_instead: true,
            ..Self::paper_default()
        }
    }
}

impl Default for HdpatConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The translation policy governing how non-local translations are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// All non-local translations go straight to the central IOMMU (the
    /// paper's baseline).
    Naive,
    /// Lookup + opportunistic caching at every GPM on the XY route to the
    /// IOMMU (§IV-B).
    RouteCache {
        /// Number of concentric layers whose GPMs participate.
        caching_layers: u32,
    },
    /// One lookup per concentric layer at the nearest layer GPM, any layer
    /// GPM may cache any PTE (§IV-C, duplicated copies).
    Concentric {
        /// Number of caching layers `C`.
        caching_layers: u32,
    },
    /// Two symmetric GPM groups; probe the nearest in-group peer, then the
    /// IOMMU (the straightforward distributed baseline of §V-A).
    Distributed,
    /// Trans-FW-style remote forwarding: the walk is short-circuited to the
    /// GPM owning the page, whose GMMU serves it.
    TransFw,
    /// Valkyrie-style inter-TLB locality: probe the nearest neighbour GPM's
    /// L2 TLB before the IOMMU.
    Valkyrie,
    /// Barre-style PW-queue coalescing at the IOMMU (no distribution).
    Barre,
    /// The HDPAT mechanism family (clustered/rotated concentric caching,
    /// redirection, proactive delivery) with its ablation flags.
    Hdpat(HdpatConfig),
}

impl PolicyKind {
    /// The full HDPAT configuration of the headline results.
    pub fn hdpat() -> Self {
        PolicyKind::Hdpat(HdpatConfig::paper_default())
    }

    /// The named policy catalog shared by the CLI and the serve protocol:
    /// every selectable policy with its stable lowercase token. The tokens
    /// are part of the wire format (PROTOCOL.md) — never rename one, only
    /// add.
    pub fn catalog() -> Vec<(&'static str, PolicyKind)> {
        vec![
            ("naive", PolicyKind::Naive),
            ("route", PolicyKind::RouteCache { caching_layers: 2 }),
            ("concentric", PolicyKind::Concentric { caching_layers: 2 }),
            ("distributed", PolicyKind::Distributed),
            ("transfw", PolicyKind::TransFw),
            ("valkyrie", PolicyKind::Valkyrie),
            ("barre", PolicyKind::Barre),
            (
                "cluster",
                PolicyKind::Hdpat(HdpatConfig::peer_caching_only()),
            ),
            (
                "redir",
                PolicyKind::Hdpat(HdpatConfig::with_redirection_only()),
            ),
            (
                "prefetch",
                PolicyKind::Hdpat(HdpatConfig::with_prefetch_only()),
            ),
            (
                "hdpat-tlb",
                PolicyKind::Hdpat(HdpatConfig::with_iommu_tlb()),
            ),
            ("hdpat", PolicyKind::hdpat()),
        ]
    }

    /// Looks a policy up by its catalog token (ASCII case-insensitive).
    pub fn from_token(token: &str) -> Option<PolicyKind> {
        Self::catalog()
            .into_iter()
            .find(|(t, _)| t.eq_ignore_ascii_case(token))
            .map(|(_, p)| p)
    }

    /// Short display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Naive => "baseline",
            PolicyKind::RouteCache { .. } => "route-cache",
            PolicyKind::Concentric { .. } => "concentric",
            PolicyKind::Distributed => "distributed",
            PolicyKind::TransFw => "Trans-FW",
            PolicyKind::Valkyrie => "Valkyrie",
            PolicyKind::Barre => "Barre",
            PolicyKind::Hdpat(cfg) => {
                if cfg.iommu_tlb_instead {
                    "HDPAT(IOMMU-TLB)"
                } else if cfg.redirection && cfg.prefetch_degree > 1 {
                    "HDPAT"
                } else if cfg.redirection {
                    "HDPAT(+redir)"
                } else if cfg.prefetch_degree > 1 {
                    "HDPAT(+prefetch)"
                } else {
                    "cluster+rotation"
                }
            }
        }
    }

    /// Whether this policy sends any request to peer GPM caches.
    pub fn uses_peer_caching(&self) -> bool {
        !matches!(
            self,
            PolicyKind::Naive | PolicyKind::Barre | PolicyKind::TransFw
        )
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section4() {
        let cfg = HdpatConfig::paper_default();
        assert_eq!(cfg.caching_layers, 2);
        assert!(cfg.rotation);
        assert!(cfg.redirection);
        assert_eq!(cfg.prefetch_degree, 4);
        assert!(cfg.queue_revisit);
        assert!(!cfg.iommu_tlb_instead);
    }

    #[test]
    fn ablation_configs_differ_in_one_axis() {
        let full = HdpatConfig::paper_default();
        let pc = HdpatConfig::peer_caching_only();
        assert!(!pc.redirection && pc.prefetch_degree == 1);
        assert_eq!(pc.caching_layers, full.caching_layers);
        let redir = HdpatConfig::with_redirection_only();
        assert!(redir.redirection && redir.prefetch_degree == 1);
        let pf = HdpatConfig::with_prefetch_only();
        assert!(!pf.redirection && pf.prefetch_degree == 4);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            PolicyKind::Naive.name(),
            PolicyKind::RouteCache { caching_layers: 2 }.name(),
            PolicyKind::Concentric { caching_layers: 2 }.name(),
            PolicyKind::Distributed.name(),
            PolicyKind::TransFw.name(),
            PolicyKind::Valkyrie.name(),
            PolicyKind::Barre.name(),
            PolicyKind::hdpat().name(),
            PolicyKind::Hdpat(HdpatConfig::peer_caching_only()).name(),
            PolicyKind::Hdpat(HdpatConfig::with_iommu_tlb()).name(),
        ];
        let mut sorted = names.to_vec();
        sorted.sort();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(sorted.len(), before);
    }

    #[test]
    fn catalog_tokens_are_distinct_and_resolvable() {
        let catalog = PolicyKind::catalog();
        let mut tokens: Vec<&str> = catalog.iter().map(|(t, _)| *t).collect();
        let before = tokens.len();
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), before, "duplicate catalog token");
        for (token, policy) in &catalog {
            assert_eq!(PolicyKind::from_token(token), Some(*policy));
            assert_eq!(
                PolicyKind::from_token(&token.to_ascii_uppercase()),
                Some(*policy)
            );
        }
        assert_eq!(PolicyKind::from_token("no-such-policy"), None);
    }

    #[test]
    fn peer_caching_flag() {
        assert!(!PolicyKind::Naive.uses_peer_caching());
        assert!(!PolicyKind::Barre.uses_peer_caching());
        assert!(PolicyKind::hdpat().uses_peer_caching());
        assert!(PolicyKind::Distributed.uses_peer_caching());
    }
}
