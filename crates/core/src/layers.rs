//! Concentric-layer geometry: clustering (Eq 1–2), rotation, and the peer
//! topologies of the baseline policies.

use wsg_gpu::WaferLayout;
use wsg_noc::xy_route;
use wsg_xlat::Vpn;

/// Number of quadrant clusters per caching layer (`N_c` in Eq 1). The paper
/// fixes this at 4 to keep every caching layer within one hop of the next
/// inner layer.
pub const CLUSTERS: u64 = 4;

/// Precomputed concentric-layer structure for one wafer (§IV-C/D/E).
///
/// Layers are indexed 1 (innermost GPM ring around the CPU) through `C` (the
/// outermost caching ring). For each layer, GPMs are enumerated clockwise;
/// with rotation enabled, each successive layer's enumeration starts 180°
/// around the ring, so every requester quadrant has a nearby caching GPM in
/// at least one layer.
///
/// # Example
///
/// ```
/// use hdpat::layers::ConcentricMap;
/// use wsg_gpu::WaferLayout;
/// use wsg_xlat::Vpn;
///
/// let layout = WaferLayout::paper_7x7();
/// let map = ConcentricMap::new(&layout, 2, true);
/// assert_eq!(map.caching_layers(), 2);
/// let aux = map.aux_gpm(Vpn(12345), 1);
/// assert_eq!(layout.layer_of(aux), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ConcentricMap {
    /// `rings[l - 1]` holds the (rotated) clockwise GPM enumeration of layer `l`.
    rings: Vec<Vec<u32>>,
    rotation: bool,
}

impl ConcentricMap {
    /// Builds the layer map for `layout` with `c` caching layers.
    ///
    /// # Panics
    ///
    /// Panics if `c` is zero or exceeds the wafer's outermost ring (the
    /// paper requires leaving at least the border ring as pure requesters
    /// only when `c < max_layer`; equal is allowed for small wafers).
    pub fn new(layout: &WaferLayout, c: u32, rotation: bool) -> Self {
        assert!(c >= 1, "need at least one caching layer");
        assert!(
            c <= layout.max_layer(),
            "cannot have more caching layers than rings"
        );
        let rings = (1..=c)
            .map(|l| {
                let mut ring = layout.ring_gpms(l);
                if rotation && !ring.is_empty() {
                    // 180° start-point rotation for alternating layers
                    // (Fig 11b): layer 1 unrotated, layer 2 starts opposite.
                    let offset = if l % 2 == 0 { ring.len() / 2 } else { 0 };
                    ring.rotate_left(offset);
                }
                ring
            })
            .collect();
        Self { rings, rotation }
    }

    /// Number of caching layers (`C`).
    pub fn caching_layers(&self) -> u32 {
        self.rings.len() as u32
    }

    /// Whether rotation is enabled.
    pub fn rotation(&self) -> bool {
        self.rotation
    }

    /// The GPMs of caching layer `layer` (1-based) in enumeration order.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is 0 or beyond the caching layers.
    pub fn ring(&self, layer: u32) -> &[u32] {
        &self.rings[(layer - 1) as usize]
    }

    /// The auxiliary GPM responsible for caching `vpn` in `layer`
    /// (Eq 1–2): quadrant cluster `VPN mod N_c`, then GPM
    /// `(VPN / N_c) mod N_g` within the cluster's arc.
    pub fn aux_gpm(&self, vpn: Vpn, layer: u32) -> u32 {
        let ring = self.ring(layer);
        let n = ring.len() as u64;
        debug_assert!(n > 0, "empty caching ring");
        let cluster = vpn.0 % CLUSTERS;
        // Quadrant arcs: contiguous quarters of the (rotated) enumeration.
        let arc_len = n.div_ceil(CLUSTERS).max(1);
        let arc_start = (cluster * arc_len).min(n - 1);
        let arc_end = ((cluster + 1) * arc_len).min(n);
        let arc = &ring[arc_start as usize..arc_end.max(arc_start + 1) as usize];
        let local = (vpn.0 / CLUSTERS) % arc.len() as u64;
        arc[local as usize]
    }

    /// The designated auxiliary GPM in every caching layer, innermost first.
    pub fn aux_gpms(&self, vpn: Vpn) -> Vec<u32> {
        (1..=self.caching_layers())
            .map(|l| self.aux_gpm(vpn, l))
            .collect()
    }
}

/// The serial probe chain of the *concentric caching* baseline (§IV-C, no
/// clustering): from the requester's position, the nearest GPM in each
/// caching layer at or below its own ring, outermost first.
pub fn concentric_chain(layout: &WaferLayout, c: u32, requester: u32) -> Vec<u32> {
    let r = layout.layer_of(requester);
    let start_layer = r.min(c).max(1);
    let mut chain = Vec::new();
    for layer in (1..=start_layer).rev() {
        let candidates = layout.ring_gpms(layer);
        let nearest = candidates
            .into_iter()
            .filter(|&g| g != requester)
            .min_by_key(|&g| (layout.coord_of(requester).manhattan(layout.coord_of(g)), g));
        if let Some(g) = nearest {
            chain.push(g);
        }
    }
    chain
}

/// The XY route from `requester` to the CPU as GPM ids (CPU tile excluded) —
/// the probe path of the *route-based caching* baseline (§IV-B). The
/// requester itself is not included.
pub fn route_chain(layout: &WaferLayout, requester: u32) -> Vec<u32> {
    let from = layout.coord_of(requester);
    xy_route(from, layout.cpu())
        .into_iter()
        .skip(1)
        .filter_map(|c| layout.id_of(c))
        .collect()
}

/// The two symmetric GPM groups of the *distributed caching* baseline
/// (§V-A): GPMs left of the CPU column vs. right of it, with the CPU column
/// split by row. Returns each GPM's group (0 or 1).
pub fn distributed_group(layout: &WaferLayout, gpm: u32) -> u8 {
    let c = layout.coord_of(gpm);
    let cpu = layout.cpu();
    if c.x < cpu.x {
        0
    } else if c.x > cpu.x {
        1
    } else if c.y < cpu.y {
        0
    } else {
        1
    }
}

/// The nearest same-group peer of `gpm` under [`distributed_group`] (by hop
/// count, ties broken by id). Returns `None` if the group has no other
/// member.
pub fn nearest_group_peer(layout: &WaferLayout, gpm: u32) -> Option<u32> {
    let group = distributed_group(layout, gpm);
    let from = layout.coord_of(gpm);
    layout
        .iter()
        .filter(|&(id, _)| id != gpm && distributed_group(layout, id) == group)
        .min_by_key(|&(id, c)| (from.manhattan(c), id))
        .map(|(id, _)| id)
}

/// The nearest neighbouring GPM (any direction) — the probe target of the
/// Valkyrie baseline's inter-TLB lookup.
pub fn nearest_neighbor(layout: &WaferLayout, gpm: u32) -> Option<u32> {
    let from = layout.coord_of(gpm);
    layout
        .iter()
        .filter(|&(id, _)| id != gpm)
        .min_by_key(|&(id, c)| (from.manhattan(c), id))
        .map(|(id, _)| id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(c: u32, rot: bool) -> (WaferLayout, ConcentricMap) {
        let layout = WaferLayout::paper_7x7();
        let m = ConcentricMap::new(&layout, c, rot);
        (layout, m)
    }

    #[test]
    #[should_panic(expected = "at least one caching layer")]
    fn zero_layers_rejected() {
        let layout = WaferLayout::paper_7x7();
        ConcentricMap::new(&layout, 0, true);
    }

    #[test]
    #[should_panic(expected = "more caching layers than rings")]
    fn too_many_layers_rejected() {
        let layout = WaferLayout::paper_7x7();
        ConcentricMap::new(&layout, 4, true);
    }

    #[test]
    fn aux_gpm_is_in_its_layer() {
        let (layout, m) = map(2, true);
        for vpn in 0..500u64 {
            for layer in 1..=2 {
                let aux = m.aux_gpm(Vpn(vpn), layer);
                assert_eq!(layout.layer_of(aux), layer);
            }
        }
    }

    #[test]
    fn exactly_one_copy_per_layer() {
        // Eq 1-2 give a single deterministic GPM per (vpn, layer).
        let (_, m) = map(2, true);
        for vpn in 0..100u64 {
            let a = m.aux_gpm(Vpn(vpn), 2);
            let b = m.aux_gpm(Vpn(vpn), 2);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn vpns_spread_over_the_whole_ring() {
        let (_, m) = map(2, true);
        let mut seen: std::collections::HashSet<u32> = Default::default();
        for vpn in 0..1000u64 {
            seen.insert(m.aux_gpm(Vpn(vpn), 2));
        }
        // Ring 2 has 16 GPMs; the modulo map should reach all of them.
        assert_eq!(seen.len(), 16, "all ring-2 GPMs used: {seen:?}");
    }

    #[test]
    fn rotation_changes_layer2_assignment() {
        let (_, with) = map(2, true);
        let (_, without) = map(2, false);
        let moved = (0..100u64)
            .filter(|&v| with.aux_gpm(Vpn(v), 2) != without.aux_gpm(Vpn(v), 2))
            .count();
        assert!(moved > 50, "rotation must shift most assignments: {moved}");
        // Layer 1 is unrotated in both.
        for v in 0..100u64 {
            assert_eq!(with.aux_gpm(Vpn(v), 1), without.aux_gpm(Vpn(v), 1));
        }
    }

    #[test]
    fn rotation_brings_caching_close_to_all_quadrants() {
        // With rotation, for any requester the nearest designated aux GPM
        // over both layers is within a small hop count.
        let (layout, m) = map(2, true);
        for (req, rc) in layout.iter() {
            if layout.layer_of(req) < 3 {
                continue; // check the worst case: border GPMs
            }
            let mut best = u32::MAX;
            for vpn in 0..64u64 {
                for aux in m.aux_gpms(Vpn(vpn)) {
                    best = best.min(rc.manhattan(layout.coord_of(aux)));
                }
            }
            assert!(best <= 2, "requester {req} has no nearby caching GPM");
        }
    }

    #[test]
    fn concentric_chain_descends_layers() {
        let layout = WaferLayout::paper_7x7();
        // A corner GPM (ring 3) probes ring 2 then ring 1.
        let corner = layout.id_of(wsg_noc::Coord::new(0, 0)).unwrap();
        let chain = concentric_chain(&layout, 2, corner);
        assert_eq!(chain.len(), 2);
        assert_eq!(layout.layer_of(chain[0]), 2);
        assert_eq!(layout.layer_of(chain[1]), 1);
    }

    #[test]
    fn concentric_chain_for_inner_requester_starts_at_own_layer() {
        let layout = WaferLayout::paper_7x7();
        let inner = layout.ring_gpms(1)[0];
        let chain = concentric_chain(&layout, 2, inner);
        assert_eq!(chain.len(), 1);
        assert_eq!(layout.layer_of(chain[0]), 1);
        assert_ne!(chain[0], inner);
    }

    #[test]
    fn route_chain_follows_xy_to_cpu() {
        let layout = WaferLayout::paper_7x7();
        let corner = layout.id_of(wsg_noc::Coord::new(0, 0)).unwrap();
        let chain = route_chain(&layout, corner);
        // 6 hops to the CPU, last tile is the CPU itself (excluded).
        assert_eq!(chain.len(), 5);
        assert!(!chain.contains(&corner));
    }

    #[test]
    fn distributed_groups_are_balanced() {
        let layout = WaferLayout::paper_7x7();
        let g0 = layout
            .iter()
            .filter(|&(id, _)| distributed_group(&layout, id) == 0)
            .count();
        assert_eq!(g0, 24, "7x7 wafer splits 24/24");
    }

    #[test]
    fn nearest_group_peer_is_same_group_and_near() {
        let layout = WaferLayout::paper_7x7();
        for (id, c) in layout.iter() {
            let peer = nearest_group_peer(&layout, id).unwrap();
            assert_ne!(peer, id);
            assert_eq!(
                distributed_group(&layout, peer),
                distributed_group(&layout, id)
            );
            assert!(c.manhattan(layout.coord_of(peer)) <= 2);
        }
    }

    #[test]
    fn nearest_neighbor_is_adjacent() {
        let layout = WaferLayout::paper_7x7();
        for (id, c) in layout.iter() {
            let n = nearest_neighbor(&layout, id).unwrap();
            assert!(c.manhattan(layout.coord_of(n)) <= 2);
        }
    }

    #[test]
    fn works_on_rectangular_wafer() {
        let layout = WaferLayout::paper_7x12();
        let m = ConcentricMap::new(&layout, 2, true);
        for vpn in 0..200u64 {
            for layer in 1..=2 {
                assert_eq!(layout.layer_of(m.aux_gpm(Vpn(vpn), layer)), layer);
            }
        }
    }
}
