//! Area and power estimate for the HDPAT hardware additions (§V-F).
//!
//! The paper synthesizes the 1024-entry redirection table with OpenRoad at a
//! 7 nm node and reports 0.034 mm² / 0.16 W, i.e. 0.02 % of an AMD Ryzen 9
//! 7900X die (141.2 mm²) and 0.09 % of its 170 W TDP. We reproduce the same
//! *ratios* with an analytical SRAM-bit model calibrated to the paper's
//! synthesized numbers: the entry layout determines the bit count, and
//! per-bit area/power constants (derived from the paper's own data point)
//! scale it.

/// Reference CPU die for the overhead ratios: AMD Ryzen 9 7900X.
pub const RYZEN9_AREA_MM2: f64 = 141.2;
/// Reference CPU TDP in watts.
pub const RYZEN9_TDP_W: f64 = 170.0;

/// Per-bit SRAM area at 7 nm implied by the paper's synthesis
/// (0.034 mm² for the 1024-entry table below).
const MM2_PER_BIT: f64 = 0.034 / (1024.0 * 58.0);
/// Per-bit power implied by the paper's synthesis (0.16 W for the table).
const W_PER_BIT: f64 = 0.16 / (1024.0 * 58.0);

/// An SRAM structure's estimated size and power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaEstimate {
    /// Total storage bits.
    pub bits: u64,
    /// Estimated area in mm² at 7 nm.
    pub area_mm2: f64,
    /// Estimated power in watts.
    pub power_w: f64,
}

impl AreaEstimate {
    /// Estimate for a table of `entries` × `bits_per_entry`.
    pub fn table(entries: u64, bits_per_entry: u64) -> Self {
        let bits = entries * bits_per_entry;
        Self {
            bits,
            area_mm2: bits as f64 * MM2_PER_BIT,
            power_w: bits as f64 * W_PER_BIT,
        }
    }

    /// Area as a fraction of the reference Ryzen 9 die.
    pub fn area_overhead(&self) -> f64 {
        self.area_mm2 / RYZEN9_AREA_MM2
    }

    /// Power as a fraction of the reference Ryzen 9 TDP.
    pub fn power_overhead(&self) -> f64 {
        self.power_w / RYZEN9_TDP_W
    }
}

/// Bits per redirection-table entry: a process id (16), a VPN tag (36) and a
/// GPM id (6), no physical address — the space advantage over a TLB
/// (§IV-F / Fig 19 discussion).
pub const REDIRECTION_ENTRY_BITS: u64 = 58;

/// Bits per conventional IOMMU-TLB entry: the same PID + VPN plus a PFN
/// (36) and permission/metadata bits (~24) — roughly twice the redirection
/// entry, which is why the same area holds only half the entries.
pub const TLB_ENTRY_BITS: u64 = 116;

/// The paper's 1024-entry redirection table.
pub fn redirection_table() -> AreaEstimate {
    AreaEstimate::table(1024, REDIRECTION_ENTRY_BITS)
}

/// The same-area conventional TLB alternative (512 entries, Fig 19).
pub fn equivalent_tlb() -> AreaEstimate {
    AreaEstimate::table(512, TLB_ENTRY_BITS)
}

/// A per-GPM cuckoo filter of `capacity` slots with 16-bit fingerprints.
pub fn cuckoo_filter(capacity: u64) -> AreaEstimate {
    AreaEstimate::table(capacity, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redirection_table_matches_paper_synthesis() {
        let e = redirection_table();
        assert!((e.area_mm2 - 0.034).abs() < 1e-9, "area {}", e.area_mm2);
        assert!((e.power_w - 0.16).abs() < 1e-9, "power {}", e.power_w);
    }

    #[test]
    fn overheads_match_paper_ratios() {
        let e = redirection_table();
        // Paper: 0.02 % area, 0.09 % energy overhead.
        assert!((e.area_overhead() * 100.0 - 0.024).abs() < 0.01);
        assert!((e.power_overhead() * 100.0 - 0.094).abs() < 0.01);
    }

    #[test]
    fn redirection_is_about_twice_as_dense_as_tlb() {
        // Same area must hold ~2x the entries.
        let rt = redirection_table();
        let tlb = equivalent_tlb();
        let ratio = rt.area_mm2 / tlb.area_mm2;
        assert!((ratio - 1.0).abs() < 0.05, "same area by construction");
        assert_eq!(TLB_ENTRY_BITS, 2 * REDIRECTION_ENTRY_BITS);
    }

    #[test]
    fn cuckoo_filter_is_small() {
        let e = cuckoo_filter(64 * 1024);
        assert!(e.area_overhead() < 0.01, "filter under 1% of a CPU die");
    }

    #[test]
    fn table_scales_linearly() {
        let a = AreaEstimate::table(100, 10);
        let b = AreaEstimate::table(200, 10);
        assert!((b.area_mm2 - 2.0 * a.area_mm2).abs() < 1e-12);
        assert_eq!(b.bits, 2000);
    }
}
