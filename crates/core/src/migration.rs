//! Page migration — the paper's named future-work extension.
//!
//! The paper excludes GPU-to-GPU page migration from its scope ("due to the
//! absence of mature page migration mechanisms tailored for wafer-scale GPU
//! systems") and names "intelligent page migration" as a pathway opened by
//! HDPAT. This module provides a simple, well-defined instance of that
//! pathway so it can be studied alongside HDPAT:
//!
//! **Streak-based migration**: when one remote GPM performs
//! `streak_threshold` consecutive data accesses to a page (uninterrupted by
//! any other GPM), the page migrates to it. A migration costs a bulk data
//! transfer of the page across the mesh plus a wafer-wide TLB shootdown
//! broadcast — the very cost the paper cites for excluding migration, now
//! explicitly charged.
//!
//! Migration is orthogonal to the translation policy: it composes with the
//! baseline and with HDPAT (after a migration, the page's translations
//! become local to its consumer, shrinking remote translation traffic at
//! the cost of the shootdown).

use wsg_sim::Cycle;

/// Configuration of the streak-based page-migration extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationConfig {
    /// Consecutive remote accesses by a single GPM that trigger migration.
    pub streak_threshold: u32,
    /// Extra fixed latency charged at the destination for installing the
    /// page (page-table update, validation) on top of the mesh transfer.
    pub install_latency: Cycle,
}

impl MigrationConfig {
    /// A conservative default: migrate after 16 consecutive sole-consumer
    /// accesses, 200-cycle install.
    pub fn default_streak() -> Self {
        Self {
            streak_threshold: 16,
            install_latency: 200,
        }
    }
}

impl Default for MigrationConfig {
    fn default() -> Self {
        Self::default_streak()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_values() {
        let c = MigrationConfig::default();
        assert_eq!(c.streak_threshold, 16);
        assert_eq!(c.install_latency, 200);
        assert_eq!(c, MigrationConfig::default_streak());
    }
}
