#![warn(missing_docs)]

//! HDPAT: Hierarchical Distributed Page Address Translation for wafer-scale
//! GPUs — the core library of this reproduction.
//!
//! Wafer-scale GPUs connect dozens of GPU Processing Modules (GPMs) over an
//! interposer mesh with a single CPU-hosted IOMMU at the centre. At that
//! scale the centralized IOMMU becomes the dominant bottleneck for
//! virtual-to-physical address translation (observation O1 of the paper).
//! HDPAT distributes the translation workload over the wafer with three
//! complementary mechanisms:
//!
//! 1. **Concentric caching with clustering and rotation** ([`layers`],
//!    §IV-C/D/E) — GPMs of the inner rings serve as translation caches;
//!    each PTE has exactly one designated holder per ring, found with two
//!    modulo operations, and alternating rings rotate their enumeration so
//!    every requester has a nearby holder.
//! 2. **Translation redirection** ([`policy`], §IV-F) — a 1024-entry LRU
//!    table at the IOMMU redirects requests for recently walked PTEs to the
//!    GPM now holding them, skipping redundant walks; a finishing walker
//!    also completes identical requests still in the PW-queue.
//! 3. **Proactive page-entry delivery** (§IV-G) — each walk of VPN N also
//!    fetches N+1…N+3 and pushes them to the concentric holders.
//!
//! The crate contains the full-system discrete-event simulator
//! ([`sim::Simulation`]), every baseline of the evaluation
//! ([`policy::PolicyKind`]), the metrics that back each figure
//! ([`metrics::Metrics`]), a one-call experiment runner ([`experiments`]),
//! and the area/power model of §V-F ([`area`]).
//!
//! # Quickstart
//!
//! ```
//! use hdpat::experiments::{run, RunConfig};
//! use hdpat::policy::PolicyKind;
//! use wsg_workloads::{BenchmarkId, Scale};
//!
//! let baseline = run(&RunConfig::new(BenchmarkId::Spmv, Scale::Unit, PolicyKind::Naive));
//! let hdpat = run(&RunConfig::new(BenchmarkId::Spmv, Scale::Unit, PolicyKind::hdpat()));
//! let speedup = hdpat.speedup_vs(&baseline);
//! assert!(speedup > 0.5, "sane result: {speedup}");
//! ```

pub mod area;
pub mod experiments;
pub mod layers;
pub mod metrics;
pub mod migration;
pub mod ops;
pub mod policy;
pub mod serve;
pub mod sim;

pub use experiments::{run, RunConfig};
pub use metrics::{Metrics, Resolution};
pub use migration::MigrationConfig;
pub use policy::{HdpatConfig, PolicyKind};
pub use sim::Simulation;
