//! System configuration: every Table I parameter plus the GPU presets of
//! Fig 21.

use wsg_mem::{CacheConfig, HbmConfig};
use wsg_noc::LinkParams;
use wsg_sim::Cycle;
use wsg_xlat::{PageSize, TlbConfig};

use crate::wafer::WaferLayout;

/// Per-GPM hardware configuration (Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpmConfig {
    /// Compute units per GPM (32 at 1 GHz in the baseline).
    pub cus: u32,
    /// Memory operations a CU keeps in flight concurrently.
    pub max_outstanding_per_cu: usize,
    /// L1 TLB (per CU group): 1-set, 32-way, 4-cycle, 4-MSHR.
    pub l1_tlb: TlbConfig,
    /// Shared L2 TLB: 64-set, 32-way, 32-cycle, 32-MSHR.
    pub l2_tlb: TlbConfig,
    /// GMMU cache (the last-level TLB): 64-set, 16-way.
    pub gmmu_cache: TlbConfig,
    /// Capacity of the cuckoo filter guarding the local translation path.
    pub cuckoo_capacity: usize,
    /// Shared page-table walkers in the GMMU (8).
    pub gmmu_walkers: usize,
    /// GMMU PW-queue capacity.
    pub gmmu_queue: usize,
    /// Full page-walk latency: 100 cycles × 5 levels = 500 cycles.
    pub walk_latency: Cycle,
    /// Per-CU L1 vector cache (16 KB, 4-way).
    pub l1_cache: CacheConfig,
    /// Shared L2 cache (4 MB, 16-way).
    pub l2_cache: CacheConfig,
    /// HBM stack attached to this GPM.
    pub hbm: HbmConfig,
}

impl GpmConfig {
    /// The MI100-derived baseline of Table I.
    pub fn paper_baseline() -> Self {
        Self {
            cus: 32,
            max_outstanding_per_cu: 8,
            l1_tlb: TlbConfig::paper_l1(),
            l2_tlb: TlbConfig::paper_l2(),
            gmmu_cache: TlbConfig::paper_gmmu_cache(),
            cuckoo_capacity: 64 * 1024,
            gmmu_walkers: 8,
            gmmu_queue: 32,
            walk_latency: 500,
            l1_cache: CacheConfig {
                sets: 64, // 16 KB / (4 ways × 64 B)
                ways: 4,
                line_bytes: 64,
                hit_latency: 4,
            },
            l2_cache: CacheConfig {
                sets: 4096, // 4 MB / (16 ways × 64 B)
                ways: 16,
                line_bytes: 64,
                hit_latency: 32,
            },
            hbm: HbmConfig::paper_baseline(),
        }
    }
}

impl Default for GpmConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

/// IOMMU configuration (Table I): the host MMU at the CPU tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IommuConfig {
    /// Shared page-table walkers (16).
    pub walkers: usize,
    /// Full walk latency: 100 × 5 levels = 500 cycles.
    pub walk_latency: Cycle,
    /// Internal PW-queue capacity feeding the walkers.
    pub pw_queue: usize,
    /// Input (pre-queue) buffer capacity; 4096 in the Fig 4 experiment.
    pub pre_queue: usize,
    /// Redirection-table entries (1024, Table I) — used only by policies
    /// that enable redirection.
    pub redirection_entries: usize,
}

impl IommuConfig {
    /// Table I values.
    pub fn paper_baseline() -> Self {
        Self {
            walkers: 16,
            walk_latency: 500,
            pw_queue: 64,
            pre_queue: 4096,
            redirection_entries: 1024,
        }
    }

    /// The idealized low-latency IOMMU of Fig 2: 1-cycle walks, 16 walkers.
    pub fn ideal_latency() -> Self {
        Self {
            walk_latency: 1,
            ..Self::paper_baseline()
        }
    }

    /// The idealized high-parallelism IOMMU of Fig 2: 500-cycle walks,
    /// 4096 walkers.
    pub fn ideal_parallelism() -> Self {
        Self {
            walkers: 4096,
            pw_queue: 8192,
            ..Self::paper_baseline()
        }
    }
}

impl Default for IommuConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

/// Commercial GPU configurations evaluated in Fig 21. Each GPM models one
/// quarter of the named GPU's memory storage system (the paper's scaling
/// rule), with translation hardware held constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuPreset {
    /// AMD MI100 (the Table I baseline).
    Mi100,
    /// AMD MI200-class (MI250X): more CUs, HBM2e.
    Mi200,
    /// AMD MI300-class: more CUs, larger LLC slice, HBM3.
    Mi300,
    /// NVIDIA H100: 256 KB L1 per CU, 50 MB L2, HBM2e.
    H100,
    /// NVIDIA H200: H100 compute with HBM3e bandwidth.
    H200,
}

impl GpuPreset {
    /// All presets in Fig 21 order.
    pub fn all() -> [GpuPreset; 5] {
        [
            GpuPreset::Mi100,
            GpuPreset::Mi200,
            GpuPreset::Mi300,
            GpuPreset::H100,
            GpuPreset::H200,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GpuPreset::Mi100 => "MI100",
            GpuPreset::Mi200 => "MI200",
            GpuPreset::Mi300 => "MI300",
            GpuPreset::H100 => "H100",
            GpuPreset::H200 => "H200",
        }
    }

    /// The per-GPM configuration for this preset.
    pub fn gpm_config(self) -> GpmConfig {
        let base = GpmConfig::paper_baseline();
        match self {
            GpuPreset::Mi100 => base,
            GpuPreset::Mi200 => GpmConfig {
                cus: 56, // 220 CUs / 4
                l2_cache: CacheConfig {
                    sets: 4096,
                    ways: 16,
                    line_bytes: 64,
                    hit_latency: 32,
                }, // 4 MB slice
                hbm: HbmConfig {
                    bytes_per_cycle: 3200.0, // 3.2 TB/s
                    ..HbmConfig::paper_baseline()
                },
                ..base
            },
            GpuPreset::Mi300 => GpmConfig {
                cus: 76, // 304 CUs / 4
                l2_cache: CacheConfig {
                    sets: 16384, // 16 MB slice
                    ways: 16,
                    line_bytes: 64,
                    hit_latency: 40,
                },
                hbm: HbmConfig {
                    bytes_per_cycle: 5300.0, // 5.3 TB/s HBM3
                    ..HbmConfig::paper_baseline()
                },
                ..base
            },
            GpuPreset::H100 => GpmConfig {
                cus: 33, // 132 SMs / 4
                l1_cache: CacheConfig {
                    sets: 1024, // 256 KB per CU
                    ways: 4,
                    line_bytes: 64,
                    hit_latency: 4,
                },
                l2_cache: CacheConfig {
                    sets: 8192, // 12.5 MB slice rounded to 8 MB (power of two sets)
                    ways: 16,
                    line_bytes: 64,
                    hit_latency: 40,
                },
                hbm: HbmConfig {
                    bytes_per_cycle: 2000.0, // 2.0 TB/s HBM2e
                    ..HbmConfig::paper_baseline()
                },
                ..base
            },
            GpuPreset::H200 => GpmConfig {
                cus: 33,
                l1_cache: CacheConfig {
                    sets: 1024,
                    ways: 4,
                    line_bytes: 64,
                    hit_latency: 4,
                },
                l2_cache: CacheConfig {
                    sets: 8192,
                    ways: 16,
                    line_bytes: 64,
                    hit_latency: 40,
                },
                hbm: HbmConfig {
                    bytes_per_cycle: 4800.0, // 4.8 TB/s HBM3e
                    ..HbmConfig::paper_baseline()
                },
                ..base
            },
        }
    }
}

/// The full wafer-scale system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Tile arrangement.
    pub layout: WaferLayout,
    /// Per-GPM hardware.
    pub gpm: GpmConfig,
    /// Central IOMMU.
    pub iommu: IommuConfig,
    /// System page size (4 KB baseline; Fig 20 sweeps it).
    pub page_size: PageSize,
    /// Mesh link parameters.
    pub link: LinkParams,
    /// Translation request packet size in bytes.
    pub xlat_req_bytes: u64,
    /// Translation response / PTE push packet size in bytes.
    pub xlat_resp_bytes: u64,
    /// Data packet (cacheline) size in bytes.
    pub data_bytes: u64,
}

impl SystemConfig {
    /// The paper's baseline: 7×7 wafer, MI100-derived GPMs, 4 KB pages.
    pub fn paper_baseline() -> Self {
        Self {
            layout: WaferLayout::paper_7x7(),
            gpm: GpmConfig::paper_baseline(),
            iommu: IommuConfig::paper_baseline(),
            page_size: PageSize::Size4K,
            link: LinkParams::paper_baseline(),
            xlat_req_bytes: 32,
            xlat_resp_bytes: 32,
            data_bytes: 64,
        }
    }

    /// Baseline with a different GPU preset (Fig 21).
    pub fn with_preset(preset: GpuPreset) -> Self {
        Self {
            gpm: preset.gpm_config(),
            ..Self::paper_baseline()
        }
    }

    /// Number of GPMs on the wafer.
    pub fn gpm_count(&self) -> usize {
        self.layout.gpm_count()
    }

    /// Total CU count across the wafer.
    pub fn total_cus(&self) -> u32 {
        self.gpm.cus * self.gpm_count() as u32
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let cfg = SystemConfig::paper_baseline();
        assert_eq!(cfg.gpm.cus, 32);
        assert_eq!(cfg.gpm.gmmu_walkers, 8);
        assert_eq!(cfg.gpm.walk_latency, 500);
        assert_eq!(cfg.iommu.walkers, 16);
        assert_eq!(cfg.iommu.walk_latency, 500);
        assert_eq!(cfg.iommu.redirection_entries, 1024);
        assert_eq!(cfg.link.latency, 32);
        assert_eq!(cfg.page_size.bytes(), 4096);
        assert_eq!(cfg.total_cus(), 1536, "48 GPMs x 32 CUs");
    }

    #[test]
    fn baseline_l2_cache_is_4mb() {
        let cfg = GpmConfig::paper_baseline();
        assert_eq!(cfg.l2_cache.capacity_bytes(), 4 << 20);
        assert_eq!(cfg.l1_cache.capacity_bytes(), 16 << 10);
    }

    #[test]
    fn ideal_iommu_configs() {
        assert_eq!(IommuConfig::ideal_latency().walk_latency, 1);
        assert_eq!(IommuConfig::ideal_latency().walkers, 16);
        assert_eq!(IommuConfig::ideal_parallelism().walkers, 4096);
        assert_eq!(IommuConfig::ideal_parallelism().walk_latency, 500);
    }

    #[test]
    fn presets_are_distinct_and_ordered_by_bandwidth() {
        let bw = |p: GpuPreset| p.gpm_config().hbm.bytes_per_cycle;
        assert!(bw(GpuPreset::Mi100) < bw(GpuPreset::Mi200));
        assert!(bw(GpuPreset::Mi200) < bw(GpuPreset::Mi300));
        assert!(bw(GpuPreset::H100) < bw(GpuPreset::H200));
    }

    #[test]
    fn nvidia_presets_have_large_l1() {
        let h100 = GpuPreset::H100.gpm_config();
        assert_eq!(h100.l1_cache.capacity_bytes(), 256 << 10);
        let mi = GpuPreset::Mi100.gpm_config();
        assert!(h100.l1_cache.capacity_bytes() > mi.l1_cache.capacity_bytes());
    }

    #[test]
    fn all_presets_produce_valid_configs() {
        for p in GpuPreset::all() {
            let cfg = p.gpm_config();
            assert!(cfg.cus > 0, "{}", p.name());
            assert!(cfg.hbm.bytes_per_cycle > 0.0);
        }
    }
}
