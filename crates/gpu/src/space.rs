//! Virtual address space and page placement.

use wsg_xlat::{PageSize, Vpn};

/// One allocated buffer in the flat virtual address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Buffer {
    /// Human-readable name ("matrix_a", "edges", …).
    pub name: String,
    /// First VPN of the buffer.
    pub base_vpn: Vpn,
    /// Length in pages.
    pub pages: u64,
}

impl Buffer {
    /// First byte address of the buffer under `ps`.
    pub fn base_addr(&self, ps: PageSize) -> u64 {
        ps.base_of(self.base_vpn)
    }

    /// Byte length of the buffer under `ps`.
    pub fn len_bytes(&self, ps: PageSize) -> u64 {
        self.pages * ps.bytes()
    }

    /// Byte address at `offset` bytes into the buffer.
    pub fn addr(&self, ps: PageSize, offset: u64) -> u64 {
        debug_assert!(offset < self.len_bytes(ps), "offset beyond buffer");
        self.base_addr(ps) + offset
    }

    /// Whether `vpn` belongs to this buffer.
    pub fn contains(&self, vpn: Vpn) -> bool {
        vpn >= self.base_vpn && vpn.0 < self.base_vpn.0 + self.pages
    }
}

/// A flat virtual address space with block-partitioned page placement.
///
/// Following §II-A, every buffer's pages are distributed across the GPMs in
/// equal contiguous chunks: "a memory allocation request for 480 pages
/// results in pages 1–10 assigned to GPM 1, pages 11–20 to GPM 2, and so
/// forth". The home GPM of a page determines which HBM holds its data and
/// which local page table maps it.
///
/// # Example
///
/// ```
/// use wsg_gpu::AddressSpace;
/// use wsg_xlat::{PageSize, Vpn};
///
/// let mut space = AddressSpace::new(PageSize::Size4K, 4);
/// let buf = space.alloc("input", 8); // 8 pages over 4 GPMs: 2 pages each
/// assert_eq!(space.home_gpm(buf.base_vpn), Some(0));
/// assert_eq!(space.home_gpm(Vpn(buf.base_vpn.0 + 7)), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    page_size: PageSize,
    gpms: u32,
    buffers: Vec<Buffer>,
    next_vpn: u64,
}

impl AddressSpace {
    /// Creates an empty address space over `gpms` GPMs.
    ///
    /// # Panics
    ///
    /// Panics if `gpms` is zero.
    pub fn new(page_size: PageSize, gpms: u32) -> Self {
        assert!(gpms > 0, "need at least one GPM");
        Self {
            page_size,
            gpms,
            buffers: Vec::new(),
            next_vpn: 1, // VPN 0 reserved (null page)
        }
    }

    /// The system page size.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Number of GPMs pages are distributed over.
    pub fn gpm_count(&self) -> u32 {
        self.gpms
    }

    /// Allocates a buffer of `pages` pages and returns it.
    ///
    /// Buffers are laid out sequentially with one guard page between them,
    /// so adjacent buffers never share a page.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn alloc(&mut self, name: &str, pages: u64) -> Buffer {
        assert!(pages > 0, "cannot allocate an empty buffer");
        let buf = Buffer {
            name: name.to_owned(),
            base_vpn: Vpn(self.next_vpn),
            pages,
        };
        self.next_vpn += pages + 1;
        self.buffers.push(buf.clone());
        buf
    }

    /// The buffer containing `vpn`, if any.
    pub fn buffer_of(&self, vpn: Vpn) -> Option<&Buffer> {
        self.buffers.iter().find(|b| b.contains(vpn))
    }

    /// The home GPM of `vpn` under block partitioning, or `None` for
    /// unmapped pages.
    ///
    /// Each buffer is split into `gpms` contiguous chunks of
    /// `ceil(pages / gpms)` pages; chunk `i` lives on GPM `i`. Buffers
    /// smaller than the GPM count occupy only the first GPMs, as in the
    /// paper's example.
    pub fn home_gpm(&self, vpn: Vpn) -> Option<u32> {
        let buf = self.buffer_of(vpn)?;
        let offset = vpn.0 - buf.base_vpn.0;
        let chunk = buf.pages.div_ceil(self.gpms as u64).max(1);
        Some(((offset / chunk) as u32).min(self.gpms - 1))
    }

    /// Iterates over all allocated buffers.
    pub fn buffers(&self) -> impl Iterator<Item = &Buffer> {
        self.buffers.iter()
    }

    /// Total allocated pages across all buffers.
    pub fn total_pages(&self) -> u64 {
        self.buffers.iter().map(|b| b.pages).sum()
    }

    /// Iterates every mapped VPN with its home GPM (used to build page
    /// tables).
    pub fn iter_pages(&self) -> impl Iterator<Item = (Vpn, u32)> + '_ {
        let gpms = self.gpms;
        self.buffers.iter().flat_map(move |b| {
            // Same striping as `home_gpm`, computed directly from the buffer
            // being walked so no page can miss.
            let chunk = b.pages.div_ceil(gpms as u64).max(1);
            (0..b.pages).map(move |i| {
                let vpn = Vpn(b.base_vpn.0 + i);
                let home = ((i / chunk) as u32).min(gpms - 1);
                (vpn, home)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one GPM")]
    fn zero_gpms_rejected() {
        AddressSpace::new(PageSize::Size4K, 0);
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn empty_alloc_rejected() {
        AddressSpace::new(PageSize::Size4K, 1).alloc("x", 0);
    }

    #[test]
    fn paper_example_480_pages_over_48_gpms() {
        let mut s = AddressSpace::new(PageSize::Size4K, 48);
        let b = s.alloc("a", 480);
        // Pages 0-9 (paper's 1-10) on GPM 0, 10-19 on GPM 1, etc.
        assert_eq!(s.home_gpm(b.base_vpn), Some(0));
        assert_eq!(s.home_gpm(Vpn(b.base_vpn.0 + 9)), Some(0));
        assert_eq!(s.home_gpm(Vpn(b.base_vpn.0 + 10)), Some(1));
        assert_eq!(s.home_gpm(Vpn(b.base_vpn.0 + 479)), Some(47));
    }

    #[test]
    fn small_buffers_use_leading_gpms() {
        let mut s = AddressSpace::new(PageSize::Size4K, 48);
        let b = s.alloc("small", 3);
        assert_eq!(s.home_gpm(b.base_vpn), Some(0));
        assert_eq!(s.home_gpm(Vpn(b.base_vpn.0 + 2)), Some(2));
    }

    #[test]
    fn buffers_do_not_overlap() {
        let mut s = AddressSpace::new(PageSize::Size4K, 4);
        let a = s.alloc("a", 10);
        let b = s.alloc("b", 10);
        assert!(a.base_vpn.0 + a.pages <= b.base_vpn.0);
        assert!(
            s.buffer_of(Vpn(a.base_vpn.0 + a.pages)).is_none(),
            "guard page"
        );
    }

    #[test]
    fn unmapped_vpn_has_no_home() {
        let s = AddressSpace::new(PageSize::Size4K, 4);
        assert_eq!(s.home_gpm(Vpn(12345)), None);
        assert_eq!(s.home_gpm(Vpn(0)), None, "null page unmapped");
    }

    #[test]
    fn iter_pages_covers_everything() {
        let mut s = AddressSpace::new(PageSize::Size4K, 4);
        s.alloc("a", 7);
        s.alloc("b", 5);
        let pages: Vec<_> = s.iter_pages().collect();
        assert_eq!(pages.len(), 12);
        assert_eq!(s.total_pages(), 12);
        for (vpn, home) in pages {
            assert_eq!(s.home_gpm(vpn), Some(home));
            assert!(home < 4);
        }
    }

    #[test]
    fn buffer_addressing() {
        let mut s = AddressSpace::new(PageSize::Size4K, 2);
        let b = s.alloc("buf", 2);
        assert_eq!(b.len_bytes(PageSize::Size4K), 8192);
        assert_eq!(b.addr(PageSize::Size4K, 0), b.base_addr(PageSize::Size4K));
        assert_eq!(
            b.addr(PageSize::Size4K, 4096),
            b.base_addr(PageSize::Size4K) + 4096
        );
    }

    #[test]
    fn home_distribution_is_balanced_for_divisible_sizes() {
        let mut s = AddressSpace::new(PageSize::Size4K, 8);
        let b = s.alloc("big", 800);
        let mut counts = [0u64; 8];
        for i in 0..b.pages {
            counts[s.home_gpm(Vpn(b.base_vpn.0 + i)).unwrap() as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100));
    }
}
