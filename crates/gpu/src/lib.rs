#![warn(missing_docs)]

//! Wafer-scale GPU hardware model: wafer geometry, GPM configuration
//! presets, compute-unit issue pipelines, and address-space placement.
//!
//! The paper models the wafer as a mesh of tiles (Fig 1a): one CPU tile at
//! the centre hosting the IOMMU, every other tile a GPU Processing Module
//! (GPM) that is a scaled-down AMD MI100 (32 CUs, Table I). This crate
//! provides:
//!
//! * [`WaferLayout`] — tile ↔ GPM-id mapping, concentric ring (layer)
//!   indexing, and the 7×7 / 7×12 wafers of the evaluation.
//! * [`GpmConfig`] / [`IommuConfig`] / [`SystemConfig`] — every Table I
//!   parameter, plus the MI200/MI300/H100/H200 presets of Fig 21.
//! * [`CuPipeline`] — the compute-unit issue model: each CU executes
//!   workgroups as a sequence of timed memory operations with a bounded
//!   number outstanding.
//! * [`AddressSpace`] — buffer allocation and the paper's block-partitioned
//!   page placement ("pages 1–10 to GPM 1, pages 11–20 to GPM 2, …").

pub mod config;
pub mod cu;
pub mod space;
pub mod wafer;

pub use config::{GpmConfig, GpuPreset, IommuConfig, SystemConfig};
pub use cu::{CuPipeline, MemoryOp, WorkgroupTrace};
pub use space::{AddressSpace, Buffer};
pub use wafer::WaferLayout;
