//! Compute-unit issue model.

use std::collections::VecDeque;

use wsg_sim::Cycle;

/// One memory operation issued by a CU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryOp {
    /// Virtual byte address touched.
    pub vaddr: u64,
    /// Whether this is a load (`true`) or store (`false`).
    pub is_read: bool,
    /// Compute cycles the CU spends before issuing this op (models the
    /// arithmetic between memory instructions; an op-level "gap").
    pub gap: Cycle,
}

impl MemoryOp {
    /// A read with the given pre-issue gap.
    pub fn read(vaddr: u64, gap: Cycle) -> Self {
        Self {
            vaddr,
            is_read: true,
            gap,
        }
    }

    /// A write with the given pre-issue gap.
    pub fn write(vaddr: u64, gap: Cycle) -> Self {
        Self {
            vaddr,
            is_read: false,
            gap,
        }
    }
}

/// The memory-operation trace of one workgroup.
///
/// The simulator executes workloads trace-driven: a workgroup is the
/// sequence of coalesced memory operations its wavefronts issue, in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkgroupTrace {
    /// Operations in issue order.
    pub ops: Vec<MemoryOp>,
}

impl WorkgroupTrace {
    /// Creates a trace from operations.
    pub fn new(ops: Vec<MemoryOp>) -> Self {
        Self { ops }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl FromIterator<MemoryOp> for WorkgroupTrace {
    fn from_iter<I: IntoIterator<Item = MemoryOp>>(iter: I) -> Self {
        Self {
            ops: iter.into_iter().collect(),
        }
    }
}

/// The issue pipeline of one compute unit.
///
/// A CU executes the workgroups assigned to it strictly in order,
/// issuing their memory operations as long as fewer than `max_outstanding`
/// are in flight (modelling wavefront-level parallelism hiding memory
/// latency). The caller (the system simulator) drives the pipeline:
///
/// 1. [`CuPipeline::next_issue`] — when (and what) the CU can issue next;
/// 2. [`CuPipeline::issue`] — commit the issue at a given cycle;
/// 3. [`CuPipeline::complete`] — a memory op finished.
///
/// # Example
///
/// ```
/// use wsg_gpu::{CuPipeline, MemoryOp, WorkgroupTrace};
///
/// let mut cu = CuPipeline::new(1);
/// cu.push_workgroup(WorkgroupTrace::new(vec![
///     MemoryOp::read(0x0, 0),
///     MemoryOp::read(0x40, 2),
/// ]));
/// let (t, op) = cu.next_issue(10).unwrap();
/// assert_eq!((t, op.vaddr), (10, 0x0));
/// cu.issue(t);
/// assert!(cu.next_issue(10).is_none(), "outstanding limit reached");
/// cu.complete();
/// let (t, op) = cu.next_issue(50).unwrap();
/// assert_eq!((t, op.vaddr), (52, 0x40)); // 2-cycle gap before issue
/// ```
#[derive(Debug, Clone)]
pub struct CuPipeline {
    pending: VecDeque<MemoryOp>,
    outstanding: usize,
    max_outstanding: usize,
    issued: u64,
    completed: u64,
    finish_time: Cycle,
}

impl CuPipeline {
    /// Creates an idle CU allowing `max_outstanding` in-flight ops.
    ///
    /// # Panics
    ///
    /// Panics if `max_outstanding` is zero.
    pub fn new(max_outstanding: usize) -> Self {
        assert!(max_outstanding > 0, "need at least one outstanding slot");
        Self {
            pending: VecDeque::new(),
            outstanding: 0,
            max_outstanding,
            issued: 0,
            completed: 0,
            finish_time: 0,
        }
    }

    /// Appends a workgroup's operations to this CU's queue.
    pub fn push_workgroup(&mut self, wg: WorkgroupTrace) {
        self.pending.extend(wg.ops);
    }

    /// If the CU can issue at or after `now`, returns `(issue_time, op)`.
    /// The issue time accounts for the op's compute gap. Returns `None` when
    /// the outstanding limit is reached or no ops are pending.
    pub fn next_issue(&self, now: Cycle) -> Option<(Cycle, MemoryOp)> {
        if self.outstanding >= self.max_outstanding {
            return None;
        }
        let op = *self.pending.front()?;
        Some((now + op.gap, op))
    }

    /// Commits the issue previously returned by [`CuPipeline::next_issue`].
    ///
    /// # Panics
    ///
    /// Panics if there is nothing to issue or the outstanding limit is
    /// reached.
    pub fn issue(&mut self, at: Cycle) -> MemoryOp {
        assert!(
            self.outstanding < self.max_outstanding,
            "issue beyond outstanding limit"
        );
        // lint:allow(unwrap): panicking here is the documented contract —
        // callers must gate on `next_issue` first.
        let op = self.pending.pop_front().expect("no pending op to issue");
        self.outstanding += 1;
        self.issued += 1;
        self.finish_time = self.finish_time.max(at);
        op
    }

    /// Records the completion of one in-flight op at cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if no op is in flight.
    pub fn complete_at(&mut self, at: Cycle) {
        assert!(self.outstanding > 0, "completion without in-flight op");
        self.outstanding -= 1;
        self.completed += 1;
        self.finish_time = self.finish_time.max(at);
    }

    /// Records the completion of one in-flight op (no timestamp).
    pub fn complete(&mut self) {
        assert!(self.outstanding > 0, "completion without in-flight op");
        self.outstanding -= 1;
        self.completed += 1;
    }

    /// Ops currently in flight.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Ops queued but not yet issued.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Whether all assigned work has been issued and completed.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty() && self.outstanding == 0
    }

    /// Total ops issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Total ops completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// The latest cycle at which this CU issued or completed an op — its
    /// per-GPM execution time contribution (Fig 5).
    pub fn finish_time(&self) -> Cycle {
        self.finish_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wg(n: usize) -> WorkgroupTrace {
        (0..n).map(|i| MemoryOp::read(i as u64 * 64, 1)).collect()
    }

    #[test]
    #[should_panic(expected = "at least one outstanding slot")]
    fn zero_outstanding_rejected() {
        CuPipeline::new(0);
    }

    #[test]
    fn issue_respects_outstanding_limit() {
        let mut cu = CuPipeline::new(2);
        cu.push_workgroup(wg(5));
        cu.issue(0);
        cu.issue(1);
        assert!(cu.next_issue(2).is_none());
        cu.complete();
        assert!(cu.next_issue(2).is_some());
    }

    #[test]
    fn gap_delays_issue_time() {
        let mut cu = CuPipeline::new(4);
        cu.push_workgroup(WorkgroupTrace::new(vec![MemoryOp::read(0, 7)]));
        let (t, _) = cu.next_issue(100).unwrap();
        assert_eq!(t, 107);
    }

    #[test]
    fn drains_after_all_work() {
        let mut cu = CuPipeline::new(8);
        cu.push_workgroup(wg(3));
        assert!(!cu.is_drained());
        for _ in 0..3 {
            cu.issue(0);
        }
        assert!(!cu.is_drained());
        for _ in 0..3 {
            cu.complete();
        }
        assert!(cu.is_drained());
        assert_eq!(cu.issued(), 3);
        assert_eq!(cu.completed(), 3);
    }

    #[test]
    fn finish_time_tracks_latest_event() {
        let mut cu = CuPipeline::new(2);
        cu.push_workgroup(wg(2));
        cu.issue(10);
        cu.issue(20);
        cu.complete_at(500);
        cu.complete_at(300);
        assert_eq!(cu.finish_time(), 500);
    }

    #[test]
    fn workgroups_execute_in_order() {
        let mut cu = CuPipeline::new(4);
        cu.push_workgroup(WorkgroupTrace::new(vec![MemoryOp::read(1, 0)]));
        cu.push_workgroup(WorkgroupTrace::new(vec![MemoryOp::read(2, 0)]));
        assert_eq!(cu.issue(0).vaddr, 1);
        assert_eq!(cu.issue(0).vaddr, 2);
    }

    #[test]
    #[should_panic(expected = "no pending op")]
    fn issue_with_empty_queue_panics() {
        let mut cu = CuPipeline::new(1);
        cu.issue(0);
    }

    #[test]
    #[should_panic(expected = "completion without in-flight op")]
    fn complete_without_issue_panics() {
        let mut cu = CuPipeline::new(1);
        cu.complete();
    }

    #[test]
    fn trace_from_iterator() {
        let t: WorkgroupTrace = (0..4).map(|i| MemoryOp::write(i, 0)).collect();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert!(!t.ops[0].is_read);
    }
}
