//! Wafer geometry: tiles, GPM ids, and concentric layers.

use wsg_noc::geometry::ring_tiles;
use wsg_noc::Coord;

/// The tile arrangement of a wafer-scale GPU.
///
/// One tile hosts the CPU (and its IOMMU); every other tile is a GPM. GPMs
/// are numbered row-major, skipping the CPU tile, so a 7×7 wafer has GPMs
/// 0..48.
///
/// # Example
///
/// ```
/// use wsg_gpu::WaferLayout;
///
/// let w = WaferLayout::paper_7x7();
/// assert_eq!(w.gpm_count(), 48);
/// assert_eq!(w.cpu(), wsg_noc::Coord::new(3, 3));
/// let c = w.coord_of(0);
/// assert_eq!(w.id_of(c), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaferLayout {
    width: u16,
    height: u16,
    cpu: Coord,
    coords: Vec<Coord>,
}

impl WaferLayout {
    /// Creates a `width × height` wafer with the CPU at `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if the wafer has fewer than 2 tiles or `cpu` is out of bounds.
    pub fn new(width: u16, height: u16, cpu: Coord) -> Self {
        assert!(
            width as u32 * height as u32 >= 2,
            "wafer needs at least one GPM"
        );
        assert!(cpu.x < width && cpu.y < height, "CPU tile out of bounds");
        let mut coords = Vec::with_capacity((width as usize * height as usize) - 1);
        for y in 0..height {
            for x in 0..width {
                let c = Coord::new(x, y);
                if c != cpu {
                    coords.push(c);
                }
            }
        }
        Self {
            width,
            height,
            cpu,
            coords,
        }
    }

    /// The 7×7 wafer of the main evaluation: 48 GPMs around a central CPU.
    pub fn paper_7x7() -> Self {
        Self::new(7, 7, Coord::new(3, 3))
    }

    /// The 7×12 wafer of Fig 22: 83 GPMs, CPU at the central tile (3, 5).
    pub fn paper_7x12() -> Self {
        Self::new(7, 12, Coord::new(3, 5))
    }

    /// The 4-GPM MCM-GPU reference point of Fig 4 (2×2 GPM tiles plus a CPU
    /// tile in a 5-tile cross is not a mesh; we use a 1×5 strip with the CPU
    /// in the middle, matching an MCM package's short distances).
    pub fn mcm_4gpm() -> Self {
        Self::new(5, 1, Coord::new(2, 0))
    }

    /// Wafer width in tiles.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Wafer height in tiles.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// The CPU tile.
    pub fn cpu(&self) -> Coord {
        self.cpu
    }

    /// Number of GPMs.
    pub fn gpm_count(&self) -> usize {
        self.coords.len()
    }

    /// The tile of GPM `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn coord_of(&self, id: u32) -> Coord {
        self.coords[id as usize]
    }

    /// The GPM id at `coord`, or `None` for the CPU tile / out-of-bounds.
    pub fn id_of(&self, coord: Coord) -> Option<u32> {
        if coord == self.cpu || coord.x >= self.width || coord.y >= self.height {
            return None;
        }
        // Row-major position minus tiles skipped for the CPU.
        let linear = coord.y as usize * self.width as usize + coord.x as usize;
        let cpu_linear = self.cpu.y as usize * self.width as usize + self.cpu.x as usize;
        let id = if linear > cpu_linear {
            linear - 1
        } else {
            linear
        };
        Some(id as u32)
    }

    /// Iterates over all GPM ids with their coordinates.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Coord)> + '_ {
        self.coords.iter().enumerate().map(|(i, &c)| (i as u32, c))
    }

    /// The concentric layer (ring) of a GPM: its Chebyshev distance from the
    /// CPU tile (§IV-C's layer index; ring 1 is the innermost GPM ring).
    pub fn layer_of(&self, id: u32) -> u32 {
        self.coord_of(id).chebyshev(self.cpu)
    }

    /// The largest ring index present on this wafer.
    pub fn max_layer(&self) -> u32 {
        self.coords
            .iter()
            .map(|c| c.chebyshev(self.cpu))
            .max()
            .unwrap_or(0)
    }

    /// GPM ids of ring `r`, ordered clockwise from the top of the ring
    /// (the stable enumeration used by HDPAT's clustering, §IV-D).
    pub fn ring_gpms(&self, r: u32) -> Vec<u32> {
        ring_tiles(self.cpu, r, self.width, self.height)
            .into_iter()
            .filter_map(|c| self.id_of(c))
            .collect()
    }

    /// Manhattan distance in hops from a GPM to the CPU tile.
    pub fn hops_to_cpu(&self, id: u32) -> u32 {
        self.coord_of(id).manhattan(self.cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_7x7_has_48_gpms() {
        let w = WaferLayout::paper_7x7();
        assert_eq!(w.gpm_count(), 48);
        assert_eq!(w.max_layer(), 3);
        assert_eq!(w.id_of(w.cpu()), None);
    }

    #[test]
    fn paper_7x12_has_83_gpms() {
        let w = WaferLayout::paper_7x12();
        assert_eq!(w.gpm_count(), 83);
    }

    #[test]
    fn mcm_has_4_gpms() {
        let w = WaferLayout::mcm_4gpm();
        assert_eq!(w.gpm_count(), 4);
        assert_eq!(w.max_layer(), 2);
    }

    #[test]
    fn id_coord_roundtrip() {
        let w = WaferLayout::paper_7x7();
        for (id, coord) in w.iter() {
            assert_eq!(w.id_of(coord), Some(id));
            assert_eq!(w.coord_of(id), coord);
        }
    }

    #[test]
    fn ids_are_dense_and_skip_cpu() {
        let w = WaferLayout::paper_7x7();
        // Tile before the CPU in row-major order.
        assert_eq!(w.id_of(Coord::new(2, 3)), Some(23));
        // Tile after the CPU shares the linear slot the CPU vacated.
        assert_eq!(w.id_of(Coord::new(4, 3)), Some(24));
    }

    #[test]
    fn layers_partition_gpms() {
        let w = WaferLayout::paper_7x7();
        let total: usize = (1..=w.max_layer()).map(|r| w.ring_gpms(r).len()).sum();
        assert_eq!(total, w.gpm_count());
        assert_eq!(w.ring_gpms(1).len(), 8);
        assert_eq!(w.ring_gpms(2).len(), 16);
        assert_eq!(w.ring_gpms(3).len(), 24);
    }

    #[test]
    fn layer_of_matches_ring_membership() {
        let w = WaferLayout::paper_7x7();
        for r in 1..=w.max_layer() {
            for id in w.ring_gpms(r) {
                assert_eq!(w.layer_of(id), r);
            }
        }
    }

    #[test]
    fn hops_grow_toward_periphery() {
        let w = WaferLayout::paper_7x7();
        let corner = w.id_of(Coord::new(0, 0)).unwrap();
        let adjacent = w.id_of(Coord::new(3, 2)).unwrap();
        assert_eq!(w.hops_to_cpu(corner), 6);
        assert_eq!(w.hops_to_cpu(adjacent), 1);
    }

    #[test]
    #[should_panic(expected = "CPU tile out of bounds")]
    fn cpu_must_be_on_wafer() {
        WaferLayout::new(3, 3, Coord::new(5, 5));
    }

    #[test]
    fn out_of_bounds_coord_has_no_id() {
        let w = WaferLayout::paper_7x7();
        assert_eq!(w.id_of(Coord::new(7, 0)), None);
    }
}
