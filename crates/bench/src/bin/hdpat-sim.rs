//! `hdpat-sim` — command-line driver for the wafer-scale GPU simulator.
//!
//! ```text
//! hdpat-sim list                          # benchmarks and policies
//! hdpat-sim run SPMV hdpat                # one simulation, full metrics
//! hdpat-sim run PR naive --scale unit --seed 7
//! hdpat-sim compare KM                    # every policy on one benchmark
//! hdpat-sim figure fig14                  # regenerate one paper figure
//! hdpat-sim figure all                    # regenerate everything
//! hdpat-sim trace SPMV                    # workload-trace statistics
//! ```

use hdpat::experiments::{run, RunConfig};
use hdpat::policy::{HdpatConfig, PolicyKind};
use wsg_bench::figures;
use wsg_bench::report::{emit, Table};
use wsg_workloads::{BenchmarkId, Scale};

fn policies() -> Vec<(&'static str, PolicyKind)> {
    vec![
        ("naive", PolicyKind::Naive),
        ("route", PolicyKind::RouteCache { caching_layers: 2 }),
        ("concentric", PolicyKind::Concentric { caching_layers: 2 }),
        ("distributed", PolicyKind::Distributed),
        ("transfw", PolicyKind::TransFw),
        ("valkyrie", PolicyKind::Valkyrie),
        ("barre", PolicyKind::Barre),
        (
            "cluster",
            PolicyKind::Hdpat(HdpatConfig::peer_caching_only()),
        ),
        (
            "redir",
            PolicyKind::Hdpat(HdpatConfig::with_redirection_only()),
        ),
        (
            "prefetch",
            PolicyKind::Hdpat(HdpatConfig::with_prefetch_only()),
        ),
        (
            "hdpat-tlb",
            PolicyKind::Hdpat(HdpatConfig::with_iommu_tlb()),
        ),
        ("hdpat", PolicyKind::hdpat()),
    ]
}

fn parse_benchmark(s: &str) -> Option<BenchmarkId> {
    BenchmarkId::all()
        .into_iter()
        .find(|b| b.info().abbr.eq_ignore_ascii_case(s))
}

fn parse_policy(s: &str) -> Option<PolicyKind> {
    policies()
        .into_iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(s))
        .map(|(_, p)| p)
}

fn parse_scale(s: &str) -> Option<Scale> {
    match s.to_ascii_lowercase().as_str() {
        "unit" => Some(Scale::Unit),
        "bench" => Some(Scale::Bench),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  hdpat-sim list\n  hdpat-sim run <BENCH> <POLICY> [--scale unit|bench|full] [--seed N]\n  hdpat-sim compare <BENCH> [--scale ...]\n  hdpat-sim figure <figNN|tabN|all> [--scale ...]\n  hdpat-sim trace <BENCH> [--scale ...] [--seed N]"
    );
    std::process::exit(2);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let scale = flag(&args, "--scale")
        .map(|s| parse_scale(&s).unwrap_or_else(|| usage()))
        .unwrap_or(Scale::Bench);
    let seed: u64 = flag(&args, "--seed")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(42);

    match cmd.as_str() {
        "list" => cmd_list(),
        "run" => {
            let b = args
                .get(1)
                .and_then(|s| parse_benchmark(s))
                .unwrap_or_else(|| usage());
            let p = args
                .get(2)
                .and_then(|s| parse_policy(s))
                .unwrap_or_else(|| usage());
            cmd_run(b, p, scale, seed);
        }
        "compare" => {
            let b = args
                .get(1)
                .and_then(|s| parse_benchmark(s))
                .unwrap_or_else(|| usage());
            cmd_compare(b, scale, seed);
        }
        "figure" => {
            let name = args.get(1).cloned().unwrap_or_else(|| usage());
            cmd_figure(&name, scale);
        }
        "trace" => {
            let b = args
                .get(1)
                .and_then(|s| parse_benchmark(s))
                .unwrap_or_else(|| usage());
            cmd_trace(b, scale, seed);
        }
        _ => usage(),
    }
}

fn cmd_list() {
    let mut t = Table::new(vec!["benchmark", "suite", "pattern"]);
    for b in BenchmarkId::all() {
        let i = b.info();
        t.row(vec![
            i.abbr.to_string(),
            i.suite.to_string(),
            i.pattern.to_string(),
        ]);
    }
    emit("Benchmarks", "Table II workloads.", &t);
    let mut t = Table::new(vec!["policy", "description"]);
    for (n, p) in policies() {
        t.row(vec![n.to_string(), p.name().to_string()]);
    }
    emit(
        "Policies",
        "Translation policies (paper name in the right column).",
        &t,
    );
}

fn cmd_run(b: BenchmarkId, p: PolicyKind, scale: Scale, seed: u64) {
    let m = run(&RunConfig::new(b, scale, p).with_seed(seed));
    println!("{b} under {p} (seed {seed}):");
    println!("  execution time      : {} cycles", m.total_cycles);
    println!("  memory ops          : {}", m.ops_completed);
    println!(
        "  translations        : {} local, {} remote (+{} coalesced)",
        m.local_translations, m.remote_requests, m.remote_coalesced
    );
    println!("  IOMMU walks         : {}", m.iommu_walks);
    println!("  IOMMU latency       : {}", m.iommu_latency);
    println!("  resolution          : {}", m.resolution);
    println!("  mean remote RTT     : {:.0} cycles", m.remote_rtt.mean());
    println!("  peak IOMMU backlog  : {}", m.iommu_buffer.peak());
    println!(
        "  prefetch accuracy   : {:.1}%",
        m.prefetch_accuracy() * 100.0
    );
    println!(
        "  NoC traffic         : {} bytes, {} packets",
        m.noc_bytes, m.noc_packets
    );
    println!(
        "  GPM imbalance       : {:.2} (max/mean finish)",
        m.gpm_imbalance()
    );
}

fn cmd_compare(b: BenchmarkId, scale: Scale, seed: u64) {
    let base = run(&RunConfig::new(b, scale, PolicyKind::Naive).with_seed(seed));
    let mut t = Table::new(vec![
        "policy",
        "cycles",
        "speedup",
        "iommu-walks",
        "offload",
    ]);
    for (n, p) in policies() {
        let m = if matches!(p, PolicyKind::Naive) {
            base.clone()
        } else {
            run(&RunConfig::new(b, scale, p).with_seed(seed))
        };
        t.row(vec![
            n.to_string(),
            m.total_cycles.to_string(),
            format!("{:.2}", m.speedup_vs(&base)),
            m.iommu_walks.to_string(),
            format!("{:.1}%", m.offload_fraction() * 100.0),
        ]);
    }
    emit(
        &format!("compare {b}"),
        "All policies on one benchmark, same workload and seed.",
        &t,
    );
}

/// Prints static statistics of a generated workload trace: footprint,
/// operation mix, locality, and remote fraction under block placement with
/// round-robin dispatch.
fn cmd_trace(b: BenchmarkId, scale: Scale, seed: u64) {
    use wsg_gpu::AddressSpace;
    let gpms = 48u32;
    let mut space = AddressSpace::new(wsg_xlat::PageSize::Size4K, gpms);
    let wgs = wsg_workloads::generate(b, scale, &mut space, seed);
    let ps = space.page_size();

    let mut ops = 0u64;
    let mut reads = 0u64;
    let mut remote = 0u64;
    let mut pages = std::collections::HashSet::new();
    let mut near = 0u64;
    let mut pairs = 0u64;
    for (i, wg) in wgs.iter().enumerate() {
        let gpm = (i as u32) % gpms;
        let mut last: Option<u64> = None;
        for op in &wg.ops {
            ops += 1;
            if op.is_read {
                reads += 1;
            }
            let vpn = ps.vpn_of(op.vaddr);
            pages.insert(vpn.0);
            if space.home_gpm(vpn) != Some(gpm) {
                remote += 1;
            }
            if let Some(prev) = last {
                pairs += 1;
                if prev.abs_diff(vpn.0) <= 4 {
                    near += 1;
                }
            }
            last = Some(vpn.0);
        }
    }
    let info = b.info();
    println!("{b} — {} ({})", info.name, info.suite);
    println!("  pattern          : {}", info.pattern);
    println!("  workgroups       : {}", wgs.len());
    println!(
        "  memory ops       : {ops} ({:.0}% reads)",
        reads as f64 / ops as f64 * 100.0
    );
    println!("  distinct pages   : {}", pages.len());
    println!(
        "  remote ops       : {:.1}% (block placement, round-robin dispatch)",
        remote as f64 / ops as f64 * 100.0
    );
    println!(
        "  spatial locality : {:.1}% of consecutive ops within 4 pages",
        near as f64 / pairs.max(1) as f64 * 100.0
    );
}

type FigureFn = Box<dyn Fn() -> Table>;

fn cmd_figure(name: &str, scale: Scale) {
    let all: Vec<(&str, FigureFn)> = vec![
        ("fig02", Box::new(move || figures::fig02_headroom(scale))),
        (
            "fig03",
            Box::new(move || figures::fig03_latency_breakdown(scale)),
        ),
        (
            "fig04",
            Box::new(move || figures::fig04_buffer_pressure(scale)),
        ),
        (
            "fig05",
            Box::new(move || figures::fig05_position_imbalance(scale)),
        ),
        (
            "fig06",
            Box::new(move || figures::fig06_translation_counts(scale)),
        ),
        (
            "fig07",
            Box::new(move || figures::fig07_reuse_distance(scale)),
        ),
        (
            "fig08",
            Box::new(move || figures::fig08_spatial_locality(scale)),
        ),
        ("fig13", Box::new(figures::fig13_size_invariance)),
        ("fig14", Box::new(move || figures::fig14_overall(scale))),
        ("fig15", Box::new(move || figures::fig15_ablation(scale))),
        ("fig16", Box::new(move || figures::fig16_breakdown(scale))),
        (
            "fig17",
            Box::new(move || figures::fig17_response_time(scale)),
        ),
        (
            "fig18",
            Box::new(move || figures::fig18_prefetch_granularity(scale)),
        ),
        (
            "fig19",
            Box::new(move || figures::fig19_redir_vs_tlb(scale)),
        ),
        ("fig20", Box::new(move || figures::fig20_page_size(scale))),
        ("fig21", Box::new(move || figures::fig21_gpu_presets(scale))),
        ("fig22", Box::new(move || figures::fig22_wafer_7x12(scale))),
        ("tab1", Box::new(figures::tab1_config)),
        ("tab2", Box::new(figures::tab2_workloads)),
        ("tab3", Box::new(figures::tab3_area_power)),
    ];
    let mut matched = false;
    for (n, f) in &all {
        if name == "all" || name.eq_ignore_ascii_case(n) {
            matched = true;
            emit(n, "", &f());
        }
    }
    if !matched {
        eprintln!("unknown figure `{name}`; try fig02..fig22, tab1..tab3, or `all`");
        std::process::exit(2);
    }
}
